//! # xtrace — inferring large-scale computation behavior via trace
//! # extrapolation
//!
//! A Rust reproduction of Carrington, Laurenzano & Tiwari, *"Inferring
//! Large-scale Computation Behavior via Trace Extrapolation"* (IPDPSW 2013):
//! collect application signatures (per-basic-block feature vectors) at a
//! series of small core counts, fit each feature element with the best of a
//! set of canonical functions of the core count, synthesize the signature at
//! a large core count, and feed it to a PMaC-style convolution to predict
//! full-scale runtime — without ever tracing at full scale.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`ir`] — program representation and address-stream generation (the
//!   binary-instrumentation analog),
//! * [`cache`] — target-system cache hierarchy simulation,
//! * [`spmd`] — SPMD/MPI message-passing simulation and profiling,
//! * [`machine`] — machine profiles and the MultiMAPS bandwidth surface,
//! * [`apps`] — strong-scaling proxy applications (SPECFEM3D / UH3D
//!   analogs),
//! * [`tracer`] — execution-driven application-signature collection,
//! * [`psins`] — the convolution/replay simulator and execution-driven
//!   ground truth,
//! * [`extrap`] — the paper's contribution: canonical-form fitting and
//!   trace extrapolation,
//! * [`core`] — the staged pipeline engine: typed Collect → Fit →
//!   Synthesize → Convolve → Validate stages, the unified
//!   [`core::XtraceError`] model, and the content-addressed artifact
//!   store that makes identical re-runs resume as cache hits,
//! * [`obs`] — the structured observability layer: spans, counters,
//!   histograms, and snapshot exporters, wired through every stage and
//!   hot kernel (zero-cost when no recorder is installed).
//!
//! ## Quickstart
//!
//! ```
//! use xtrace::apps::{ProxyApp, SpecfemProxy};
//! use xtrace::extrap::{ExtrapolationConfig, extrapolate_signature};
//! use xtrace::machine::presets;
//! use xtrace::psins::try_predict_runtime;
//! use xtrace::tracer::collect_signature;
//!
//! // A small problem so the doctest runs quickly.
//! let app = SpecfemProxy::small();
//! let machine = presets::bluewaters_phase1();
//!
//! // 1. Trace the most computationally demanding task at three small core
//! //    counts (instead of the expensive large count).
//! let training: Vec<_> = [8u32, 16, 32]
//!     .iter()
//!     .map(|&p| collect_signature(&app, p, &machine).longest_task().clone())
//!     .collect();
//!
//! // 2. Extrapolate the signature to 128 cores.
//! let cfg = ExtrapolationConfig::default();
//! let extrapolated = extrapolate_signature(&training, 128, &cfg).unwrap();
//!
//! // 3. Predict full-scale runtime from the synthetic trace.
//! let prediction = try_predict_runtime(&extrapolated, &app.comm_profile(128), &machine).unwrap();
//! assert!(prediction.total_seconds > 0.0);
//! ```

pub use xtrace_apps as apps;
pub use xtrace_cache as cache;
pub use xtrace_core as core;
pub use xtrace_extrap as extrap;
pub use xtrace_ir as ir;
pub use xtrace_machine as machine;
pub use xtrace_obs as obs;
pub use xtrace_psins as psins;
pub use xtrace_spmd as spmd;
pub use xtrace_tracer as tracer;
