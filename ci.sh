#!/usr/bin/env bash
# Local CI gate: build, tests, lints, and smoke runs of the
# performance-regression benches. Everything runs offline against the
# vendored dependency stubs.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --check

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== tests =="
cargo test -q --workspace --offline

echo "== doc-tests =="
cargo test -q --workspace --offline --doc

echo "== panic-free library gate =="
bash scripts/no_panic_gate.sh

echo "== clippy (crates touched by the perf and refactor work) =="
cargo clippy --offline -p xtrace-ir -p xtrace-cache -p xtrace-tracer \
    -p xtrace-extrap -p xtrace-machine -p xtrace-psins -p xtrace-core \
    -p xtrace-bench -p xtrace-cli -p xtrace-spmd -p xtrace-apps \
    --all-targets -- -D warnings

echo "== bench smoke (quick configs) =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
XTRACE_BENCH_QUICK=1 cargo run -q --release --offline -p xtrace-bench \
    --bin bench_collect -- --threads 4 --out "$tmp/BENCH_collect.json"
XTRACE_BENCH_QUICK=1 cargo run -q --release --offline -p xtrace-bench \
    --bin bench_extrap -- --threads 4 --out "$tmp/BENCH_extrap.json"
# bench_convolve's quick mode asserts correctness, not wall-clock: all
# replay legs bit-identical, ConvolveCache warm hits, golden-pipeline
# prediction rel err exactly 0.
XTRACE_BENCH_QUICK=1 cargo run -q --release --offline -p xtrace-bench \
    --bin bench_convolve -- --threads 4 --out "$tmp/BENCH_convolve.json"
for f in BENCH_collect.json BENCH_extrap.json BENCH_convolve.json; do
    test -s "$tmp/$f" || { echo "missing bench report $f" >&2; exit 1; }
done

echo "== ci.sh: all green =="
