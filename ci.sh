#!/usr/bin/env bash
# Local CI gate: build, tests, lints, and smoke runs of the
# performance-regression benches. Everything runs offline against the
# vendored dependency stubs.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --check

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== tests =="
cargo test -q --workspace --offline

echo "== doc-tests =="
cargo test -q --workspace --offline --doc

echo "== panic-free library gate =="
bash scripts/no_panic_gate.sh

echo "== API-surface gate =="
bash scripts/api_surface.sh --check

echo "== clippy (crates touched by the perf and refactor work) =="
cargo clippy --offline -p xtrace-ir -p xtrace-cache -p xtrace-tracer \
    -p xtrace-extrap -p xtrace-machine -p xtrace-psins -p xtrace-core \
    -p xtrace-bench -p xtrace-cli -p xtrace-spmd -p xtrace-apps \
    -p xtrace-obs --all-targets -- -D warnings

echo "== bench smoke (quick configs) =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
XTRACE_BENCH_QUICK=1 cargo run -q --release --offline -p xtrace-bench \
    --bin bench_collect -- --threads 4 --out "$tmp/BENCH_collect.json"
XTRACE_BENCH_QUICK=1 cargo run -q --release --offline -p xtrace-bench \
    --bin bench_extrap -- --threads 4 --out "$tmp/BENCH_extrap.json"
# bench_convolve's quick mode asserts correctness, not wall-clock: all
# replay legs bit-identical, ConvolveCache warm hits, golden-pipeline
# prediction rel err exactly 0.
XTRACE_BENCH_QUICK=1 cargo run -q --release --offline -p xtrace-bench \
    --bin bench_convolve -- --threads 4 --out "$tmp/BENCH_convolve.json"
# bench_obs's quick mode asserts the prediction is bit-identical with and
# without a recorder attached (the <2% overhead gate runs in full mode).
XTRACE_BENCH_QUICK=1 cargo run -q --release --offline -p xtrace-bench \
    --bin bench_obs -- --out "$tmp/BENCH_obs.json"
for f in BENCH_collect.json BENCH_extrap.json BENCH_convolve.json \
    BENCH_obs.json; do
    test -s "$tmp/$f" || { echo "missing bench report $f" >&2; exit 1; }
done

echo "== metrics smoke (--metrics-out JSON keys) =="
cargo run -q --release --offline -p xtrace-cli -- pipeline \
    --app specfem3d --scale tiny --machine cray-xt5 \
    --training 6,24,96 --target 384 --tracer fast --validate false \
    --metrics-out "$tmp/metrics.json" >/dev/null
python3 - "$tmp/metrics.json" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
spans = {s["name"] for s in snap["spans"]}
missing = {"pipeline", "collect", "fit", "synthesize", "convolve"} - spans
assert not missing, f"missing stage spans: {sorted(missing)}"
keys = set(snap["counters"]) | set(snap["gauges"])
required = [
    "tracer.sig_memo.hits", "tracer.sig_memo.misses",
    "tracer.sig_memo.hit_rate_bp", "store.hits", "store.misses",
    "extrap.fit_wins.Constant", "spmd.rank_classes",
    "psins.convolve_cache.hits",
    "tracer.ring.peak_refs", "tracer.ring.capacity_refs",
]
missing = [k for k in required if k not in keys]
assert not missing, f"missing metrics keys: {missing}"
print(f"metrics smoke: {len(spans)} spans, {len(keys)} metric keys, all required present")
PY

echo "== trace smoke (--trace-out / --diagnostics-out keys) =="
cargo run -q --release --offline -p xtrace-cli -- pipeline \
    --app specfem3d --scale tiny --machine cray-xt5 \
    --training 6,24,96 --target 384 --tracer fast --validate false \
    --trace-out "$tmp/obs/trace.json" \
    --diagnostics-out "$tmp/obs/diagnostics.json" >/dev/null
python3 - "$tmp/obs/trace.json" "$tmp/obs/diagnostics.json" <<'PY'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert events, "empty traceEvents"
for ev in events:
    for key in ("name", "ph", "ts", "dur"):
        assert key in ev, f"event missing {key}: {ev}"
phases = {ev["ph"] for ev in events}
assert "X" in phases, f"no duration events: {sorted(phases)}"
diag = json.load(open(sys.argv[2]))
for key in ("target_x", "training_xs", "form_wins", "elements"):
    assert key in diag, f"diagnostics missing {key}"
assert sum(diag["form_wins"].values()) == len(diag["elements"])
print(f"trace smoke: {len(events)} trace events, "
      f"{len(diag['elements'])} diagnosed elements, all required keys present")
PY

echo "== concurrent-engine smoke (two sessions, one process, golden diff) =="
# Two pipeline sessions running concurrently in one process must each
# stay bit-identical to the single-session goldens (prediction and
# masked metrics) — scoped observability contexts, no counter bleed.
cargo run -q --release --offline --example concurrent_smoke

echo "== wide-collection smoke (--ranks-per-count, bounded ring memory) =="
cargo run -q --release --offline -p xtrace-cli -- pipeline \
    --app specfem3d --scale tiny --machine cray-xt5 \
    --training 96,192 --target 384 --tracer fast --validate false \
    --ranks-per-count 64 --store "$tmp/wide-store" \
    --metrics-out "$tmp/wide.json" >/dev/null
python3 - "$tmp/wide.json" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
gauges, counters = snap["gauges"], snap["counters"]
peak = gauges["tracer.ring.peak_refs"]
cap = gauges["tracer.ring.capacity_refs"]
# The bounded-memory assert: streaming never overfills its ring.
assert 0 < peak <= cap, f"ring peak {peak} outside (0, capacity {cap}]"
raw = counters["tracer.codec.raw_bytes"]
comp = counters["tracer.codec.compressed_bytes"]
assert 0 < comp < raw, f"v2 envelope must compress: {comp} vs {raw} raw bytes"
assert counters["store.trace_bytes_written"] == comp
written = counters["store.writes"]
assert written > 64, f"wide collection stored only {written} artifacts"
print(f"wide smoke: ring peak {peak}/{cap} refs, "
      f"{comp}/{raw} stored bytes over {written} artifacts")
PY

echo "== ci.sh: all green =="
