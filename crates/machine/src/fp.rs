//! Floating-point throughput rates.
//!
//! The computation model's second ingredient: "Arithmetic operations are
//! floating-point and other math operations" (Section III-A). Rates are
//! expressed as operations per cycle per class; dividing dynamic counts by
//! `rate × clock` gives the arithmetic time of Eq. (1)'s FP analog.

use serde::{Deserialize, Serialize};

/// Sustained issue rates, in operations per cycle, for each FP class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpRates {
    /// Adds/subtracts per cycle.
    pub add_per_cycle: f64,
    /// Multiplies per cycle.
    pub mul_per_cycle: f64,
    /// Divides per cycle (typically ≪ 1: divides take tens of cycles).
    pub div_per_cycle: f64,
    /// Square roots per cycle.
    pub sqrt_per_cycle: f64,
    /// Fused multiply-adds per cycle (each FMA = 2 FLOPs).
    pub fma_per_cycle: f64,
}

impl FpRates {
    /// A generic superscalar core: 2 add + 2 mul pipes, 2 FMA pipes,
    /// 20-cycle divide, 25-cycle square root.
    pub fn generic() -> Self {
        Self {
            add_per_cycle: 2.0,
            mul_per_cycle: 2.0,
            div_per_cycle: 1.0 / 20.0,
            sqrt_per_cycle: 1.0 / 25.0,
            fma_per_cycle: 2.0,
        }
    }

    /// Validates that every rate is positive.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("add", self.add_per_cycle),
            ("mul", self.mul_per_cycle),
            ("div", self.div_per_cycle),
            ("sqrt", self.sqrt_per_cycle),
            ("fma", self.fma_per_cycle),
        ] {
            if v <= 0.0 || v.is_nan() {
                return Err(format!("fp rate {name} must be positive, got {v}"));
            }
        }
        Ok(())
    }

    /// Seconds to execute the given per-class dynamic operation counts at
    /// `clock_hz`, scaled by the block's achievable ILP (independent ops
    /// issue in parallel up to `ilp`; a serial chain gets `ilp = 1`).
    ///
    /// Classes execute on separate pipes, so the cost is the sum of
    /// per-class times — a deliberate simplification matching the
    /// throughput-oriented PMaC arithmetic model.
    #[allow(clippy::too_many_arguments)]
    pub fn seconds(
        &self,
        adds: u64,
        muls: u64,
        divs: u64,
        sqrts: u64,
        fmas: u64,
        ilp: f64,
        clock_hz: f64,
    ) -> f64 {
        assert!(clock_hz > 0.0, "clock must be positive");
        let ilp = ilp.max(1.0);
        let cycles = adds as f64 / self.add_per_cycle
            + muls as f64 / self.mul_per_cycle
            + divs as f64 / self.div_per_cycle
            + sqrts as f64 / self.sqrt_per_cycle
            + fmas as f64 / self.fma_per_cycle;
        cycles / (ilp.min(4.0)) / clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_rates_validate() {
        FpRates::generic().validate().unwrap();
    }

    #[test]
    fn invalid_rate_is_reported() {
        let mut r = FpRates::generic();
        r.div_per_cycle = 0.0;
        assert!(r.validate().unwrap_err().contains("div"));
    }

    #[test]
    fn adds_at_two_per_cycle() {
        let r = FpRates::generic();
        // 2e9 adds at 2/cycle on a 1 GHz clock = 1 second.
        let t = r.seconds(2_000_000_000, 0, 0, 0, 0, 1.0, 1e9);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn divides_dominate_mixed_work() {
        let r = FpRates::generic();
        let t_div = r.seconds(0, 0, 1000, 0, 0, 1.0, 1e9);
        let t_add = r.seconds(1000, 0, 0, 0, 0, 1.0, 1e9);
        assert!(t_div > 30.0 * t_add);
    }

    #[test]
    fn ilp_speeds_up_and_saturates() {
        let r = FpRates::generic();
        let serial = r.seconds(1000, 1000, 0, 0, 0, 1.0, 1e9);
        let wide = r.seconds(1000, 1000, 0, 0, 0, 2.0, 1e9);
        let huge = r.seconds(1000, 1000, 0, 0, 0, 100.0, 1e9);
        assert!((serial / wide - 2.0).abs() < 1e-9);
        assert!((serial / huge - 4.0).abs() < 1e-9, "ILP capped at 4");
    }

    #[test]
    fn sub_one_ilp_is_clamped() {
        let r = FpRates::generic();
        let a = r.seconds(100, 0, 0, 0, 0, 0.1, 1e9);
        let b = r.seconds(100, 0, 0, 0, 0, 1.0, 1e9);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_work_costs_nothing() {
        let r = FpRates::generic();
        assert_eq!(r.seconds(0, 0, 0, 0, 0, 1.0, 1e9), 0.0);
    }
}
