//! The machine profile: everything the convolution knows about a target.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};
use xtrace_cache::HierarchyConfig;
use xtrace_spmd::NetworkModel;

use crate::fp::FpRates;
use crate::memcost::MemoryCostModel;
use crate::multimaps::{measure_surface, BandwidthSurface, SweepConfig};
use crate::power::PowerModel;

/// Why a machine profile could not be constructed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MachineError {
    /// The cache hierarchy violates a structural invariant.
    InvalidHierarchy(String),
    /// The floating-point rates are not usable.
    InvalidFpRates(String),
    /// The energy model is not usable.
    InvalidPower(String),
    /// The clock frequency is not positive.
    InvalidClock(f64),
    /// The memory/FP overlap factor is outside `[0, 1]`.
    InvalidOverlap(f64),
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::InvalidHierarchy(m) => write!(f, "invalid cache hierarchy: {m}"),
            MachineError::InvalidFpRates(m) => write!(f, "invalid FP rates: {m}"),
            MachineError::InvalidPower(m) => write!(f, "invalid power model: {m}"),
            MachineError::InvalidClock(hz) => write!(f, "clock must be positive, got {hz}"),
            MachineError::InvalidOverlap(v) => {
                write!(f, "fp/mem overlap must be a fraction in [0, 1], got {v}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// A target (or base) system: cache structure, clock, FP rates, network,
/// per-access memory cost parameters, and the lazily measured MultiMAPS
/// surface.
///
/// Signatures are collected *against* a profile's hierarchy (the simulator
/// mimics "the structure of the system being predicted"), and predictions
/// are convolved with the same profile's surface — so a profile plays both
/// the machine-description and benchmark-results roles of the PMaC
/// framework.
#[derive(Debug)]
pub struct MachineProfile {
    /// Machine name (e.g. `"bluewaters-phase1"`).
    pub name: String,
    /// Cache hierarchy the tracer simulates.
    pub hierarchy: HierarchyConfig,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Floating-point throughputs.
    pub fp: FpRates,
    /// Network α–β model.
    pub net: NetworkModel,
    /// Per-access memory cost parameters.
    pub mem_cost: MemoryCostModel,
    /// Sweep used when measuring the surface.
    pub sweep: SweepConfig,
    /// Fraction of the smaller of (memory time, FP time) hidden under the
    /// larger when combining them into computation time (Section III-B:
    /// "with some overlap of memory and floating-point work").
    pub fp_mem_overlap: f64,
    /// Per-operation energy costs.
    pub power: PowerModel,
    surface: OnceLock<BandwidthSurface>,
}

impl Clone for MachineProfile {
    fn clone(&self) -> Self {
        let surface = OnceLock::new();
        if let Some(s) = self.surface.get() {
            let _ = surface.set(s.clone());
        }
        Self {
            name: self.name.clone(),
            hierarchy: self.hierarchy.clone(),
            clock_hz: self.clock_hz,
            fp: self.fp,
            net: self.net,
            mem_cost: self.mem_cost,
            sweep: self.sweep.clone(),
            fp_mem_overlap: self.fp_mem_overlap,
            power: self.power,
            surface,
        }
    }
}

impl MachineProfile {
    /// Creates a validated profile; the surface is measured on first use.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        hierarchy: HierarchyConfig,
        clock_hz: f64,
        fp: FpRates,
        net: NetworkModel,
        mem_cost: MemoryCostModel,
        sweep: SweepConfig,
        fp_mem_overlap: f64,
    ) -> Result<Self, MachineError> {
        hierarchy
            .validate()
            .map_err(MachineError::InvalidHierarchy)?;
        fp.validate().map_err(MachineError::InvalidFpRates)?;
        if clock_hz.is_nan() || clock_hz <= 0.0 {
            return Err(MachineError::InvalidClock(clock_hz));
        }
        if !(0.0..=1.0).contains(&fp_mem_overlap) {
            return Err(MachineError::InvalidOverlap(fp_mem_overlap));
        }
        Ok(Self {
            name: name.into(),
            hierarchy,
            clock_hz,
            fp,
            net,
            mem_cost,
            sweep,
            fp_mem_overlap,
            power: PowerModel::generic(),
            surface: OnceLock::new(),
        })
    }

    /// Replaces the energy model (builder style).
    pub fn with_power(mut self, power: PowerModel) -> Result<Self, MachineError> {
        power.validate().map_err(MachineError::InvalidPower)?;
        self.power = power;
        Ok(self)
    }

    /// Number of cache levels.
    pub fn depth(&self) -> usize {
        self.hierarchy.depth()
    }

    /// The MultiMAPS surface, measured on first call and cached.
    pub fn surface(&self) -> &BandwidthSurface {
        self.surface.get_or_init(|| {
            measure_surface(&self.hierarchy, self.clock_hz, &self.mem_cost, &self.sweep)
        })
    }

    /// Combines memory and FP time with the profile's overlap factor.
    pub fn combine_times(&self, memory_s: f64, fp_s: f64) -> f64 {
        let hi = memory_s.max(fp_s);
        let lo = memory_s.min(fp_s);
        hi + (1.0 - self.fp_mem_overlap) * lo
    }

    /// Serializable snapshot of this profile, including the measured
    /// MultiMAPS surface (measuring it first if needed) — the on-disk
    /// "machine profile" artifact the PMaC framework ships between the
    /// benchmarking and prediction steps.
    pub fn to_spec(&self) -> MachineProfileSpec {
        MachineProfileSpec {
            name: self.name.clone(),
            hierarchy: self.hierarchy.clone(),
            clock_hz: self.clock_hz,
            fp: self.fp,
            net: self.net,
            mem_cost: self.mem_cost,
            sweep: self.sweep.clone(),
            fp_mem_overlap: self.fp_mem_overlap,
            power: self.power,
            surface: self.surface().clone(),
        }
    }

    /// Rebuilds a profile from a snapshot; the embedded surface is adopted
    /// verbatim (no re-measurement).
    pub fn from_spec(spec: MachineProfileSpec) -> Result<Self, MachineError> {
        let profile = Self::new(
            spec.name,
            spec.hierarchy,
            spec.clock_hz,
            spec.fp,
            spec.net,
            spec.mem_cost,
            spec.sweep,
            spec.fp_mem_overlap,
        )?
        .with_power(spec.power)?;
        let _ = profile.surface.set(spec.surface);
        Ok(profile)
    }
}

/// The serializable form of a [`MachineProfile`]: configuration plus the
/// measured bandwidth surface. Machine profiles are collected once (on or
/// for a target machine) and shipped to wherever predictions run — this is
/// the file format for that hand-off.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineProfileSpec {
    /// Machine name.
    pub name: String,
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Floating-point throughputs.
    pub fp: crate::fp::FpRates,
    /// Network model.
    pub net: NetworkModel,
    /// Per-access memory cost parameters.
    pub mem_cost: MemoryCostModel,
    /// Sweep the surface was measured with.
    pub sweep: SweepConfig,
    /// Memory/FP overlap factor.
    pub fp_mem_overlap: f64,
    /// Energy model.
    pub power: crate::power::PowerModel,
    /// The measured MultiMAPS surface.
    pub surface: BandwidthSurface,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_cache::CacheLevelConfig;

    fn profile() -> MachineProfile {
        MachineProfile::new(
            "test",
            HierarchyConfig::new(
                vec![
                    CacheLevelConfig::lru("L1", 32 * 1024, 64, 8, 2.0),
                    CacheLevelConfig::lru("L2", 512 * 1024, 64, 8, 12.0),
                ],
                170.0,
            )
            .unwrap(),
            2.0e9,
            FpRates::generic(),
            NetworkModel::new(1.5e-6, 5e9),
            MemoryCostModel::default(),
            SweepConfig::coarse(),
            0.8,
        )
        .unwrap()
    }

    #[test]
    fn surface_is_lazy_and_cached() {
        let p = profile();
        let s1 = p.surface() as *const _;
        let s2 = p.surface() as *const _;
        assert_eq!(s1, s2, "second call returns the cached surface");
        assert!(!p.surface().points.is_empty());
    }

    #[test]
    fn clone_preserves_measured_surface() {
        let p = profile();
        let _ = p.surface();
        let q = p.clone();
        assert_eq!(q.surface(), p.surface());
    }

    #[test]
    fn combine_times_overlaps() {
        let p = profile();
        // overlap 0.8: 10 + 0.2*4 = 10.8
        assert!((p.combine_times(10.0, 4.0) - 10.8).abs() < 1e-12);
        assert!((p.combine_times(4.0, 10.0) - 10.8).abs() < 1e-12);
        assert_eq!(p.combine_times(0.0, 0.0), 0.0);
    }

    #[test]
    fn spec_roundtrip_preserves_surface_without_remeasuring() {
        let p = profile();
        let spec = p.to_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back_spec: MachineProfileSpec = serde_json::from_str(&json).unwrap();
        let q = MachineProfile::from_spec(back_spec).unwrap();
        assert_eq!(q.name, p.name);
        assert_eq!(q.hierarchy, p.hierarchy);
        // The surface was adopted, not re-measured: identical points.
        assert_eq!(q.surface().points.len(), p.surface().points.len());
        for (a, b) in q.surface().points.iter().zip(&p.surface().points) {
            assert_eq!(a.working_set, b.working_set);
            assert!((a.bandwidth_bps - b.bandwidth_bps).abs() / b.bandwidth_bps < 1e-12);
        }
    }

    #[test]
    fn with_power_replaces_the_energy_model() {
        use crate::power::PowerModel;
        let mut pm = PowerModel::generic();
        pm.static_watts = 7.5;
        let p = profile().with_power(pm).unwrap();
        assert_eq!(p.power.static_watts, 7.5);
    }

    #[test]
    fn bad_overlap_is_a_typed_error() {
        let p = profile();
        let err = MachineProfile::new(
            "bad",
            p.hierarchy.clone(),
            1e9,
            FpRates::generic(),
            p.net,
            MemoryCostModel::default(),
            SweepConfig::coarse(),
            1.5,
        )
        .unwrap_err();
        assert_eq!(err, MachineError::InvalidOverlap(1.5));
        assert!(err.to_string().contains("overlap"));
    }

    #[test]
    fn bad_clock_is_a_typed_error() {
        let p = profile();
        let err = MachineProfile::new(
            "bad",
            p.hierarchy.clone(),
            0.0,
            FpRates::generic(),
            p.net,
            MemoryCostModel::default(),
            SweepConfig::coarse(),
            0.5,
        )
        .unwrap_err();
        assert_eq!(err, MachineError::InvalidClock(0.0));
    }
}
