//! Machine presets used by the paper's experiments.
//!
//! Parameters are representative of the published microarchitectures, not
//! calibrated to specific silicon — the reproduction targets the *shape* of
//! the paper's results (who wins, what moves where), not absolute hardware
//! truth. Sources of the structural numbers: vendor documentation for the
//! Opteron (Barcelona-class, 2-level here as in the paper's Figure 1),
//! Istanbul Opterons for the Cray XT5 "Kraken" base system, and a
//! POWER7-flavored configuration for the Phase-I Blue Waters target of
//! Table I. Systems A and B are the paper's own hypotheticals: identical
//! except for a 12 KB vs 56 KB L1 (Table III).

use xtrace_cache::{CacheLevelConfig, HierarchyConfig};
use xtrace_spmd::NetworkModel;

use crate::fp::FpRates;
use crate::memcost::MemoryCostModel;
use crate::multimaps::SweepConfig;
use crate::profile::MachineProfile;

/// Two-cache-level AMD Opteron, the Figure 1 machine.
pub fn opteron() -> MachineProfile {
    MachineProfile::new(
        "opteron",
        HierarchyConfig::new(
            vec![
                CacheLevelConfig::lru("L1", 64 * 1024, 64, 2, 3.0),
                CacheLevelConfig::lru("L2", 1024 * 1024, 64, 16, 12.0),
            ],
            200.0,
        )
        .expect("static config"),
        2.2e9,
        FpRates::generic(),
        NetworkModel::new(2.0e-6, 2.0e9),
        MemoryCostModel::default(),
        SweepConfig::default(),
        0.8,
    )
    .expect("static preset")
}

/// Cray XT5 (Kraken-style) node: the *base* system all signatures were
/// collected on in the paper.
pub fn cray_xt5() -> MachineProfile {
    MachineProfile::new(
        "cray-xt5",
        HierarchyConfig::new(
            vec![
                CacheLevelConfig::lru("L1", 64 * 1024, 64, 2, 3.0),
                CacheLevelConfig::lru("L2", 512 * 1024, 64, 8, 14.0),
                CacheLevelConfig::lru("L3", 8 * 1024 * 1024, 64, 16, 45.0),
            ],
            220.0,
        )
        .expect("static config"),
        2.6e9,
        FpRates::generic(),
        NetworkModel::new(6.0e-6, 1.6e9),
        MemoryCostModel::default(),
        SweepConfig::default(),
        0.8,
    )
    .expect("static preset")
}

/// Phase-I Blue Waters-style (POWER7-flavored) target system of Table I.
pub fn bluewaters_phase1() -> MachineProfile {
    MachineProfile::new(
        "bluewaters-phase1",
        HierarchyConfig::new(
            vec![
                CacheLevelConfig::lru("L1", 32 * 1024, 128, 8, 2.0),
                CacheLevelConfig::lru("L2", 256 * 1024, 128, 8, 8.0),
                CacheLevelConfig::lru("L3", 4 * 1024 * 1024, 128, 8, 25.0),
            ],
            280.0,
        )
        .expect("static config"),
        3.8e9,
        FpRates {
            add_per_cycle: 2.0,
            mul_per_cycle: 2.0,
            div_per_cycle: 1.0 / 25.0,
            sqrt_per_cycle: 1.0 / 30.0,
            fma_per_cycle: 4.0,
        },
        NetworkModel::new(1.5e-6, 5.0e9),
        MemoryCostModel::default(),
        SweepConfig::default(),
        0.85,
    )
    .expect("static preset")
}

/// Hypothetical System A of Table III: 12 KB L1 (3-way × 64 sets), with the
/// shared L2/L3 used by both systems.
pub fn system_a() -> MachineProfile {
    table3_system("system-a", 12 * 1024, 3)
}

/// Hypothetical System B of Table III: 56 KB L1 (7-way × 128 sets),
/// otherwise identical to System A.
pub fn system_b() -> MachineProfile {
    table3_system("system-b", 56 * 1024, 7)
}

fn table3_system(name: &str, l1_bytes: u64, l1_assoc: u32) -> MachineProfile {
    MachineProfile::new(
        name,
        HierarchyConfig::new(
            vec![
                CacheLevelConfig::lru("L1", l1_bytes, 64, l1_assoc, 3.0),
                CacheLevelConfig::lru("L2", 512 * 1024, 64, 8, 14.0),
                CacheLevelConfig::lru("L3", 8 * 1024 * 1024, 64, 16, 45.0),
            ],
            220.0,
        )
        .expect("static config"),
        2.6e9,
        FpRates::generic(),
        NetworkModel::new(6.0e-6, 1.6e9),
        MemoryCostModel::default(),
        SweepConfig::default(),
        0.8,
    )
    .expect("static preset")
}

/// All presets, for exhaustive tests and the CLI's `--machine` flag.
pub fn all() -> Vec<MachineProfile> {
    vec![
        opteron(),
        cray_xt5(),
        bluewaters_phase1(),
        system_a(),
        system_b(),
    ]
}

/// Looks a preset up by name.
pub fn by_name(name: &str) -> Option<MachineProfile> {
    all().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for m in all() {
            m.hierarchy.validate().unwrap();
            m.fp.validate().unwrap();
            assert!(m.clock_hz > 1e9);
        }
    }

    #[test]
    fn opteron_has_two_levels() {
        assert_eq!(opteron().depth(), 2);
    }

    #[test]
    fn xt5_and_targets_have_three_levels() {
        assert_eq!(cray_xt5().depth(), 3);
        assert_eq!(bluewaters_phase1().depth(), 3);
    }

    #[test]
    fn table3_systems_differ_only_in_l1() {
        let a = system_a();
        let b = system_b();
        assert_eq!(a.hierarchy.levels[0].size_bytes, 12 * 1024);
        assert_eq!(b.hierarchy.levels[0].size_bytes, 56 * 1024);
        assert_eq!(a.hierarchy.levels[1], b.hierarchy.levels[1]);
        assert_eq!(a.hierarchy.levels[2], b.hierarchy.levels[2]);
    }

    #[test]
    fn lookup_by_name_works() {
        assert!(by_name("opteron").is_some());
        assert!(by_name("cray-xt5").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn l1_set_counts_are_powers_of_two() {
        for m in all() {
            for l in &m.hierarchy.levels {
                assert!(l.sets().is_power_of_two(), "{} {}", m.name, l.name);
            }
        }
    }
}
