//! Per-operation energy model.
//!
//! The paper's feature vectors are chosen to be "important for both
//! performance and energy" (Section I), and the PMaC line of work the
//! framework belongs to uses exactly these signatures to model power
//! (Laurenzano et al., Euro-Par'11; Tiwari et al., HPPAC'12). This module
//! provides the energy side: per-event costs — picojoules per FLOP, per
//! cache access at each level, per network byte — plus a static (leakage +
//! idle) power floor. An application's energy is then a convolution of the
//! same signature the runtime prediction uses, which is what makes
//! *extrapolated* energy-at-scale estimates possible.

use serde::{Deserialize, Serialize};
use xtrace_cache::MEMORY_LEVEL_CAP;

/// Energy cost model for one core plus its slice of the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static (leakage + idle + clock-tree) power per core, in watts.
    pub static_watts: f64,
    /// Dynamic energy per floating-point operation, in picojoules.
    pub pj_per_flop: f64,
    /// Dynamic energy per memory reference satisfied exactly at level `i`
    /// (`pj_per_access[depth]` = a main-memory access), in picojoules.
    pub pj_per_access: [f64; MEMORY_LEVEL_CAP],
    /// Network interface energy per byte sent, in picojoules.
    pub pj_per_net_byte: f64,
}

impl PowerModel {
    /// Representative 2010s-HPC-node values: ~1 nJ DRAM accesses, tens of
    /// pJ for caches, ~10 pJ FLOPs (Keckler et al.'s energy-per-op
    /// taxonomy), a few watts static per core.
    pub fn generic() -> Self {
        Self {
            static_watts: 4.0,
            pj_per_flop: 10.0,
            pj_per_access: [8.0, 25.0, 90.0, 1100.0],
            pj_per_net_byte: 250.0,
        }
    }

    /// Validates positivity and level monotonicity (outer levels cost more).
    pub fn validate(&self) -> Result<(), String> {
        if self.static_watts < 0.0 || !self.static_watts.is_finite() {
            return Err("static power must be non-negative".into());
        }
        for (name, v) in [
            ("pj_per_flop", self.pj_per_flop),
            ("pj_per_net_byte", self.pj_per_net_byte),
        ] {
            if v <= 0.0 || !v.is_finite() {
                return Err(format!("{name} must be positive"));
            }
        }
        for w in self.pj_per_access.windows(2) {
            if w[1] < w[0] {
                return Err("per-access energy must grow outward through the hierarchy".into());
            }
        }
        if self.pj_per_access[0] <= 0.0 {
            return Err("L1 access energy must be positive".into());
        }
        Ok(())
    }

    /// Dynamic energy (joules) for `mem_ops` references with the given
    /// cumulative hit rates on a `depth`-level machine: references are
    /// apportioned to exact levels by differencing the cumulative rates.
    pub fn memory_joules(&self, mem_ops: f64, hit_rates: &[f64], depth: usize) -> f64 {
        let mut joules = 0.0;
        let mut prev = 0.0;
        for lvl in 0..=depth.min(MEMORY_LEVEL_CAP - 1) {
            let cum = if lvl < depth {
                hit_rates.get(lvl).copied().unwrap_or(1.0).clamp(0.0, 1.0)
            } else {
                1.0
            };
            let frac = (cum - prev).max(0.0);
            joules += mem_ops * frac * self.pj_per_access[lvl] * 1e-12;
            prev = prev.max(cum);
        }
        joules
    }

    /// Dynamic energy (joules) for `flops` floating-point operations.
    pub fn fp_joules(&self, flops: f64) -> f64 {
        flops * self.pj_per_flop * 1e-12
    }

    /// Network energy (joules) for `bytes` sent.
    pub fn net_joules(&self, bytes: f64) -> f64 {
        bytes * self.pj_per_net_byte * 1e-12
    }

    /// Static energy (joules) over `seconds` of runtime.
    pub fn static_joules(&self, seconds: f64) -> f64 {
        self.static_watts * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_model_validates() {
        PowerModel::generic().validate().unwrap();
    }

    #[test]
    fn memory_energy_apportions_by_level() {
        let m = PowerModel {
            static_watts: 0.0,
            pj_per_flop: 1.0,
            pj_per_access: [1.0, 10.0, 100.0, 1000.0],
            pj_per_net_byte: 1.0,
        };
        // 100 refs, 70% L1, 90% cum L2, rest memory; depth 2.
        let j = m.memory_joules(100.0, &[0.7, 0.9], 2);
        // 70 * 1 + 20 * 10 + 10 * 100 = 1270 pJ.
        assert!((j - 1270e-12).abs() < 1e-22, "{j}");
    }

    #[test]
    fn perfect_l1_costs_only_l1() {
        let m = PowerModel::generic();
        let j = m.memory_joules(1e9, &[1.0, 1.0, 1.0], 3);
        assert!((j - 1e9 * 8.0e-12).abs() < 1e-9);
    }

    #[test]
    fn all_misses_cost_memory_energy() {
        let m = PowerModel::generic();
        let j = m.memory_joules(1e6, &[0.0, 0.0, 0.0], 3);
        assert!((j - 1e6 * 1100.0e-12).abs() < 1e-12);
    }

    #[test]
    fn worse_locality_costs_more_energy() {
        let m = PowerModel::generic();
        let good = m.memory_joules(1e8, &[0.95, 0.99, 1.0], 3);
        let bad = m.memory_joules(1e8, &[0.5, 0.6, 0.7], 3);
        assert!(bad > 5.0 * good);
    }

    #[test]
    fn fp_net_static_components() {
        let m = PowerModel::generic();
        assert!((m.fp_joules(1e12) - 10.0).abs() < 1e-9);
        assert!((m.net_joules(4e9) - 1.0).abs() < 1e-9);
        assert!((m.static_joules(100.0) - 400.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_monotone_levels() {
        let mut m = PowerModel::generic();
        m.pj_per_access = [100.0, 10.0, 90.0, 1000.0];
        assert!(m.validate().is_err());
    }

    #[test]
    fn clamps_malformed_hit_rates() {
        let m = PowerModel::generic();
        // Non-monotone cumulative input must not produce negative fractions.
        let j = m.memory_joules(100.0, &[0.9, 0.5, 1.0], 3);
        assert!(j > 0.0);
    }
}
