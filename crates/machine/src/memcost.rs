//! Per-access memory cost: the parametric "hardware" behind the hierarchy.
//!
//! The cache simulator decides *where* a reference hits; this model decides
//! what that costs. Two effects beyond raw per-level latency are modeled,
//! because they are what make the MultiMAPS surface an *approximation*
//! rather than a tautology:
//!
//! * **streaming prefetch** — when consecutive misses at a level walk
//!   adjacent lines (unit-stride sweeps), the hardware prefetcher hides most
//!   of the latency; random misses pay full price. MultiMAPS sweeps are
//!   largely streaming, so the surface is mildly optimistic for
//!   random-access application blocks — a real, documented error source of
//!   trace-driven frameworks;
//! * **store write-allocate cost** — stores pay a small surcharge over
//!   loads at the same level.

use serde::{Deserialize, Serialize};
use xtrace_cache::HierarchyConfig;

/// Streams a hardware prefetcher can track concurrently per cache level.
/// Real prefetchers follow 8–32 independent streams; 16 covers every kernel
/// in the proxy apps (a 3-D stencil interleaves ~7 plane streams).
pub const PREFETCH_STREAMS: usize = 16;

/// Prefetcher bookkeeping: recently missed lines per level, one slot per
/// trackable stream.
#[derive(Debug, Clone)]
pub struct PrefetchState {
    /// `0` marks an empty slot (line 0 is unreachable: region bases start
    /// at one page).
    streams: [[u64; PREFETCH_STREAMS]; xtrace_cache::MEMORY_LEVEL_CAP],
    /// Round-robin replacement cursor per level.
    cursor: [usize; xtrace_cache::MEMORY_LEVEL_CAP],
}

impl Default for PrefetchState {
    fn default() -> Self {
        Self {
            streams: [[0; PREFETCH_STREAMS]; xtrace_cache::MEMORY_LEVEL_CAP],
            cursor: [0; xtrace_cache::MEMORY_LEVEL_CAP],
        }
    }
}

impl PrefetchState {
    /// Forgets all stream history (e.g. between benchmark sweep points).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Returns true (and advances the matched stream) if `line` continues
    /// one of the tracked streams at `lvl`; otherwise records a new stream.
    #[inline]
    fn advance(&mut self, lvl: usize, line: u64) -> bool {
        let slots = &mut self.streams[lvl];
        for s in slots.iter_mut() {
            if *s != 0 && line == *s + 1 {
                *s = line;
                return true;
            }
        }
        let c = self.cursor[lvl];
        slots[c] = line;
        self.cursor[lvl] = (c + 1) % PREFETCH_STREAMS;
        false
    }
}

/// Converts cache-simulator outcomes into cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryCostModel {
    /// Fraction of the miss latency a detected stream still pays
    /// (0.25 = prefetcher hides 75%).
    pub prefetch_residual: f64,
    /// Multiplier on the level latency for stores (write-allocate +
    /// write-back traffic).
    pub store_penalty: f64,
}

impl Default for MemoryCostModel {
    fn default() -> Self {
        Self {
            prefetch_residual: 0.25,
            store_penalty: 1.15,
        }
    }
}

impl MemoryCostModel {
    /// Cycles for one reference that hit at `level` (per
    /// [`xtrace_cache::CacheHierarchy::access`] numbering) at address
    /// `addr`, updating the prefetch stream state.
    ///
    /// L1 hits (`level == 0`) are never prefetch-discounted — they are
    /// already minimal — and always advance nothing.
    pub fn cycles(
        &self,
        hierarchy: &HierarchyConfig,
        state: &mut PrefetchState,
        level: u8,
        addr: u64,
        is_store: bool,
    ) -> f64 {
        let lvl = usize::from(level);
        let base = hierarchy.latency_of(lvl);
        let mut cycles = base;
        if lvl > 0 {
            // Line size of the boundary being crossed: the innermost level
            // that missed (L1's line for any non-L1 access).
            let line_bytes = u64::from(hierarchy.levels[0].line_bytes);
            let line = addr / line_bytes;
            if state.advance(lvl, line) {
                cycles *= self.prefetch_residual;
            }
        }
        if is_store {
            cycles *= self.store_penalty;
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_cache::CacheLevelConfig;

    fn hierarchy() -> HierarchyConfig {
        HierarchyConfig::new(
            vec![
                CacheLevelConfig::lru("L1", 1 << 15, 64, 8, 2.0),
                CacheLevelConfig::lru("L2", 1 << 19, 64, 8, 12.0),
            ],
            180.0,
        )
        .unwrap()
    }

    #[test]
    fn l1_hits_cost_l1_latency() {
        let h = hierarchy();
        let m = MemoryCostModel::default();
        let mut s = PrefetchState::default();
        assert_eq!(m.cycles(&h, &mut s, 0, 0, false), 2.0);
    }

    #[test]
    fn first_miss_pays_full_latency() {
        let h = hierarchy();
        let m = MemoryCostModel::default();
        let mut s = PrefetchState::default();
        assert_eq!(m.cycles(&h, &mut s, 2, 0, false), 180.0);
    }

    #[test]
    fn sequential_misses_get_prefetched() {
        let h = hierarchy();
        let m = MemoryCostModel::default();
        let mut s = PrefetchState::default();
        // Addresses start one page up, like real region layouts (line 0 is
        // the tracker's empty marker).
        let base = 1 << 20;
        let full = m.cycles(&h, &mut s, 2, base, false);
        let streamed = m.cycles(&h, &mut s, 2, base + 64, false);
        assert_eq!(full, 180.0);
        assert!((streamed - 180.0 * 0.25).abs() < 1e-12);
        // A third adjacent line keeps streaming.
        let third = m.cycles(&h, &mut s, 2, base + 128, false);
        assert!((third - 45.0).abs() < 1e-12);
    }

    #[test]
    fn random_misses_break_the_stream() {
        let h = hierarchy();
        let m = MemoryCostModel::default();
        let mut s = PrefetchState::default();
        m.cycles(&h, &mut s, 2, 1 << 20, false);
        m.cycles(&h, &mut s, 2, (1 << 20) + 64, false); // streaming established
        let jump = m.cycles(&h, &mut s, 2, 1 << 24, false);
        assert_eq!(jump, 180.0, "non-adjacent miss pays full latency");
    }

    #[test]
    fn levels_track_streams_independently() {
        let h = hierarchy();
        let m = MemoryCostModel::default();
        let mut s = PrefetchState::default();
        m.cycles(&h, &mut s, 1, 64, false);
        // An adjacent-line *memory* miss is not part of the L2 stream.
        let mem = m.cycles(&h, &mut s, 2, 128, false);
        assert_eq!(mem, 180.0);
        // But the next adjacent L2 hit *is* part of the L2 stream.
        let l2 = m.cycles(&h, &mut s, 1, 128, false);
        assert!((l2 - 12.0 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn interleaved_streams_are_all_tracked() {
        // A 7-plane stencil: seven concurrent unit-stride miss streams must
        // each earn the prefetch discount after their first miss.
        let h = hierarchy();
        let m = MemoryCostModel::default();
        let mut s = PrefetchState::default();
        let planes: Vec<u64> = (0..7).map(|p| 1 << (14 + p)).collect();
        // First touch of each plane: full cost.
        for &base in &planes {
            assert_eq!(m.cycles(&h, &mut s, 2, base, false), 180.0);
        }
        // Subsequent steps: every plane streams.
        for step in 1..20u64 {
            for &base in &planes {
                let c = m.cycles(&h, &mut s, 2, base + step * 64, false);
                assert!(
                    (c - 45.0).abs() < 1e-12,
                    "plane {base:#x} step {step} cost {c}"
                );
            }
        }
    }

    #[test]
    fn stream_capacity_is_bounded() {
        // More concurrent streams than slots: at least some accesses pay
        // full cost (round-robin eviction), i.e. tracking is not unbounded.
        let h = hierarchy();
        let m = MemoryCostModel::default();
        let mut s = PrefetchState::default();
        let nstreams = (PREFETCH_STREAMS + 8) as u64;
        let mut full_cost = 0u32;
        for step in 0..10u64 {
            for p in 0..nstreams {
                let addr = (1 << 22) * (p + 1) + step * 64;
                if m.cycles(&h, &mut s, 2, addr, false) == 180.0 {
                    full_cost += 1;
                }
            }
        }
        assert!(
            full_cost as u64 > nstreams,
            "eviction must force re-detection beyond the first touch"
        );
    }

    #[test]
    fn stores_pay_the_penalty() {
        let h = hierarchy();
        let m = MemoryCostModel::default();
        let mut s = PrefetchState::default();
        let load = m.cycles(&h, &mut s.clone(), 0, 0, false);
        let store = m.cycles(&h, &mut s, 0, 0, true);
        assert!((store / load - 1.15).abs() < 1e-12);
    }

    #[test]
    fn reset_forgets_streams() {
        let h = hierarchy();
        let m = MemoryCostModel::default();
        let mut s = PrefetchState::default();
        m.cycles(&h, &mut s, 2, 1 << 20, false);
        s.reset();
        let after = m.cycles(&h, &mut s, 2, (1 << 20) + 64, false);
        assert_eq!(after, 180.0, "stream history cleared");
    }
}
