//! # xtrace-machine — machine profiles and the MultiMAPS surface
//!
//! A PMaC *machine profile* is "a description of the rates at which a
//! machine can perform certain fundamental operations through simple
//! benchmarks or projections" (Section III). Its centerpiece is the
//! MultiMAPS memory benchmark: a sweep over working-set sizes and strides
//! that yields "a series of memory bandwidth measurements", plotted in the
//! paper's Figure 1 as a surface over cache hit rates.
//!
//! This crate provides:
//!
//! * [`memcost::MemoryCostModel`] — the parametric memory system standing in
//!   for real hardware: per-level latencies plus a streaming prefetcher that
//!   hides part of the miss latency for sequential-line miss patterns. This
//!   model is what the ground-truth simulator charges per access.
//! * [`multimaps`] — the benchmark analog: it drives stride × working-set
//!   sweeps through the cache simulator *and* the memory cost model, exactly
//!   as MultiMAPS runs on real hardware, producing a
//!   [`multimaps::BandwidthSurface`] indexed by cumulative hit rates.
//! * [`fp::FpRates`] — arithmetic throughputs for the floating-point side of
//!   the computation model.
//! * [`profile::MachineProfile`] — the bundle (hierarchy + clock + FP rates
//!   + network + lazily measured surface) consumed by the convolution.
//! * [`presets`] — the machines the paper's experiments need: a two-level
//!   Opteron (Figure 1), the Cray XT5 base system, a Blue Waters Phase-I
//!   style target (Table I), and the hypothetical Systems A/B differing
//!   only in L1 size (Table III).
//!
//! Because the surface is *measured through the same cache simulator* the
//! tracer uses, but collapses behaviour onto hit-rate coordinates, the
//! convolution inherits the honest modeling error the real framework has:
//! two blocks with equal hit rates but different miss *patterns* (streaming
//! vs random) get the same bandwidth from the surface even though the
//! underlying machine model treats them differently.

#![warn(missing_docs)]

pub mod fp;
pub mod memcost;
pub mod multimaps;
pub mod power;
pub mod presets;
pub mod profile;

pub use fp::FpRates;
pub use memcost::{MemoryCostModel, PrefetchState, PREFETCH_STREAMS};
pub use multimaps::{measure_surface, BandwidthSurface, SurfacePoint, SweepConfig};
pub use power::PowerModel;
pub use profile::{MachineError, MachineProfile, MachineProfileSpec};
