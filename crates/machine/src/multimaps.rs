//! MultiMAPS: measured memory bandwidth as a function of cache hit rates.
//!
//! "MultiMAPS probes a given system to generate a series of memory bandwidth
//! measurements across a variety of stride and working set sizes, which …
//! is reflected by varying cache hit rates" (Section III-A, Figure 1). The
//! benchmark here is the same loop structure — strided and random sweeps
//! over working sets from cache-resident to memory-resident — run against
//! the *simulated* target: each access goes through the cache hierarchy
//! simulator and is charged by the [`MemoryCostModel`]. Every sweep point
//! records its observed cumulative hit rates and achieved bandwidth,
//! yielding the [`BandwidthSurface`] the convolution interpolates.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use xtrace_cache::{CacheHierarchy, HierarchyConfig, LevelCounts, MEMORY_LEVEL_CAP};

use crate::memcost::{MemoryCostModel, PrefetchState};

/// Sweep parameters for the benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Working-set sizes in bytes.
    pub working_sets: Vec<u64>,
    /// Strides in bytes (element-granular walks).
    pub strides: Vec<u64>,
    /// Also measure a random-access point per working set.
    pub include_random: bool,
    /// Timed references per sweep point (after an equal-length warmup).
    pub accesses_per_point: u64,
    /// Element size of the benchmark array.
    pub elem_bytes: u32,
}

impl Default for SweepConfig {
    /// 4 KiB – 128 MiB working sets in ×1.3 steps (dense enough that every
    /// partial-residency hit-rate regime has nearby measured points),
    /// strides from unit to page-ish, plus random, 64 Ki references per
    /// point.
    fn default() -> Self {
        let mut working_sets = Vec::new();
        let mut ws = 4.0 * 1024.0f64;
        while ws <= 128.0 * 1024.0 * 1024.0 {
            // Element-align the size.
            working_sets.push((ws / 8.0).round() as u64 * 8);
            ws *= 1.3;
        }
        Self {
            working_sets,
            strides: vec![8, 64, 256, 2048],
            include_random: true,
            accesses_per_point: 64 * 1024,
            elem_bytes: 8,
        }
    }
}

impl SweepConfig {
    /// A coarse, fast sweep for unit tests.
    pub fn coarse() -> Self {
        Self {
            working_sets: vec![8 * 1024, 64 * 1024, 1024 * 1024, 16 * 1024 * 1024],
            strides: vec![8, 512],
            include_random: true,
            accesses_per_point: 8 * 1024,
            elem_bytes: 8,
        }
    }
}

/// One measured sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurfacePoint {
    /// Working-set size in bytes.
    pub working_set: u64,
    /// Stride in bytes, or `None` for the random-access point.
    pub stride: Option<u64>,
    /// True when the point's misses form hardware-prefetchable streams
    /// (stride within one cache line). Large-stride and random points are
    /// both non-streaming: they pay full miss latency.
    pub streaming: bool,
    /// Observed cumulative hit rates, `hit_rates[i]` = fraction of
    /// references satisfied at or before cache level `i` (entries beyond
    /// the hierarchy depth are 1.0).
    pub hit_rates: [f64; MEMORY_LEVEL_CAP],
    /// Achieved bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

/// The measured surface: the memory half of a machine profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthSurface {
    /// Cache depth of the hierarchy the surface was measured on.
    pub depth: usize,
    /// All sweep points.
    pub points: Vec<SurfacePoint>,
}

impl BandwidthSurface {
    /// Interpolates the bandwidth for a reference mix with the given
    /// cumulative hit rates (`rates[i]` for cache level `i`; shorter slices
    /// are padded with 1.0).
    ///
    /// Inverse-distance weighting over the 4 nearest sweep points in
    /// hit-rate space — the "appropriate location on the MultiMAPS curve"
    /// lookup of Section III-B.
    pub fn lookup(&self, rates: &[f64]) -> f64 {
        assert!(!self.points.is_empty(), "empty surface");
        let mut coord = [1.0f64; MEMORY_LEVEL_CAP];
        for (i, c) in coord.iter_mut().enumerate().take(self.depth) {
            *c = rates.get(i).copied().unwrap_or(1.0).clamp(0.0, 1.0);
        }
        // Distances to every point.
        let mut best: [(f64, f64); 4] = [(f64::INFINITY, 0.0); 4]; // (dist2, bw)
        for p in &self.points {
            let mut d2 = 0.0;
            for (c, h) in coord.iter().zip(&p.hit_rates).take(self.depth) {
                let d = c - h;
                d2 += d * d;
            }
            if d2 < best[3].0 {
                best[3] = (d2, p.bandwidth_bps);
                best.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
            }
        }
        const EPS: f64 = 1e-9;
        let mut wsum = 0.0;
        let mut acc = 0.0;
        for &(d2, bw) in best.iter().filter(|(d2, _)| d2.is_finite()) {
            let w = 1.0 / (d2 + EPS);
            wsum += w;
            acc += w * bw;
        }
        acc / wsum
    }

    /// Interpolates like [`Self::lookup`], but restricted to sweep points
    /// of the given reference class — streaming points (unit/short-stride,
    /// prefetch-friendly) for strided/stencil references, non-streaming
    /// points (random or line-skipping strides, full miss latency) for
    /// irregular ones.
    ///
    /// This is PMaC's "type of memory reference": "Where a block falls on
    /// the MultiMAPS curve — its working set and access pattern as
    /// expressed through its cache hit rate — is encompassed in its type"
    /// (Section III-B). Two references with equal hit rates but different
    /// patterns achieve very different bandwidths (prefetchers hide
    /// streaming-miss latency only), and the class keeps them apart.
    pub fn lookup_class(&self, rates: &[f64], streaming: bool) -> f64 {
        let any_of_class = self.points.iter().any(|p| p.streaming == streaming);
        if !any_of_class {
            return self.lookup(rates);
        }
        let mut coord = [1.0f64; MEMORY_LEVEL_CAP];
        for (i, c) in coord.iter_mut().enumerate().take(self.depth) {
            *c = rates.get(i).copied().unwrap_or(1.0).clamp(0.0, 1.0);
        }
        let mut best: [(f64, f64); 4] = [(f64::INFINITY, 0.0); 4];
        for p in self.points.iter().filter(|p| p.streaming == streaming) {
            let mut d2 = 0.0;
            for (c, h) in coord.iter().zip(&p.hit_rates).take(self.depth) {
                let d = c - h;
                d2 += d * d;
            }
            if d2 < best[3].0 {
                best[3] = (d2, p.bandwidth_bps);
                best.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
            }
        }
        const EPS: f64 = 1e-9;
        let mut wsum = 0.0;
        let mut acc = 0.0;
        for &(d2, bw) in best.iter().filter(|(d2, _)| d2.is_finite()) {
            let w = 1.0 / (d2 + EPS);
            wsum += w;
            acc += w * bw;
        }
        acc / wsum
    }

    /// The point whose hit rates are nearest to `rates` (for reporting).
    pub fn nearest(&self, rates: &[f64]) -> &SurfacePoint {
        self.points
            .iter()
            .min_by(|a, b| {
                let d = |p: &SurfacePoint| -> f64 {
                    (0..self.depth)
                        .map(|i| {
                            let r = rates.get(i).copied().unwrap_or(1.0);
                            (r - p.hit_rates[i]).powi(2)
                        })
                        .sum()
                };
                d(a).partial_cmp(&d(b)).expect("finite")
            })
            .expect("nonempty surface")
    }

    /// Minimum and maximum measured bandwidth (sanity reporting).
    pub fn bandwidth_range(&self) -> (f64, f64) {
        let min = self
            .points
            .iter()
            .map(|p| p.bandwidth_bps)
            .fold(f64::INFINITY, f64::min);
        let max = self
            .points
            .iter()
            .map(|p| p.bandwidth_bps)
            .fold(0.0, f64::max);
        (min, max)
    }
}

/// Tiny inline generator for the benchmark's random points (independent of
/// `xtrace-ir` to keep the crate graph a DAG).
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one sweep point and returns (hit counts, total cycles).
fn run_point(
    hierarchy: &HierarchyConfig,
    cost: &MemoryCostModel,
    working_set: u64,
    stride: Option<u64>,
    cfg: &SweepConfig,
) -> (LevelCounts, f64) {
    let elem = u64::from(cfg.elem_bytes);
    let elems = (working_set / elem).max(1);
    let mut cache = CacheHierarchy::try_new(hierarchy.clone())
        .expect("machine profile carries a valid hierarchy");
    let mut state = PrefetchState::default();
    let addr_of = |k: u64| -> u64 {
        let idx = match stride {
            Some(s) => {
                let stride_elems = (s / elem).max(1);
                (k.wrapping_mul(stride_elems)) % elems
            }
            None => mix64(k) % elems,
        };
        idx * elem
    };
    // Warmup pass: populate the cache, charge nothing.
    for k in 0..cfg.accesses_per_point {
        cache.access(addr_of(k), cfg.elem_bytes);
    }
    state.reset();
    // Timed pass continues the walk.
    let mut counts = LevelCounts::default();
    let mut cycles = 0.0;
    for k in cfg.accesses_per_point..2 * cfg.accesses_per_point {
        let addr = addr_of(k);
        let lvl = cache.access(addr, cfg.elem_bytes);
        counts.record(lvl);
        cycles += cost.cycles(hierarchy, &mut state, lvl, addr, false);
    }
    (counts, cycles)
}

/// Measures the full surface for a hierarchy clocked at `clock_hz`.
///
/// Sweep points are independent, so they run in parallel (rayon).
pub fn measure_surface(
    hierarchy: &HierarchyConfig,
    clock_hz: f64,
    cost: &MemoryCostModel,
    cfg: &SweepConfig,
) -> BandwidthSurface {
    assert!(clock_hz > 0.0, "clock must be positive");
    hierarchy.validate().expect("invalid hierarchy");
    let mut jobs: Vec<(u64, Option<u64>)> = Vec::new();
    for &ws in &cfg.working_sets {
        for &s in &cfg.strides {
            jobs.push((ws, Some(s)));
        }
        if cfg.include_random {
            jobs.push((ws, None));
        }
    }
    let depth = hierarchy.depth();
    let points: Vec<SurfacePoint> = jobs
        .par_iter()
        .map(|&(ws, stride)| {
            let (counts, cycles) = run_point(hierarchy, cost, ws, stride, cfg);
            let mut hit_rates = [1.0f64; MEMORY_LEVEL_CAP];
            for (i, rate) in hit_rates.iter_mut().enumerate().take(depth) {
                *rate = counts.hit_rate_cum(i);
            }
            let seconds = cycles / clock_hz;
            let bytes = counts.accesses * u64::from(cfg.elem_bytes);
            SurfacePoint {
                working_set: ws,
                stride,
                streaming: stride.is_some_and(|s| s <= u64::from(hierarchy.levels[0].line_bytes)),
                hit_rates,
                bandwidth_bps: bytes as f64 / seconds.max(1e-30),
            }
        })
        .collect();
    BandwidthSurface { depth, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_cache::CacheLevelConfig;

    fn hierarchy() -> HierarchyConfig {
        HierarchyConfig::new(
            vec![
                CacheLevelConfig::lru("L1", 64 * 1024, 64, 2, 3.0),
                CacheLevelConfig::lru("L2", 1024 * 1024, 64, 16, 12.0),
            ],
            150.0,
        )
        .unwrap()
    }

    fn surface() -> BandwidthSurface {
        measure_surface(
            &hierarchy(),
            2.2e9,
            &MemoryCostModel::default(),
            &SweepConfig::coarse(),
        )
    }

    #[test]
    fn cache_resident_points_have_high_hit_rates() {
        let s = surface();
        let p = s
            .points
            .iter()
            .find(|p| p.working_set == 8 * 1024 && p.stride == Some(8))
            .unwrap();
        assert!(p.hit_rates[0] > 0.99, "8 KiB unit stride lives in L1");
    }

    #[test]
    fn memory_resident_points_miss() {
        let s = surface();
        let p = s
            .points
            .iter()
            .find(|p| p.working_set == 16 * 1024 * 1024 && p.stride.is_none())
            .unwrap();
        assert!(p.hit_rates[1] < 0.3, "16 MiB random mostly misses L2");
    }

    #[test]
    fn bandwidth_decreases_as_hit_rates_fall() {
        let s = surface();
        let resident = s
            .points
            .iter()
            .find(|p| p.working_set == 8 * 1024 && p.stride == Some(8))
            .unwrap();
        let thrashing = s
            .points
            .iter()
            .find(|p| p.working_set == 16 * 1024 * 1024 && p.stride.is_none())
            .unwrap();
        assert!(
            resident.bandwidth_bps > 5.0 * thrashing.bandwidth_bps,
            "resident {} vs thrashing {}",
            resident.bandwidth_bps,
            thrashing.bandwidth_bps
        );
    }

    #[test]
    fn streaming_beats_random_at_same_footprint() {
        let s = surface();
        let ws = 16 * 1024 * 1024;
        let unit = s
            .points
            .iter()
            .find(|p| p.working_set == ws && p.stride == Some(8))
            .unwrap();
        let rand = s
            .points
            .iter()
            .find(|p| p.working_set == ws && p.stride.is_none())
            .unwrap();
        assert!(unit.bandwidth_bps > rand.bandwidth_bps);
    }

    #[test]
    fn lookup_interpolates_between_extremes() {
        let s = surface();
        let (min, max) = s.bandwidth_range();
        let hi = s.lookup(&[1.0, 1.0]);
        let lo = s.lookup(&[0.0, 0.0]);
        assert!(hi > lo);
        assert!(hi <= max * 1.0001 && lo >= min * 0.9999);
    }

    #[test]
    fn lookup_of_a_measured_point_recovers_its_bandwidth() {
        let s = surface();
        // Use an extreme point that is geometrically isolated.
        let p = s
            .points
            .iter()
            .max_by(|a, b| a.hit_rates[0].partial_cmp(&b.hit_rates[0]).unwrap())
            .unwrap();
        let got = s.lookup(&p.hit_rates[..s.depth]);
        let rel = (got - p.bandwidth_bps).abs() / p.bandwidth_bps;
        assert!(rel < 0.5, "IDW estimate within 50% of the exact point");
    }

    #[test]
    fn class_lookup_separates_streaming_from_random() {
        // Needs the dense default sweep so both classes have measured
        // points near the probe.
        let s = measure_surface(
            &hierarchy(),
            2.2e9,
            &MemoryCostModel::default(),
            &SweepConfig::default(),
        );
        // The unit-stride spatial floor: both classes have points with
        // these rates, but only streaming misses are prefetched.
        let probe = [0.875, 1.0];
        let streaming = s.lookup_class(&probe, true);
        let irregular = s.lookup_class(&probe, false);
        assert!(
            streaming > 1.15 * irregular,
            "streaming {streaming} must beat irregular {irregular}"
        );
    }

    #[test]
    fn streaming_classification_follows_line_size() {
        let s = surface();
        for p in &s.points {
            match p.stride {
                Some(st) if st <= 64 => assert!(p.streaming),
                _ => assert!(!p.streaming, "stride {:?}", p.stride),
            }
        }
    }

    #[test]
    fn class_lookup_falls_back_when_class_missing() {
        let mut s = surface();
        s.points.retain(|p| p.streaming);
        let a = s.lookup_class(&[0.5, 0.5], false);
        let b = s.lookup(&[0.5, 0.5]);
        assert_eq!(a, b, "no irregular points -> full-surface fallback");
    }

    #[test]
    fn nearest_returns_closest_point() {
        let s = surface();
        let p = s.nearest(&[1.0, 1.0]);
        assert!(p.hit_rates[0] > 0.9);
    }

    #[test]
    fn surfaces_are_deterministic() {
        let a = surface();
        let b = surface();
        assert_eq!(a, b);
    }

    #[test]
    fn surface_serializes() {
        let s = surface();
        let json = serde_json::to_string(&s).unwrap();
        let back: BandwidthSurface = serde_json::from_str(&json).unwrap();
        // Floats may shift by an ulp through JSON; a second serialization
        // of the deserialized value must be a fixed point.
        assert_eq!(
            serde_json::to_string(&serde_json::from_str::<BandwidthSurface>(&json).unwrap())
                .unwrap(),
            serde_json::to_string(&back).unwrap()
        );
        assert_eq!(back.depth, s.depth);
        assert_eq!(back.points.len(), s.points.len());
        for (a, b) in back.points.iter().zip(&s.points) {
            assert!((a.bandwidth_bps - b.bandwidth_bps).abs() / b.bandwidth_bps < 1e-12);
        }
    }
}
