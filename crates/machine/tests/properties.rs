//! Property tests for the machine crate: surface lookups must behave like
//! interpolations (bounded, deterministic), and the cost model like a
//! latency (positive, monotone in level).

use proptest::prelude::*;
use xtrace_cache::{CacheLevelConfig, HierarchyConfig};
use xtrace_machine::{measure_surface, MemoryCostModel, PowerModel, PrefetchState, SweepConfig};

fn hierarchy() -> HierarchyConfig {
    HierarchyConfig::new(
        vec![
            CacheLevelConfig::lru("L1", 32 * 1024, 64, 8, 2.0),
            CacheLevelConfig::lru("L2", 512 * 1024, 64, 8, 12.0),
        ],
        180.0,
    )
    .unwrap()
}

proptest! {
    /// Surface lookups stay within the measured bandwidth range for any
    /// probe coordinates, including out-of-range inputs (clamped).
    #[test]
    fn lookups_are_bounded_by_measurements(
        r0 in -0.5f64..1.5,
        r1 in -0.5f64..1.5,
        streaming in any::<bool>(),
    ) {
        let s = measure_surface(
            &hierarchy(),
            2.0e9,
            &MemoryCostModel::default(),
            &SweepConfig::coarse(),
        );
        let (min, max) = s.bandwidth_range();
        for bw in [s.lookup(&[r0, r1]), s.lookup_class(&[r0, r1], streaming)] {
            prop_assert!(bw >= min * (1.0 - 1e-9), "bw {bw} below min {min}");
            prop_assert!(bw <= max * (1.0 + 1e-9), "bw {bw} above max {max}");
            prop_assert!(bw.is_finite());
        }
    }

    /// The per-access cost model: positive, bounded by the slowest level,
    /// and monotone in the hit level for non-streaming accesses.
    #[test]
    fn access_costs_are_sane(
        addr in 4096u64..(1 << 30),
        is_store in any::<bool>(),
    ) {
        let h = hierarchy();
        let m = MemoryCostModel::default();
        let mut prev = 0.0;
        for lvl in 0..=2u8 {
            // Fresh state per level: no stream history, full cost.
            let mut s = PrefetchState::default();
            let c = m.cycles(&h, &mut s, lvl, addr, is_store);
            prop_assert!(c > 0.0);
            prop_assert!(c <= 180.0 * m.store_penalty * (1.0 + 1e-12));
            prop_assert!(c >= prev, "level {lvl} cheaper than inner level");
            prev = c;
        }
    }

    /// Energy apportionment conserves references: total joules equal the
    /// sum over levels of (fraction x per-level cost), for any monotone
    /// cumulative rates.
    #[test]
    fn memory_energy_is_a_convex_combination(
        mem_ops in 1.0f64..1e12,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let p = PowerModel::generic();
        let j = p.memory_joules(mem_ops, &[lo, hi], 2);
        let min_j = mem_ops * p.pj_per_access[0] * 1e-12;
        let max_j = mem_ops * p.pj_per_access[2] * 1e-12;
        prop_assert!(j >= min_j * (1.0 - 1e-9), "{j} < {min_j}");
        prop_assert!(j <= max_j * (1.0 + 1e-9), "{j} > {max_j}");
    }

    /// Better locality never costs more energy.
    #[test]
    fn energy_is_monotone_in_hit_rates(
        mem_ops in 1.0f64..1e12,
        base in 0.0f64..0.9,
        bump in 0.0f64..0.1,
    ) {
        let p = PowerModel::generic();
        let worse = p.memory_joules(mem_ops, &[base, base], 2);
        let better = p.memory_joules(mem_ops, &[base + bump, base + bump], 2);
        prop_assert!(better <= worse * (1.0 + 1e-12));
    }
}
