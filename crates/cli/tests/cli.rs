//! End-to-end tests of the `xtrace` binary: every subcommand, both trace
//! formats, and the error paths.

use std::path::PathBuf;
use std::process::{Command, Output};

fn xtrace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xtrace"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("xtrace-cli-tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = xtrace(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = xtrace(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("usage"));
}

#[test]
fn help_succeeds() {
    let out = xtrace(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("extrapolate"));
}

#[test]
fn machines_lists_all_presets() {
    let out = xtrace(&["machines"]);
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    for name in [
        "opteron",
        "cray-xt5",
        "bluewaters-phase1",
        "system-a",
        "system-b",
    ] {
        assert!(s.contains(name), "missing {name}");
    }
}

#[test]
fn apps_lists_proxies() {
    let out = xtrace(&["apps"]);
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("specfem3d") && s.contains("uh3d") && s.contains("stencil3d"));
}

#[test]
fn full_pipeline_through_files_works() {
    let dir = tmpdir("pipeline");
    let mut paths = Vec::new();
    // Mixed formats: two JSON, one binary.
    for (p, name) in [(4u32, "t4.json"), (8, "t8.json"), (16, "t16.bin")] {
        let path = dir.join(name);
        let out = xtrace(&[
            "trace",
            "--app",
            "stencil3d",
            "--ranks",
            &p.to_string(),
            "--machine",
            "opteron",
            "--out",
            path.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "trace at {p}: {:?}", out);
        paths.push(path);
    }

    let out_path = dir.join("t64.json");
    let out = xtrace(&[
        "extrapolate",
        "--target",
        "64",
        "--out",
        out_path.to_str().unwrap(),
        paths[0].to_str().unwrap(),
        paths[1].to_str().unwrap(),
        paths[2].to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{:?}", out);

    let out = xtrace(&[
        "predict",
        "--trace",
        out_path.to_str().unwrap(),
        "--app",
        "stencil3d",
        "--ranks",
        "64",
        "--machine",
        "opteron",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("total"));
    assert!(s.contains("stencil3d-proxy"));
}

#[test]
fn trace_without_out_prints_json() {
    let out = xtrace(&[
        "trace",
        "--app",
        "stencil3d",
        "--ranks",
        "2",
        "--machine",
        "opteron",
    ]);
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    let trace: serde_json::Value = serde_json::from_str(&s).expect("stdout is a JSON trace");
    assert_eq!(trace["app"], "stencil3d-proxy");
    assert_eq!(trace["nranks"], 2);
}

#[test]
fn extrapolate_rejects_too_few_traces() {
    let dir = tmpdir("toofew");
    let path = dir.join("one.json");
    assert!(xtrace(&[
        "trace",
        "--app",
        "stencil3d",
        "--ranks",
        "2",
        "--machine",
        "opteron",
        "--out",
        path.to_str().unwrap(),
    ])
    .status
    .success());
    let out = xtrace(&["extrapolate", "--target", "64", path.to_str().unwrap()]);
    assert!(!out.status.success());
}

#[test]
fn unknown_machine_and_app_are_rejected_helpfully() {
    let out = xtrace(&[
        "trace",
        "--app",
        "stencil3d",
        "--ranks",
        "2",
        "--machine",
        "cray-xt9",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown machine"));
    assert!(err.contains("cray-xt5"), "suggests valid names");

    let out = xtrace(&[
        "trace",
        "--app",
        "lammps",
        "--ranks",
        "2",
        "--machine",
        "opteron",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown application"));
}

#[test]
fn missing_flag_value_is_an_error() {
    let out = xtrace(&["trace", "--app"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));
}

#[test]
fn diff_compares_two_traces() {
    let dir = tmpdir("diff");
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    for (p, path) in [(4u32, &a), (8, &b)] {
        assert!(xtrace(&[
            "trace",
            "--app",
            "stencil3d",
            "--ranks",
            &p.to_string(),
            "--machine",
            "opteron",
            "--out",
            path.to_str().unwrap(),
        ])
        .status
        .success());
    }
    let out = xtrace(&[
        "diff",
        "--a",
        a.to_str().unwrap(),
        "--b",
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("elements compared"));
    assert!(s.contains("worst elements"), "4-vs-8-core traces differ");

    // Self-diff: zero error, no worst list.
    let out = xtrace(&[
        "diff",
        "--a",
        a.to_str().unwrap(),
        "--b",
        a.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("max error (all):       0.00%"), "{s}");
}

#[test]
fn machine_export_roundtrips_through_trace() {
    let dir = tmpdir("machine");
    let profile = dir.join("opteron.json");
    let out = xtrace(&[
        "machine-export",
        "--machine",
        "opteron",
        "--out",
        profile.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("surface points"));

    // The exported file works anywhere a machine name does.
    let trace = dir.join("t.json");
    let out = xtrace(&[
        "trace",
        "--app",
        "stencil3d",
        "--ranks",
        "4",
        "--machine",
        profile.to_str().unwrap(),
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let t: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    // On-disk JSON traces use the versioned envelope.
    assert_eq!(t["format"], "xtrace-task-trace");
    assert_eq!(t["trace"]["machine"], "opteron");
}

#[test]
fn inspect_renders_a_program_listing() {
    let out = xtrace(&["inspect", "--app", "uh3d", "--ranks", "8", "--rank", "3"]);
    assert!(out.status.success(), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("rank 3 of 8"));
    assert!(s.contains("particle-push"));
    assert!(s.contains("events:"));

    let out = xtrace(&["inspect", "--app", "uh3d", "--ranks", "4", "--rank", "9"]);
    assert!(!out.status.success(), "out-of-range rank must fail");
}

#[test]
fn extrapolate_report_prints_fit_quality() {
    let dir = tmpdir("report");
    let mut paths = Vec::new();
    for p in [2u32, 4, 8] {
        let path = dir.join(format!("t{p}.json"));
        assert!(xtrace(&[
            "trace",
            "--app",
            "stencil3d",
            "--ranks",
            &p.to_string(),
            "--machine",
            "opteron",
            "--out",
            path.to_str().unwrap(),
        ])
        .status
        .success());
        paths.push(path);
    }
    let out = xtrace(&[
        "extrapolate",
        "--target",
        "32",
        "--report",
        "true",
        "--out",
        dir.join("x.json").to_str().unwrap(),
        paths[0].to_str().unwrap(),
        paths[1].to_str().unwrap(),
        paths[2].to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("fit report"), "{err}");
    assert!(err.contains("chosen forms"));
}

#[test]
fn usage_errors_exit_with_code_2() {
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["trace", "--app"][..],
        &[
            "trace",
            "--app",
            "lammps",
            "--ranks",
            "2",
            "--machine",
            "opteron",
        ][..],
        &[
            "trace",
            "--app",
            "stencil3d",
            "--ranks",
            "2",
            "--machine",
            "cray-xt9",
        ][..],
        &[
            "pipeline",
            "--app",
            "stencil3d",
            "--training",
            "2,4",
            "--target",
            "8",
            "--machine",
            "opteron",
            "--validate",
            "maybe",
        ][..],
    ] {
        let out = xtrace(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}: {out:?}");
    }
}

#[test]
fn io_errors_exit_with_code_3() {
    // Unreadable input trace.
    let out = xtrace(&[
        "predict",
        "--trace",
        "/nonexistent/trace.json",
        "--app",
        "stencil3d",
        "--ranks",
        "4",
        "--machine",
        "opteron",
    ]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");

    // Unwritable output path.
    let out = xtrace(&[
        "trace",
        "--app",
        "stencil3d",
        "--ranks",
        "2",
        "--machine",
        "opteron",
        "--out",
        "/nonexistent-dir/t.json",
    ]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("/nonexistent-dir/t.json"),
        "names the path: {err}"
    );
}

#[test]
fn model_errors_exit_with_code_4() {
    // Extrapolation with a duplicated core count is a model-layer error.
    let dir = tmpdir("exit4");
    let path = dir.join("t.json");
    assert!(xtrace(&[
        "trace",
        "--app",
        "stencil3d",
        "--ranks",
        "4",
        "--machine",
        "opteron",
        "--out",
        path.to_str().unwrap(),
    ])
    .status
    .success());
    let out = xtrace(&[
        "extrapolate",
        "--target",
        "64",
        path.to_str().unwrap(),
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("extrapolation"));
}

#[test]
fn pipeline_store_resumes_on_second_run() {
    let dir = tmpdir("store");
    let store = dir.join("artifacts");
    let args = [
        "pipeline",
        "--app",
        "stencil3d",
        "--training",
        "2,4,8",
        "--target",
        "32",
        "--machine",
        "opteron",
        "--validate",
        "false",
        "--store",
        store.to_str().unwrap(),
    ];
    let cold = xtrace(&args);
    assert!(cold.status.success(), "{cold:?}");
    assert!(store.join("store.json").exists(), "manifest written");

    let warm = xtrace(&args);
    assert!(warm.status.success(), "{warm:?}");
    let err = String::from_utf8_lossy(&warm.stderr);
    assert!(err.contains("reusing"), "resume reuses artifacts: {err}");
    assert!(err.contains("5 artifact(s) reused"), "{err}");
    // Identical result either way.
    let stdout = |o: &Output| String::from_utf8_lossy(&o.stdout).to_string();
    assert_eq!(stdout(&cold), stdout(&warm));
}

#[test]
fn pipeline_ranks_per_count_collects_worker_artifacts() {
    let dir = tmpdir("wide");
    let store = dir.join("artifacts");
    let args = [
        "pipeline",
        "--app",
        "stencil3d",
        "--training",
        "2,4,8",
        "--target",
        "32",
        "--machine",
        "opteron",
        "--validate",
        "false",
        "--tracer",
        "fast",
        "--ranks-per-count",
        "2",
        "--store",
        store.to_str().unwrap(),
    ];
    let cold = xtrace(&args);
    assert!(cold.status.success(), "{cold:?}");
    let warm = xtrace(&args);
    assert!(warm.status.success(), "{warm:?}");
    let err = String::from_utf8_lossy(&warm.stderr);
    // 5 longest-rank artifacts plus at least one worker trace per count
    // that has a distinct worker to sample.
    assert!(
        !err.contains("5 artifact(s) reused"),
        "worker traces add store entries: {err}"
    );
    assert!(err.contains("artifact(s) reused"), "{err}");

    let bad = xtrace(&[
        "pipeline",
        "--app",
        "stencil3d",
        "--training",
        "2,4,8",
        "--target",
        "32",
        "--machine",
        "opteron",
        "--ranks-per-count",
        "0",
    ]);
    assert_eq!(bad.status.code(), Some(2), "{bad:?}");
    let msg = String::from_utf8_lossy(&bad.stderr);
    assert!(msg.contains("ranks-per-count"), "{msg}");
}

#[test]
fn pipeline_out_writes_prediction_json() {
    let dir = tmpdir("predjson");
    let out_path = dir.join("prediction.json");
    let out = xtrace(&[
        "pipeline",
        "--app",
        "stencil3d",
        "--training",
        "2,4,8",
        "--target",
        "32",
        "--machine",
        "opteron",
        "--validate",
        "false",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let body = std::fs::read_to_string(&out_path).unwrap();
    let pred: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(pred["total_seconds"].as_f64().unwrap() > 0.0);
    assert!(body.contains("per_block"));
}

#[test]
fn pipeline_golden_prediction_is_thread_invariant() {
    // Satellite (c): the tiny SPECFEM proxy's prediction JSON must be
    // byte-identical at any --threads and match the committed golden.
    let dir = tmpdir("golden");
    let run = |threads: &str, name: &str| {
        let out_path = dir.join(name);
        let out = xtrace(&[
            "pipeline",
            "--app",
            "specfem3d",
            "--scale",
            "tiny",
            "--training",
            "6,24,96",
            "--target",
            "384",
            "--machine",
            "cray-xt5",
            "--validate",
            "false",
            "--tracer",
            "fast",
            "--threads",
            threads,
            "--out",
            out_path.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{out:?}");
        std::fs::read_to_string(&out_path).unwrap()
    };
    let one = run("1", "t1.json");
    let two = run("2", "t2.json");
    assert_eq!(one, two, "prediction depends on --threads");

    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/specfem_tiny_prediction.json");
    let golden = std::fs::read_to_string(&golden_path).unwrap();
    assert_eq!(
        one.trim_end(),
        golden.trim_end(),
        "CLI prediction drifted from {}; re-bless with UPDATE_GOLDEN=1 if intentional",
        golden_path.display()
    );
}

#[test]
fn report_subcommand_renders_run_report() {
    let out = xtrace(&[
        "report",
        "--app",
        "stencil3d",
        "--training",
        "2,4,8",
        "--target",
        "32",
        "--machine",
        "opteron",
        "--validate",
        "false",
        "--top",
        "3",
    ]);
    assert!(out.status.success(), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("xtrace run report"), "{s}");
    assert!(s.contains("stage timings:"), "{s}");
    assert!(s.contains("canonical-form wins"), "{s}");
    assert!(s.contains("worst-fit elements"), "{s}");
    assert!(s.contains("rank-class compute/comm split"), "{s}");
}

#[test]
fn obs_outputs_create_missing_parent_dirs() {
    let dir = tmpdir("obsout");
    // The nested directory must not exist yet: creating it is the point.
    let nested = dir.join("deeply/nested");
    let _ = std::fs::remove_dir_all(dir.join("deeply"));
    let metrics = nested.join("metrics.json");
    let trace = nested.join("trace.json");
    let diag = nested.join("diagnostics.json");
    let out = xtrace(&[
        "pipeline",
        "--app",
        "stencil3d",
        "--training",
        "2,4,8",
        "--target",
        "32",
        "--machine",
        "opteron",
        "--validate",
        "false",
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
        "--diagnostics-out",
        diag.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");

    let metrics: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert!(metrics["counters"].0.as_object().is_some(), "{metrics:?}");

    // The Chrome trace carries the keys the viewers require.
    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    let events = trace["traceEvents"]
        .0
        .as_array()
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        for key in ["name", "ph", "ts", "dur"] {
            assert!(ev.get(key).is_some(), "event missing {key}: {ev:?}");
        }
    }

    let diag: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&diag).unwrap()).unwrap();
    assert!(diag["form_wins"].0.as_object().is_some(), "{diag:?}");
    assert!(!diag["elements"].0.as_array().unwrap().is_empty());
    assert!(!diag["training_xs"].0.as_array().unwrap().is_empty());
}

#[test]
fn obs_output_write_failure_exits_with_code_3() {
    // /dev/null is a file, so creating a directory under it must fail and
    // surface as the I/O exit code.
    let out = xtrace(&[
        "pipeline",
        "--app",
        "stencil3d",
        "--training",
        "2,4,8",
        "--target",
        "32",
        "--machine",
        "opteron",
        "--validate",
        "false",
        "--trace-out",
        "/dev/null/trace.json",
    ]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("/dev/null/trace.json"),
        "names the path"
    );
}

#[test]
fn pipeline_subcommand_prints_table() {
    let out = xtrace(&[
        "pipeline",
        "--app",
        "stencil3d",
        "--training",
        "2,4,8",
        "--target",
        "32",
        "--machine",
        "opteron",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("Extrap."));
    assert!(s.contains("Coll."));
    assert!(s.contains("measured"));
}
