//! End-to-end tests of the `xtrace` binary: every subcommand, both trace
//! formats, and the error paths.

use std::path::PathBuf;
use std::process::{Command, Output};

fn xtrace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xtrace"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("xtrace-cli-tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = xtrace(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = xtrace(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("usage"));
}

#[test]
fn help_succeeds() {
    let out = xtrace(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("extrapolate"));
}

#[test]
fn machines_lists_all_presets() {
    let out = xtrace(&["machines"]);
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    for name in ["opteron", "cray-xt5", "bluewaters-phase1", "system-a", "system-b"] {
        assert!(s.contains(name), "missing {name}");
    }
}

#[test]
fn apps_lists_proxies() {
    let out = xtrace(&["apps"]);
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("specfem3d") && s.contains("uh3d") && s.contains("stencil3d"));
}

#[test]
fn full_pipeline_through_files_works() {
    let dir = tmpdir("pipeline");
    let mut paths = Vec::new();
    // Mixed formats: two JSON, one binary.
    for (p, name) in [(4u32, "t4.json"), (8, "t8.json"), (16, "t16.bin")] {
        let path = dir.join(name);
        let out = xtrace(&[
            "trace",
            "--app",
            "stencil3d",
            "--ranks",
            &p.to_string(),
            "--machine",
            "opteron",
            "--out",
            path.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "trace at {p}: {:?}", out);
        paths.push(path);
    }

    let out_path = dir.join("t64.json");
    let out = xtrace(&[
        "extrapolate",
        "--target",
        "64",
        "--out",
        out_path.to_str().unwrap(),
        paths[0].to_str().unwrap(),
        paths[1].to_str().unwrap(),
        paths[2].to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{:?}", out);

    let out = xtrace(&[
        "predict",
        "--trace",
        out_path.to_str().unwrap(),
        "--app",
        "stencil3d",
        "--ranks",
        "64",
        "--machine",
        "opteron",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("total"));
    assert!(s.contains("stencil3d-proxy"));
}

#[test]
fn trace_without_out_prints_json() {
    let out = xtrace(&[
        "trace", "--app", "stencil3d", "--ranks", "2", "--machine", "opteron",
    ]);
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    let trace: serde_json::Value = serde_json::from_str(&s).expect("stdout is a JSON trace");
    assert_eq!(trace["app"], "stencil3d-proxy");
    assert_eq!(trace["nranks"], 2);
}

#[test]
fn extrapolate_rejects_too_few_traces() {
    let dir = tmpdir("toofew");
    let path = dir.join("one.json");
    assert!(xtrace(&[
        "trace", "--app", "stencil3d", "--ranks", "2", "--machine", "opteron", "--out",
        path.to_str().unwrap(),
    ])
    .status
    .success());
    let out = xtrace(&["extrapolate", "--target", "64", path.to_str().unwrap()]);
    assert!(!out.status.success());
}

#[test]
fn unknown_machine_and_app_are_rejected_helpfully() {
    let out = xtrace(&[
        "trace", "--app", "stencil3d", "--ranks", "2", "--machine", "cray-xt9",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown machine"));
    assert!(err.contains("cray-xt5"), "suggests valid names");

    let out = xtrace(&[
        "trace", "--app", "lammps", "--ranks", "2", "--machine", "opteron",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown application"));
}

#[test]
fn missing_flag_value_is_an_error() {
    let out = xtrace(&["trace", "--app"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));
}

#[test]
fn diff_compares_two_traces() {
    let dir = tmpdir("diff");
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    for (p, path) in [(4u32, &a), (8, &b)] {
        assert!(xtrace(&[
            "trace", "--app", "stencil3d", "--ranks", &p.to_string(), "--machine", "opteron",
            "--out", path.to_str().unwrap(),
        ])
        .status
        .success());
    }
    let out = xtrace(&["diff", "--a", a.to_str().unwrap(), "--b", b.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("elements compared"));
    assert!(s.contains("worst elements"), "4-vs-8-core traces differ");

    // Self-diff: zero error, no worst list.
    let out = xtrace(&["diff", "--a", a.to_str().unwrap(), "--b", a.to_str().unwrap()]);
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("max error (all):       0.00%"), "{s}");
}

#[test]
fn machine_export_roundtrips_through_trace() {
    let dir = tmpdir("machine");
    let profile = dir.join("opteron.json");
    let out = xtrace(&[
        "machine-export", "--machine", "opteron", "--out", profile.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("surface points"));

    // The exported file works anywhere a machine name does.
    let trace = dir.join("t.json");
    let out = xtrace(&[
        "trace", "--app", "stencil3d", "--ranks", "4", "--machine",
        profile.to_str().unwrap(), "--out", trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let t: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    assert_eq!(t["machine"], "opteron");
}

#[test]
fn inspect_renders_a_program_listing() {
    let out = xtrace(&["inspect", "--app", "uh3d", "--ranks", "8", "--rank", "3"]);
    assert!(out.status.success(), "{out:?}");
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("rank 3 of 8"));
    assert!(s.contains("particle-push"));
    assert!(s.contains("events:"));

    let out = xtrace(&["inspect", "--app", "uh3d", "--ranks", "4", "--rank", "9"]);
    assert!(!out.status.success(), "out-of-range rank must fail");
}

#[test]
fn extrapolate_report_prints_fit_quality() {
    let dir = tmpdir("report");
    let mut paths = Vec::new();
    for p in [2u32, 4, 8] {
        let path = dir.join(format!("t{p}.json"));
        assert!(xtrace(&[
            "trace", "--app", "stencil3d", "--ranks", &p.to_string(), "--machine", "opteron",
            "--out", path.to_str().unwrap(),
        ])
        .status
        .success());
        paths.push(path);
    }
    let out = xtrace(&[
        "extrapolate",
        "--target",
        "32",
        "--report",
        "true",
        "--out",
        dir.join("x.json").to_str().unwrap(),
        paths[0].to_str().unwrap(),
        paths[1].to_str().unwrap(),
        paths[2].to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("fit report"), "{err}");
    assert!(err.contains("chosen forms"));
}

#[test]
fn pipeline_subcommand_prints_table() {
    let out = xtrace(&[
        "pipeline",
        "--app",
        "stencil3d",
        "--training",
        "2,4,8",
        "--target",
        "32",
        "--machine",
        "opteron",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("Extrap."));
    assert!(s.contains("Coll."));
    assert!(s.contains("measured"));
}
