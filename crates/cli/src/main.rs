//! `xtrace` — command-line driver for the trace-extrapolation pipeline.
//!
//! This binary is a thin shell over `xtrace-core`: it parses flags into
//! typed requests (most subcommands into a [`PipelineConfig`]), hands them
//! to the library, and renders the results. All failure classes map onto
//! distinct exit codes via [`XtraceError::exit_code`]: `2` for usage
//! errors, `3` for filesystem/trace-format errors, `4` for model-layer
//! errors.
//!
//! ```text
//! xtrace machines                          list target-machine presets
//! xtrace apps                              list proxy applications
//! xtrace trace       --app A --ranks P --machine M [--rank R] [--scale S] [--out F]
//! xtrace extrapolate --target P [--forms paper|extended] --out F T1.json T2.json T3.json
//! xtrace predict     --trace F --app A --ranks P --machine M [--scale S]
//! xtrace pipeline    --app A --training P1,P2,P3 --target P --machine M
//!                    [--scale S] [--forms paper|extended] [--validate true|false]
//!                    [--store DIR] [--out F]
//! xtrace report      same flags as pipeline, plus [--top N]
//! xtrace diff        --a F1 --b F2 [--threshold 0.001] [--top N]
//! xtrace machine-export --machine M --out F.json
//! xtrace inspect     --app A --ranks P [--rank R] [--scale S]
//! ```
//!
//! `--machine` accepts either a preset name or a path to a profile exported
//! with `machine-export` (measured surface included — the PMaC hand-off
//! artifact between benchmarking and prediction).
//!
//! Traces are stored as JSON (`.json`) or the compact binary format
//! (anything else). `--scale` selects `tiny`, `small` (default;
//! laptop-friendly) or `paper` (the full Table I configuration).
//!
//! `xtrace pipeline --store DIR` files every stage artifact in an
//! `xtrace-core` artifact store keyed by the config hash; re-running the
//! identical command resumes from the store instead of recomputing.
//!
//! `xtrace pipeline --metrics-out metrics.json` attaches an `xtrace-obs`
//! recorder to the run and writes the full metrics snapshot (per-stage
//! spans, kernel counters, histograms) as JSON; `--metrics table` renders
//! the same snapshot human-readably on stderr. Metrics never change the
//! prediction — the report is bit-identical with or without them.
//!
//! `--trace-out trace.json` additionally enables the structured event
//! journal and exports it in Chrome Trace Event Format (open the file in
//! <https://ui.perfetto.dev> or `chrome://tracing`); `--diagnostics-out`
//! writes the per-element canonical-form fit diagnostics (candidate
//! SSE/R², winner, residuals, extrapolation distance) as JSON. The
//! journal is subject to the same guarantee as metrics: predictions are
//! bit-identical with it on or off.
//!
//! `xtrace report` runs the same pipeline as `xtrace pipeline` with the
//! journal always on and renders a run report on stdout: stage timing
//! breakdown, the canonical-form win table, the `--top <N>` (default 5)
//! worst-fit elements by winner R², and the per-rank-class compute vs.
//! communication split of the largest simulated core count.
//!
//! `--threads <N>` (accepted by every command) caps the rayon worker
//! count used for block-parallel collection and parallel fitting;
//! `0` or omitting the flag uses all hardware threads. Results are
//! identical at any thread count.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtrace_core::{
    make_app, make_machine, FormSet, PipelineConfig, StageKind, StageObserver, XtraceEngine,
    XtraceError,
};
use xtrace_extrap::{extrapolate_signature_detailed, ExtrapolationConfig, FitReport};
use xtrace_machine::presets;
use xtrace_tracer::{from_bytes, load_json, save_json, to_bytes, IoError, TaskTrace, TracerConfig};

fn usage() -> &'static str {
    "usage:\n  \
     xtrace machines\n  \
     xtrace apps\n  \
     xtrace trace --app <name> --ranks <P> --machine <name> [--rank <R>] [--scale tiny|small|paper] [--out <file>]\n  \
     xtrace extrapolate --target <P> [--forms paper|extended] [--report true] [--out <file>] <trace files...>\n  \
     xtrace predict --trace <file> --app <name> --ranks <P> --machine <name> [--scale tiny|small|paper]\n  \
     xtrace pipeline --app <name> --training <P1,P2,P3> --target <P> --machine <name>\n                  \
     [--scale tiny|small|paper] [--forms paper|extended] [--validate true|false]\n                  \
     [--tracer fast|default] [--ranks-per-count <K>] [--store <dir>] [--out <file>]\n                  \
     [--metrics-out <file.json>] [--metrics table]\n                  \
     [--trace-out <trace.json>] [--diagnostics-out <file.json>]\n  \
     xtrace report --app <name> --training <P1,P2,P3> --target <P> --machine <name>\n                  \
     [--scale tiny|small|paper] [--forms paper|extended] [--validate true|false]\n                  \
     [--tracer fast|default] [--ranks-per-count <K>] [--store <dir>] [--top <N>]\n                  \
     [--metrics-out <file.json>] [--trace-out <trace.json>] [--diagnostics-out <file.json>]\n  \
     xtrace diff --a <file> --b <file> [--threshold <frac>] [--top <N>]\n  \
     xtrace machine-export --machine <name> --out <file.json>\n  \
     xtrace inspect --app <name> --ranks <P> [--rank <R>] [--scale tiny|small|paper]\n\n\
     trace files ending in .json are JSON; all others use the compact binary format\n\
     every command also accepts --threads <N> (rayon worker threads; 0 = all cores)\n\
     exit codes: 2 = usage error, 3 = I/O or trace-format error, 4 = model error"
}

type Result<T> = xtrace_core::Result<T>;

fn usage_err(message: impl Into<String>) -> XtraceError {
    XtraceError::Usage(message.into())
}

/// Minimal `--key value` argument scanner; positional arguments are
/// collected separately.
struct Args {
    flags: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self> {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| usage_err(format!("flag --{key} needs a value")))?;
                flags.push((key.to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Self { flags, positional })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, key: &str) -> Result<&str> {
        self.get(key)
            .ok_or_else(|| usage_err(format!("missing --{key}")))
    }

    fn parse_u32(&self, key: &str) -> Result<u32> {
        self.require(key)?
            .parse()
            .map_err(|_| usage_err(format!("--{key} must be a positive integer")))
    }
}

fn cmd_inspect(args: &Args) -> Result<()> {
    let app = make_app(args.require("app")?, args.get("scale").unwrap_or("small"))?;
    let ranks = args.parse_u32("ranks")?;
    let rank: u32 = args
        .get("rank")
        .unwrap_or("0")
        .parse()
        .map_err(|_| usage_err("--rank must be an integer"))?;
    if rank >= ranks {
        return Err(usage_err(format!(
            "--rank {rank} out of range for {ranks} ranks"
        )));
    }
    let rp = app.spmd().rank_program(rank, ranks);
    println!("{} — rank {rank} of {ranks}\n", app.spmd().name());
    print!("{}", xtrace_ir::render_program(&rp.program));
    println!("events:");
    for (i, e) in rp.events.iter().enumerate() {
        println!("  [{i}] {e:?}");
    }
    Ok(())
}

/// Writes an output file, creating missing parent directories. Both the
/// directory creation and the write map failures onto
/// [`XtraceError::Io`] (exit code 3) rather than surfacing a raw I/O
/// error.
fn write_file(path: &str, body: impl AsRef<[u8]>) -> Result<()> {
    let io_err = |e: std::io::Error| {
        XtraceError::Io(IoError::Io {
            path: path.into(),
            source: e,
        })
    };
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(io_err)?;
        }
    }
    std::fs::write(path, body).map_err(io_err)
}

fn cmd_machine_export(args: &Args) -> Result<()> {
    let machine = make_machine(args.require("machine")?)?;
    let out = args.require("out")?;
    let spec = machine.to_spec(); // measures the surface if needed
    let json = serde_json::to_string_pretty(&spec).expect("serializable");
    write_file(out, json)?;
    eprintln!(
        "exported {} ({} surface points) to {out}",
        machine.name,
        machine.surface().points.len()
    );
    Ok(())
}

fn load_trace(path: &Path) -> Result<TaskTrace> {
    if path.extension().is_some_and(|e| e == "json") {
        Ok(load_json(path)?)
    } else {
        let bytes = std::fs::read(path).map_err(|e| {
            XtraceError::Io(IoError::Io {
                path: path.to_path_buf(),
                source: e,
            })
        })?;
        Ok(from_bytes(&bytes)?)
    }
}

fn store_trace(trace: &TaskTrace, path: &Path) -> Result<()> {
    if path.extension().is_some_and(|e| e == "json") {
        Ok(save_json(trace, path)?)
    } else {
        std::fs::write(path, to_bytes(trace)).map_err(|e| {
            XtraceError::Io(IoError::Io {
                path: path.to_path_buf(),
                source: e,
            })
        })
    }
}

fn cmd_machines() -> Result<()> {
    println!(
        "{:<20} {:>7} {:>9} {:>24}",
        "name", "levels", "clock", "caches"
    );
    for m in presets::all() {
        let caches: Vec<String> = m
            .hierarchy
            .levels
            .iter()
            .map(|l| format!("{}K", l.size_bytes / 1024))
            .collect();
        println!(
            "{:<20} {:>7} {:>6.1}GHz {:>24}",
            m.name,
            m.depth(),
            m.clock_hz / 1e9,
            caches.join("/")
        );
    }
    Ok(())
}

fn cmd_apps() -> Result<()> {
    println!("specfem3d   spectral-element seismic wave propagation proxy");
    println!("uh3d        hybrid particle-in-cell magnetosphere proxy");
    println!("stencil3d   3-D Jacobi relaxation proxy");
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<()> {
    let app = make_app(args.require("app")?, args.get("scale").unwrap_or("small"))?;
    let ranks = args.parse_u32("ranks")?;
    let machine = make_machine(args.require("machine")?)?;
    let cfg = TracerConfig::default();

    let sig = xtrace_tracer::collect_signature_with(app.spmd(), ranks, &machine, &cfg);
    let trace = match args.get("rank") {
        Some(r) => {
            let r: u32 = r
                .parse()
                .map_err(|_| usage_err("--rank must be an integer"))?;
            xtrace_tracer::collect_task_trace(app.spmd(), r, ranks, &machine, &cfg)
        }
        None => sig.longest_task().clone(),
    };
    eprintln!(
        "traced rank {} of {} ({} blocks, {:.3e} memory ops, longest task = rank {})",
        trace.rank,
        ranks,
        trace.blocks.len(),
        trace.total_mem_ops(),
        sig.comm.longest_rank
    );
    match args.get("out") {
        Some(path) => store_trace(&trace, &PathBuf::from(path))?,
        None => println!(
            "{}",
            serde_json::to_string_pretty(&trace).expect("serializable")
        ),
    }
    Ok(())
}

fn cmd_extrapolate(args: &Args) -> Result<()> {
    let target = args.parse_u32("target")?;
    let forms = FormSet::parse(args.get("forms").unwrap_or("paper"))?.forms();
    if args.positional.is_empty() {
        return Err(usage_err(
            "extrapolate needs trace files as positional arguments",
        ));
    }
    let traces: Vec<TaskTrace> = args
        .positional
        .iter()
        .map(|p| load_trace(&PathBuf::from(p)))
        .collect::<Result<_>>()?;
    let cfg = ExtrapolationConfig {
        forms,
        // At least two training points (three is the paper's default); a
        // single trace would degenerate to constant extrapolation.
        min_traces: traces.len().clamp(2, 3),
        ..ExtrapolationConfig::default()
    };
    let (out, fits) = extrapolate_signature_detailed(&traces, target, &cfg)?;
    eprintln!(
        "extrapolated {} from {:?} cores to {target}",
        out.app,
        traces.iter().map(|t| t.nranks).collect::<Vec<_>>()
    );
    if args.get("report").is_some_and(|v| v == "true") {
        eprintln!(
            "{}",
            FitReport::from_fits(&fits, cfg.influence_threshold).render()
        );
    }
    match args.get("out") {
        Some(path) => store_trace(&out, &PathBuf::from(path))?,
        None => println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        ),
    }
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<()> {
    let trace = load_trace(&PathBuf::from(args.require("trace")?))?;
    let app = make_app(args.require("app")?, args.get("scale").unwrap_or("small"))?;
    let ranks = args.parse_u32("ranks")?;
    let machine = make_machine(args.require("machine")?)?;
    let comm = app.comm(ranks);
    let pred = xtrace_psins::try_predict_runtime(&trace, &comm, &machine)?;
    println!("application : {}", trace.app);
    println!("trace       : rank {} @ {} cores", trace.rank, trace.nranks);
    println!("machine     : {}", machine.name);
    println!("memory time : {:>10.3} s", pred.memory_seconds);
    println!("fp time     : {:>10.3} s", pred.fp_seconds);
    println!("compute     : {:>10.3} s", pred.compute_seconds);
    println!("comm        : {:>10.3} s", pred.comm_seconds);
    println!("total       : {:>10.3} s", pred.total_seconds);
    Ok(())
}

/// Narrates pipeline progress on stderr.
struct EprintObserver;

impl StageObserver for EprintObserver {
    fn stage_finished(&mut self, stage: StageKind, seconds: f64) {
        eprintln!("[{}] done in {seconds:.2}s", stage.label());
    }
    fn progress(&mut self, stage: StageKind, message: &str) {
        eprintln!("[{}] {message}", stage.label());
    }
    fn cache_event(&mut self, stage: StageKind, artifact: &str, hit: bool) {
        if hit {
            eprintln!("[{}] reusing {artifact} from store", stage.label());
        }
    }
}

/// Parses the pipeline-shaped flags shared by `pipeline` and `report`
/// into a [`PipelineConfig`].
fn pipeline_config(args: &Args) -> Result<PipelineConfig> {
    let training: Vec<u32> = args
        .require("training")?
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| usage_err(format!("bad core count {s:?}")))
        })
        .collect::<Result<_>>()?;
    let mut config = PipelineConfig::new(
        args.require("app")?,
        args.require("machine")?,
        training,
        args.parse_u32("target")?,
    );
    config.scale = args.get("scale").unwrap_or("small").to_string();
    config.forms = FormSet::parse(args.get("forms").unwrap_or("paper"))?;
    config.validate = match args.get("validate").unwrap_or("true") {
        "true" => true,
        "false" => false,
        other => {
            return Err(usage_err(format!(
                "--validate must be true|false, got {other:?}"
            )))
        }
    };
    config.fast_tracer = match args.get("tracer").unwrap_or("default") {
        "fast" => true,
        "default" => false,
        other => {
            return Err(usage_err(format!(
                "--tracer must be fast|default, got {other:?}"
            )))
        }
    };
    if let Some(k) = args.get("ranks-per-count") {
        config.ranks_per_count = k
            .parse()
            .ok()
            .filter(|&k| k >= 1)
            .ok_or_else(|| usage_err("--ranks-per-count must be a positive integer"))?;
    }
    Ok(config)
}

/// Writes the observability artifacts shared by `pipeline` and `report`:
/// `--metrics-out` (snapshot JSON), `--trace-out` (Chrome trace), and
/// `--diagnostics-out` (fit diagnostics JSON). `metrics` and `journal`
/// are the *run's own* snapshots (from its [`xtrace_core::EngineOutcome`]),
/// so sequential or concurrent runs in one process can never bleed
/// counters into each other's output.
fn write_obs_outputs(
    args: &Args,
    report: &xtrace_core::PipelineReport,
    metrics: &xtrace_obs::Snapshot,
    journal: Option<&xtrace_obs::JournalSnapshot>,
) -> Result<()> {
    if let Some(path) = args.get("metrics-out") {
        write_file(path, metrics.to_json() + "\n")?;
        eprintln!("wrote metrics to {path}");
    }
    if let Some(path) = args.get("trace-out") {
        let journal = journal.ok_or_else(|| {
            XtraceError::Model("--trace-out needs the event journal (internal error)".into())
        })?;
        write_file(path, xtrace_obs::chrome_trace(journal) + "\n")?;
        eprintln!("wrote Chrome trace to {path} (open in https://ui.perfetto.dev)");
    }
    if let Some(path) = args.get("diagnostics-out") {
        let diag = report.fit_diagnostics.as_ref().ok_or_else(|| {
            XtraceError::Model(
                "fit diagnostics unavailable: this run resumed the fit stage from a store \
                 written before diagnostics existed — rerun after clearing the store"
                    .into(),
            )
        })?;
        write_file(path, diag.to_json() + "\n")?;
        eprintln!("wrote fit diagnostics to {path}");
    }
    Ok(())
}

fn cmd_pipeline(args: &Args) -> Result<()> {
    let config = pipeline_config(args)?;
    let metrics_table = match args.get("metrics") {
        None | Some("none") => false,
        Some("table") => true,
        Some(other) => {
            return Err(usage_err(format!(
                "--metrics must be table|none, got {other:?}"
            )))
        }
    };
    // One engine per invocation: every run gets its own scoped
    // observability context, so the snapshots written below are this
    // run's and nothing else's.
    let mut engine = XtraceEngine::new();
    if let Some(dir) = args.get("store") {
        engine = engine.with_store(dir)?;
    }
    let outcome = engine.run_with_observer(&config, Some(Box::new(EprintObserver)))?;
    let report = outcome.report;

    if let Some(v) = &report.validation {
        println!(
            "\n{:<16} {:>6} {:>8} {:>12} {:>8}",
            "application", "cores", "trace", "runtime (s)", "% err"
        );
        for (label, total, err) in [
            (
                "Extrap.",
                report.prediction.total_seconds,
                v.extrapolated_error,
            ),
            ("Coll.", v.collected.total_seconds, v.collected_error),
        ] {
            println!(
                "{:<16} {:>6} {:>8} {:>12.3} {:>7.1}%",
                report.extrapolated.app,
                report.extrapolated.nranks,
                label,
                total,
                100.0 * err
            );
        }
        println!("measured: {:.3} s", v.measured_seconds);
    } else {
        println!(
            "{} @ {} cores: predicted {:.3} s (config {})",
            report.extrapolated.app,
            report.extrapolated.nranks,
            report.prediction.total_seconds,
            report.config_hash
        );
    }
    if report.cache_hits > 0 {
        eprintln!(
            "store: {} artifact(s) reused, {} computed",
            report.cache_hits, report.cache_misses
        );
    }
    if let Some(path) = args.get("out") {
        let body = serde_json::to_string_pretty(&report.prediction).expect("serializable");
        write_file(path, body + "\n")?;
        eprintln!("wrote prediction to {path}");
    }
    if metrics_table {
        eprintln!("{}", outcome.metrics.render_table());
    }
    write_obs_outputs(args, &report, &outcome.metrics, outcome.journal.as_ref())?;
    Ok(())
}

/// `xtrace report`: run the pipeline (journal always on) and render a
/// human-readable run report — stage timing breakdown, canonical-form win
/// table, the top-K worst-fit elements, and the per-rank-class compute
/// vs. communication split from the replay journal.
fn cmd_report(args: &Args) -> Result<()> {
    let config = pipeline_config(args)?;
    let top: usize = args
        .get("top")
        .unwrap_or("5")
        .parse()
        .map_err(|_| usage_err("--top must be an integer"))?;
    let mut engine = XtraceEngine::new();
    if let Some(dir) = args.get("store") {
        engine = engine.with_store(dir)?;
    }
    let outcome = engine.run_with_observer(&config, Some(Box::new(EprintObserver)))?;
    let report = outcome.report;
    let journal = outcome
        .journal
        .clone()
        .unwrap_or_else(|| xtrace_obs::JournalSnapshot {
            events: Vec::new(),
            dropped: 0,
        });

    println!("== xtrace run report ==");
    println!(
        "{} @ {} cores on {} — predicted {:.3} s (config {})",
        report.extrapolated.app,
        report.extrapolated.nranks,
        report.extrapolated.machine,
        report.prediction.total_seconds,
        report.config_hash
    );
    if let Some(v) = &report.validation {
        println!(
            "validated: measured {:.3} s, extrapolated err {:.1}%, collected err {:.1}%",
            v.measured_seconds,
            100.0 * v.extrapolated_error,
            100.0 * v.collected_error
        );
    }

    let total: f64 = report.timings.iter().map(|t| t.seconds).sum();
    println!("\nstage timings:");
    for t in &report.timings {
        let pct = if total > 0.0 {
            100.0 * t.seconds / total
        } else {
            0.0
        };
        println!(
            "  {:<12} {:>9.3} s  {:>5.1}%",
            t.stage.label(),
            t.seconds,
            pct
        );
    }
    println!("  {:<12} {:>9.3} s", "total", total);

    match &report.fit_diagnostics {
        Some(diag) => {
            println!(
                "\ncanonical-form wins ({} elements, extrapolation distance {:.1}x):",
                diag.elements.len(),
                diag.extrapolation_distance()
            );
            let total_wins: u64 = diag.form_wins.values().sum::<u64>().max(1);
            for (form, n) in &diag.form_wins {
                println!(
                    "  {:<10} {:>6}  {:>5.1}%",
                    form,
                    n,
                    100.0 * *n as f64 / total_wins as f64
                );
            }
            println!("\nworst-fit elements (by winner R², top {top}):");
            println!(
                "  {:<22} {:<5} {:<14} {:<10} {:>11} {:>8}",
                "block", "instr", "feature", "form", "sse", "R²"
            );
            for i in diag.worst_fit(top) {
                let e = &diag.elements[i];
                println!(
                    "  {:<22} i{:<4} {:<14} {:<10} {:>11.4e} {:>8.4}",
                    e.block, e.instr, e.feature, e.winner, e.winner_sse, e.winner_r2
                );
            }
        }
        None => println!(
            "\nfit diagnostics unavailable (fit stage resumed from a pre-diagnostics store)"
        ),
    }

    // Per-rank-class compute/comm split: the spmd.class_total journal
    // events of the largest simulated core count (keep the last
    // simulation's entry per class, e.g. the validation collect).
    let max_nranks = journal
        .events
        .iter()
        .filter(|e| e.name == "spmd.class_total")
        .filter_map(|e| e.args.get("nranks"))
        .fold(0.0f64, |a, &b| a.max(b));
    if max_nranks > 0.0 {
        let mut per_class: std::collections::BTreeMap<
            u64,
            &std::collections::BTreeMap<String, f64>,
        > = std::collections::BTreeMap::new();
        for e in &journal.events {
            if e.name == "spmd.class_total" && e.args.get("nranks") == Some(&max_nranks) {
                per_class.insert(e.args.get("class").copied().unwrap_or(0.0) as u64, &e.args);
            }
        }
        println!(
            "\nrank-class compute/comm split (p = {}):",
            max_nranks as u64
        );
        for (c, a) in per_class {
            let compute = a.get("compute_s").copied().unwrap_or(0.0);
            let comm = a.get("comm_s").copied().unwrap_or(0.0);
            let busy = (compute + comm).max(f64::MIN_POSITIVE);
            println!(
                "  class {c}: {:>6} ranks  compute {:>9.3} s ({:>5.1}%)  comm {:>9.3} s ({:>5.1}%)",
                a.get("ranks").copied().unwrap_or(0.0) as u64,
                compute,
                100.0 * compute / busy,
                comm,
                100.0 * comm / busy
            );
        }
    }

    if report.cache_hits > 0 {
        eprintln!(
            "store: {} artifact(s) reused, {} computed",
            report.cache_hits, report.cache_misses
        );
    }
    write_obs_outputs(args, &report, &outcome.metrics, outcome.journal.as_ref())?;
    Ok(())
}

fn cmd_diff(args: &Args) -> Result<()> {
    let a = load_trace(&PathBuf::from(args.require("a")?))?;
    let b = load_trace(&PathBuf::from(args.require("b")?))?;
    let threshold: f64 = args
        .get("threshold")
        .unwrap_or("0.001")
        .parse()
        .map_err(|_| usage_err("--threshold must be a fraction"))?;
    let top: usize = args
        .get("top")
        .unwrap_or("10")
        .parse()
        .map_err(|_| usage_err("--top must be an integer"))?;
    if a.blocks.len() != b.blocks.len() {
        return Err(XtraceError::Model(format!(
            "traces do not align: {} vs {} blocks",
            a.blocks.len(),
            b.blocks.len()
        )));
    }
    let errors = xtrace_extrap::element_errors(&a, &b);
    let summary = xtrace_extrap::summarize(&errors, threshold);
    println!(
        "comparing {} @ {} cores (A) against {} @ {} cores (B)",
        a.app, a.nranks, b.app, b.nranks
    );
    println!("elements compared:     {}", summary.n_total);
    println!(
        "influential (>= {:.2}%): {}",
        100.0 * threshold,
        summary.n_influential
    );
    println!(
        "influential max error: {:.2}%",
        100.0 * summary.max_rel_err_influential
    );
    println!(
        "influential under 20%: {:.1}%",
        100.0 * summary.frac_influential_under_20pct
    );
    println!(
        "max error (all):       {:.2}%",
        100.0 * summary.max_rel_err_all
    );
    let mut worst: Vec<_> = errors.iter().filter(|e| e.rel_err > 0.0).collect();
    worst.sort_by(|x, y| y.rel_err.partial_cmp(&x.rel_err).expect("finite"));
    if !worst.is_empty() {
        println!("\nworst elements:");
        for e in worst.iter().take(top) {
            println!(
                "  {:<22} i{:<3} {:<14} A {:>12.4e}  B {:>12.4e}  err {:>7.2}%  influence {:>6.3}%",
                e.block,
                e.instr,
                e.feature.label(),
                e.got,
                e.expected,
                100.0 * e.rel_err,
                100.0 * e.influence
            );
        }
    }
    Ok(())
}

fn run() -> Result<()> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return Err(usage_err(usage()));
    };
    let args = Args::parse(&argv[1..])?;
    if let Some(t) = args.get("threads") {
        let n: usize = t
            .parse()
            .map_err(|_| usage_err("--threads must be a non-negative integer (0 = all cores)"))?;
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .map_err(|e| usage_err(format!("failed to configure thread pool: {e}")))?;
    }
    match cmd.as_str() {
        "machines" => cmd_machines(),
        "apps" => cmd_apps(),
        "trace" => cmd_trace(&args),
        "extrapolate" => cmd_extrapolate(&args),
        "predict" => cmd_predict(&args),
        "pipeline" => cmd_pipeline(&args),
        "report" => cmd_report(&args),
        "diff" => cmd_diff(&args),
        "machine-export" => cmd_machine_export(&args),
        "inspect" => cmd_inspect(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(usage_err(format!("unknown command {other:?}\n{}", usage()))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
