//! `xtrace` — command-line driver for the trace-extrapolation pipeline.
//!
//! ```text
//! xtrace machines                          list target-machine presets
//! xtrace apps                              list proxy applications
//! xtrace trace       --app A --ranks P --machine M [--rank R] [--scale S] [--out F]
//! xtrace extrapolate --target P [--forms paper|extended] --out F T1.json T2.json T3.json
//! xtrace predict     --trace F --app A --ranks P --machine M [--scale S]
//! xtrace pipeline    --app A --training P1,P2,P3 --target P --machine M [--scale S]
//! xtrace diff        --a F1 --b F2 [--threshold 0.001] [--top N]
//! xtrace machine-export --machine M --out F.json
//! xtrace inspect     --app A --ranks P [--rank R] [--scale S]
//! ```
//!
//! `--machine` accepts either a preset name or a path to a profile exported
//! with `machine-export` (measured surface included — the PMaC hand-off
//! artifact between benchmarking and prediction).
//!
//! Traces are stored as JSON (`.json`) or the compact binary format
//! (anything else). `--scale` selects `small` (default; laptop-friendly)
//! or `paper` (the full Table I configuration).
//!
//! `--threads <N>` (accepted by every command) caps the rayon worker
//! count used for block-parallel collection and parallel fitting;
//! `0` or omitting the flag uses all hardware threads. Results are
//! identical at any thread count.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtrace_apps::{ProxyApp, SpecfemProxy, StencilProxy, Uh3dProxy};
use xtrace_extrap::{
    extrapolate_signature, extrapolate_signature_detailed, CanonicalForm, ExtrapolationConfig,
    FitReport,
};
use xtrace_machine::{presets, MachineProfile};
use xtrace_psins::{ground_truth, predict_runtime, relative_error};
use xtrace_spmd::{CommProfile, SpmdApp};
use xtrace_tracer::{
    collect_signature_with, from_bytes, load_json, save_json, to_bytes, TaskTrace, TracerConfig,
};

fn usage() -> &'static str {
    "usage:\n  \
     xtrace machines\n  \
     xtrace apps\n  \
     xtrace trace --app <name> --ranks <P> --machine <name> [--rank <R>] [--scale small|paper] [--out <file>]\n  \
     xtrace extrapolate --target <P> [--forms paper|extended] [--report true] [--out <file>] <trace files...>\n  \
     xtrace predict --trace <file> --app <name> --ranks <P> --machine <name> [--scale small|paper]\n  \
     xtrace pipeline --app <name> --training <P1,P2,P3> --target <P> --machine <name> [--scale small|paper]\n  \
     xtrace diff --a <file> --b <file> [--threshold <frac>] [--top <N>]\n  \
     xtrace machine-export --machine <name> --out <file.json>\n  \
     xtrace inspect --app <name> --ranks <P> [--rank <R>] [--scale small|paper]\n\n\
     trace files ending in .json are JSON; all others use the compact binary format\n\
     every command also accepts --threads <N> (rayon worker threads; 0 = all cores)"
}

/// Minimal `--key value` argument scanner; positional arguments are
/// collected separately.
struct Args {
    flags: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                flags.push((key.to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Self { flags, positional })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn parse_u32(&self, key: &str) -> Result<u32, String> {
        self.require(key)?
            .parse()
            .map_err(|_| format!("--{key} must be a positive integer"))
    }
}

fn make_app(name: &str, scale: &str) -> Result<Box<dyn AppObj>, String> {
    let paper = match scale {
        "paper" => true,
        "small" => false,
        other => return Err(format!("unknown --scale {other:?} (small|paper)")),
    };
    match name {
        "specfem3d" | "specfem3d-proxy" => Ok(Box::new(if paper {
            SpecfemProxy::paper_scale()
        } else {
            SpecfemProxy::small()
        })),
        "uh3d" | "uh3d-proxy" => Ok(Box::new(if paper {
            Uh3dProxy::paper_scale()
        } else {
            Uh3dProxy::small()
        })),
        "stencil3d" | "stencil3d-proxy" => Ok(Box::new(if paper {
            StencilProxy::medium()
        } else {
            StencilProxy::small()
        })),
        other => Err(format!(
            "unknown application {other:?} (specfem3d | uh3d | stencil3d)"
        )),
    }
}

/// Object-safe bundle of the two traits the CLI needs.
trait AppObj {
    fn spmd(&self) -> &dyn SpmdApp;
    fn comm(&self, nranks: u32) -> CommProfile;
}

impl<T: ProxyApp> AppObj for T {
    fn spmd(&self) -> &dyn SpmdApp {
        self.as_spmd()
    }
    fn comm(&self, nranks: u32) -> CommProfile {
        self.comm_profile(nranks)
    }
}

fn make_machine(name: &str) -> Result<MachineProfile, String> {
    // A path to an exported profile takes precedence over preset names.
    if name.ends_with(".json") {
        let s = std::fs::read_to_string(name).map_err(|e| format!("{name}: {e}"))?;
        let spec: xtrace_machine::MachineProfileSpec =
            serde_json::from_str(&s).map_err(|e| format!("{name}: {e}"))?;
        return Ok(MachineProfile::from_spec(spec));
    }
    presets::by_name(name).ok_or_else(|| {
        let names: Vec<String> = presets::all().into_iter().map(|m| m.name).collect();
        format!("unknown machine {name:?}; available: {}", names.join(", "))
    })
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    let app = make_app(args.require("app")?, args.get("scale").unwrap_or("small"))?;
    let ranks = args.parse_u32("ranks")?;
    let rank: u32 = args
        .get("rank")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "--rank must be an integer")?;
    if rank >= ranks {
        return Err(format!("--rank {rank} out of range for {ranks} ranks"));
    }
    let rp = app.spmd().rank_program(rank, ranks);
    println!(
        "{} — rank {rank} of {ranks}\n",
        app.spmd().name()
    );
    print!("{}", xtrace_ir::render_program(&rp.program));
    println!("events:");
    for (i, e) in rp.events.iter().enumerate() {
        println!("  [{i}] {e:?}");
    }
    Ok(())
}

fn cmd_machine_export(args: &Args) -> Result<(), String> {
    let machine = make_machine(args.require("machine")?)?;
    let out = args.require("out")?;
    let spec = machine.to_spec(); // measures the surface if needed
    let json = serde_json::to_string_pretty(&spec).expect("serializable");
    std::fs::write(out, json).map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "exported {} ({} surface points) to {out}",
        machine.name,
        machine.surface().points.len()
    );
    Ok(())
}

fn load_trace(path: &Path) -> Result<TaskTrace, String> {
    if path.extension().is_some_and(|e| e == "json") {
        load_json(path).map_err(|e| format!("{}: {e}", path.display()))
    } else {
        let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn store_trace(trace: &TaskTrace, path: &Path) -> Result<(), String> {
    if path.extension().is_some_and(|e| e == "json") {
        save_json(trace, path).map_err(|e| format!("{}: {e}", path.display()))
    } else {
        std::fs::write(path, to_bytes(trace)).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn cmd_machines() -> Result<(), String> {
    println!("{:<20} {:>7} {:>9} {:>24}", "name", "levels", "clock", "caches");
    for m in presets::all() {
        let caches: Vec<String> = m
            .hierarchy
            .levels
            .iter()
            .map(|l| format!("{}K", l.size_bytes / 1024))
            .collect();
        println!(
            "{:<20} {:>7} {:>6.1}GHz {:>24}",
            m.name,
            m.depth(),
            m.clock_hz / 1e9,
            caches.join("/")
        );
    }
    Ok(())
}

fn cmd_apps() -> Result<(), String> {
    println!("specfem3d   spectral-element seismic wave propagation proxy");
    println!("uh3d        hybrid particle-in-cell magnetosphere proxy");
    println!("stencil3d   3-D Jacobi relaxation proxy");
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let app = make_app(args.require("app")?, args.get("scale").unwrap_or("small"))?;
    let ranks = args.parse_u32("ranks")?;
    let machine = make_machine(args.require("machine")?)?;
    let cfg = TracerConfig::default();

    let sig = collect_signature_with(app.spmd(), ranks, &machine, &cfg);
    let trace = match args.get("rank") {
        Some(r) => {
            let r: u32 = r.parse().map_err(|_| "--rank must be an integer")?;
            xtrace_tracer::collect_task_trace(app.spmd(), r, ranks, &machine, &cfg)
        }
        None => sig.longest_task().clone(),
    };
    eprintln!(
        "traced rank {} of {} ({} blocks, {:.3e} memory ops, longest task = rank {})",
        trace.rank,
        ranks,
        trace.blocks.len(),
        trace.total_mem_ops(),
        sig.comm.longest_rank
    );
    match args.get("out") {
        Some(path) => store_trace(&trace, &PathBuf::from(path))?,
        None => println!(
            "{}",
            serde_json::to_string_pretty(&trace).expect("serializable")
        ),
    }
    Ok(())
}

fn cmd_extrapolate(args: &Args) -> Result<(), String> {
    let target = args.parse_u32("target")?;
    let forms = match args.get("forms").unwrap_or("paper") {
        "paper" => CanonicalForm::PAPER_SET.to_vec(),
        "extended" => CanonicalForm::EXTENDED_SET.to_vec(),
        other => return Err(format!("unknown --forms {other:?} (paper|extended)")),
    };
    if args.positional.is_empty() {
        return Err("extrapolate needs trace files as positional arguments".into());
    }
    let traces: Vec<TaskTrace> = args
        .positional
        .iter()
        .map(|p| load_trace(&PathBuf::from(p)))
        .collect::<Result<_, _>>()?;
    let cfg = ExtrapolationConfig {
        forms,
        // At least two training points (three is the paper's default); a
        // single trace would degenerate to constant extrapolation.
        min_traces: traces.len().clamp(2, 3),
        ..ExtrapolationConfig::default()
    };
    let (out, fits) =
        extrapolate_signature_detailed(&traces, target, &cfg).map_err(|e| e.to_string())?;
    eprintln!(
        "extrapolated {} from {:?} cores to {target}",
        out.app,
        traces.iter().map(|t| t.nranks).collect::<Vec<_>>()
    );
    if args.get("report").is_some_and(|v| v == "true") {
        eprintln!("{}", FitReport::from_fits(&fits, cfg.influence_threshold).render());
    }
    match args.get("out") {
        Some(path) => store_trace(&out, &PathBuf::from(path))?,
        None => println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        ),
    }
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    let trace = load_trace(&PathBuf::from(args.require("trace")?))?;
    let app = make_app(args.require("app")?, args.get("scale").unwrap_or("small"))?;
    let ranks = args.parse_u32("ranks")?;
    let machine = make_machine(args.require("machine")?)?;
    let comm = app.comm(ranks);
    let pred = predict_runtime(&trace, &comm, &machine);
    println!("application : {}", trace.app);
    println!("trace       : rank {} @ {} cores", trace.rank, trace.nranks);
    println!("machine     : {}", machine.name);
    println!("memory time : {:>10.3} s", pred.memory_seconds);
    println!("fp time     : {:>10.3} s", pred.fp_seconds);
    println!("compute     : {:>10.3} s", pred.compute_seconds);
    println!("comm        : {:>10.3} s", pred.comm_seconds);
    println!("total       : {:>10.3} s", pred.total_seconds);
    Ok(())
}

fn cmd_pipeline(args: &Args) -> Result<(), String> {
    let app = make_app(args.require("app")?, args.get("scale").unwrap_or("small"))?;
    let machine = make_machine(args.require("machine")?)?;
    let target = args.parse_u32("target")?;
    let training: Vec<u32> = args
        .require("training")?
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad core count {s:?}")))
        .collect::<Result<_, _>>()?;
    let cfg = TracerConfig::default();

    let traces: Vec<TaskTrace> = training
        .iter()
        .map(|&p| {
            let sig = collect_signature_with(app.spmd(), p, &machine, &cfg);
            eprintln!("traced {p} cores (longest task = rank {})", sig.comm.longest_rank);
            sig.longest_task().clone()
        })
        .collect();
    let ex_cfg = ExtrapolationConfig {
        min_traces: traces.len().clamp(2, 3),
        ..ExtrapolationConfig::default()
    };
    let extrapolated =
        extrapolate_signature(&traces, target, &ex_cfg).map_err(|e| e.to_string())?;
    let collected = collect_signature_with(app.spmd(), target, &machine, &cfg);
    let comm = app.comm(target);
    let pe = predict_runtime(&extrapolated, &comm, &machine);
    let pc = predict_runtime(collected.longest_task(), &collected.comm, &machine);
    let gt = ground_truth(app.spmd(), target, &machine, &cfg);

    println!("\n{:<16} {:>6} {:>8} {:>12} {:>8}", "application", "cores", "trace", "runtime (s)", "% err");
    for (label, p) in [("Extrap.", &pe), ("Coll.", &pc)] {
        println!(
            "{:<16} {:>6} {:>8} {:>12.3} {:>7.1}%",
            extrapolated.app,
            target,
            label,
            p.total_seconds,
            100.0 * relative_error(p.total_seconds, gt.total_seconds)
        );
    }
    println!("measured: {:.3} s", gt.total_seconds);
    Ok(())
}

fn cmd_diff(args: &Args) -> Result<(), String> {
    let a = load_trace(&PathBuf::from(args.require("a")?))?;
    let b = load_trace(&PathBuf::from(args.require("b")?))?;
    let threshold: f64 = args
        .get("threshold")
        .unwrap_or("0.001")
        .parse()
        .map_err(|_| "--threshold must be a fraction")?;
    let top: usize = args
        .get("top")
        .unwrap_or("10")
        .parse()
        .map_err(|_| "--top must be an integer")?;
    if a.blocks.len() != b.blocks.len() {
        return Err(format!(
            "traces do not align: {} vs {} blocks",
            a.blocks.len(),
            b.blocks.len()
        ));
    }
    let errors = xtrace_extrap::element_errors(&a, &b);
    let summary = xtrace_extrap::summarize(&errors, threshold);
    println!(
        "comparing {} @ {} cores (A) against {} @ {} cores (B)",
        a.app, a.nranks, b.app, b.nranks
    );
    println!("elements compared:     {}", summary.n_total);
    println!(
        "influential (>= {:.2}%): {}",
        100.0 * threshold,
        summary.n_influential
    );
    println!(
        "influential max error: {:.2}%",
        100.0 * summary.max_rel_err_influential
    );
    println!(
        "influential under 20%: {:.1}%",
        100.0 * summary.frac_influential_under_20pct
    );
    println!("max error (all):       {:.2}%", 100.0 * summary.max_rel_err_all);
    let mut worst: Vec<_> = errors.iter().filter(|e| e.rel_err > 0.0).collect();
    worst.sort_by(|x, y| y.rel_err.partial_cmp(&x.rel_err).expect("finite"));
    if !worst.is_empty() {
        println!("\nworst elements:");
        for e in worst.iter().take(top) {
            println!(
                "  {:<22} i{:<3} {:<14} A {:>12.4e}  B {:>12.4e}  err {:>7.2}%  influence {:>6.3}%",
                e.block,
                e.instr,
                e.feature.label(),
                e.got,
                e.expected,
                100.0 * e.rel_err,
                100.0 * e.influence
            );
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return Err(usage().to_string());
    };
    let args = Args::parse(&argv[1..])?;
    if let Some(t) = args.get("threads") {
        let n: usize = t
            .parse()
            .map_err(|_| "--threads must be a non-negative integer (0 = all cores)")?;
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .map_err(|e| format!("failed to configure thread pool: {e}"))?;
    }
    match cmd.as_str() {
        "machines" => cmd_machines(),
        "apps" => cmd_apps(),
        "trace" => cmd_trace(&args),
        "extrapolate" => cmd_extrapolate(&args),
        "predict" => cmd_predict(&args),
        "pipeline" => cmd_pipeline(&args),
        "diff" => cmd_diff(&args),
        "machine-export" => cmd_machine_export(&args),
        "inspect" => cmd_inspect(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
