//! MultiMAPS surface measurement cost and lookup latency.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xtrace_machine::{measure_surface, presets, MemoryCostModel, SweepConfig};

fn bench_multimaps(c: &mut Criterion) {
    let machine = presets::opteron();
    let mut g = c.benchmark_group("multimaps");
    g.sample_size(10);
    g.bench_function("measure_surface/coarse", |b| {
        b.iter(|| {
            black_box(measure_surface(
                &machine.hierarchy,
                machine.clock_hz,
                &MemoryCostModel::default(),
                &SweepConfig::coarse(),
            ))
        })
    });
    let surface = measure_surface(
        &machine.hierarchy,
        machine.clock_hz,
        &MemoryCostModel::default(),
        &SweepConfig::default(),
    );
    g.bench_function("lookup/full_surface", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = k.wrapping_add(1);
            let r = f64::from(k % 100) / 100.0;
            black_box(surface.lookup(black_box(&[r, (r + 0.3).min(1.0)])))
        })
    });
    g.bench_function("lookup_class/random", |b| {
        b.iter(|| black_box(surface.lookup_class(black_box(&[0.7, 0.9]), true)))
    });
    g.finish();
}

criterion_group!(benches, bench_multimaps);
criterion_main!(benches);
