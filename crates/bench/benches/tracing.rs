//! End-to-end signature collection per task.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtrace_apps::{SpecfemProxy, StencilProxy, Uh3dProxy};
use xtrace_machine::presets;
use xtrace_spmd::SpmdApp;
use xtrace_tracer::{collect_task_trace, TracerConfig};

fn bench_tracing(c: &mut Criterion) {
    let machine = presets::cray_xt5();
    let cfg = TracerConfig::fast();
    let apps: Vec<(&str, Box<dyn SpmdApp>)> = vec![
        ("stencil", Box::new(StencilProxy::medium())),
        ("specfem", Box::new(SpecfemProxy::small())),
        ("uh3d", Box::new(Uh3dProxy::small())),
    ];
    let mut g = c.benchmark_group("tracing");
    for (name, app) in &apps {
        g.bench_with_input(BenchmarkId::new("collect_task", name), app, |b, app| {
            b.iter(|| black_box(collect_task_trace(app.as_ref(), 0, 8, &machine, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tracing);
criterion_main!(benches);
