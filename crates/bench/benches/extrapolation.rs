//! Whole-trace extrapolation latency vs trace size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtrace_extrap::{extrapolate_signature, ExtrapolationConfig};
use xtrace_ir::SourceLoc;
use xtrace_tracer::{BlockRecord, FeatureVector, InstrRecord, TaskTrace};

fn synthetic_trace(p: u32, nblocks: usize, instrs_per_block: usize) -> TaskTrace {
    let pf = f64::from(p);
    let blocks = (0..nblocks)
        .map(|bi| BlockRecord {
            name: format!("block-{bi}"),
            source: SourceLoc::new("synth.f90", bi as u32, "kernel"),
            invocations: 100,
            iterations: 1000,
            instrs: (0..instrs_per_block)
                .map(|ii| {
                    let mut f = FeatureVector {
                        exec_count: 1e6 + pf * (ii as f64 + 1.0),
                        mem_ops: 1e6 + pf,
                        loads: 1e6 + pf,
                        bytes_per_ref: 8.0,
                        working_set: 1e7,
                        ilp: 2.0,
                        ..Default::default()
                    };
                    f.hit_rates = [0.9, 0.92 + 1e-5 * pf, 1.0, 1.0];
                    InstrRecord {
                        instr: ii as u32,
                        pattern: "strided".into(),
                        features: f,
                    }
                })
                .collect(),
        })
        .collect();
    TaskTrace {
        app: "synthetic".into(),
        rank: 0,
        nranks: p,
        machine: "m".into(),
        depth: 3,
        blocks,
    }
}

fn bench_extrapolation(c: &mut Criterion) {
    let cfg = ExtrapolationConfig::default();
    let mut g = c.benchmark_group("extrapolation");
    for (nblocks, ni) in [(8usize, 8usize), (32, 16), (128, 16)] {
        let traces: Vec<TaskTrace> = [1024u32, 2048, 4096]
            .iter()
            .map(|&p| synthetic_trace(p, nblocks, ni))
            .collect();
        g.bench_with_input(
            BenchmarkId::new("blocks_x_instrs", format!("{nblocks}x{ni}")),
            &traces,
            |b, traces| {
                b.iter(|| black_box(extrapolate_signature(black_box(traces), 8192, &cfg).unwrap()))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_extrapolation);
criterion_main!(benches);
