//! Cache-simulator throughput: the pipeline's hot loop. Reported in
//! accesses/s across hierarchy depths and access patterns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xtrace_cache::{CacheHierarchy, CacheLevelConfig, HierarchyConfig};

fn hierarchy(depth: usize) -> HierarchyConfig {
    let levels = [
        CacheLevelConfig::lru("L1", 32 * 1024, 64, 8, 2.0),
        CacheLevelConfig::lru("L2", 512 * 1024, 64, 8, 12.0),
        CacheLevelConfig::lru("L3", 8 * 1024 * 1024, 64, 16, 40.0),
    ];
    HierarchyConfig::new(levels[..depth].to_vec(), 200.0).unwrap()
}

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn bench_cache(c: &mut Criterion) {
    const N: u64 = 1 << 16;
    let mut g = c.benchmark_group("cache_sim");
    g.throughput(Throughput::Elements(N));
    for depth in [1usize, 2, 3] {
        g.bench_with_input(BenchmarkId::new("strided", depth), &depth, |b, &depth| {
            let mut cache = CacheHierarchy::try_new(hierarchy(depth)).unwrap();
            let mut k = 0u64;
            b.iter(|| {
                for _ in 0..N {
                    k = k.wrapping_add(1);
                    black_box(cache.access((k * 8) % (1 << 26), 8));
                }
            });
        });
        g.bench_with_input(BenchmarkId::new("random", depth), &depth, |b, &depth| {
            let mut cache = CacheHierarchy::try_new(hierarchy(depth)).unwrap();
            let mut k = 0u64;
            b.iter(|| {
                for _ in 0..N {
                    k = k.wrapping_add(1);
                    black_box(cache.access(mix64(k) % (1 << 26), 8));
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
