//! PSiNS convolution throughput: predictions per second from a ready trace.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xtrace_apps::{ProxyApp, StencilProxy};
use xtrace_machine::presets;
use xtrace_psins::try_predict_runtime;
use xtrace_tracer::{collect_signature_with, TracerConfig};

fn bench_convolution(c: &mut Criterion) {
    let app = StencilProxy::medium();
    let machine = presets::cray_xt5();
    let sig = collect_signature_with(&app, 8, &machine, &TracerConfig::fast());
    let trace = sig.longest_task().clone();
    let comm = app.comm_profile(8);
    // Force the lazy surface before timing.
    let _ = machine.surface();

    c.bench_function("convolution/predict_runtime", |b| {
        b.iter(|| black_box(try_predict_runtime(black_box(&trace), &comm, &machine).unwrap()))
    });
}

criterion_group!(benches, bench_convolution);
criterion_main!(benches);
