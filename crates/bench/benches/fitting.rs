//! Canonical-form fitting throughput: fits and model selections per second
//! (the extrapolator runs one selection per feature element).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtrace_extrap::{
    fit_form, select_best, select_best_guarded, CanonicalForm, SelectionCriterion,
};

fn bench_fitting(c: &mut Criterion) {
    let xs = [96.0, 384.0, 1536.0];
    let ys_lin: Vec<f64> = xs.iter().map(|x| 0.1 + 3e-5 * x).collect();
    let ys_log: Vec<f64> = xs.iter().map(|x: &f64| 5.0 + 1.7 * x.ln()).collect();

    let mut g = c.benchmark_group("fitting");
    for form in CanonicalForm::PAPER_SET {
        g.bench_with_input(
            BenchmarkId::new("fit_form", form.label()),
            &form,
            |b, &form| b.iter(|| black_box(fit_form(form, black_box(&xs), black_box(&ys_lin)))),
        );
    }
    g.bench_function("select_best/paper_set", |b| {
        b.iter(|| {
            black_box(select_best(
                &CanonicalForm::PAPER_SET,
                black_box(&xs),
                black_box(&ys_log),
                SelectionCriterion::Sse,
            ))
        })
    });
    g.bench_function("select_best_guarded/extended_set", |b| {
        b.iter(|| {
            black_box(select_best_guarded(
                &CanonicalForm::EXTENDED_SET,
                black_box(&xs),
                black_box(&ys_log),
                SelectionCriterion::Sse,
                8192.0,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fitting);
criterion_main!(benches);
