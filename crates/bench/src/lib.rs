//! # xtrace-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index), plus ablation studies and Criterion microbenches. This library
//! holds the pieces the binaries share: the paper-scale experiment
//! definitions (applications, training ladders, target counts, target
//! machine) and the common measurement drivers.
//!
//! Experiment binaries print the same rows/series the paper reports. The
//! goal is *shape* fidelity — who wins, what moves in which direction,
//! where crossovers fall — not absolute agreement with the authors'
//! testbed (our substrate is a parametric simulator).

pub mod seed_cache;
pub mod seed_sim;

use xtrace_apps::{ProxyApp, SpecfemProxy, Uh3dProxy};
use xtrace_extrap::{
    extrapolate_signature, extrapolate_signature_detailed, ElementFit, ExtrapolationConfig,
};
use xtrace_machine::{presets, MachineProfile};
use xtrace_psins::{ground_truth, relative_error, try_predict_runtime, GroundTruth, Prediction};
use xtrace_spmd::SpmdApp;
use xtrace_tracer::{collect_signature_with, BlockRecord, TaskTrace, TracerConfig};

/// SPECFEM3D training ladder (paper Section V).
pub const SPECFEM_TRAINING: [u32; 3] = [96, 384, 1536];
/// SPECFEM3D evaluation core count.
pub const SPECFEM_TARGET: u32 = 6144;
/// UH3D training ladder.
pub const UH3D_TRAINING: [u32; 3] = [1024, 2048, 4096];
/// UH3D evaluation core count.
pub const UH3D_TARGET: u32 = 8192;

/// The Table I target machine (Phase-I Blue Waters analog).
pub fn target_machine() -> MachineProfile {
    presets::bluewaters_phase1()
}

/// The full-scale SPECFEM3D proxy.
pub fn paper_specfem() -> SpecfemProxy {
    SpecfemProxy::paper_scale()
}

/// The full-scale UH3D proxy.
pub fn paper_uh3d() -> Uh3dProxy {
    Uh3dProxy::paper_scale()
}

/// Tracer settings for the paper-scale experiments.
pub fn paper_tracer() -> TracerConfig {
    TracerConfig::default()
}

/// Collects the longest task's trace at each training count.
pub fn training_traces(
    app: &dyn SpmdApp,
    counts: &[u32],
    machine: &MachineProfile,
    cfg: &TracerConfig,
) -> Vec<TaskTrace> {
    counts
        .iter()
        .map(|&p| {
            collect_signature_with(app, p, machine, cfg)
                .longest_task()
                .clone()
        })
        .collect()
}

/// One Table I comparison: predictions from the extrapolated and the
/// collected trace, plus the execution-driven measurement.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Application name.
    pub app: String,
    /// Evaluation core count.
    pub cores: u32,
    /// Prediction from the extrapolated trace.
    pub extrap: Prediction,
    /// Prediction from the trace actually collected at `cores`.
    pub collected: Prediction,
    /// Execution-driven measurement.
    pub measured: GroundTruth,
}

impl Table1Row {
    /// Error of the extrapolated-trace prediction vs measured.
    pub fn extrap_error(&self) -> f64 {
        relative_error(self.extrap.total_seconds, self.measured.total_seconds)
    }

    /// Error of the collected-trace prediction vs measured.
    pub fn collected_error(&self) -> f64 {
        relative_error(self.collected.total_seconds, self.measured.total_seconds)
    }

    /// Relative gap between the two predictions.
    pub fn prediction_gap(&self) -> f64 {
        relative_error(self.extrap.total_seconds, self.collected.total_seconds)
    }
}

/// Runs the full Table I methodology for one application.
pub fn run_table1_row(
    app: &dyn ProxyAppDyn,
    training: &[u32],
    target: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
    extrap_cfg: &ExtrapolationConfig,
) -> Table1Row {
    let spmd = app.as_spmd_dyn();
    let traces = training_traces(spmd, training, machine, cfg);
    let extrapolated =
        extrapolate_signature(&traces, target, extrap_cfg).expect("valid training ladder");
    let collected_sig = collect_signature_with(spmd, target, machine, cfg);
    let comm = app.comm_profile_dyn(target);
    Table1Row {
        app: spmd.name().to_string(),
        cores: target,
        extrap: try_predict_runtime(&extrapolated, &comm, machine).unwrap(),
        collected: try_predict_runtime(collected_sig.longest_task(), &collected_sig.comm, machine)
            .unwrap(),
        measured: ground_truth(spmd, target, machine, cfg),
    }
}

/// Object-safe view over [`ProxyApp`] so experiment drivers can take any
/// proxy without generics.
pub trait ProxyAppDyn {
    /// The underlying SPMD application.
    fn as_spmd_dyn(&self) -> &dyn SpmdApp;
    /// The communication profile at `nranks`.
    fn comm_profile_dyn(&self, nranks: u32) -> xtrace_spmd::CommProfile;
}

impl<T: ProxyApp> ProxyAppDyn for T {
    fn as_spmd_dyn(&self) -> &dyn SpmdApp {
        self.as_spmd()
    }
    fn comm_profile_dyn(&self, nranks: u32) -> xtrace_spmd::CommProfile {
        self.comm_profile(nranks)
    }
}

/// Like [`run_table1_row`] but also returns the training traces, the
/// synthetic trace, and the per-element fit report (used by the figure and
/// error-audit binaries).
pub fn run_with_fits(
    app: &dyn SpmdApp,
    training: &[u32],
    target: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
    extrap_cfg: &ExtrapolationConfig,
) -> (Vec<TaskTrace>, TaskTrace, Vec<ElementFit>) {
    let traces = training_traces(app, training, machine, cfg);
    let (extrapolated, fits) =
        extrapolate_signature_detailed(&traces, target, extrap_cfg).expect("valid ladder");
    (traces, extrapolated, fits)
}

/// Memory-op-weighted cumulative hit rate of a block at `level`.
pub fn block_hit_rate(block: &BlockRecord, level: usize) -> f64 {
    let mut w = 0.0;
    let mut acc = 0.0;
    for i in &block.instrs {
        if i.features.mem_ops > 0.0 {
            w += i.features.mem_ops;
            acc += i.features.mem_ops * i.features.hit_rates[level];
        }
    }
    if w > 0.0 {
        acc / w
    } else {
        1.0
    }
}

/// Prints a fixed-width table header and separator.
pub fn print_header(cols: &[&str], widths: &[usize]) {
    let row: Vec<String> = cols
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", row.join("  "));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", sep.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_constants_match_the_paper() {
        assert_eq!(SPECFEM_TRAINING, [96, 384, 1536]);
        assert_eq!(SPECFEM_TARGET, 6144);
        assert_eq!(UH3D_TRAINING, [1024, 2048, 4096]);
        assert_eq!(UH3D_TARGET, 8192);
        assert_eq!(target_machine().name, "bluewaters-phase1");
    }

    #[test]
    fn table1_row_driver_works_at_miniature_scale() {
        let app = xtrace_apps::StencilProxy::small();
        let machine = presets::cray_xt5();
        let row = run_table1_row(
            &app,
            &[2, 4, 8],
            32,
            &machine,
            &TracerConfig::fast(),
            &ExtrapolationConfig::default(),
        );
        assert!(row.measured.total_seconds > 0.0);
        assert!(row.extrap_error().is_finite());
        assert!(row.collected_error() < 0.3);
        assert!(row.prediction_gap().is_finite());
    }

    #[test]
    fn block_hit_rate_weights_by_mem_ops() {
        let app = xtrace_apps::StencilProxy::small();
        let machine = presets::cray_xt5();
        let sig = collect_signature_with(&app, 2, &machine, &TracerConfig::fast());
        let b = &sig.longest_task().blocks[0];
        let hr = block_hit_rate(b, 0);
        assert!((0.0..=1.0).contains(&hr));
    }
}
