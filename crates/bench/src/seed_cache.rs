//! Frozen copy of the pre-optimization cache-simulation kernel.
//!
//! This is the hierarchy walker the repository shipped with before the
//! recency-ordered kernel landed in `crates/cache`: per-way LRU/FIFO
//! *stamps* updated on a monotonic tick, a two-pass `probe` + `fill` over
//! each set, a division by the L1 line size on every reference, and no
//! last-line fast path. It exists solely as the regression baseline for
//! `bench_collect`, so "N× faster than the seed serial path" stays a
//! measured number as the optimized kernel evolves. Do not "fix" or speed
//! this module up — its slowness is the point.
//!
//! Replacement semantics match the optimized kernel for LRU and FIFO
//! (identical hit/miss decisions); `Random` draws a different (equally
//! deterministic) victim sequence, which the collection benches never
//! exercise.

use xtrace_cache::{CacheLevelConfig, HierarchyConfig, Replacement};
use xtrace_ir::rng::SplitMix64;
use xtrace_ir::{AddressPattern, BlockId, InstrId, InstrKind, MemAccess, MemOp, Program};

const EMPTY: u64 = u64::MAX;

/// Frozen copy of the seed's address-stream generator: one
/// [`AddressPattern::offset`] evaluation — two 64-bit divisions — per
/// dynamic reference, exactly as `AccessStream` worked before the
/// incremental cursors landed in `crates/ir`. Baseline only; see the
/// module docs.
#[derive(Debug, Clone)]
pub struct SeedAccessStream {
    specs: Vec<SeedMemSpec>,
}

#[derive(Debug, Clone)]
struct SeedMemSpec {
    instr: InstrId,
    base: u64,
    size: u64,
    elem_bytes: u32,
    bytes: u32,
    pattern: AddressPattern,
    is_store: bool,
    repeat: u32,
    seed: u64,
    count: u64,
}

impl SeedAccessStream {
    /// Same per-instruction seed derivation as `AccessStream::new`.
    pub fn new(program: &Program, block_id: BlockId, seed: u64) -> Self {
        let block = program.block(block_id);
        let specs = block
            .instrs
            .iter()
            .enumerate()
            .filter_map(|(idx, ins)| match ins.kind {
                InstrKind::Mem {
                    op,
                    region,
                    bytes,
                    pattern,
                } => {
                    let r = program.region(region);
                    Some(SeedMemSpec {
                        instr: InstrId(idx as u32),
                        base: program.region_base(region),
                        size: r.bytes,
                        elem_bytes: r.elem_bytes,
                        bytes,
                        pattern,
                        is_store: matches!(op, MemOp::Store),
                        repeat: ins.repeat,
                        seed: SplitMix64::mix(seed ^ (u64::from(block_id.0) << 32) ^ idx as u64),
                        count: 0,
                    })
                }
                InstrKind::Fp { .. } => None,
            })
            .collect();
        Self { specs }
    }

    /// Runs `iters` loop iterations, calling `sink` per reference.
    pub fn run_iterations(&mut self, iters: u64, sink: &mut impl FnMut(MemAccess)) {
        for _ in 0..iters {
            for spec in &mut self.specs {
                for _ in 0..spec.repeat {
                    let off =
                        spec.pattern
                            .offset(spec.count, spec.size, spec.elem_bytes, spec.seed);
                    spec.count += 1;
                    sink(MemAccess {
                        instr: spec.instr,
                        addr: spec.base + off,
                        bytes: spec.bytes,
                        is_store: spec.is_store,
                    });
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Level {
    line_shift: u32,
    set_mask: u64,
    assoc: usize,
    /// `sets * assoc` line addresses (already shifted), `EMPTY` when invalid.
    tags: Vec<u64>,
    /// Parallel recency (LRU) or fill-order (FIFO) stamps.
    stamp: Vec<u64>,
    replacement: Replacement,
    tick: u64,
    rng: u64,
}

impl Level {
    fn new(cfg: &CacheLevelConfig) -> Self {
        let sets = cfg.sets();
        let ways = sets as usize * cfg.assoc as usize;
        Self {
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            assoc: cfg.assoc as usize,
            tags: vec![EMPTY; ways],
            stamp: vec![0; ways],
            replacement: cfg.replacement,
            tick: 0,
            rng: 0x243F_6A88_85A3_08D3,
        }
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line & self.set_mask) as usize;
        let start = set * self.assoc;
        start..start + self.assoc
    }

    /// Looks the line up; on hit updates recency and returns true.
    #[inline]
    fn probe(&mut self, line: u64) -> bool {
        let range = self.set_range(line);
        for w in range {
            if self.tags[w] == line {
                if self.replacement == Replacement::Lru {
                    self.tick += 1;
                    self.stamp[w] = self.tick;
                }
                return true;
            }
        }
        false
    }

    /// Installs the line, evicting per policy if the set is full.
    #[inline]
    fn fill(&mut self, line: u64) {
        let range = self.set_range(line);
        self.tick += 1;
        let mut victim = range.start;
        let mut victim_stamp = u64::MAX;
        for w in range.clone() {
            if self.tags[w] == EMPTY {
                self.tags[w] = line;
                self.stamp[w] = self.tick;
                return;
            }
            if self.stamp[w] < victim_stamp {
                victim_stamp = self.stamp[w];
                victim = w;
            }
        }
        if self.replacement == Replacement::Random {
            self.rng ^= self.rng << 13;
            self.rng ^= self.rng >> 7;
            self.rng ^= self.rng << 17;
            victim = range.start + (self.rng % self.assoc as u64) as usize;
        }
        self.tags[victim] = line;
        self.stamp[victim] = self.tick;
    }
}

/// The seed's multi-level simulator: same interface subset as
/// `xtrace_cache::CacheHierarchy` (`new` / `depth` / `access`).
#[derive(Debug, Clone)]
pub struct SeedCacheHierarchy {
    levels: Vec<Level>,
    l1_line_bytes: u64,
}

impl SeedCacheHierarchy {
    /// Builds the simulator for a validated configuration.
    pub fn new(config: HierarchyConfig) -> Self {
        config
            .validate()
            .expect("invalid cache hierarchy configuration");
        let levels = config.levels.iter().map(Level::new).collect();
        let l1_line_bytes = u64::from(config.levels[0].line_bytes);
        Self {
            levels,
            l1_line_bytes,
        }
    }

    /// Number of cache levels (`access` returning `depth()` means memory).
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Simulates one reference of `bytes` bytes at `addr`; returns the hit
    /// level (`0` = L1, …, `depth()` = main memory).
    #[inline]
    pub fn access(&mut self, addr: u64, bytes: u32) -> u8 {
        let bytes = u64::from(bytes.max(1));
        let first = addr / self.l1_line_bytes;
        let last = (addr + bytes - 1) / self.l1_line_bytes;
        if first == last {
            return self.access_chunk(addr);
        }
        let mut worst = 0u8;
        for line in first..=last {
            worst = worst.max(self.access_chunk(line * self.l1_line_bytes));
        }
        worst
    }

    #[inline]
    fn access_chunk(&mut self, addr: u64) -> u8 {
        let depth = self.levels.len();
        let mut hit = depth;
        for (i, level) in self.levels.iter_mut().enumerate() {
            let line = level.line_of(addr);
            if level.probe(line) {
                hit = i;
                break;
            }
        }
        for level in self.levels[..hit].iter_mut() {
            let line = level.line_of(addr);
            level.fill(line);
        }
        hit as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_cache::CacheHierarchy;
    use xtrace_ir::rng::SplitMix64;

    /// The baseline must agree with the optimized kernel access-for-access
    /// under LRU — otherwise "speedup vs seed" compares different work.
    #[test]
    fn seed_kernel_matches_optimized_kernel_under_lru() {
        let cfg = HierarchyConfig::new(
            vec![
                CacheLevelConfig::lru("L1", 4 * 1024, 64, 4, 1.0),
                CacheLevelConfig::lru("L2", 32 * 1024, 64, 8, 10.0),
            ],
            100.0,
        )
        .unwrap();
        let mut seed = SeedCacheHierarchy::new(cfg.clone());
        let mut opt = CacheHierarchy::try_new(cfg).unwrap();
        let mut rng = SplitMix64::new(7);
        for i in 0..200_000u64 {
            // Mix of strided sweeps and random jumps over 128 KiB.
            let addr = if i % 3 == 0 {
                rng.next_u64() % (128 * 1024)
            } else {
                (i * 24) % (128 * 1024)
            };
            assert_eq!(
                seed.access(addr, 8),
                opt.access(addr, 8),
                "divergence at ref {i} addr {addr:#x}"
            );
        }
    }
}
