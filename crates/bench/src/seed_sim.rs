//! Frozen seed replay path, for `bench_convolve` baselines.
//!
//! This module is a faithful copy of the convolution/replay stage as it
//! stood before the scale-out work: the string-keyed per-group compute
//! model, full per-rank program materialization, and the per-rank
//! bulk-synchronous walk that re-validates shapes and clones the arrival
//! vector every event. It exists so the bench can time the *seed* code
//! against today's deduplicated, interned, class-based path and assert the
//! reports never drifted. **Do not "improve" this code** — its value is
//! that it does not change.

use std::collections::HashMap;

use xtrace_machine::MachineProfile;
use xtrace_psins::try_predict_runtime;
use xtrace_spmd::{ComputeModel, RankEvent, RankProgram, RankTimes, SimReport, SpmdApp};
use xtrace_tracer::TaskTrace;

/// The seed's [`ComputeModel`]: per group, a block-name → seconds map,
/// probed by `String` key on every charge.
pub struct SeedGroupComputeModel {
    /// Per group: block name → convolved seconds per loop iteration.
    per_iteration: Vec<HashMap<String, f64>>,
    /// Rank → group index.
    assignment: Vec<usize>,
}

impl SeedGroupComputeModel {
    /// Builds the model exactly as the seed did: one serial
    /// [`predict_runtime`] convolution per group, no memoization.
    pub fn new(groups: &[(TaskTrace, u64)], nranks: u32, machine: &MachineProfile) -> Self {
        let covered: u64 = groups.iter().map(|(_, n)| n).sum();
        assert!(
            covered >= u64::from(nranks),
            "groups cover {covered} ranks, need {nranks}"
        );
        let per_iteration = groups
            .iter()
            .map(|(trace, _)| {
                let comm = xtrace_spmd::CommProfile {
                    nranks,
                    longest_rank: trace.rank,
                    events: vec![],
                    compute_imbalance: 1.0,
                };
                let pred = try_predict_runtime(trace, &comm, machine).unwrap();
                pred.per_block
                    .iter()
                    .zip(&trace.blocks)
                    .map(|(bt, block)| {
                        let units = (block.invocations.max(1) * block.iterations.max(1)) as f64;
                        (bt.name.clone(), bt.combined_s / units)
                    })
                    .collect()
            })
            .collect();
        let mut assignment = Vec::with_capacity(nranks as usize);
        for (gi, (_, n)) in groups.iter().enumerate() {
            for _ in 0..*n {
                if assignment.len() < nranks as usize {
                    assignment.push(gi);
                }
            }
        }
        Self {
            per_iteration,
            assignment,
        }
    }
}

impl ComputeModel for SeedGroupComputeModel {
    fn seconds(
        &mut self,
        rank: u32,
        program: &xtrace_ir::Program,
        block: xtrace_ir::BlockId,
        invocations: u64,
    ) -> f64 {
        let group = self.assignment[rank as usize];
        let b = program.block(block);
        self.per_iteration[group]
            .get(&b.name)
            .copied()
            .unwrap_or(0.0)
            * b.iterations as f64
            * invocations as f64
    }
}

/// The seed's whole-application replay: materialize every rank's program,
/// then walk ranks one at a time.
pub fn seed_replay_groups(
    app: &dyn SpmdApp,
    nranks: u32,
    groups: &[(TaskTrace, u64)],
    machine: &MachineProfile,
) -> SimReport {
    let programs: Vec<RankProgram> = (0..nranks).map(|r| app.rank_program(r, nranks)).collect();
    let mut model = SeedGroupComputeModel::new(groups, nranks, machine);
    seed_simulate_programs(&programs, &machine.net, &mut model)
}

/// The seed's bulk-synchronous engine, verbatim: per-rank shape
/// re-validation up front, an `arrivals` clone per event, and one
/// `compute.seconds` call per rank per compute event.
pub fn seed_simulate_programs(
    programs: &[RankProgram],
    net: &xtrace_spmd::NetworkModel,
    compute: &mut dyn ComputeModel,
) -> SimReport {
    let nranks = programs.len();
    assert!(nranks > 0, "need at least one rank");
    let nevents = programs[0].events.len();
    for (r, p) in programs.iter().enumerate() {
        if let Err(e) = p.validate(nranks as u32) {
            panic!("rank {r}: {e}");
        }
        assert_eq!(
            p.events.len(),
            nevents,
            "rank {r} event count differs from rank 0 (SPMD violation)"
        );
        for (i, e) in p.events.iter().enumerate() {
            assert_eq!(
                e.kind_tag(),
                programs[0].events[i].kind_tag(),
                "rank {r} event {i} kind differs from rank 0 (SPMD violation)"
            );
        }
    }

    let mut clocks = vec![0.0f64; nranks];
    let mut times = vec![RankTimes::default(); nranks];

    for i in 0..nevents {
        // Collectives need the pre-event arrival times of all ranks.
        let arrivals = clocks.clone();
        let is_collective = matches!(
            programs[0].events[i],
            RankEvent::Allreduce { .. }
                | RankEvent::Broadcast { .. }
                | RankEvent::Alltoall { .. }
                | RankEvent::Barrier { .. }
        );
        let global_arrival = if is_collective {
            arrivals.iter().cloned().fold(f64::MIN, f64::max)
        } else {
            0.0
        };

        for (r, prog) in programs.iter().enumerate() {
            match &prog.events[i] {
                RankEvent::Compute { block, invocations } => {
                    let dt = compute.seconds(r as u32, &prog.program, *block, *invocations);
                    debug_assert!(dt.is_finite() && dt >= 0.0);
                    clocks[r] += dt;
                    times[r].compute_s += dt;
                }
                RankEvent::Exchange {
                    neighbors,
                    bytes_per_neighbor,
                    repeats,
                } => {
                    let mut sync = arrivals[r];
                    for &n in neighbors {
                        assert!(
                            (n as usize) < nranks,
                            "rank {r} exchanges with out-of-range neighbor {n}"
                        );
                        sync = sync.max(arrivals[n as usize]);
                    }
                    let cost =
                        net.exchange(neighbors.len() as u32, *bytes_per_neighbor) * *repeats as f64;
                    clocks[r] = sync + cost;
                    times[r].comm_s += clocks[r] - arrivals[r];
                }
                RankEvent::Allreduce { bytes, repeats } => {
                    let cost = net.allreduce(nranks as u32, *bytes) * *repeats as f64;
                    clocks[r] = global_arrival + cost;
                    times[r].comm_s += clocks[r] - arrivals[r];
                }
                RankEvent::Broadcast { bytes, repeats } => {
                    let cost = net.broadcast(nranks as u32, *bytes) * *repeats as f64;
                    clocks[r] = global_arrival + cost;
                    times[r].comm_s += clocks[r] - arrivals[r];
                }
                RankEvent::Alltoall {
                    bytes_per_pair,
                    repeats,
                } => {
                    let cost = net.alltoall(nranks as u32, *bytes_per_pair) * *repeats as f64;
                    clocks[r] = global_arrival + cost;
                    times[r].comm_s += clocks[r] - arrivals[r];
                }
                RankEvent::Barrier { repeats } => {
                    let cost = net.barrier(nranks as u32) * *repeats as f64;
                    clocks[r] = global_arrival + cost;
                    times[r].comm_s += clocks[r] - arrivals[r];
                }
            }
        }
    }

    for (r, t) in times.iter_mut().enumerate() {
        t.finish_s = clocks[r];
    }
    SimReport {
        total_seconds: clocks.iter().cloned().fold(0.0, f64::max),
        ranks: times,
    }
}
