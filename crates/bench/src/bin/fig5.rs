//! **Figure 5** — "Logarithmic Model captures the scaling behavior of the
//! number of memory operations": the dynamic memory-operation count of a
//! single UH3D instruction versus core count, with all four canonical fits.
//!
//! The subject is the `particle-sort` block (tree-staged binning): its trip
//! count grows with ⌈log₂ P⌉, putting its per-instruction memory-operation
//! totals in the 10⁹–10¹⁰ range of the paper's figure and making the
//! logarithmic form the clear winner.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin fig5`

use xtrace_bench::{paper_tracer, paper_uh3d, print_header, target_machine, UH3D_TARGET};
use xtrace_extrap::{fit_all, select_best, CanonicalForm, SelectionCriterion};
use xtrace_tracer::collect_signature_with;

fn main() {
    let app = paper_uh3d();
    let machine = target_machine();
    let tracer = paper_tracer();
    let counts = [1024u32, 2048, 4096, 8192];
    let block = "particle-sort";
    let instr = 0usize; // the particle load

    println!(
        "Figure 5: memory operations of UH3D `{block}` instruction {instr} vs core\n\
         count, with all four canonical fits\n"
    );

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &p in &counts {
        let sig = collect_signature_with(&app, p, &machine, &tracer);
        let b = sig.longest_task().block(block).expect("block present");
        xs.push(f64::from(p));
        ys.push(b.instrs[instr].features.mem_ops);
    }

    let train_x = &xs[..3];
    let train_y = &ys[..3];
    let fits = fit_all(&CanonicalForm::PAPER_SET, train_x, train_y);

    print_header(
        &["Cores", "measured", "Log", "Exp", "Linear", "Constant"],
        &[6, 11, 11, 11, 11, 11],
    );
    for (i, &x) in xs.iter().enumerate() {
        let mut row = format!("{:>6}  {:>11.3e}", x as u32, ys[i]);
        for form in [
            CanonicalForm::Logarithmic,
            CanonicalForm::Exponential,
            CanonicalForm::Linear,
            CanonicalForm::Constant,
        ] {
            let v = fits
                .iter()
                .find(|f| f.form == form)
                .map(|f| f.eval(x))
                .unwrap_or(f64::NAN);
            row.push_str(&format!("  {v:>11.3e}"));
        }
        println!("{row}");
    }

    let best = select_best(
        &CanonicalForm::PAPER_SET,
        train_x,
        train_y,
        SelectionCriterion::Sse,
    );
    println!("\nbest fit: {} (SSE {:.3e})", best.form.label(), best.sse);
    let predicted = best.eval(f64::from(UH3D_TARGET));
    println!(
        "extrapolated count at {} cores: {:.3e} (measured {:.3e}, err {:.2}%)",
        UH3D_TARGET,
        predicted,
        ys[3],
        100.0 * (predicted - ys[3]).abs() / ys[3]
    );
    println!(
        "\npaper: counts of order 1e9–1.6e10 with the log model clearly the best\n\
         fit; ours sit at {:.1e}–{:.1e}.",
        ys[0], ys[3]
    );
    assert_eq!(
        best.form,
        CanonicalForm::Logarithmic,
        "figure 5's log-model result did not reproduce"
    );
}
