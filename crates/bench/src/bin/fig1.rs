//! **Figure 1** — measured bandwidth as a function of cache hit rates for
//! a two-cache-level Opteron (the MultiMAPS surface).
//!
//! The paper plots the MultiMAPS benchmark's bandwidth measurements as a
//! surface over (L1 hit rate, L2 hit rate). This binary runs the benchmark
//! analog against the Opteron preset and prints the surface points —
//! working set, stride, observed hit rates, achieved bandwidth — followed
//! by an aggregated hit-rate-bucket view of the surface (the printable
//! equivalent of the 3-D plot).
//!
//! Run with: `cargo run --release -p xtrace-bench --bin fig1`

use xtrace_bench::print_header;
use xtrace_machine::presets;

fn main() {
    let machine = presets::opteron();
    println!(
        "Figure 1: MultiMAPS bandwidth surface for {} (2 cache levels,\n\
         {:.1} GHz; L1 {} KB, L2 {} KB)\n",
        machine.name,
        machine.clock_hz / 1e9,
        machine.hierarchy.levels[0].size_bytes / 1024,
        machine.hierarchy.levels[1].size_bytes / 1024,
    );

    let surface = machine.surface();
    println!("sweep points ({}):", surface.points.len());
    print_header(
        &["working set", "stride", "L1 HR", "L2 HR", "GB/s"],
        &[12, 8, 7, 7, 8],
    );
    for p in &surface.points {
        let ws = if p.working_set >= 1 << 20 {
            format!("{:.1} MiB", p.working_set as f64 / (1 << 20) as f64)
        } else {
            format!("{:.1} KiB", p.working_set as f64 / 1024.0)
        };
        let stride = match p.stride {
            Some(s) => format!("{s}"),
            None => "rand".into(),
        };
        println!(
            "{:>12}  {:>8}  {:>6.3}  {:>6.3}  {:>8.2}",
            ws,
            stride,
            p.hit_rates[0],
            p.hit_rates[1],
            p.bandwidth_bps / 1e9
        );
    }

    // The surface view: mean bandwidth per (L1, L2) hit-rate bucket.
    println!("\nsurface (mean GB/s per hit-rate bucket; rows = L1 HR, cols = L2 HR):\n");
    let buckets = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0];
    print!("{:>11}", "L1\\L2");
    for w in buckets.windows(2) {
        print!("  {:>9}", format!("{:.2}-{:.2}", w[0], w[1]));
    }
    println!();
    for l1w in buckets.windows(2) {
        print!("{:>11}", format!("{:.2}-{:.2}", l1w[0], l1w[1]));
        for l2w in buckets.windows(2) {
            let sel: Vec<f64> = surface
                .points
                .iter()
                .filter(|p| {
                    p.hit_rates[0] >= l1w[0]
                        && p.hit_rates[0] <= l1w[1]
                        && p.hit_rates[1] >= l2w[0]
                        && p.hit_rates[1] <= l2w[1]
                })
                .map(|p| p.bandwidth_bps / 1e9)
                .collect();
            if sel.is_empty() {
                print!("  {:>9}", "-");
            } else {
                print!("  {:>9.2}", sel.iter().sum::<f64>() / sel.len() as f64);
            }
        }
        println!();
    }

    let (min, max) = surface.bandwidth_range();
    println!(
        "\nbandwidth spans {:.2} – {:.2} GB/s ({}x): cache-resident unit-stride\n\
         sweeps at the top-right corner, memory-resident random access at the\n\
         bottom-left — the paper's surface shape.",
        min / 1e9,
        max / 1e9,
        (max / min).round()
    );
}
