//! **Ablation: number of training core counts.**
//!
//! Section IV: "using more than three core counts could improve the quality
//! of the fit but it became evident during testing that three generally
//! provided adequate accuracy." This ablation extrapolates SPECFEM3D to
//! 6144 cores from ladders of 2–5 training counts and reports how the
//! prediction gap (extrapolated vs collected trace) and the element errors
//! respond.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin ablation_training_points`

use xtrace_bench::{
    paper_specfem, paper_tracer, print_header, run_table1_row, target_machine, SPECFEM_TARGET,
};
use xtrace_extrap::ExtrapolationConfig;

fn main() {
    let app = paper_specfem();
    let machine = target_machine();
    let tracer = paper_tracer();

    let ladders: [&[u32]; 4] = [
        &[384, 1536],
        &[96, 384, 1536],
        &[96, 384, 1536, 3072],
        &[48, 96, 384, 1536, 3072],
    ];

    println!(
        "Ablation: training-ladder size, SPECFEM3D -> {SPECFEM_TARGET} cores\n\
         (paper: three training counts generally provide adequate accuracy)\n"
    );
    print_header(
        &["ladder", "extrap (s)", "coll (s)", "gap %", "err %"],
        &[28, 10, 9, 6, 6],
    );

    for ladder in ladders {
        let cfg = ExtrapolationConfig {
            min_traces: ladder.len(),
            ..ExtrapolationConfig::default()
        };
        let row = run_table1_row(&app, ladder, SPECFEM_TARGET, &machine, &tracer, &cfg);
        println!(
            "{:>28}  {:>10.1}  {:>9.1}  {:>5.2}  {:>5.2}",
            format!("{ladder:?}"),
            row.extrap.total_seconds,
            row.collected.total_seconds,
            100.0 * row.prediction_gap(),
            100.0 * row.extrap_error()
        );
    }

    println!(
        "\nexpected shape: two points pin every 2-parameter form exactly (no\n\
         residual to select on), so accuracy is fragile; three points suffice;\n\
         four and five refine the fits only marginally — the paper's finding."
    );
}
