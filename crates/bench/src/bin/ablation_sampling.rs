//! **Ablation: trace-sampling budget.**
//!
//! Signature collection samples each block's address stream (counts stay
//! exact; hit rates are measured over a bounded window after a warmup).
//! The window must be large enough that capacity effects on regions bigger
//! than the last-level cache are visible — a window that itself fits in
//! cache reports resident-looking hit rates for thrashing sweeps. This
//! ablation sweeps the per-block budget and reports its effect on the
//! Table-I quantities.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin ablation_sampling`

use xtrace_bench::{
    paper_specfem, print_header, run_table1_row, target_machine, SPECFEM_TARGET, SPECFEM_TRAINING,
};
use xtrace_extrap::ExtrapolationConfig;
use xtrace_tracer::TracerConfig;

fn main() {
    let app = paper_specfem();
    let machine = target_machine();
    let extrap_cfg = ExtrapolationConfig::default();

    println!(
        "Ablation: per-block sampling budget, SPECFEM3D -> {SPECFEM_TARGET} cores\n\
         (counts are always exact; the budget bounds hit-rate estimation)\n"
    );
    print_header(
        &[
            "budget (refs)",
            "extrap (s)",
            "coll (s)",
            "measured",
            "gap %",
            "err %",
        ],
        &[13, 10, 9, 9, 6, 6],
    );

    for shift in [16u32, 18, 20, 23] {
        let tracer = TracerConfig {
            max_sampled_refs_per_block: 1 << shift,
            ..TracerConfig::default()
        };
        let row = run_table1_row(
            &app,
            &SPECFEM_TRAINING,
            SPECFEM_TARGET,
            &machine,
            &tracer,
            &extrap_cfg,
        );
        println!(
            "{:>13}  {:>10.1}  {:>9.1}  {:>9.1}  {:>5.2}  {:>5.2}",
            format!("2^{shift}"),
            row.extrap.total_seconds,
            row.collected.total_seconds,
            row.measured.total_seconds,
            100.0 * row.prediction_gap(),
            100.0 * row.extrap_error()
        );
    }

    println!(
        "\nexpected shape: the extrapolated-vs-collected gap is robust at every\n\
         budget (both traces carry the same sampling bias), while the absolute\n\
         runtime estimates drift at small budgets — the window no longer spans\n\
         the large regions' capacity behaviour. The default (2^23) is sized so\n\
         the streamed window footprint exceeds every preset's last-level cache."
    );
}
