//! **Extension: energy at scale from extrapolated traces.**
//!
//! The paper motivates its feature set as "important for both performance
//! and energy" (Section I); the surrounding PMaC work convolves the same
//! signatures with per-operation energy costs. This experiment predicts the
//! longest task's energy budget at the target scale from the extrapolated
//! trace and validates it against the collected-trace prediction — the
//! Table-I comparison, for joules.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin energy`

use xtrace_bench::{
    paper_specfem, paper_tracer, paper_uh3d, print_header, target_machine, training_traces,
    ProxyAppDyn, SPECFEM_TARGET, SPECFEM_TRAINING, UH3D_TARGET, UH3D_TRAINING,
};
use xtrace_extrap::{extrapolate_signature, ExtrapolationConfig};
use xtrace_psins::{relative_error, try_predict_energy};
use xtrace_tracer::collect_signature_with;

fn run(app: &dyn ProxyAppDyn, training: &[u32], target: u32) {
    let machine = target_machine();
    let tracer = paper_tracer();
    let spmd = app.as_spmd_dyn();
    let traces = training_traces(spmd, training, &machine, &tracer);
    let extrapolated =
        extrapolate_signature(&traces, target, &ExtrapolationConfig::default()).unwrap();
    let collected = collect_signature_with(spmd, target, &machine, &tracer);
    let comm = app.comm_profile_dyn(target);

    let e_ex = try_predict_energy(&extrapolated, &comm, &machine).unwrap();
    let e_coll = try_predict_energy(collected.longest_task(), &collected.comm, &machine).unwrap();

    println!("\n== {} @ {target} cores ==", spmd.name());
    print_header(
        &[
            "trace",
            "memory (J)",
            "fp (J)",
            "comm (J)",
            "static (J)",
            "total (J)",
            "avg W",
        ],
        &[8, 10, 8, 8, 10, 10, 6],
    );
    for (label, e) in [("Extrap.", &e_ex), ("Coll.", &e_coll)] {
        println!(
            "{:>8}  {:>10.1}  {:>8.1}  {:>8.2}  {:>10.1}  {:>10.1}  {:>6.1}",
            label,
            e.memory_joules,
            e.fp_joules,
            e.comm_joules,
            e.static_joules,
            e.total_joules,
            e.avg_watts
        );
    }
    println!(
        "extrapolated-vs-collected energy gap: {:.2}%",
        100.0 * relative_error(e_ex.total_joules, e_coll.total_joules)
    );
}

fn main() {
    println!(
        "Energy-at-scale from extrapolated signatures (per-task budget on {})",
        target_machine().name
    );
    run(&paper_specfem(), &SPECFEM_TRAINING, SPECFEM_TARGET);
    run(&paper_uh3d(), &UH3D_TRAINING, UH3D_TARGET);
    println!(
        "\nthe same synthetic feature vectors that predict runtime predict the\n\
         energy budget: counts drive dynamic energy, hit rates apportion memory\n\
         references to per-level costs, and the runtime prediction integrates\n\
         the static floor."
    );
}
