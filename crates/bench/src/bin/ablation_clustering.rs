//! **Ablation: single-task vs clustered extrapolation (Section VI).**
//!
//! The paper extrapolates only the most computationally demanding task and
//! suggests k-means clustering of tasks as future work: "cluster MPI-tasks
//! with similar properties and then use the 'centroid' file from each
//! cluster as a base to extrapolate." This ablation compares the two on
//! the SPECFEM3D proxy, whose population genuinely has two behaviours
//! (master vs workers).
//!
//! Run with: `cargo run --release -p xtrace-bench --bin ablation_clustering`

use xtrace_apps::{ProxyApp, SpecfemProxy};
use xtrace_bench::print_header;
use xtrace_extrap::{
    cluster_tasks, extrapolate_clusters, extrapolate_signature, ExtrapolationConfig,
};
use xtrace_machine::presets;
use xtrace_psins::{relative_error, try_predict_runtime};
use xtrace_tracer::{collect_ranks, collect_signature_with, TracerConfig};

fn main() {
    // A mid-scale configuration so tracing a dozen ranks per count stays
    // quick.
    let mut app = SpecfemProxy::small();
    app.cfg.total_elements = 49_152;
    app.cfg.timesteps = 20;
    app.cfg.collect_per_rank = 4096;
    app.cfg.source_iters = 1_000_000;
    let machine = presets::cray_xt5();
    let tracer = TracerConfig::default();
    let training = [24u32, 96, 384];
    let target = 1536u32;
    let sample_ranks: Vec<u32> = (0..12).collect();
    let cfg = ExtrapolationConfig::default();

    println!(
        "Ablation: longest-task vs k-means clustered extrapolation\n\
         SPECFEM3D proxy, {training:?} -> {target} cores, 12 tasks traced per count\n"
    );

    // Cluster structure at the largest training count.
    let traces_at_384 = collect_ranks(&app, &sample_ranks, 384, &machine, &tracer);
    let clustering = cluster_tasks(&traces_at_384, 2);
    println!(
        "cluster structure at 384 cores: master cluster {{rank 0}} alone = {}",
        clustering.members(clustering.assignments[0]) == vec![0]
    );

    // Reference: collected trace at the target.
    let collected = collect_signature_with(&app, target, &machine, &tracer);
    let comm = app.comm_profile(target);
    let p_coll = try_predict_runtime(collected.longest_task(), &collected.comm, &machine).unwrap();

    // Variant A: the paper's methodology (longest task only).
    let longest: Vec<_> = training
        .iter()
        .map(|&p| {
            collect_signature_with(&app, p, &machine, &tracer)
                .longest_task()
                .clone()
        })
        .collect();
    let ex_single = extrapolate_signature(&longest, target, &cfg).expect("valid ladder");
    let p_single = try_predict_runtime(&ex_single, &comm, &machine).unwrap();

    // Variant B: per-cluster extrapolation; the heaviest cluster's trace
    // plays the longest-task role.
    let per_count: Vec<_> = training
        .iter()
        .map(|&p| (p, collect_ranks(&app, &sample_ranks, p, &machine, &tracer)))
        .collect();
    for k in [2usize, 4] {
        let clustered =
            extrapolate_clusters(&per_count, target, k, &cfg).expect("cluster extrapolation");
        let p_clustered = try_predict_runtime(&clustered[0], &comm, &machine).unwrap();
        println!(
            "k = {k}: {} clusters extrapolated; heaviest-cluster prediction {:.3} s",
            clustered.len(),
            p_clustered.total_seconds
        );
    }

    println!();
    print_header(
        &["method", "predicted (s)", "vs collected %"],
        &[22, 13, 14],
    );
    println!(
        "{:>22}  {:>13.3}  {:>13.2}",
        "longest task (paper)",
        p_single.total_seconds,
        100.0 * relative_error(p_single.total_seconds, p_coll.total_seconds)
    );
    let clustered = extrapolate_clusters(&per_count, target, 2, &cfg).unwrap();
    let p_clustered = try_predict_runtime(&clustered[0], &comm, &machine).unwrap();
    println!(
        "{:>22}  {:>13.3}  {:>13.2}",
        "k-means centroid (k=2)",
        p_clustered.total_seconds,
        100.0 * relative_error(p_clustered.total_seconds, p_coll.total_seconds)
    );
    println!(
        "{:>22}  {:>13.3}  {:>13}",
        "collected trace", p_coll.total_seconds, "-"
    );

    println!(
        "\nexpected shape: with a master/worker population the heaviest cluster's\n\
         centroid IS the longest task, so both methods agree at the application\n\
         level — but the clustered variant additionally yields a worker-cluster\n\
         trace, the per-group signature the paper wants for synthesizing all P\n\
         trace files instead of just one."
    );
}
