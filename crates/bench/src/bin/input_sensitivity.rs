//! **Extension: input-parameter sensitivity (Section VI).**
//!
//! "One could attempt to determine how working set size of a computational
//! phase is affected by the size or composition of an input file … a
//! plausible approach is to employ the same scaling and extrapolating
//! strategies used in this work to capture and model how changes in input
//! set parameters changes the feature vectors."
//!
//! Here the abscissa is the SPECFEM3D proxy's *mesh size* at a fixed core
//! count, in two regimes:
//!
//! * **within-regime** — training footprints already exceed the last-level
//!   cache, so hit rates are stable and the linear growth of the worker
//!   kernels extrapolates cleanly to a 4× mesh;
//! * **across a cache cliff** — the target mesh pushes the per-task
//!   footprint past L3 *outside* the training range. No canonical form can
//!   anticipate a regime change it never saw: the hit-rate elements
//!   extrapolate smoothly while the truth falls off a cliff. This is the
//!   concrete "additional challenge" the paper's future-work section
//!   gestures at.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin input_sensitivity`

use xtrace_apps::{ProxyApp, SpecfemProxy};
use xtrace_bench::{paper_tracer, print_header};
use xtrace_extrap::{extrapolate_series, CanonicalForm, ExtrapolationConfig};
use xtrace_machine::presets;
use xtrace_psins::{relative_error, try_predict_runtime};
use xtrace_tracer::collect_signature_with;

fn app_with_mesh(elements: u64) -> SpecfemProxy {
    let mut app = SpecfemProxy::paper_scale();
    app.cfg.total_elements = elements;
    app
}

/// Returns (application-level gap, stiffness-kernel gap).
fn run_scenario(label: &str, train_sizes: [u64; 3], target_size: u64, p: u32) -> (f64, f64) {
    let machine = presets::cray_xt5();
    let tracer = paper_tracer();
    let points: Vec<(f64, xtrace_tracer::TaskTrace)> = train_sizes
        .iter()
        .map(|&n| {
            let sig = collect_signature_with(&app_with_mesh(n), p, &machine, &tracer);
            (n as f64, sig.longest_task().clone())
        })
        .collect();

    // The worker kernels grow linearly with the mesh and the boundary work
    // as a power of it, so add the power form. NOT the quadratic: it
    // interpolates three points exactly and extrapolates wildly (see
    // ablation_forms).
    let cfg = ExtrapolationConfig {
        forms: vec![
            CanonicalForm::Constant,
            CanonicalForm::Linear,
            CanonicalForm::Logarithmic,
            CanonicalForm::Exponential,
            CanonicalForm::Power,
        ],
        ..ExtrapolationConfig::default()
    };
    let extrapolated = extrapolate_series(&points, target_size as f64, &cfg).expect("valid series");

    let target_app = app_with_mesh(target_size);
    let collected = collect_signature_with(&target_app, p, &machine, &tracer);
    let comm = target_app.comm_profile(p);
    let pe = try_predict_runtime(&extrapolated, &comm, &machine).unwrap();
    let pc = try_predict_runtime(collected.longest_task(), &collected.comm, &machine).unwrap();

    println!("\n-- {label} --");
    print_header(&["mesh elements", "trace", "runtime (s)"], &[13, 8, 12]);
    for (&n, (_, t)) in train_sizes.iter().zip(&points) {
        let a = app_with_mesh(n);
        let pr = try_predict_runtime(t, &a.comm_profile(p), &machine).unwrap();
        println!("{:>13}  {:>8}  {:>12.2}", n, "Coll.", pr.total_seconds);
    }
    println!(
        "{:>13}  {:>8}  {:>12.2}",
        target_size, "Extrap.", pe.total_seconds
    );
    println!(
        "{:>13}  {:>8}  {:>12.2}",
        target_size, "Coll.", pc.total_seconds
    );
    let gap = relative_error(pe.total_seconds, pc.total_seconds);
    println!("extrapolated-vs-collected gap: {:.2}%", 100.0 * gap);
    // The mesh-scaled kernel is where a locality-regime change shows up;
    // the master-rank work is mesh-independent and dilutes the total.
    let kernel = "stiffness-matmul";
    let ke = pe.per_block.iter().find(|b| b.name == kernel).unwrap();
    let kc = pc.per_block.iter().find(|b| b.name == kernel).unwrap();
    let kgap = relative_error(ke.combined_s, kc.combined_s);
    println!(
        "`{kernel}` block: {:.2} s extrapolated vs {:.2} s collected (gap {:.1}%)",
        ke.combined_s,
        kc.combined_s,
        100.0 * kgap
    );
    (gap, kgap)
}

fn main() {
    let p = 384u32;
    println!(
        "Section VI extension: input-parameter extrapolation\n\
         SPECFEM3D proxy at a fixed {p} cores; abscissa = mesh elements"
    );

    // Training footprints already past the 8 MB L3: hit rates stable,
    // counts linear in the mesh -> clean extrapolation.
    let (within_total, within_kernel) = run_scenario(
        "within-regime (all sizes past the L3 capacity)",
        [1_769_472, 3_538_944, 7_077_888],
        28_311_552,
        p,
    );

    // The target mesh crosses the L3 boundary outside the training range:
    // training footprints 1.7-6.9 MB are cache-resident, the 27.6 MB
    // target is not. The mesh-independent master work dilutes the total,
    // so the damage concentrates in the mesh-scaled kernel.
    let (_cliff_total, cliff_kernel) = run_scenario(
        "across the cache cliff (target leaves the trained regime)",
        [221_184, 442_368, 884_736],
        3_538_944,
        p,
    );

    println!(
        "\nthe per-element machinery extrapolates over any scalar input knob,\n\
         but only within a locality regime: counts grow linearly with the mesh\n\
         and fit exactly, while hit-rate cliffs the training range never saw\n\
         cannot be anticipated by any canonical form — the concrete challenge\n\
         behind the paper's input-sensitivity future work."
    );
    assert!(
        within_total < 0.2,
        "within-regime input extrapolation should track collected ({within_total})"
    );
    assert!(
        cliff_kernel > 2.0 * within_kernel.max(0.01),
        "the cliff should hit the mesh-scaled kernel hard ({cliff_kernel} vs {within_kernel})"
    );
}
