//! **Ablation: influence threshold.**
//!
//! Section IV fixes the influence cutoff at 0.1% of the task's memory (or
//! FP) operations and reports that every element above it extrapolates
//! within 20%. This ablation sweeps the threshold to show the trade-off it
//! encodes: lower thresholds audit more elements (and start admitting the
//! poorly-extrapolating strong-scaled ones); higher thresholds audit fewer.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin ablation_threshold`

use xtrace_bench::{
    paper_tracer, paper_uh3d, print_header, run_with_fits, target_machine, UH3D_TARGET,
    UH3D_TRAINING,
};
use xtrace_extrap::{element_errors, summarize, ExtrapolationConfig};
use xtrace_tracer::collect_signature_with;

fn main() {
    let app = paper_uh3d();
    let machine = target_machine();
    let tracer = paper_tracer();
    let cfg = ExtrapolationConfig::default();

    let (_t, extrapolated, _f) =
        run_with_fits(&app, &UH3D_TRAINING, UH3D_TARGET, &machine, &tracer, &cfg);
    let collected = collect_signature_with(&app, UH3D_TARGET, &machine, &tracer);
    let errors = element_errors(&extrapolated, collected.longest_task());

    println!(
        "Ablation: influence threshold, UH3D @ {UH3D_TARGET} cores\n\
         (paper uses 0.1%: every element above it within 20%)\n"
    );
    print_header(
        &[
            "threshold",
            "influential",
            "max err %",
            "mean err %",
            "under 20%",
        ],
        &[9, 11, 9, 10, 9],
    );

    for thr in [0.0, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1] {
        let s = summarize(&errors, thr);
        println!(
            "{:>9}  {:>11}  {:>9.1}  {:>10.2}  {:>8.1}%",
            format!("{:.3}%", 100.0 * thr),
            s.n_influential,
            100.0 * s.max_rel_err_influential,
            100.0 * s.mean_rel_err_influential,
            100.0 * s.frac_influential_under_20pct
        );
    }

    println!(
        "\nexpected shape: at and above the paper's 0.1% cutoff all audited\n\
         elements are within 20%; pushing the cutoff toward zero sweeps in the\n\
         strong-scaled (1/P) elements whose decay the four forms cannot track —\n\
         \"most of the elements that had higher error in the fit were from\n\
         instructions that didn't have a significant influence\"."
    );
}
