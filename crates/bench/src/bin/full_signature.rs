//! **Extension: full-signature synthesis (Section VI).**
//!
//! The paper's methodology synthesizes one trace file (the longest
//! task's); its future work wants all P of them: "for a run at 1024 cores
//! the prediction framework uses 1024 trace files … we believe that we can
//! improve the accuracy of the synthetic traces by using clustering
//! algorithms." This experiment samples tasks at each training count,
//! clusters them, extrapolates each cluster's centroid trace *and its
//! population fraction*, and reports the synthesized whole-application
//! signature at the target.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin full_signature`

use xtrace_apps::{ProxyApp, SpecfemProxy};
use xtrace_bench::{paper_tracer, print_header};
use xtrace_extrap::{synthesize_full_signature, ExtrapolationConfig};
use xtrace_machine::presets;
use xtrace_psins::{
    ground_truth, ground_truth_application, relative_error, try_predict_runtime, try_replay_groups,
};
use xtrace_tracer::{collect_ranks, collect_signature_with};

fn main() {
    // Mid-scale configuration: a dozen traced ranks per count stays fast.
    let mut app = SpecfemProxy::small();
    app.cfg.total_elements = 49_152;
    app.cfg.timesteps = 20;
    app.cfg.collect_per_rank = 4096;
    app.cfg.source_iters = 1_000_000;
    let machine = presets::cray_xt5();
    // One consistent sampling budget for every measurement in this
    // experiment (the exact whole-application validation executes all 384
    // ranks, so the full paper-scale budget would be needlessly slow).
    let tracer = xtrace_tracer::TracerConfig {
        max_sampled_refs_per_block: 1 << 19,
        ..paper_tracer()
    };
    let training = [6u32, 24, 96];
    let target = 384u32;
    let sample: Vec<u32> = (0..6).collect();

    println!(
        "Section VI extension: whole-signature synthesis\n\
         SPECFEM3D proxy, {training:?} -> {target} cores, {} tasks sampled per count\n",
        sample.len()
    );

    let per_count: Vec<_> = training
        .iter()
        .map(|&p| (p, collect_ranks(&app, &sample, p, &machine, &tracer)))
        .collect();
    let sig = synthesize_full_signature(&per_count, target, 2, &ExtrapolationConfig::default())
        .expect("synthesis succeeds");

    println!("synthesized signature groups at {target} cores:");
    print_header(
        &["group", "ranks", "mem ops", "fractions@training"],
        &[6, 6, 11, 22],
    );
    for (i, g) in sig.groups.iter().enumerate() {
        println!(
            "{:>6}  {:>6}  {:>11.3e}  {:>22}",
            i,
            g.ranks,
            g.trace.total_mem_ops(),
            format!("{:?}", g.training_fractions)
        );
    }
    assert_eq!(sig.total_ranks(), u64::from(target));

    // Validate the heaviest group against the longest-task methodology and
    // the collected trace.
    let collected = collect_signature_with(&app, target, &machine, &tracer);
    let comm = app.comm_profile(target);
    let p_group = try_predict_runtime(sig.longest(), &comm, &machine).unwrap();
    let p_coll = try_predict_runtime(collected.longest_task(), &collected.comm, &machine).unwrap();
    println!(
        "\nheaviest-group prediction: {:.3} s (collected trace: {:.3} s, gap {:.2}%)",
        p_group.total_seconds,
        p_coll.total_seconds,
        100.0 * relative_error(p_group.total_seconds, p_coll.total_seconds)
    );

    // The worker group predicts the *other* ranks' compute — information the
    // single-task methodology cannot provide.
    let worker = &sig.groups[1];
    let p_worker = try_predict_runtime(&worker.trace, &comm, &machine).unwrap();
    println!(
        "worker-group ({} ranks) compute prediction: {:.3} s",
        worker.ranks, p_worker.compute_seconds
    );

    // Full PSiNS-style replay: every rank charged from its group's
    // convolved block times, the BSP engine replaying synchronization.
    // Validated against the exact whole-application measurement — one exact
    // execution per rank, so use the light sampling configuration.
    let groups: Vec<_> = sig
        .groups
        .iter()
        .map(|g| (g.trace.clone(), g.ranks))
        .collect();
    let replay = try_replay_groups(&app, target, &groups, &machine).unwrap();
    let exact = ground_truth_application(&app, target, &machine, &tracer);
    let serial = ground_truth(&app, target, &machine, &tracer);
    println!(
        "\nwhole-application replay at {target} cores (every rank charged from\n\
         its group's synthetic trace, synchronization replayed):"
    );
    println!(
        "  replay prediction:            {:.3} s (err {:.2}% vs exact replay)",
        replay.total_seconds,
        100.0 * relative_error(replay.total_seconds, exact.total_seconds)
    );
    println!(
        "  exact whole-app replay:       {:.3} s (all {target} ranks executed)",
        exact.total_seconds
    );
    println!(
        "  longest-task serial estimate: {:.3} s (compute + summed comm, no overlap)",
        serial.total_seconds
    );
    println!(
        "  -> replay and serial estimates agree with each other; the error vs the\n\
         exact measurement is the convolution's surface-bucketing modeling error\n\
         on this configuration's mixed (resident-plus-random) master blocks —\n\
         within the PMaC framework's documented \"usually less than 15%\" band."
    );
    println!(
        "\nthe per-group view is what the paper's future work asks for: full\n\
         replay, load-imbalance analysis, and per-group energy, without tracing\n\
         {target} ranks."
    );
}
