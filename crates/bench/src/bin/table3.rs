//! **Table III** — application trace data (L1 hit rate) for a single
//! SPECFEM3D basic block on two hypothetical target systems.
//!
//! Paper values:
//!
//! ```text
//! System          96 cores  384 cores  1536 cores  6144 cores
//! A (12 KB L1)    85.6      85.6       85.8        85.8
//! B (56 KB L1)    99.6      99.6       99.6        99.6
//! ```
//!
//! The block's data "is not affected by the strong scaling. But if the size
//! of L1 is increased from 12KB to 56KB then the data for the computation
//! moves into L1 cache" — all "without the system even existing", because
//! traces are simulated against the target hierarchy. The subject block is
//! the SPECFEM3D proxy's `attenuation-update` (24 KB element workspace).
//!
//! Run with: `cargo run --release -p xtrace-bench --bin table3`

use xtrace_bench::{block_hit_rate, paper_specfem, paper_tracer, print_header};
use xtrace_machine::presets;
use xtrace_tracer::collect_signature_with;

fn main() {
    let app = paper_specfem();
    let tracer = paper_tracer();
    let block_name = "attenuation-update";
    let counts = [96u32, 384, 1536, 6144];

    println!(
        "Table III: L1 hit rate of SPECFEM3D block `{block_name}`\n\
         (constant {} KB footprint) on two targets differing only in L1 size\n",
        app.cfg.elem_work_bytes / 1024
    );
    print_header(
        &[
            "System",
            "96 cores",
            "384 cores",
            "1536 cores",
            "6144 cores",
        ],
        &[16, 9, 9, 10, 10],
    );

    for machine in [presets::system_a(), presets::system_b()] {
        let l1_kb = machine.hierarchy.levels[0].size_bytes / 1024;
        let label = format!(
            "{} ({} KB)",
            if machine.name.ends_with('a') {
                "A"
            } else {
                "B"
            },
            l1_kb
        );
        let mut row = format!("{label:>16}");
        for &p in &counts {
            let sig = collect_signature_with(&app, p, &machine, &tracer);
            let block = sig
                .longest_task()
                .block(block_name)
                .expect("attenuation-update present");
            row.push_str(&format!("  {:>8.1}", 100.0 * block_hit_rate(block, 0)));
        }
        println!("{row}");
    }

    println!(
        "\npaper shape: System A pinned at the spatial-locality floor across all\n\
         core counts (the 24 KB workspace cannot fit a 12 KB L1); System B\n\
         near-perfect residency — a cache-design insight obtained from traces\n\
         alone, for systems that do not exist."
    );
}
