//! **Ablation: cache replacement policy.**
//!
//! The PMaC cache simulator models LRU; real last-level caches are often
//! pseudo-random. This ablation re-runs the Table-II measurement (UH3D
//! `field-stencil` hit rates vs core count) with LRU, FIFO, and random
//! replacement in every level of the target hierarchy, showing which parts
//! of the paper's story depend on the replacement model.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin ablation_replacement`

use xtrace_bench::{block_hit_rate, paper_tracer, paper_uh3d, print_header, target_machine};
use xtrace_cache::Replacement;
use xtrace_machine::MachineProfile;
use xtrace_tracer::collect_signature_with;

fn with_replacement(base: &MachineProfile, r: Replacement, suffix: &str) -> MachineProfile {
    let mut hierarchy = base.hierarchy.clone();
    for level in &mut hierarchy.levels {
        level.replacement = r;
    }
    MachineProfile::new(
        format!("{}-{suffix}", base.name),
        hierarchy,
        base.clock_hz,
        base.fp,
        base.net,
        base.mem_cost,
        base.sweep.clone(),
        base.fp_mem_overlap,
    )
    .expect("valid derived profile")
}

fn main() {
    let app = paper_uh3d();
    let base = target_machine();
    let tracer = paper_tracer();
    let counts = [1024u32, 2048, 4096, 8192];
    let block = "field-stencil";

    println!(
        "Ablation: replacement policy — Table II (UH3D `{block}` hit rates)\n\
         re-measured under LRU / FIFO / random replacement\n"
    );

    for (label, policy) in [
        ("LRU (paper's model)", Replacement::Lru),
        ("FIFO", Replacement::Fifo),
        ("random", Replacement::Random),
    ] {
        let machine = with_replacement(&base, policy, label.split(' ').next().unwrap());
        println!("-- {label} --");
        print_header(&["Cores", "L1 HR", "L2 HR", "L3 HR"], &[6, 7, 7, 7]);
        for &p in &counts {
            let sig = collect_signature_with(&app, p, &machine, &tracer);
            let b = sig.longest_task().block(block).expect("block present");
            println!(
                "{:>6}  {:>6.1}  {:>6.1}  {:>6.1}",
                p,
                100.0 * block_hit_rate(b, 0),
                100.0 * block_hit_rate(b, 1),
                100.0 * block_hit_rate(b, 2),
            );
        }
        println!();
    }

    println!(
        "expected shape: the Table-II story — flat L1 at the spatial floor,\n\
         L2/L3 rising monotonically as the slice shrinks — survives every\n\
         policy. Random replacement softens the capacity transition (partial\n\
         reuse on cyclic sweeps that LRU evicts deterministically), nudging\n\
         mid-range L3 rates upward; the methodology does not hinge on exact\n\
         LRU behaviour."
    );
}
