//! **Figure 2** — the signature-collection pipeline, as stage-by-stage
//! numbers.
//!
//! The paper's Figure 2 is a diagram: each MPI task's instrumented binary
//! emits a memory address stream that is consumed on-the-fly by the cache
//! simulator to produce one summary trace file per task ("the address
//! stream of a single process can generate over 2 TB of data per hour…").
//! This binary runs the pipeline for one SPECFEM3D-proxy task and reports
//! what flows through each stage: program size, dynamic stream length, the
//! sampled window, per-level cache events, and the resulting trace-file
//! sizes — demonstrating the raw-stream-to-summary compression the
//! on-the-fly design exists for.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin fig2_pipeline`

use xtrace_bench::{paper_specfem, paper_tracer, target_machine};
use xtrace_spmd::SpmdApp;
use xtrace_tracer::{collect_task_trace, to_bytes};

fn main() {
    let app = paper_specfem();
    let machine = target_machine();
    let tracer = paper_tracer();
    let (rank, nranks) = (0u32, 96u32);

    println!(
        "Figure 2 pipeline: SPECFEM3D proxy, rank {rank} of {nranks}, target {}\n",
        machine.name
    );

    // Stage 1: the "instrumented executable" (the rank program).
    let rp = app.rank_program(rank, nranks);
    println!("[1] rank program (instrumented binary analog)");
    println!("    regions: {:>12}", rp.program.regions().len());
    println!("    blocks:  {:>12}", rp.program.blocks().len());
    println!(
        "    static instructions: {:>4}",
        rp.program
            .blocks()
            .iter()
            .map(|b| b.instrs.len())
            .sum::<usize>()
    );
    println!(
        "    memory image: {:>10.1} MB",
        rp.program.footprint_bytes() as f64 / 1e6
    );

    // Stage 2: the dynamic address stream.
    let total_refs = rp.total_mem_refs();
    println!("\n[2] dynamic memory address stream");
    println!(
        "    full-run references: {total_refs:>14.3e}",
        total_refs = total_refs as f64
    );
    println!(
        "    raw stream volume:   {:>11.1} GB (16 B/record — infeasible to store)",
        total_refs as f64 * 16.0 / 1e9
    );
    println!(
        "    sampled window:      {:>14.3e} refs/block (on-the-fly, never stored)",
        tracer.max_sampled_refs_per_block as f64
    );

    // Stage 3: the cache simulator's view.
    let trace = collect_task_trace(&app, rank, nranks, &machine, &tracer);
    println!("\n[3] on-the-fly cache simulation ({} levels)", trace.depth);
    for b in &trace.blocks {
        let l1 = xtrace_bench::block_hit_rate(b, 0);
        let l3 = xtrace_bench::block_hit_rate(b, trace.depth - 1);
        println!(
            "    {:<20} {:>12.3e} refs   L1 {:>5.1}%   L{} {:>5.1}%",
            b.name,
            b.mem_ops(),
            100.0 * l1,
            trace.depth,
            100.0 * l3
        );
    }

    // Stage 4: the summary trace file.
    let bin = to_bytes(&trace);
    let json = serde_json::to_string(&trace).expect("serializable");
    println!("\n[4] summary trace file (the application signature's per-task unit)");
    println!("    blocks recorded: {:>8}", trace.blocks.len());
    println!(
        "    instruction records: {:>4}",
        trace.blocks.iter().map(|b| b.instrs.len()).sum::<usize>()
    );
    println!("    binary size:  {:>10} B", bin.len());
    println!("    JSON size:    {:>10} B", json.len());
    println!(
        "    compression vs raw stream: {:.1e}x",
        total_refs as f64 * 16.0 / bin.len() as f64
    );
}
