//! **Extension: weak scaling (Section VI).**
//!
//! "Applying this methodology to weak-scaled problems is also of interest,
//! and may pose additional challenges to our methodology." This experiment
//! runs the full Table-I pipeline on the SPECFEM3D proxy in both modes and
//! compares extrapolation quality.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin weak_scaling`

use xtrace_apps::SpecfemProxy;
use xtrace_bench::{
    paper_tracer, print_header, run_table1_row, target_machine, SPECFEM_TARGET, SPECFEM_TRAINING,
};
use xtrace_extrap::ExtrapolationConfig;

fn main() {
    let machine = target_machine();
    let tracer = paper_tracer();
    let cfg = ExtrapolationConfig::default();

    println!(
        "Section VI extension: strong vs weak scaling, SPECFEM3D proxy\n\
         {SPECFEM_TRAINING:?} -> {SPECFEM_TARGET} cores on {}\n",
        machine.name
    );
    print_header(
        &[
            "scaling",
            "extrap (s)",
            "coll (s)",
            "measured",
            "gap %",
            "err %",
        ],
        &[8, 10, 9, 9, 6, 6],
    );

    for (label, app) in [
        ("strong", SpecfemProxy::paper_scale()),
        ("weak", SpecfemProxy::paper_scale_weak()),
    ] {
        let row = run_table1_row(
            &app,
            &SPECFEM_TRAINING,
            SPECFEM_TARGET,
            &machine,
            &tracer,
            &cfg,
        );
        println!(
            "{:>8}  {:>10.1}  {:>9.1}  {:>9.1}  {:>5.2}  {:>5.2}",
            label,
            row.extrap.total_seconds,
            row.collected.total_seconds,
            row.measured.total_seconds,
            100.0 * row.prediction_gap(),
            100.0 * row.extrap_error()
        );
    }

    println!(
        "\nobservation: weak scaling is *easier* for the computation model —\n\
         per-task footprints and trip counts are constant in P, so the constant\n\
         form captures nearly every element exactly. The challenge the paper\n\
         anticipates lives in communication (collective costs grow with P) and\n\
         in the master-rank work, which still scales — both within the span of\n\
         the canonical forms."
    );
}
