//! **Ablation: model-selection criterion.**
//!
//! The paper selects the canonical form with the best (smallest-residual)
//! fit. An information criterion such as AICc additionally penalizes
//! parameters — but with only three training points the small-sample
//! correction blows up for every 2-parameter form, collapsing the choice to
//! the constant model. This ablation compares SSE and AICc selection on 3-
//! and 5-point training ladders.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin ablation_selection`

use xtrace_bench::{
    paper_specfem, paper_tracer, print_header, run_table1_row, run_with_fits, target_machine,
    SPECFEM_TARGET,
};
use xtrace_extrap::{CanonicalForm, ExtrapolationConfig, SelectionCriterion};
use xtrace_spmd::SpmdApp;

fn form_histogram(fits: &[xtrace_extrap::ElementFit]) -> String {
    let mut counts = [0usize; 4];
    for f in fits {
        let idx = match f.model.form {
            CanonicalForm::Constant => 0,
            CanonicalForm::Linear => 1,
            CanonicalForm::Logarithmic => 2,
            _ => 3,
        };
        counts[idx] += 1;
    }
    format!(
        "const {} / lin {} / log {} / exp {}",
        counts[0], counts[1], counts[2], counts[3]
    )
}

fn main() {
    let app = paper_specfem();
    let machine = target_machine();
    let tracer = paper_tracer();
    let ladders: [&[u32]; 2] = [&[96, 384, 1536], &[48, 96, 384, 1536, 3072]];

    println!(
        "Ablation: SSE vs AICc model selection, {} -> {SPECFEM_TARGET} cores\n",
        SpmdApp::name(&app)
    );
    print_header(
        &["ladder", "criterion", "gap %", "err %", "chosen forms"],
        &[24, 9, 6, 6, 36],
    );

    for ladder in ladders {
        for (label, criterion) in [
            ("SSE", SelectionCriterion::Sse),
            ("AICc", SelectionCriterion::Aicc),
        ] {
            let cfg = ExtrapolationConfig {
                criterion,
                min_traces: ladder.len(),
                ..ExtrapolationConfig::default()
            };
            let row = run_table1_row(&app, ladder, SPECFEM_TARGET, &machine, &tracer, &cfg);
            let (_t, _e, fits) =
                run_with_fits(&app, ladder, SPECFEM_TARGET, &machine, &tracer, &cfg);
            println!(
                "{:>24}  {:>9}  {:>5.2}  {:>5.2}  {:<36}",
                format!("{ladder:?}"),
                label,
                100.0 * row.prediction_gap(),
                100.0 * row.extrap_error(),
                form_histogram(&fits)
            );
        }
    }

    println!(
        "\nexpected shape: with three points AICc can only ever pick the constant\n\
         form (n < k+2 for every sloped form), degrading the linear/log master\n\
         elements badly; with five points it becomes competitive with plain SSE.\n\
         The paper's residual-based choice is the right one for its 3-point\n\
         regime."
    );
}
