//! **Table II** — changes in the target system's cache hit rates of a
//! basic block as the core count increases.
//!
//! Paper values (a UH3D block, Phase-I Blue Waters-class target):
//!
//! ```text
//! Core Count  L1 HR  L2 HR  L3 HR
//! 1024        87.4   87.5   87.5
//! 2048        87.4   87.5   90.7
//! 4096        87.4   88.4   91.6
//! 8192        87.4   89.0   95.0
//! ```
//!
//! "as the core count increases the data slowly moves into the L3 and L2
//! cache": the per-task field slice shrinks under strong scaling while the
//! block's streaming L1 behaviour (spatial locality only) stays put.
//! The subject block is the UH3D proxy's `field-stencil`.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin table2`

use xtrace_bench::{block_hit_rate, paper_tracer, paper_uh3d, print_header, target_machine};
use xtrace_tracer::collect_signature_with;

fn main() {
    let app = paper_uh3d();
    let machine = target_machine();
    let tracer = paper_tracer();
    let block_name = "field-stencil";
    let counts = [1024u32, 2048, 4096, 8192];

    println!(
        "Table II: cache hit rates of block `{block_name}` on {} as the core\n\
         count increases (strong scaling moves the field slice into cache)\n",
        machine.name
    );
    print_header(
        &["Core Count", "slice (MB)", "L1 HR", "L2 HR", "L3 HR"],
        &[10, 10, 7, 7, 7],
    );

    for &p in &counts {
        let sig = collect_signature_with(&app, p, &machine, &tracer);
        let block = sig
            .longest_task()
            .block(block_name)
            .expect("field-stencil present");
        let slice_mb = block.instrs[0].features.working_set / (1024.0 * 1024.0);
        println!(
            "{:>10}  {:>10.1}  {:>6.1}  {:>6.1}  {:>6.1}",
            p,
            slice_mb,
            100.0 * block_hit_rate(block, 0),
            100.0 * block_hit_rate(block, 1),
            100.0 * block_hit_rate(block, 2),
        );
    }

    println!(
        "\npaper shape: L1 flat (spatial locality only), L2 and L3 rising\n\
         monotonically as the per-task footprint drops toward cache capacity."
    );
}
