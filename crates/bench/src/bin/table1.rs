//! **Table I** — prediction errors for SPECFEM3D and UH3D using
//! extrapolated and collected application traces.
//!
//! Paper values (Phase-I Blue Waters target):
//!
//! ```text
//! Application  Cores  Trace    Predicted Runtime (s)  % Error
//! SPECFEM3D    6144   Extrap.  139                    1%
//! SPECFEM3D    6144   Coll.    139                    1%
//! UH3D         8192   Extrap.  537                    5%
//! UH3D         8192   Coll.    536                    5%
//! ```
//!
//! SPECFEM3D is trained on 96/384/1536 cores, UH3D on 1024/2048/4096; the
//! "measured" runtime is the execution-driven simulation (exact per-access
//! costs), playing the role of the paper's wall-clock measurement.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin table1`

use xtrace_bench::{
    paper_specfem, paper_tracer, paper_uh3d, print_header, run_table1_row, target_machine,
    Table1Row, SPECFEM_TARGET, SPECFEM_TRAINING, UH3D_TARGET, UH3D_TRAINING,
};
use xtrace_extrap::ExtrapolationConfig;

fn print_row(row: &Table1Row) {
    let app = if row.app.contains("specfem") {
        "SPECFEM3D"
    } else {
        "UH3D"
    };
    println!(
        "{:>11}  {:>5}  {:>7}  {:>12.0}  {:>7.0}%",
        app,
        row.cores,
        "Extrap.",
        row.extrap.total_seconds,
        100.0 * row.extrap_error()
    );
    println!(
        "{:>11}  {:>5}  {:>7}  {:>12.0}  {:>7.0}%",
        app,
        row.cores,
        "Coll.",
        row.collected.total_seconds,
        100.0 * row.collected_error()
    );
}

fn main() {
    let machine = target_machine();
    let tracer = paper_tracer();
    let extrap_cfg = ExtrapolationConfig::default();

    println!(
        "Table I: prediction errors using extrapolated and collected traces\n\
         target machine: {}\n",
        machine.name
    );
    print_header(
        &["Application", "Cores", "Trace", "Runtime (s)", "% Error"],
        &[11, 5, 7, 12, 8],
    );

    let specfem = run_table1_row(
        &paper_specfem(),
        &SPECFEM_TRAINING,
        SPECFEM_TARGET,
        &machine,
        &tracer,
        &extrap_cfg,
    );
    print_row(&specfem);

    let uh3d = run_table1_row(
        &paper_uh3d(),
        &UH3D_TRAINING,
        UH3D_TARGET,
        &machine,
        &tracer,
        &extrap_cfg,
    );
    print_row(&uh3d);

    println!(
        "\nmeasured runtimes: SPECFEM3D {:.1} s, UH3D {:.1} s",
        specfem.measured.total_seconds, uh3d.measured.total_seconds
    );
    println!(
        "extrapolated-vs-collected prediction gaps: SPECFEM3D {:.2}%, UH3D {:.2}%",
        100.0 * specfem.prediction_gap(),
        100.0 * uh3d.prediction_gap()
    );
    println!(
        "\npaper: both applications within 5% absolute relative error, and the\n\
         extrapolated trace's prediction indistinguishable from the collected\n\
         trace's (139 vs 139 s; 537 vs 536 s)."
    );
}
