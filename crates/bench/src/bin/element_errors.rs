//! **Section IV accuracy claim** — "every extrapolated element within all
//! of the influential instructions had an absolute relative error of less
//! than 20%", with influence defined as the instruction's share of the
//! task's memory operations (FP operations for memory-free instructions)
//! and a 0.1% threshold.
//!
//! This binary extrapolates both paper-scale applications to their target
//! counts, collects real traces there, and audits every element.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin element_errors`

use xtrace_bench::{
    paper_specfem, paper_tracer, paper_uh3d, print_header, run_with_fits, target_machine,
    SPECFEM_TARGET, SPECFEM_TRAINING, UH3D_TARGET, UH3D_TRAINING,
};
use xtrace_extrap::{element_errors, summarize, ExtrapolationConfig};
use xtrace_spmd::SpmdApp;
use xtrace_tracer::collect_signature_with;

fn audit(app: &dyn SpmdApp, training: &[u32], target: u32) {
    let machine = target_machine();
    let tracer = paper_tracer();
    let cfg = ExtrapolationConfig::default();
    let (_t, extrapolated, _fits) = run_with_fits(app, training, target, &machine, &tracer, &cfg);
    let collected = collect_signature_with(app, target, &machine, &tracer);
    let errors = element_errors(&extrapolated, collected.longest_task());
    let s = summarize(&errors, cfg.influence_threshold);

    println!(
        "\n== {} @ {target} cores (trained on {training:?}) ==",
        app.name()
    );
    println!("elements compared:        {:>8}", s.n_total);
    println!("influential elements:     {:>8}", s.n_influential);
    println!(
        "influential max error:    {:>7.2}%",
        100.0 * s.max_rel_err_influential
    );
    println!(
        "influential mean error:   {:>7.2}%",
        100.0 * s.mean_rel_err_influential
    );
    println!(
        "influential under 20%:    {:>7.1}%",
        100.0 * s.frac_influential_under_20pct
    );
    println!(
        "max error (all elements): {:>7.1}%",
        100.0 * s.max_rel_err_all
    );

    // Worst influential offenders, for inspection.
    let mut influential: Vec<_> = errors
        .iter()
        .filter(|e| e.influence >= cfg.influence_threshold)
        .collect();
    influential.sort_by(|a, b| b.rel_err.partial_cmp(&a.rel_err).expect("finite"));
    println!("\nworst influential elements:");
    print_header(
        &["block", "instr", "element", "expected", "got", "err %"],
        &[20, 5, 14, 11, 11, 7],
    );
    for e in influential.iter().take(5) {
        println!(
            "{:>20}  {:>5}  {:>14}  {:>11.3e}  {:>11.3e}  {:>6.1}%",
            e.block,
            e.instr,
            e.feature.label(),
            e.expected,
            e.got,
            100.0 * e.rel_err
        );
    }
}

fn main() {
    println!(
        "Section IV element-error audit (paper: every influential element < 20%,\n\
         higher errors only on instructions below the 0.1% influence threshold)"
    );
    audit(&paper_specfem(), &SPECFEM_TRAINING, SPECFEM_TARGET);
    audit(&paper_uh3d(), &UH3D_TRAINING, UH3D_TARGET);
}
