//! **Regression bench: the scaled-out convolution/replay stage.**
//!
//! Times whole-application replay at the paper's evaluation core counts
//! (SPECFEM3D at 6144 ranks, UH3D at 8192) four ways:
//!
//! 1. `seed_serial`     — the frozen pre-optimization path
//!    ([`xtrace_bench::seed_sim`]): string-keyed group model, every rank's
//!    program materialized, per-rank naive walk.
//! 2. `current_serial`  — today's interned [`GroupComputeModel`] forced
//!    down the pre-dedup path (`simulate_programs_naive` over fully
//!    materialized programs) on one thread. This is the baseline the ≥3×
//!    acceptance number is measured against.
//! 3. `dedup_serial`    — today's class-deduplicated replay
//!    (`try_replay_groups`) on one thread: only class representatives are
//!    materialized and the model is charged once per (class, group).
//! 4. `dedup_parallel`  — the same replay under an N-thread pool: group
//!    convolution fans out and, above `SimOptions::min_parallel_ranks`,
//!    the bulk-synchronous stepping fans out over rank chunks.
//!
//! All four legs must produce bit-identical [`SimReport`]s — the speedup
//! is not allowed to change a single bit of the answer. The harness also
//! demonstrates the [`ConvolveCache`]: a cold model build populates an
//! [`ArtifactStore`], a warm build must hit for every group and replay
//! identically. Finally it reruns the golden-pipeline configuration and
//! reports the relative error of its prediction against the committed
//! golden JSON (must be exactly 0).
//!
//! Emits `BENCH_convolve.json`. Run with:
//! `cargo run --release -p xtrace-bench --bin bench_convolve [-- --threads N --out F]`
//! Set `XTRACE_BENCH_QUICK=1` for a tiny smoke configuration.

use std::time::Instant;

use serde::Serialize;
use xtrace_apps::{SpecfemProxy, Uh3dProxy};
use xtrace_bench::seed_sim::seed_replay_groups;
use xtrace_bench::{target_machine, SPECFEM_TARGET, UH3D_TARGET};
use xtrace_core::{ArtifactStore, Pipeline, PipelineConfig};
use xtrace_machine::MachineProfile;
use xtrace_psins::{relative_error, GroupComputeModel};
use xtrace_spmd::{try_simulate_programs_naive, RankClasses, RankProgram, SimOptions, SpmdApp};
use xtrace_tracer::{collect_task_trace, TaskTrace, TracerConfig};

#[derive(Serialize)]
struct AppResult {
    app: String,
    nranks: u32,
    /// Distinct rank classes the engine deduplicated the job into.
    rank_classes: usize,
    /// Signature groups feeding the compute model.
    groups: usize,
    seed_serial_wall_s: f64,
    current_serial_wall_s: f64,
    dedup_serial_wall_s: f64,
    dedup_parallel_wall_s: f64,
    /// seed wall / dedup+parallel wall.
    speedup_vs_seed: f64,
    /// The acceptance number: current-serial wall / dedup+parallel wall.
    speedup_vs_current_serial: f64,
    /// Dedup-only component (both legs on one thread).
    speedup_dedup_component: f64,
    /// Whether the bulk-synchronous stepping fanned out in leg 4 (needs
    /// `nranks >= min_parallel_ranks` and a multi-thread pool).
    parallel_stepping_ran: bool,
    /// All four legs' SimReports compared with `==` (exact f64 equality).
    reports_bit_identical: bool,
    /// Replayed application runtime (identical across legs).
    total_seconds: f64,
}

#[derive(Serialize)]
struct CacheResult {
    /// Cache hits on the cold build (must be 0).
    cold_hits: usize,
    /// Cache hits on the warm build (must equal `groups`).
    warm_hits: usize,
    /// Warm-cache replay equals the uncached replay bit-for-bit.
    cached_bit_identical: bool,
}

#[derive(Serialize)]
struct ConvolveBench {
    machine: String,
    quick: bool,
    threads: usize,
    /// Hardware threads on the bench host; on a 1-core host the stepping
    /// fan-out contributes nothing and the speedup is the algorithmic
    /// dedup win alone.
    host_cores: usize,
    min_parallel_ranks: usize,
    reps: u32,
    apps: Vec<AppResult>,
    /// Minimum `speedup_vs_current_serial` across apps.
    speedup: f64,
    /// All apps' legs bit-identical.
    bit_identical: bool,
    cache: CacheResult,
    /// Golden-pipeline prediction vs the committed golden JSON.
    prediction_total_seconds: f64,
    golden_total_seconds: f64,
    prediction_rel_err: f64,
}

/// Two-group signature layout: the master rank's trace for rank 0, a
/// worker's trace for everyone else (the shape `synthesize_full_signature`
/// produces for the proxies).
fn groups_for(
    app: &dyn SpmdApp,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
) -> Vec<(TaskTrace, u64)> {
    let t0 = collect_task_trace(app, 0, nranks, machine, cfg);
    let t1 = collect_task_trace(app, 1.min(nranks - 1), nranks, machine, cfg);
    vec![(t0, 1), (t1, u64::from(nranks) - 1)]
}

/// Min-of-reps wall clock around `f`, returning the last result.
fn time_reps<T>(reps: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let value = f();
        best = best.min(t0.elapsed().as_secs_f64());
        result = Some(value);
    }
    (best, result.expect("at least one rep"))
}

fn bench_app(
    app: &dyn SpmdApp,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
    threads: usize,
    reps: u32,
) -> AppResult {
    let groups = groups_for(app, nranks, machine, cfg);
    let pool = |n: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("pool")
    };
    let one = pool(1);
    let many = pool(threads);

    // Leg 1: frozen seed path.
    let (seed_wall, seed_report) =
        time_reps(reps, || seed_replay_groups(app, nranks, &groups, machine));

    // Leg 2: today's model, forced down the pre-dedup materialize-all walk.
    let (current_wall, current_report) = one.install(|| {
        time_reps(reps, || {
            let programs: Vec<RankProgram> =
                (0..nranks).map(|r| app.rank_program(r, nranks)).collect();
            let mut model =
                GroupComputeModel::try_new(&groups, nranks, machine).expect("model builds");
            try_simulate_programs_naive(&programs, &machine.net, &mut model)
                .expect("naive replay runs")
        })
    });

    // Legs 3+4: the class-deduplicated replay, one thread then N threads.
    let replay = || {
        xtrace_psins::try_replay_groups(app, nranks, &groups, machine).expect("dedup replay runs")
    };
    let (dedup_serial_wall, dedup_serial_report) = one.install(|| time_reps(reps, replay));
    let (dedup_parallel_wall, dedup_parallel_report) = many.install(|| time_reps(reps, replay));

    let rank_classes = RankClasses::try_from_app(app, nranks)
        .expect("classes build")
        .num_classes();
    let opts = SimOptions::default();
    let parallel_stepping_ran = threads > 1 && (nranks as usize) >= opts.min_parallel_ranks;

    let reports_bit_identical = seed_report == current_report
        && current_report == dedup_serial_report
        && dedup_serial_report == dedup_parallel_report;

    let result = AppResult {
        app: app.name().to_string(),
        nranks,
        rank_classes,
        groups: groups.len(),
        seed_serial_wall_s: seed_wall,
        current_serial_wall_s: current_wall,
        dedup_serial_wall_s: dedup_serial_wall,
        dedup_parallel_wall_s: dedup_parallel_wall,
        speedup_vs_seed: seed_wall / dedup_parallel_wall,
        speedup_vs_current_serial: current_wall / dedup_parallel_wall,
        speedup_dedup_component: current_wall / dedup_serial_wall,
        parallel_stepping_ran,
        reports_bit_identical,
        total_seconds: dedup_parallel_report.total_seconds,
    };
    eprintln!(
        "  {} @ {}: {} classes, seed {:.1} ms, current-serial {:.1} ms, dedup {:.1} ms, \
         dedup+par {:.1} ms -> {:.1}x vs current-serial, bit-identical {}",
        result.app,
        nranks,
        rank_classes,
        1e3 * seed_wall,
        1e3 * current_wall,
        1e3 * dedup_serial_wall,
        1e3 * dedup_parallel_wall,
        result.speedup_vs_current_serial,
        reports_bit_identical,
    );
    result
}

/// Cold/warm ConvolveCache demonstration through the artifact store.
fn bench_cache(
    app: &dyn SpmdApp,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
) -> CacheResult {
    let groups = groups_for(app, nranks, machine, cfg);
    let dir = std::env::temp_dir().join(format!("xtrace-bench-convolve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(&dir).expect("store opens");

    let (_, cold_hits) =
        GroupComputeModel::try_new_cached(&groups, nranks, machine, &store).expect("cold build");
    let (mut warm_model, warm_hits) =
        GroupComputeModel::try_new_cached(&groups, nranks, machine, &store).expect("warm build");
    let mut plain_model = GroupComputeModel::try_new(&groups, nranks, machine).expect("build");
    let warm =
        xtrace_spmd::try_simulate(app, nranks, &machine.net, &mut warm_model).expect("warm replay");
    let plain = xtrace_spmd::try_simulate(app, nranks, &machine.net, &mut plain_model)
        .expect("plain replay");
    let _ = std::fs::remove_dir_all(&dir);
    CacheResult {
        cold_hits,
        warm_hits,
        cached_bit_identical: warm == plain,
    }
}

/// Reruns the golden-pipeline configuration and compares its prediction to
/// the committed golden JSON.
fn golden_prediction_err() -> (f64, f64, f64) {
    let mut cfg = PipelineConfig::new("specfem3d", "cray-xt5", vec![6, 24, 96], 384);
    cfg.scale = "tiny".into();
    cfg.fast_tracer = true;
    cfg.validate = false;
    let report = Pipeline::new(cfg)
        .expect("valid golden config")
        .run()
        .expect("golden pipeline runs");
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/specfem_tiny_prediction.json"
    );
    let golden: serde_json::Value = serde_json::from_str(
        &std::fs::read_to_string(golden_path).expect("golden prediction JSON exists"),
    )
    .expect("golden JSON parses");
    let golden_total = golden["total_seconds"]
        .as_f64()
        .expect("golden total_seconds");
    let predicted = report.prediction.total_seconds;
    (
        predicted,
        golden_total,
        relative_error(predicted, golden_total),
    )
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let threads: usize = flag("--threads")
        .map(|v| v.parse().expect("--threads must be an integer"))
        .unwrap_or(4);
    let out = flag("--out").unwrap_or_else(|| "BENCH_convolve.json".into());
    let quick = std::env::var("XTRACE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let threads = threads.max(2);

    let machine = target_machine();
    let (cfg, reps) = if quick {
        (TracerConfig::fast(), 2u32)
    } else {
        (TracerConfig::default(), 5u32)
    };
    eprintln!(
        "bench_convolve: {} threads, {} reps{}",
        threads,
        reps,
        if quick { " (quick)" } else { "" }
    );

    let apps = if quick {
        let specfem = SpecfemProxy::small();
        let uh3d = Uh3dProxy::small();
        vec![
            bench_app(&specfem, 32, &machine, &cfg, threads, reps),
            bench_app(&uh3d, 16, &machine, &cfg, threads, reps),
        ]
    } else {
        let specfem = SpecfemProxy::paper_scale();
        let uh3d = Uh3dProxy::paper_scale();
        vec![
            bench_app(&specfem, SPECFEM_TARGET, &machine, &cfg, threads, reps),
            bench_app(&uh3d, UH3D_TARGET, &machine, &cfg, threads, reps),
        ]
    };

    let cache = {
        let app = SpecfemProxy::small();
        bench_cache(&app, 32, &machine, &TracerConfig::fast())
    };
    eprintln!(
        "  cache: cold {} hits, warm {} hits, bit-identical {}",
        cache.cold_hits, cache.warm_hits, cache.cached_bit_identical
    );

    let (prediction_total_seconds, golden_total_seconds, prediction_rel_err) =
        golden_prediction_err();
    eprintln!(
        "  golden pipeline: predicted {prediction_total_seconds:.6} s vs golden \
         {golden_total_seconds:.6} s (rel err {prediction_rel_err:.3e})"
    );

    let speedup = apps
        .iter()
        .map(|a| a.speedup_vs_current_serial)
        .fold(f64::INFINITY, f64::min);
    let bit_identical = apps.iter().all(|a| a.reports_bit_identical);

    let report = ConvolveBench {
        machine: machine.name.clone(),
        quick,
        threads,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        min_parallel_ranks: SimOptions::default().min_parallel_ranks,
        reps,
        apps,
        speedup,
        bit_identical,
        cache,
        prediction_total_seconds,
        golden_total_seconds,
        prediction_rel_err,
    };
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write report");
    println!(
        "replay speedup {:.2}x (min over {} apps, vs current-serial), bit-identical: {}\n\
         prediction rel err: {:.3e}\nwrote {out}",
        report.speedup,
        report.apps.len(),
        report.bit_identical,
        report.prediction_rel_err
    );

    // Correctness gates (quick and full): the scale-out must change
    // nothing.
    assert!(
        report.bit_identical,
        "deduplicated/parallel replay changed a SimReport"
    );
    assert!(
        report.cache.cold_hits == 0
            && report.cache.warm_hits == 2
            && report.cache.cached_bit_identical,
        "ConvolveCache must hit for every group on reuse without changing the replay"
    );
    assert!(
        report.prediction_rel_err == 0.0,
        "golden-pipeline prediction drifted: rel err {:.3e}",
        report.prediction_rel_err
    );
    // Performance gate (full mode only; quick runs assert correctness,
    // not wall-clock).
    if !quick {
        assert!(
            report.speedup >= 3.0,
            "replay scale-out below acceptance: {:.2}x",
            report.speedup
        );
    }
}
