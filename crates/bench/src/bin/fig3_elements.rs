//! **Figure 3** — "Extrapolating individual elements within a basic
//! block's prediction vector": each element of an instruction's feature
//! vector is fitted and extrapolated *independently*.
//!
//! The paper's Figure 3 is a schematic showing one instruction's vector at
//! three core counts feeding per-element fits. This binary prints the real
//! thing: four elements of one SPECFEM3D-proxy instruction across the
//! training counts, the form chosen for each, and the synthesized value at
//! the target — next to the value actually collected there.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin fig3_elements`

use xtrace_bench::{
    paper_specfem, paper_tracer, run_with_fits, target_machine, SPECFEM_TARGET, SPECFEM_TRAINING,
};
use xtrace_extrap::ExtrapolationConfig;
use xtrace_tracer::{collect_signature_with, FeatureId};

fn main() {
    let app = paper_specfem();
    let machine = target_machine();
    let tracer = paper_tracer();
    let extrap_cfg = ExtrapolationConfig::default();

    let (_training, extrapolated, fits) = run_with_fits(
        &app,
        &SPECFEM_TRAINING,
        SPECFEM_TARGET,
        &machine,
        &tracer,
        &extrap_cfg,
    );
    let collected = collect_signature_with(&app, SPECFEM_TARGET, &machine, &tracer);

    // The illustrated instruction: the master-collect load (instruction 0).
    let block = "master-collect";
    let instr = 0u32;
    let elements = [
        FeatureId::MemOps,
        FeatureId::HitRate(0),
        FeatureId::HitRate(2),
        FeatureId::WorkingSet,
    ];

    println!(
        "Figure 3: per-element extrapolation of SPECFEM3D `{block}` instruction {instr}\n\
         training counts {SPECFEM_TRAINING:?} -> target {SPECFEM_TARGET}\n"
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12}  {:<9} {:>12} {:>12}",
        "element", "@96", "@384", "@1536", "form", "extrap", "collected"
    );

    for fid in elements {
        let fit = fits
            .iter()
            .find(|f| f.block == block && f.instr == instr && f.feature == fid)
            .expect("fit recorded for every element");
        let coll_val = collected.longest_task().block(block).unwrap().instrs[instr as usize]
            .features
            .get(fid);
        let ex_val = extrapolated.block(block).unwrap().instrs[instr as usize]
            .features
            .get(fid);
        println!(
            "{:<14} {:>12.4e} {:>12.4e} {:>12.4e}  {:<9} {:>12.4e} {:>12.4e}",
            fid.label(),
            fit.values[0],
            fit.values[1],
            fit.values[2],
            fit.model.form.label(),
            ex_val,
            coll_val
        );
    }

    println!(
        "\neach element is treated as an independent scalar series: counts grow\n\
         linearly with P (the master aggregates from every task), hit rates sit\n\
         on constant plateaus, and the working set is fixed — different canonical\n\
         forms win for different elements of the *same* instruction, which is the\n\
         point of Figure 3."
    );
}
