//! **Figure 4** — "Linear Model captures the scaling behavior of the L2
//! Hit Rate": the measured L2 hit rate of a single UH3D instruction versus
//! core count, overlaid with all four canonical-form fits.
//!
//! The subject is the `particle-push` block's random gather into the
//! per-task slice of the plasma-moment table: under strong scaling the
//! slice shrinks like 1/P, so the fraction of gathers caught by L2 grows
//! linearly with P — exactly the behaviour the paper's Figure 4 shows the
//! linear form winning on.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin fig4`

use xtrace_bench::{paper_tracer, paper_uh3d, print_header, target_machine, UH3D_TARGET};
use xtrace_extrap::{fit_all, select_best, CanonicalForm, SelectionCriterion};
use xtrace_tracer::collect_signature_with;

fn main() {
    let app = paper_uh3d();
    let machine = target_machine();
    let tracer = paper_tracer();
    let counts = [1024u32, 2048, 4096, 8192];
    let block = "particle-push";
    // Instruction 2 is the moment-table gather (see uh3d.rs).
    let instr = 2usize;
    let level = 1usize; // L2

    println!(
        "Figure 4: L2 hit rate of UH3D `{block}` instruction {instr} (moment-table\n\
         gather) vs core count on {}, with all four canonical fits\n",
        machine.name
    );

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &p in &counts {
        let sig = collect_signature_with(&app, p, &machine, &tracer);
        let b = sig.longest_task().block(block).expect("block present");
        xs.push(f64::from(p));
        ys.push(b.instrs[instr].features.hit_rates[level]);
    }

    // Fit on the three training counts, evaluate everywhere (as the paper's
    // figure does: models drawn through and beyond the measured points).
    let train_x = &xs[..3];
    let train_y = &ys[..3];
    let fits = fit_all(&CanonicalForm::PAPER_SET, train_x, train_y);

    print_header(
        &["Cores", "measured", "Log", "Exp", "Linear", "Constant"],
        &[6, 9, 9, 9, 9, 9],
    );
    for (i, &x) in xs.iter().enumerate() {
        let mut row = format!("{:>6}  {:>9.4}", x as u32, ys[i]);
        for form in [
            CanonicalForm::Logarithmic,
            CanonicalForm::Exponential,
            CanonicalForm::Linear,
            CanonicalForm::Constant,
        ] {
            let v = fits
                .iter()
                .find(|f| f.form == form)
                .map(|f| f.eval(x))
                .unwrap_or(f64::NAN);
            row.push_str(&format!("  {v:>9.4}"));
        }
        println!("{row}");
    }

    let best = select_best(
        &CanonicalForm::PAPER_SET,
        train_x,
        train_y,
        SelectionCriterion::Sse,
    );
    println!("\nbest fit: {} (SSE {:.3e})", best.form.label(), best.sse);
    println!(
        "extrapolated L2 hit rate at {} cores: {:.4} (measured {:.4})",
        UH3D_TARGET,
        best.eval(f64::from(UH3D_TARGET)).clamp(0.0, 1.0),
        ys[3]
    );
    println!("\npaper: the linear model captures the rising L2 hit rate.");
    assert_eq!(
        best.form,
        CanonicalForm::Linear,
        "figure 4's linear-model result did not reproduce"
    );
}
