//! **Regression bench: parallel canonical-form fitting.**
//!
//! Times `extrapolate_signature` — the per-(block, instruction) fitting
//! fan-out in `crates/extrap` — at 1 thread and at N threads over the
//! SPECFEM3D-proxy training ladder, and verifies the two runs produce a
//! byte-identical extrapolated trace (ordering and form selection must not
//! depend on scheduling). Training traces are collected once (memoized)
//! outside the timed region.
//!
//! Emits `BENCH_extrap.json`. Run with:
//! `cargo run --release -p xtrace-bench --bin bench_extrap [-- --threads N --out F]`
//! Set `XTRACE_BENCH_QUICK=1` for a tiny smoke configuration.

use std::time::Instant;

use serde::Serialize;
use xtrace_apps::SpecfemProxy;
use xtrace_bench::{target_machine, SPECFEM_TARGET, SPECFEM_TRAINING};
use xtrace_extrap::{extrapolate_signature, ExtrapolationConfig};
use xtrace_spmd::{MpiProfiler, SpmdApp};
use xtrace_tracer::{collect_ranks_memo, SigMemo, TaskTrace, TracerConfig};

#[derive(Serialize)]
struct ExtrapBench {
    app: String,
    machine: String,
    quick: bool,
    threads: usize,
    /// Hardware threads on the bench host; `speedup` cannot exceed this,
    /// so a 1-core host reports ~thread-overhead, not fan-out gain.
    host_cores: usize,
    training: Vec<u32>,
    target: u32,
    /// (block, instruction) pairs fitted per run.
    fitted_elements: usize,
    reps: u32,
    serial_wall_s: f64,
    parallel_wall_s: f64,
    elements_per_sec_serial: f64,
    elements_per_sec_parallel: f64,
    speedup: f64,
    /// Serialized serial and parallel outputs compared byte-for-byte.
    bit_identical: bool,
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let threads: usize = flag("--threads")
        .map(|v| v.parse().expect("--threads must be an integer"))
        .unwrap_or(4);
    let out = flag("--out").unwrap_or_else(|| "BENCH_extrap.json".into());
    let quick = std::env::var("XTRACE_BENCH_QUICK").is_ok_and(|v| v == "1");

    let (app, cfg, training, target, reps) = if quick {
        (
            SpecfemProxy::small(),
            TracerConfig::fast(),
            vec![4u32, 8, 16],
            32u32,
            3u32,
        )
    } else {
        (
            SpecfemProxy::paper_scale(),
            TracerConfig::default(),
            SPECFEM_TRAINING.to_vec(),
            SPECFEM_TARGET,
            200u32,
        )
    };
    let machine = target_machine();
    let threads = threads.max(2);
    eprintln!(
        "bench_extrap: {} {:?} -> {}, {} threads, {} reps{}",
        SpmdApp::name(&app),
        training,
        target,
        threads,
        reps,
        if quick { " (quick)" } else { "" }
    );

    // Training traces (untimed; shared memo across counts).
    let memo = SigMemo::new();
    let traces: Vec<TaskTrace> = training
        .iter()
        .map(|&p| {
            let comm = MpiProfiler::default().profile(&app, p, &machine.net);
            collect_ranks_memo(&app, &[comm.longest_rank], p, &machine, &cfg, &memo)
                .pop()
                .expect("one trace")
        })
        .collect();
    let fitted_elements: usize = traces[0].blocks.iter().map(|b| b.instrs.len()).sum();
    let ex_cfg = ExtrapolationConfig::default();

    let time_pool = |n: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("pool");
        pool.install(|| {
            let mut best = f64::INFINITY;
            let mut result = None;
            for _ in 0..reps {
                let t0 = Instant::now();
                let trace = extrapolate_signature(&traces, target, &ex_cfg).expect("valid ladder");
                best = best.min(t0.elapsed().as_secs_f64());
                result = Some(trace);
            }
            (best, result.expect("at least one rep"))
        })
    };

    let (serial_wall, serial_trace) = time_pool(1);
    eprintln!("  1 thread : {:.2} ms/extrapolation", 1e3 * serial_wall);
    let (parallel_wall, parallel_trace) = time_pool(threads);
    eprintln!(
        "  {threads} threads: {:.2} ms/extrapolation",
        1e3 * parallel_wall
    );

    let a = serde_json::to_string(&serial_trace).expect("serializable");
    let b = serde_json::to_string(&parallel_trace).expect("serializable");
    let bit_identical = a == b;

    let report = ExtrapBench {
        app: SpmdApp::name(&app).to_string(),
        machine: machine.name.clone(),
        quick,
        threads,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        training,
        target,
        fitted_elements,
        reps,
        serial_wall_s: serial_wall,
        parallel_wall_s: parallel_wall,
        elements_per_sec_serial: fitted_elements as f64 / serial_wall,
        elements_per_sec_parallel: fitted_elements as f64 / parallel_wall,
        speedup: serial_wall / parallel_wall,
        bit_identical,
    };
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write report");
    println!(
        "fitting speedup {:.2}x over {} elements, bit-identical: {}\nwrote {out}",
        report.speedup, report.fitted_elements, report.bit_identical
    );
    assert!(
        bit_identical,
        "parallel fitting changed the extrapolated trace"
    );
}
