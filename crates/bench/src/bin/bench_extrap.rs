//! **Regression bench: parallel canonical-form fitting.**
//!
//! Times `extrapolate_signature` — the per-(block, instruction) fitting
//! fan-out in `crates/extrap` — at 1 thread and at N threads, at two
//! signature sizes: the SPECFEM3D-proxy paper signature (28 instructions,
//! small enough that the library now refuses to fan out) and a tiled
//! variant large enough to cross `MIN_PAR_FIT_ELEMENTS`. Each
//! configuration verifies the two runs produce a byte-identical
//! extrapolated trace (ordering and form selection must not depend on
//! scheduling). Training traces are collected once (memoized) outside the
//! timed region.
//!
//! Speedup accounting is *path-aware*: when `parallel_fit_enabled`
//! reports that the N-thread leg takes the very same serial code path as
//! the 1-thread leg (signature below the element threshold, or a
//! single-core host where extra threads cannot help), the two legs execute
//! identical code and the configuration's speedup is 1.0 by construction;
//! the raw walls are still reported so the noise floor is visible. Only
//! when the fan-out genuinely runs does the measured ratio count.
//!
//! Emits `BENCH_extrap.json`. Run with:
//! `cargo run --release -p xtrace-bench --bin bench_extrap [-- --threads N --out F]`
//! Set `XTRACE_BENCH_QUICK=1` for a tiny smoke configuration.

use std::time::Instant;

use serde::Serialize;
use xtrace_apps::SpecfemProxy;
use xtrace_bench::{target_machine, SPECFEM_TARGET, SPECFEM_TRAINING};
use xtrace_extrap::{
    extrapolate_signature, parallel_fit_enabled, ExtrapolationConfig, MIN_PAR_FIT_ELEMENTS,
};
use xtrace_spmd::{MpiProfiler, SpmdApp};
use xtrace_tracer::{collect_ranks_memo, FeatureId, SigMemo, TaskTrace, TracerConfig};

#[derive(Serialize)]
struct ConfigResult {
    name: String,
    /// (block, instruction) pairs fitted per run.
    fitted_instrs: usize,
    /// Individual element fits per run (instrs × features).
    element_fits: usize,
    serial_wall_s: f64,
    parallel_wall_s: f64,
    /// Raw serial/parallel wall ratio (noise when `same_code_path`).
    measured_ratio: f64,
    /// Whether the N-thread leg actually fanned out on this host.
    parallel_path_taken: bool,
    /// True when both legs executed the identical serial path, making the
    /// effective speedup 1.0 by construction.
    same_code_path: bool,
    /// Effective speedup: `measured_ratio` when the fan-out ran, else 1.0.
    speedup: f64,
    /// Serialized serial and parallel outputs compared byte-for-byte.
    bit_identical: bool,
}

#[derive(Serialize)]
struct ExtrapBench {
    app: String,
    machine: String,
    quick: bool,
    threads: usize,
    /// Hardware threads on the bench host; a measured fan-out gain cannot
    /// exceed this, which is why single-core hosts take the serial path.
    host_cores: usize,
    min_par_fit_elements: usize,
    training: Vec<u32>,
    target: u32,
    reps: u32,
    configs: Vec<ConfigResult>,
    /// Minimum effective speedup across configurations.
    speedup: f64,
    /// All configurations bit-identical across thread counts.
    bit_identical: bool,
}

/// Tiles a trace's blocks `copies` times (suffixing names so alignment
/// stays by-name unique), producing a signature `copies`× as large with
/// the same per-element fitting behavior.
fn tile_trace(trace: &TaskTrace, copies: usize) -> TaskTrace {
    let mut tiled = trace.clone();
    tiled.blocks = (0..copies)
        .flat_map(|c| {
            trace.blocks.iter().map(move |b| {
                let mut b = b.clone();
                b.name = format!("{}#{c}", b.name);
                b
            })
        })
        .collect();
    tiled
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let threads: usize = flag("--threads")
        .map(|v| v.parse().expect("--threads must be an integer"))
        .unwrap_or(4);
    let out = flag("--out").unwrap_or_else(|| "BENCH_extrap.json".into());
    let quick = std::env::var("XTRACE_BENCH_QUICK").is_ok_and(|v| v == "1");

    let (app, cfg, training, target, reps) = if quick {
        (
            SpecfemProxy::small(),
            TracerConfig::fast(),
            vec![4u32, 8, 16],
            32u32,
            3u32,
        )
    } else {
        (
            SpecfemProxy::paper_scale(),
            TracerConfig::default(),
            SPECFEM_TRAINING.to_vec(),
            SPECFEM_TARGET,
            200u32,
        )
    };
    let machine = target_machine();
    let threads = threads.max(2);
    eprintln!(
        "bench_extrap: {} {:?} -> {}, {} threads, {} reps{}",
        SpmdApp::name(&app),
        training,
        target,
        threads,
        reps,
        if quick { " (quick)" } else { "" }
    );

    // Training traces (untimed; shared memo across counts).
    let memo = SigMemo::new();
    let traces: Vec<TaskTrace> = training
        .iter()
        .map(|&p| {
            let comm = MpiProfiler::default().profile(&app, p, &machine.net);
            collect_ranks_memo(&app, &[comm.longest_rank], p, &machine, &cfg, &memo)
                .pop()
                .expect("one trace")
        })
        .collect();

    // A tiled ladder large enough that the element count clears the
    // fan-out threshold with margin.
    let base_instrs: usize = traces[0].blocks.iter().map(|b| b.instrs.len()).sum();
    let features = FeatureId::all(traces[0].depth).len();
    let copies = (4 * MIN_PAR_FIT_ELEMENTS)
        .div_ceil(base_instrs.max(1) * features.max(1))
        .max(4);
    let tiled: Vec<TaskTrace> = traces.iter().map(|t| tile_trace(t, copies)).collect();

    let ex_cfg = ExtrapolationConfig::default();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let run_config =
        |name: &str, ladder: &[TaskTrace]| -> ConfigResult {
            let fitted_instrs: usize = ladder[0].blocks.iter().map(|b| b.instrs.len()).sum();
            let element_fits = fitted_instrs * features;
            let time_pool = |n: usize| {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build()
                    .expect("pool");
                pool.install(|| {
                    let mut best = f64::INFINITY;
                    let mut result = None;
                    for _ in 0..reps {
                        let t0 = Instant::now();
                        let trace =
                            extrapolate_signature(ladder, target, &ex_cfg).expect("valid ladder");
                        best = best.min(t0.elapsed().as_secs_f64());
                        result = Some(trace);
                    }
                    (best, result.expect("at least one rep"))
                })
            };

            let (serial_wall, serial_trace) = time_pool(1);
            let (parallel_wall, parallel_trace) = time_pool(threads);
            // Replicate the library's gate under the N-thread pool to learn
            // which code path that leg took.
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let parallel_path_taken = pool.install(|| parallel_fit_enabled(element_fits));
            let same_code_path = !parallel_path_taken;
            let measured_ratio = serial_wall / parallel_wall;
            let speedup = if same_code_path { 1.0 } else { measured_ratio };

            let a = serde_json::to_string(&serial_trace).expect("serializable");
            let b = serde_json::to_string(&parallel_trace).expect("serializable");
            let bit_identical = a == b;
            eprintln!(
            "  {name}: {element_fits} element fits, serial {:.2} ms, {threads}-thread {:.2} ms, \
             fan-out {} -> speedup {speedup:.2}x, bit-identical {bit_identical}",
            1e3 * serial_wall,
            1e3 * parallel_wall,
            if parallel_path_taken { "ran" } else { "skipped (same code path)" },
        );
            ConfigResult {
                name: name.to_string(),
                fitted_instrs,
                element_fits,
                serial_wall_s: serial_wall,
                parallel_wall_s: parallel_wall,
                measured_ratio,
                parallel_path_taken,
                same_code_path,
                speedup,
                bit_identical,
            }
        };

    let configs = vec![
        run_config("paper-signature", &traces),
        run_config(&format!("tiled-signature-x{copies}"), &tiled),
    ];
    let speedup = configs
        .iter()
        .map(|c| c.speedup)
        .fold(f64::INFINITY, f64::min);
    let bit_identical = configs.iter().all(|c| c.bit_identical);

    let report = ExtrapBench {
        app: SpmdApp::name(&app).to_string(),
        machine: machine.name.clone(),
        quick,
        threads,
        host_cores,
        min_par_fit_elements: MIN_PAR_FIT_ELEMENTS,
        training,
        target,
        reps,
        configs,
        speedup,
        bit_identical,
    };
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write report");
    println!(
        "fitting speedup {:.2}x (min over {} configs), bit-identical: {}\nwrote {out}",
        report.speedup,
        report.configs.len(),
        report.bit_identical
    );
    assert!(
        bit_identical,
        "parallel fitting changed the extrapolated trace"
    );
    assert!(
        report.speedup >= 1.0,
        "parallel fitting regressed: {:.3}x",
        report.speedup
    );
}
