//! **Ablation: canonical-form set.**
//!
//! Section VI: "Future research will add more canonical forms (e.g.,
//! polynomial) … to improve the accuracy of the extrapolation." This
//! ablation quantifies the claim on two workloads:
//!
//! * the paper-style SPECFEM3D proxy (master-rank elements: constant,
//!   linear, logarithmic — already inside the four forms' span), and
//! * a perfectly symmetric stencil code, whose per-task counts decay like
//!   1/P — a shape *none* of the four forms captures but the power form
//!   fits exactly.
//!
//! Run with: `cargo run --release -p xtrace-bench --bin ablation_forms`

use xtrace_apps::StencilProxy;
use xtrace_bench::{
    paper_specfem, paper_tracer, print_header, run_table1_row, target_machine, SPECFEM_TARGET,
    SPECFEM_TRAINING,
};
use xtrace_extrap::{CanonicalForm, ExtrapolationConfig};
use xtrace_machine::presets;
use xtrace_tracer::TracerConfig;

fn main() {
    let tracer = paper_tracer();

    let sets: [(&str, Vec<CanonicalForm>); 3] = [
        ("paper (4 forms)", CanonicalForm::PAPER_SET.to_vec()),
        (
            "+power",
            vec![
                CanonicalForm::Constant,
                CanonicalForm::Linear,
                CanonicalForm::Logarithmic,
                CanonicalForm::Exponential,
                CanonicalForm::Power,
            ],
        ),
        ("+power+quadratic", CanonicalForm::EXTENDED_SET.to_vec()),
    ];

    println!("Ablation: canonical-form set (Section VI future work)\n");

    println!("SPECFEM3D proxy -> {SPECFEM_TARGET} cores (master-rank element families):");
    print_header(
        &["form set", "extrap (s)", "gap %", "err %"],
        &[18, 10, 6, 6],
    );
    let machine = target_machine();
    for (label, forms) in &sets {
        let cfg = ExtrapolationConfig {
            forms: forms.clone(),
            ..ExtrapolationConfig::default()
        };
        let row = run_table1_row(
            &paper_specfem(),
            &SPECFEM_TRAINING,
            SPECFEM_TARGET,
            &machine,
            &tracer,
            &cfg,
        );
        println!(
            "{:>18}  {:>10.1}  {:>5.2}  {:>5.2}",
            label,
            row.extrap.total_seconds,
            100.0 * row.prediction_gap(),
            100.0 * row.extrap_error()
        );
    }

    println!("\nsymmetric stencil proxy (counts decay like 1/P) -> 128 cores:");
    print_header(
        &["form set", "extrap (s)", "gap %", "err %"],
        &[18, 10, 6, 6],
    );
    let stencil = StencilProxy::medium();
    let xt5 = presets::cray_xt5();
    for (label, forms) in &sets {
        let cfg = ExtrapolationConfig {
            forms: forms.clone(),
            ..ExtrapolationConfig::default()
        };
        let row = run_table1_row(
            &stencil,
            &[8, 16, 32],
            128,
            &xt5,
            &TracerConfig::default(),
            &cfg,
        );
        println!(
            "{:>18}  {:>10.4}  {:>5.1}  {:>5.1}",
            label,
            row.extrap.total_seconds,
            100.0 * row.prediction_gap(),
            100.0 * row.extrap_error()
        );
    }

    println!(
        "\nexpected shape: the four forms already capture master-rank behaviour\n\
         (small gaps on SPECFEM3D), but hyperbolic 1/P decay needs the power\n\
         form — the gap on the symmetric stencil collapses once it is added,\n\
         which is exactly why the paper lists more forms as future work.\n\
         Caveat the reproduction surfaces: the quadratic form *interpolates*\n\
         three training points exactly, leaving no residual for selection to\n\
         act on, and its extrapolation overshoots — adding forms without\n\
         adding training points can hurt."
    );
}
