//! **Regression bench: observability overhead.**
//!
//! The instrumentation threaded through the pipeline (stage spans, memo
//! and store counters, fit-win tallies, replay-cache counters) must be
//! free when nobody is looking. This harness times the full pipeline two
//! ways:
//!
//! 1. `plain`    — no recorder installed: every instrumentation site takes
//!    the disabled fast path (one relaxed atomic load, no-op handles).
//! 2. `recorded` — an [`xtrace_obs::Recorder`] attached: spans, counters,
//!    gauges, and histograms all live.
//! 3. `journal`  — [`Recorder::with_journal`]: everything above plus the
//!    structured event journal (stage begin/end, per-count collects,
//!    per-element fit decisions, rank-class attribution).
//!
//! The acceptance number is the *recorded* overhead fraction. At every
//! instrumentation site the disabled path does strictly less work than
//! the enabled one (same guard load, then nothing instead of atomics and
//! registry lookups), so the no-recorder overhead is bounded above by the
//! measured recorded overhead — asserting `recorded < 2%` pins both. The
//! disabled path is additionally microbenched directly and reported as
//! ns/op for the record.
//!
//! Correctness gate (quick and full): the prediction and extrapolated
//! signature must be bit-identical across all three legs.
//! Performance gate (full mode only): recorded overhead < 2%, journal
//! overhead < 3%.
//!
//! Emits `BENCH_obs.json`. Run with:
//! `cargo run --release -p xtrace-bench --bin bench_obs [-- --out F]`
//! Set `XTRACE_BENCH_QUICK=1` for a tiny smoke configuration.

use std::time::Instant;

use serde::Serialize;
use xtrace_core::{Pipeline, PipelineConfig, PipelineReport};
use xtrace_obs::{JournalSnapshot, Recorder, Snapshot};

#[derive(Serialize)]
struct ObsBench {
    quick: bool,
    reps: u32,
    app: String,
    plain_wall_s: f64,
    recorded_wall_s: f64,
    journal_wall_s: f64,
    /// recorded wall / plain wall − 1. Negative values are timer noise.
    recorded_overhead_frac: f64,
    /// journal wall / plain wall − 1. Negative values are timer noise.
    journal_overhead_frac: f64,
    /// Direct microbench of the disabled fast path: one ambient-registry
    /// lookup plus one counter increment per op, nothing installed.
    disabled_ns_per_op: f64,
    /// Spans the recorded run finished (stage tree + per-count collects).
    spans_recorded: usize,
    /// Sum of all counter totals the recorded run accumulated.
    counter_events: u64,
    /// Events the journal-enabled run buffered.
    journal_events: usize,
    /// Events the journal dropped once the buffer filled (0 expected).
    journal_dropped: u64,
    /// Prediction and extrapolated signature identical across all legs.
    bit_identical: bool,
}

/// One timed call.
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let value = f();
    (t0.elapsed().as_secs_f64(), value)
}

fn config(quick: bool) -> PipelineConfig {
    // Quick: the golden-pipeline tiny configuration. Full: the same run
    // at default tracer sampling, where the hot kernels dominate and the
    // overhead fraction is measured against real work.
    PipelineConfig::builder("specfem3d", "cray-xt5", vec![6, 24, 96], 384)
        .scale("tiny")
        .fast_tracer(quick)
        .validate(false)
        .build()
}

fn run_plain(quick: bool) -> PipelineReport {
    Pipeline::new(config(quick))
        .expect("valid config")
        .run()
        .expect("pipeline runs")
}

fn run_recorded(quick: bool) -> (PipelineReport, Snapshot) {
    let recorder = Recorder::new();
    let report = Pipeline::new(config(quick))
        .expect("valid config")
        .with_recorder(recorder.clone())
        .run()
        .expect("pipeline runs");
    let snapshot = recorder.snapshot();
    (report, snapshot)
}

fn run_journaled(quick: bool) -> (PipelineReport, JournalSnapshot) {
    let recorder = Recorder::with_journal();
    let report = Pipeline::new(config(quick))
        .expect("valid config")
        .with_recorder(recorder.clone())
        .run()
        .expect("pipeline runs");
    let journal = recorder
        .journal_snapshot()
        .expect("with_journal() recorder has a journal");
    (report, journal)
}

fn disabled_ns_per_op(iters: u64) -> f64 {
    assert!(
        !xtrace_obs::ObsContext::ambient().enabled(),
        "microbench must see the disabled path"
    );
    let t0 = Instant::now();
    for i in 0..iters {
        let m = xtrace_obs::ObsContext::ambient().metrics();
        m.counter("bench.disabled").add(std::hint::black_box(i) & 1);
    }
    t0.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let out = flag("--out").unwrap_or_else(|| "BENCH_obs.json".into());
    let quick = std::env::var("XTRACE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let reps = if quick { 2u32 } else { 5u32 };
    eprintln!(
        "bench_obs: {} reps{}",
        reps,
        if quick { " (quick)" } else { "" }
    );

    // Warm both code paths (and the page cache) once before timing.
    let _ = run_plain(quick);

    // Interleave the legs so slow drift in machine load lands on both
    // equally; min-of-reps then discards the noisy outliers.
    let mut plain_wall = f64::INFINITY;
    let mut recorded_wall = f64::INFINITY;
    let mut journal_wall = f64::INFINITY;
    let mut plain = None;
    let mut recorded_leg = None;
    let mut journal_leg = None;
    for _ in 0..reps {
        let (w, r) = timed(|| run_plain(quick));
        plain_wall = plain_wall.min(w);
        plain = Some(r);
        let (w, r) = timed(|| run_recorded(quick));
        recorded_wall = recorded_wall.min(w);
        recorded_leg = Some(r);
        let (w, r) = timed(|| run_journaled(quick));
        journal_wall = journal_wall.min(w);
        journal_leg = Some(r);
    }
    let plain = plain.expect("at least one rep");
    let (recorded, snapshot) = recorded_leg.expect("at least one rep");
    let (journaled, journal) = journal_leg.expect("at least one rep");
    let overhead = recorded_wall / plain_wall - 1.0;
    let journal_overhead = journal_wall / plain_wall - 1.0;
    let ns_per_op = disabled_ns_per_op(if quick { 10_000_000 } else { 100_000_000 });

    let plain_pred = serde_json::to_string(&plain.prediction).expect("serializes");
    let bit_identical = plain_pred
        == serde_json::to_string(&recorded.prediction).expect("serializes")
        && plain_pred == serde_json::to_string(&journaled.prediction).expect("serializes")
        && plain.extrapolated == recorded.extrapolated
        && plain.extrapolated == journaled.extrapolated;

    let report = ObsBench {
        quick,
        reps,
        app: "specfem3d/tiny".into(),
        plain_wall_s: plain_wall,
        recorded_wall_s: recorded_wall,
        journal_wall_s: journal_wall,
        recorded_overhead_frac: overhead,
        journal_overhead_frac: journal_overhead,
        disabled_ns_per_op: ns_per_op,
        spans_recorded: snapshot.spans.len(),
        counter_events: snapshot.counters.values().sum(),
        journal_events: journal.events.len(),
        journal_dropped: journal.dropped,
        bit_identical,
    };
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write report");
    println!(
        "plain {:.1} ms, recorded {:.1} ms ({:+.2}%), journal {:.1} ms \
         ({:+.2}%, {} events, {} dropped), disabled path {:.2} ns/op, \
         {} spans, {} counter events, bit-identical: {}\nwrote {out}",
        1e3 * plain_wall,
        1e3 * recorded_wall,
        1e2 * overhead,
        1e3 * journal_wall,
        1e2 * journal_overhead,
        report.journal_events,
        report.journal_dropped,
        ns_per_op,
        report.spans_recorded,
        report.counter_events,
        bit_identical
    );

    // Correctness gate (quick and full): observation must not perturb the
    // answer.
    assert!(
        report.bit_identical,
        "recording metrics or journaling changed the prediction"
    );
    assert!(report.spans_recorded > 0 && report.counter_events > 0);
    assert!(
        report.journal_events > 0 && report.journal_dropped == 0,
        "journal leg must buffer events without dropping any"
    );
    // Performance gate (full mode only; quick runs assert correctness,
    // not wall-clock).
    if !quick {
        assert!(
            overhead < 0.02,
            "observability overhead above acceptance: {:+.2}%",
            1e2 * overhead
        );
        assert!(
            journal_overhead < 0.03,
            "journal overhead above acceptance: {:+.2}%",
            1e2 * journal_overhead
        );
    }
}
