//! **Regression bench: parallel, memoized signature collection.**
//!
//! Times full-signature collection for the SPECFEM3D proxy over the three
//! paper training core counts, three ways:
//!
//! 1. `seed_serial`    — the frozen pre-optimization path
//!    ([`xtrace_bench::seed_cache`]): per-access `AddressPattern::offset`
//!    address generation into one shared stamp-based hierarchy per rank,
//!    blocks streamed sequentially. This is the baseline the ≥3×
//!    acceptance number is measured against.
//! 2. `current_serial` — today's recency-ordered kernel driven through
//!    the **direct (unbuffered) sink**, still one thread and no memo
//!    (isolates the kernel speedup, and anchors the bit-equality asserts
//!    that certify the streaming ring path below against it).
//! 3. `parallel_memo`  — today's kernel with the ring-buffered streaming
//!    sink, the rayon rank × block fan-out, and a shared [`SigMemo`]
//!    deduplicating structurally identical block simulations across ranks
//!    and counts.
//! 4. `streaming_wide` — the streaming + memo path at ≥64 ranks per
//!    training count (the wide-collection shape `--ranks-per-count`
//!    enables), reporting peak RSS, ring high-water occupancy, and
//!    compressed-vs-raw stored-trace bytes alongside wall time.
//!
//! Each count traces the profiler-identified longest task plus a spread of
//! worker ranks (the Section-VI clustering signature shape). The harness
//! then verifies the speedups changed nothing: per-element features of the
//! serial and memoized runs must agree bit-for-bit, and the extrapolated
//! target-count predictions must match exactly.
//!
//! Emits `BENCH_collect.json`. Run with:
//! `cargo run --release -p xtrace-bench --bin bench_collect [-- --threads N --out F]`
//! Set `XTRACE_BENCH_QUICK=1` for a tiny smoke configuration.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::Instant;

use serde::Serialize;
use xtrace_apps::SpecfemProxy;
use xtrace_bench::seed_cache::{SeedAccessStream, SeedCacheHierarchy};
use xtrace_bench::{target_machine, SPECFEM_TARGET, SPECFEM_TRAINING};
use xtrace_cache::LevelCounts;
use xtrace_core::{Pipeline, PipelineConfig};
use xtrace_extrap::{element_errors, extrapolate_signature, ExtrapolationConfig};
use xtrace_ir::BlockId;
use xtrace_machine::MachineProfile;
use xtrace_psins::{relative_error, try_predict_runtime};
use xtrace_spmd::{MpiProfiler, RankEvent, SpmdApp};
use xtrace_tracer::{
    collect_ranks_memo, collect_ranks_memo_obs, collect_task_trace, rank_stream_seed, to_bytes,
    v1_encoded_len, SigMemo, TaskTrace, TracerConfig,
};

#[derive(Serialize)]
struct Leg {
    wall_s: f64,
    /// Logical sampled references delivered per second of wall time (the
    /// memoized leg "delivers" memo answers without streaming them).
    refs_per_sec: f64,
}

#[derive(Serialize)]
struct StreamingWide {
    wall_s: f64,
    /// Logical sampled references delivered per second of wall time.
    refs_per_sec: f64,
    /// Logical sampled references across every wide-collected rank.
    sampled_refs: u64,
    /// Process peak RSS (`VmHWM`) after the wide leg, in bytes. Bounded
    /// ring buffers keep this sub-linear in ranks-per-count.
    peak_rss_bytes: u64,
    /// High-water ring occupancy observed by the tracer (refs).
    ring_peak_refs: u64,
    /// Configured ring capacity (refs); peak must never exceed it.
    ring_capacity_refs: u64,
    /// Bytes the wide training set would occupy in the v1 envelope.
    bytes_stored_raw: u64,
    /// Bytes it occupies in the compressed v2 envelope.
    bytes_stored_compressed: u64,
    /// raw / compressed.
    compression_ratio: f64,
    /// Relative error of the wide-leg extrapolated prediction vs the
    /// direct serial leg (must be exactly 0: streaming is bit-identical).
    prediction_rel_err: f64,
}

#[derive(Serialize)]
struct MemoStats {
    hits: u64,
    misses: u64,
    hit_rate: f64,
    entries: usize,
}

#[derive(Serialize)]
struct CollectBench {
    app: String,
    machine: String,
    quick: bool,
    threads: usize,
    /// Hardware threads on the bench host; on a 1-core host the fan-out
    /// contributes nothing and the speedup comes from the kernel, the
    /// incremental stream cursors, and memo deduplication alone.
    host_cores: usize,
    training: Vec<u32>,
    target: u32,
    ranks_per_count: usize,
    /// Ranks per count for the `streaming_wide` leg (saturates at the
    /// count itself for small training counts).
    wide_ranks_per_count: usize,
    sampled_refs: u64,
    seed_serial: Leg,
    current_serial: Leg,
    parallel_memo: Leg,
    streaming_wide: StreamingWide,
    /// The acceptance number: seed serial wall / parallel+memo wall.
    speedup_vs_seed: f64,
    /// Single-thread component: cache kernel + incremental stream cursors.
    speedup_kernel_and_gen: f64,
    /// Fan-out + memo component of the speedup.
    speedup_vs_current_serial: f64,
    memo: MemoStats,
    /// Max per-element relative feature error, serial vs memoized traces.
    max_element_rel_err: f64,
    /// Relative error between target-count runtime predictions extrapolated
    /// from the serial and from the memoized training traces.
    prediction_rel_err: f64,
    /// Pipeline-engine cold run: collect + fit + synthesize + convolve,
    /// populating the artifact store on the way out.
    store_cold_s: f64,
    /// Identical config, warm store: every artifact resumes as a cache hit.
    store_resume_s: f64,
    /// Cold wall / warm wall — the store-resume acceptance number.
    store_resume_speedup: f64,
    store_cache_hits: usize,
    /// Relative error between the engine's warm and cold predictions
    /// (must be exactly 0: a cache hit returns the stored artifact).
    store_prediction_rel_err: f64,
}

/// The profiler's longest rank first, then worker ranks spread across the
/// job (distinct, all `< nranks`).
fn sample_ranks(nranks: u32, longest: u32, k: usize) -> Vec<u32> {
    let mut ranks = vec![longest];
    let step = (nranks / k.max(1) as u32).max(1);
    let mut r = 1;
    while ranks.len() < k && r < nranks {
        if !ranks.contains(&r) {
            ranks.push(r);
        }
        r += step;
    }
    ranks
}

/// Folds a rank's Compute events per block in first-appearance order —
/// the same folding `collect_task_trace` performs.
fn folded_blocks(events: &[RankEvent]) -> Vec<(BlockId, u64)> {
    let mut order: Vec<(BlockId, u64)> = Vec::new();
    let mut slot: HashMap<BlockId, usize> = HashMap::new();
    for ev in events {
        if let RankEvent::Compute { block, invocations } = ev {
            match slot.entry(*block) {
                Entry::Occupied(e) => order[*e.get()].1 += invocations,
                Entry::Vacant(e) => {
                    e.insert(order.len());
                    order.push((*block, *invocations));
                }
            }
        }
    }
    order
}

/// Replays the seed's serial collection path for one rank: one shared
/// stamp-kernel hierarchy, blocks in order, identical warmup/sample
/// windows to `collect_task_trace`. Returns references streamed.
fn seed_collect_rank(
    app: &dyn SpmdApp,
    rank: u32,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
) -> u64 {
    let rp = app.rank_program(rank, nranks);
    let rank_seed = rank_stream_seed(cfg, rank);
    let mut cache = SeedCacheHierarchy::new(machine.hierarchy.clone());
    let mut refs = 0u64;
    for (block_id, inv) in folded_blocks(&rp.events) {
        let blk = rp.program.block(block_id);
        let refs_per_iter: u64 = blk
            .instrs
            .iter()
            .filter(|i| i.is_mem())
            .map(|i| u64::from(i.repeat))
            .sum();
        let total_iters = blk.iterations.saturating_mul(inv);
        if refs_per_iter == 0 || total_iters == 0 {
            continue;
        }
        let sample_iters = total_iters.min((cfg.max_sampled_refs_per_block / refs_per_iter).max(1));
        let warmup_iters = sample_iters.min(total_iters - sample_iters);
        let mut counts = vec![LevelCounts::default(); blk.instrs.len()];
        let mut stream = SeedAccessStream::new(&rp.program, block_id, rank_seed);
        stream.run_iterations(warmup_iters, &mut |a| {
            cache.access(a.addr, a.bytes);
        });
        stream.run_iterations(sample_iters, &mut |a| {
            let lvl = cache.access(a.addr, a.bytes);
            counts[a.instr.index()].record(lvl);
        });
        refs += (warmup_iters + sample_iters).saturating_mul(refs_per_iter);
        std::hint::black_box(&counts);
    }
    refs
}

/// Logical sampled references (warmup + sample windows) that
/// `collect_task_trace` streams for one rank, computed analytically from
/// the program structure — the same window math `seed_collect_rank`
/// replays, without running a simulator.
fn logical_refs(app: &dyn SpmdApp, rank: u32, nranks: u32, cfg: &TracerConfig) -> u64 {
    let rp = app.rank_program(rank, nranks);
    let mut refs = 0u64;
    for (block_id, inv) in folded_blocks(&rp.events) {
        let blk = rp.program.block(block_id);
        let refs_per_iter: u64 = blk
            .instrs
            .iter()
            .filter(|i| i.is_mem())
            .map(|i| u64::from(i.repeat))
            .sum();
        let total_iters = blk.iterations.saturating_mul(inv);
        if refs_per_iter == 0 || total_iters == 0 {
            continue;
        }
        let sample_iters = total_iters.min((cfg.max_sampled_refs_per_block / refs_per_iter).max(1));
        let warmup_iters = sample_iters.min(total_iters - sample_iters);
        refs += (warmup_iters + sample_iters).saturating_mul(refs_per_iter);
    }
    refs
}

/// Process high-water resident set (`VmHWM`) in bytes; 0 where
/// `/proc/self/status` is unavailable.
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")?
                    .split_whitespace()
                    .next()?
                    .parse::<u64>()
                    .ok()
            })
        })
        .map_or(0, |kb| kb * 1024)
}

/// Extrapolates the longest-task training traces to `target` and predicts
/// its runtime on `machine`.
fn predict_target(
    app: &SpecfemProxy,
    longest_traces: &[TaskTrace],
    target: u32,
    machine: &MachineProfile,
) -> f64 {
    let extrapolated =
        extrapolate_signature(longest_traces, target, &ExtrapolationConfig::default())
            .expect("valid training ladder");
    let comm = xtrace_apps::ProxyApp::comm_profile(app, target);
    try_predict_runtime(&extrapolated, &comm, machine)
        .unwrap()
        .total_seconds
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let threads: usize = flag("--threads")
        .map(|v| v.parse().expect("--threads must be an integer"))
        .unwrap_or(4);
    let out = flag("--out").unwrap_or_else(|| "BENCH_collect.json".into());
    let quick = std::env::var("XTRACE_BENCH_QUICK").is_ok_and(|v| v == "1");

    let (app, cfg, training, target, ranks_per_count) = if quick {
        (
            SpecfemProxy::small(),
            TracerConfig::fast(),
            vec![4u32, 8, 16],
            32u32,
            3usize,
        )
    } else {
        (
            SpecfemProxy::paper_scale(),
            TracerConfig::default(),
            SPECFEM_TRAINING.to_vec(),
            SPECFEM_TARGET,
            8usize,
        )
    };
    let machine = target_machine();
    let threads = threads.max(2);

    // Rank selection (untimed; identical for every leg).
    let longest_ranks: Vec<(u32, u32)> = training
        .iter()
        .map(|&p| {
            let comm = MpiProfiler::default().profile(&app, p, &machine.net);
            (p, comm.longest_rank)
        })
        .collect();
    let rank_sets: Vec<(u32, Vec<u32>)> = longest_ranks
        .iter()
        .map(|&(p, l)| (p, sample_ranks(p, l, ranks_per_count)))
        .collect();
    let wide_ranks_per_count = 64usize;
    let wide_rank_sets: Vec<(u32, Vec<u32>)> = longest_ranks
        .iter()
        .map(|&(p, l)| (p, sample_ranks(p, l, wide_ranks_per_count)))
        .collect();
    eprintln!(
        "bench_collect: {} on {}, counts {:?}, {} ranks/count, {} threads{}",
        SpmdApp::name(&app),
        machine.name,
        training,
        ranks_per_count,
        threads,
        if quick { " (quick)" } else { "" }
    );

    // Leg 1: seed serial path (frozen kernel, shared cache per rank).
    let t0 = Instant::now();
    let mut sampled_refs = 0u64;
    for (p, ranks) in &rank_sets {
        for &r in ranks {
            sampled_refs += seed_collect_rank(&app, r, *p, &machine, &cfg);
        }
    }
    let seed_wall = t0.elapsed().as_secs_f64();
    eprintln!("  seed serial    : {seed_wall:.2} s ({sampled_refs} sampled refs)");

    // Leg 2: current kernel through the direct (unbuffered) sink, one
    // thread, no memo. The later legs stream through the bounded ring;
    // the bit-equality asserts below certify the two sinks agree.
    let direct_cfg = TracerConfig {
        stream_chunk_refs: 0,
        ..cfg
    };
    let one = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    let t0 = Instant::now();
    let serial_traces: Vec<Vec<TaskTrace>> = one.install(|| {
        rank_sets
            .iter()
            .map(|(p, ranks)| {
                ranks
                    .iter()
                    .map(|&r| collect_task_trace(&app, r, *p, &machine, &direct_cfg))
                    .collect()
            })
            .collect()
    });
    let serial_wall = t0.elapsed().as_secs_f64();
    eprintln!("  current serial : {serial_wall:.2} s (direct sink)");

    // Leg 3: current kernel, rayon fan-out, shared memo across counts.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    let memo = SigMemo::new();
    let t0 = Instant::now();
    let memo_traces: Vec<Vec<TaskTrace>> = pool.install(|| {
        rank_sets
            .iter()
            .map(|(p, ranks)| collect_ranks_memo(&app, ranks, *p, &machine, &cfg, &memo))
            .collect()
    });
    let parallel_wall = t0.elapsed().as_secs_f64();
    eprintln!(
        "  parallel+memo  : {parallel_wall:.2} s (memo: {} hits / {} misses)",
        memo.hits(),
        memo.misses()
    );

    // Leg 4: the streaming + memo path at wide ranks-per-count, under a
    // scoped recorder context so the tracer's ring gauges are captured.
    let recorder = xtrace_obs::Recorder::new();
    let wide_metrics = recorder.metrics();
    let wide_obs = xtrace_obs::ObsContext::with_recorder(recorder);
    let wide_memo = SigMemo::new();
    let t0 = Instant::now();
    let wide_traces: Vec<Vec<TaskTrace>> = pool.install(|| {
        wide_rank_sets
            .iter()
            .map(|(p, ranks)| {
                collect_ranks_memo_obs(&app, ranks, *p, &machine, &cfg, &wide_memo, &wide_obs)
            })
            .collect()
    });
    let wide_wall = t0.elapsed().as_secs_f64();
    let wide_refs: u64 = wide_rank_sets
        .iter()
        .map(|(p, ranks)| {
            ranks
                .iter()
                .map(|&r| logical_refs(&app, r, *p, &cfg))
                .sum::<u64>()
        })
        .sum();
    let ring_peak_refs = wide_metrics.gauge("tracer.ring.peak_refs").get();
    let ring_capacity_refs = wide_metrics.gauge("tracer.ring.capacity_refs").get();
    let (mut bytes_stored_raw, mut bytes_stored_compressed) = (0u64, 0u64);
    for t in wide_traces.iter().flatten() {
        bytes_stored_raw += v1_encoded_len(t);
        bytes_stored_compressed += to_bytes(t).len() as u64;
    }
    let wide_nranks: usize = wide_traces.iter().map(Vec::len).sum();
    eprintln!(
        "  streaming wide : {wide_wall:.2} s ({wide_nranks} ranks, ring peak {ring_peak_refs}/{ring_capacity_refs} refs, {bytes_stored_compressed}/{bytes_stored_raw} stored bytes)"
    );

    // Verification: the fast path must not change any answer.
    let mut max_rel_err = 0.0f64;
    for (a, b) in serial_traces
        .iter()
        .flatten()
        .zip(memo_traces.iter().flatten())
    {
        for e in element_errors(a, b) {
            max_rel_err = max_rel_err.max(e.rel_err);
        }
    }
    let longest =
        |legs: &[Vec<TaskTrace>]| -> Vec<TaskTrace> { legs.iter().map(|v| v[0].clone()).collect() };
    let pred_serial = predict_target(&app, &longest(&serial_traces), target, &machine);
    let pred_memo = predict_target(&app, &longest(&memo_traces), target, &machine);
    let prediction_rel_err = relative_error(pred_memo, pred_serial);
    let pred_wide = predict_target(&app, &longest(&wide_traces), target, &machine);
    let wide_prediction_rel_err = relative_error(pred_wide, pred_serial);

    // Legs 4+5: the xtrace-core pipeline engine, cold (populating a fresh
    // artifact store) then warm (every artifact resumes as a cache hit).
    let mut pcfg = PipelineConfig::new("specfem3d", machine.name.clone(), training.clone(), target);
    pcfg.scale = if quick { "small" } else { "paper" }.into();
    pcfg.fast_tracer = quick;
    pcfg.validate = false;
    let store_dir = std::env::temp_dir().join(format!("xtrace-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let engine_run = || {
        let t0 = Instant::now();
        let report = Pipeline::new(pcfg.clone())
            .expect("valid bench config")
            .with_store(&store_dir)
            .expect("store opens")
            .run()
            .expect("pipeline runs");
        (t0.elapsed().as_secs_f64(), report)
    };
    let (store_cold_s, cold_report) = engine_run();
    let (store_resume_s, warm_report) = engine_run();
    let _ = std::fs::remove_dir_all(&store_dir);
    eprintln!(
        "  engine cold    : {store_cold_s:.2} s\n  engine resume  : {store_resume_s:.2} s ({} artifacts reused)",
        warm_report.cache_hits
    );
    let store_prediction_rel_err = relative_error(
        warm_report.prediction.total_seconds,
        cold_report.prediction.total_seconds,
    );

    let report = CollectBench {
        app: SpmdApp::name(&app).to_string(),
        machine: machine.name.clone(),
        quick,
        threads,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        training,
        target,
        ranks_per_count,
        wide_ranks_per_count,
        sampled_refs,
        seed_serial: Leg {
            wall_s: seed_wall,
            refs_per_sec: sampled_refs as f64 / seed_wall,
        },
        current_serial: Leg {
            wall_s: serial_wall,
            refs_per_sec: sampled_refs as f64 / serial_wall,
        },
        parallel_memo: Leg {
            wall_s: parallel_wall,
            refs_per_sec: sampled_refs as f64 / parallel_wall,
        },
        streaming_wide: StreamingWide {
            wall_s: wide_wall,
            refs_per_sec: wide_refs as f64 / wide_wall,
            sampled_refs: wide_refs,
            peak_rss_bytes: peak_rss_bytes(),
            ring_peak_refs,
            ring_capacity_refs,
            bytes_stored_raw,
            bytes_stored_compressed,
            compression_ratio: bytes_stored_raw as f64 / bytes_stored_compressed.max(1) as f64,
            prediction_rel_err: wide_prediction_rel_err,
        },
        speedup_vs_seed: seed_wall / parallel_wall,
        speedup_kernel_and_gen: seed_wall / serial_wall,
        speedup_vs_current_serial: serial_wall / parallel_wall,
        memo: MemoStats {
            hits: memo.hits(),
            misses: memo.misses(),
            hit_rate: memo.hit_rate(),
            entries: memo.len(),
        },
        max_element_rel_err: max_rel_err,
        prediction_rel_err,
        store_cold_s,
        store_resume_s,
        store_resume_speedup: store_cold_s / store_resume_s,
        store_cache_hits: warm_report.cache_hits,
        store_prediction_rel_err,
    };
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write report");

    println!(
        "speedup vs seed serial: {:.2}x  (kernel+gen {:.2}x, fan-out+memo {:.2}x)\n\
         memo hit rate: {:.1}%  max element err: {:.3e}  prediction err: {:.3e}\n\
         streaming wide: {:.0} refs/s at {} ranks/count, {:.2}x trace compression, peak RSS {:.1} MiB\n\
         store resume: {:.2}x ({} artifacts reused)\n\
         wrote {out}",
        report.speedup_vs_seed,
        report.speedup_kernel_and_gen,
        report.speedup_vs_current_serial,
        100.0 * report.memo.hit_rate,
        report.max_element_rel_err,
        report.prediction_rel_err,
        report.streaming_wide.refs_per_sec,
        report.wide_ranks_per_count,
        report.streaming_wide.compression_ratio,
        report.streaming_wide.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        report.store_resume_speedup,
        report.store_cache_hits
    );
    assert!(
        report.max_element_rel_err == 0.0,
        "memoized collection changed per-element features"
    );
    assert!(
        report.prediction_rel_err == 0.0,
        "streaming/memoized collection changed the extrapolated prediction"
    );
    assert!(
        report.streaming_wide.prediction_rel_err == 0.0,
        "wide streaming collection changed the extrapolated prediction"
    );
    assert!(
        report.streaming_wide.ring_peak_refs > 0
            && report.streaming_wide.ring_peak_refs <= report.streaming_wide.ring_capacity_refs,
        "ring occupancy must stay within its configured capacity (peak {} / cap {})",
        report.streaming_wide.ring_peak_refs,
        report.streaming_wide.ring_capacity_refs
    );
    assert!(
        report.streaming_wide.bytes_stored_compressed < report.streaming_wide.bytes_stored_raw,
        "v2 envelope must beat the v1 size on collected traces ({} vs {})",
        report.streaming_wide.bytes_stored_compressed,
        report.streaming_wide.bytes_stored_raw
    );
    assert!(
        report.store_prediction_rel_err == 0.0,
        "store resume changed the prediction"
    );
    // Quick mode asserts reuse, not wall-clock: class-seeded memoization
    // makes even the cold run cheap at the smoke configuration, so the
    // resume ratio is only meaningful at the full ladder.
    let min_resume_speedup = if report.quick { 1.0 } else { 2.0 };
    assert!(
        report.store_cache_hits > 0 && report.store_resume_speedup > min_resume_speedup,
        "store resume must skip recomputation (got {:.2}x with {} hits)",
        report.store_resume_speedup,
        report.store_cache_hits
    );
}
