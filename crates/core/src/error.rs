//! The library-wide error model.
//!
//! Every lower crate keeps its own typed error (so none of them needs to
//! depend on this one); [`XtraceError`] unifies them at the layer where a
//! whole pipeline runs, and maps each failure class onto a process exit
//! code for the CLI:
//!
//! | class                         | variant(s)                              | exit |
//! |-------------------------------|-----------------------------------------|------|
//! | bad invocation/configuration  | [`XtraceError::Usage`]                  | 2    |
//! | filesystem / (de)serialization| [`XtraceError::Io`], [`XtraceError::Store`] | 3 |
//! | model-layer failure           | [`XtraceError::Extrapolation`], [`XtraceError::Machine`], [`XtraceError::Predict`], [`XtraceError::Model`] | 4 |

use xtrace_extrap::ExtrapolationError;
use xtrace_machine::MachineError;
use xtrace_psins::PredictError;
use xtrace_tracer::{CodecError, IoError};

/// Exit code for invocation/configuration errors.
pub const EXIT_USAGE: u8 = 2;
/// Exit code for filesystem and trace-format errors.
pub const EXIT_IO: u8 = 3;
/// Exit code for model-layer errors (extrapolation, machine, prediction).
pub const EXIT_MODEL: u8 = 4;

/// Any failure the xtrace pipeline can surface.
#[derive(Debug)]
#[non_exhaustive]
pub enum XtraceError {
    /// The request itself is malformed: unknown application, machine,
    /// scale, flag value, or an inconsistent combination of them.
    Usage(String),
    /// A file could not be read, written, or parsed as a trace.
    Io(IoError),
    /// The artifact store is unusable (unreadable root, foreign layout,
    /// or a manifest from a newer version of this library).
    Store(String),
    /// The training set could not be fit or extrapolated.
    Extrapolation(ExtrapolationError),
    /// A machine profile failed validation.
    Machine(MachineError),
    /// A prediction was requested for a mismatched trace/machine pair.
    Predict(PredictError),
    /// Any other model-layer invariant violation (e.g. an invalid cache
    /// hierarchy reported as a plain message).
    Model(String),
}

impl XtraceError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            XtraceError::Usage(_) => EXIT_USAGE,
            XtraceError::Io(_) | XtraceError::Store(_) => EXIT_IO,
            XtraceError::Extrapolation(_)
            | XtraceError::Machine(_)
            | XtraceError::Predict(_)
            | XtraceError::Model(_) => EXIT_MODEL,
        }
    }
}

impl std::fmt::Display for XtraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XtraceError::Usage(m) => write!(f, "{m}"),
            XtraceError::Io(e) => write!(f, "{e}"),
            XtraceError::Store(m) => write!(f, "artifact store: {m}"),
            XtraceError::Extrapolation(e) => write!(f, "extrapolation: {e}"),
            XtraceError::Machine(e) => write!(f, "machine profile: {e}"),
            XtraceError::Predict(e) => write!(f, "prediction: {e}"),
            XtraceError::Model(m) => write!(f, "model: {m}"),
        }
    }
}

impl std::error::Error for XtraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XtraceError::Io(e) => Some(e),
            XtraceError::Extrapolation(e) => Some(e),
            XtraceError::Machine(e) => Some(e),
            XtraceError::Predict(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IoError> for XtraceError {
    fn from(e: IoError) -> Self {
        XtraceError::Io(e)
    }
}

impl From<CodecError> for XtraceError {
    fn from(e: CodecError) -> Self {
        XtraceError::Io(IoError::Codec(e))
    }
}

impl From<ExtrapolationError> for XtraceError {
    fn from(e: ExtrapolationError) -> Self {
        XtraceError::Extrapolation(e)
    }
}

impl From<MachineError> for XtraceError {
    fn from(e: MachineError) -> Self {
        XtraceError::Machine(e)
    }
}

impl From<PredictError> for XtraceError {
    fn from(e: PredictError) -> Self {
        XtraceError::Predict(e)
    }
}

/// Convenience alias used across the pipeline engine.
pub type Result<T> = std::result::Result<T, XtraceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_map_by_failure_class() {
        assert_eq!(XtraceError::Usage("x".into()).exit_code(), 2);
        assert_eq!(XtraceError::Store("x".into()).exit_code(), 3);
        assert_eq!(XtraceError::Model("x".into()).exit_code(), 4);
        let io: XtraceError = IoError::UnsupportedVersion {
            got: 9,
            supported: 1,
        }
        .into();
        assert_eq!(io.exit_code(), 3);
        let ex: XtraceError = ExtrapolationError::DuplicateCoreCount(8).into();
        assert_eq!(ex.exit_code(), 4);
        let me: XtraceError = MachineError::InvalidClock(0.0).into();
        assert_eq!(me.exit_code(), 4);
    }

    #[test]
    fn display_prefixes_identify_the_layer() {
        let e = XtraceError::from(ExtrapolationError::DuplicateCoreCount(8));
        assert!(e.to_string().starts_with("extrapolation:"));
        let e = XtraceError::from(MachineError::InvalidClock(0.0));
        assert!(e.to_string().starts_with("machine profile:"));
    }
}
