//! # xtrace-core — the staged pipeline engine
//!
//! The crates below this one each own a slice of the paper's methodology
//! (signature collection, canonical-form fitting, convolution); this crate
//! owns the *run*: one typed engine that executes the Figure-2 flow
//!
//! ```text
//! Collect ──> Fit ──> Synthesize ──> Convolve ──> Validate
//! ```
//!
//! end to end, with a unified error model, per-stage timing and progress
//! hooks, and a content-addressed artifact store that makes re-running an
//! identical configuration a cache hit instead of a recomputation.
//!
//! * [`error`] — [`XtraceError`] wraps every lower-layer typed error and
//!   maps each failure class onto a CLI exit code ([`EXIT_USAGE`],
//!   [`EXIT_IO`], [`EXIT_MODEL`]).
//! * [`config`] — [`PipelineConfig`] subsumes the scattered flag soup into
//!   one value with a stable [fingerprint](PipelineConfig::config_hash).
//! * [`stage`] — the five object-safe stage traits plus the paper-faithful
//!   default implementations and the [`StageObserver`] progress hook.
//! * [`store`] — the versioned [`ArtifactStore`], keyed by config hash,
//!   reusing `xtrace-tracer`'s trace codecs; pluggable [`ArtifactBackend`]s
//!   with a [sharded in-memory cache](store::ShardedCache) for concurrent
//!   sessions.
//! * [`pipeline`] — the [`Pipeline`] engine and its [`PipelineReport`].
//! * [`engine`] — the multi-client [`XtraceEngine`]: one shared store,
//!   per-run scoped [`xtrace_obs::ObsContext`]s, and request coalescing
//!   of identical in-flight configs.
//!
//! ## Use as a library
//!
//! ```
//! use xtrace_core::{Pipeline, PipelineConfig};
//!
//! let cfg = PipelineConfig::builder("stencil3d", "opteron", vec![2, 4, 8], 32)
//!     .fast_tracer(true) // light sampling so the doctest stays quick
//!     .validate(false)   // skip the expensive target-scale collection
//!     .build();
//! let report = Pipeline::new(cfg)?.run()?;
//! assert!(report.prediction.total_seconds > 0.0);
//! assert_eq!(report.extrapolated.nranks, 32);
//! # Ok::<(), xtrace_core::XtraceError>(())
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod error;
pub mod pipeline;
pub mod stage;
pub mod store;

pub use config::{
    make_app, make_machine, FormSet, PipelineApp, PipelineConfig, PipelineConfigBuilder,
    PipelineCtx,
};
pub use engine::{EngineOutcome, XtraceEngine};
pub use error::{Result, XtraceError, EXIT_IO, EXIT_MODEL, EXIT_USAGE};
pub use pipeline::{Pipeline, PipelineReport, StageTiming, Validation};
pub use stage::{
    Collect, Convolve, DefaultCollect, DefaultConvolve, DefaultFit, DefaultSynthesize,
    DefaultValidate, Fit, NullObserver, StageKind, StageObserver, Synthesize, Validate,
};
pub use store::{
    ArtifactBackend, ArtifactStore, FileBackend, ShardStats, ShardedCache, STORE_FORMAT,
    STORE_SHARDS, STORE_VERSION,
};
