//! Typed pipeline stages.
//!
//! The paper's Figure-2 flow — collect signatures at small core counts,
//! fit canonical forms, synthesize the signature at the target count,
//! convolve it with the machine profile, and validate against a real
//! collection — becomes five object-safe traits. The engine
//! ([`crate::pipeline::Pipeline`]) wires the default implementations
//! together; callers can swap any stage (e.g. a `Fit` that restricts the
//! form set, or a `Collect` that replays archived traces) without touching
//! the rest.
//!
//! Stage implementations report progress through a [`StageObserver`];
//! the engine adds wall-clock timing per stage on top.

use xtrace_extrap::{fit_signature_obs, synthesize_from_fit, SignatureFit};
use xtrace_psins::{ground_truth_obs, relative_error, try_predict_runtime, Prediction};
use xtrace_tracer::{
    collect_signature_memo_obs, collect_signature_with_obs, collect_task_trace_memo_obs, SigMemo,
    TaskTrace,
};

use crate::config::PipelineCtx;
use crate::error::Result;
use crate::pipeline::Validation;

/// The five pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Trace the application at each training core count.
    Collect,
    /// Fit canonical forms to every feature element.
    Fit,
    /// Synthesize the extrapolated trace at the target count.
    Synthesize,
    /// Convolve the synthetic trace with the machine profile.
    Convolve,
    /// Compare against a collected trace and the execution-driven
    /// ground truth.
    Validate,
}

impl StageKind {
    /// Human-readable stage name.
    pub fn label(self) -> &'static str {
        match self {
            StageKind::Collect => "collect",
            StageKind::Fit => "fit",
            StageKind::Synthesize => "synthesize",
            StageKind::Convolve => "convolve",
            StageKind::Validate => "validate",
        }
    }
}

/// Receives progress callbacks as the pipeline runs. All methods have
/// empty defaults, so an observer implements only what it cares about.
pub trait StageObserver {
    /// A stage is about to run.
    fn stage_started(&mut self, _stage: StageKind) {}
    /// A stage finished; `seconds` is its wall-clock time.
    fn stage_finished(&mut self, _stage: StageKind, _seconds: f64) {}
    /// Free-form progress from inside a stage (e.g. one training count
    /// traced).
    fn progress(&mut self, _stage: StageKind, _message: &str) {}
    /// An artifact-store lookup resolved; `hit` says whether the artifact
    /// was reused instead of recomputed.
    fn cache_event(&mut self, _stage: StageKind, _artifact: &str, _hit: bool) {}
}

/// The do-nothing observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl StageObserver for NullObserver {}

/// Stage 1: produce one training trace per configured core count.
pub trait Collect {
    /// Returns the training traces in the same order as
    /// `ctx.config.training`.
    fn collect(&self, ctx: &PipelineCtx, obs: &mut dyn StageObserver) -> Result<Vec<TaskTrace>>;
}

/// Stage 2: fit canonical forms to the training set.
pub trait Fit {
    /// Returns the per-element fits evaluated at the target core count.
    fn fit(
        &self,
        ctx: &PipelineCtx,
        obs: &mut dyn StageObserver,
        traces: &[TaskTrace],
    ) -> Result<SignatureFit>;
}

/// Stage 3: synthesize the extrapolated trace from the fits.
pub trait Synthesize {
    /// Returns the synthetic task trace at the target count.
    fn synthesize(
        &self,
        ctx: &PipelineCtx,
        obs: &mut dyn StageObserver,
        fit: &SignatureFit,
    ) -> Result<TaskTrace>;
}

/// Stage 4: convolve a trace with the machine profile.
pub trait Convolve {
    /// Returns the runtime prediction for `trace`.
    fn convolve(
        &self,
        ctx: &PipelineCtx,
        obs: &mut dyn StageObserver,
        trace: &TaskTrace,
    ) -> Result<Prediction>;
}

/// Stage 5: measure how good the extrapolated prediction is.
pub trait Validate {
    /// Returns the validation record, or `None` when validation is
    /// disabled by the config.
    fn validate(
        &self,
        ctx: &PipelineCtx,
        obs: &mut dyn StageObserver,
        prediction: &Prediction,
    ) -> Result<Option<Validation>>;
}

/// The extra ranks traced at count `nranks` when `ranks_per_count = k`
/// exceeds 1: the longest rank is always covered by the training trace
/// itself, and up to `k - 1` worker ranks are spread evenly across
/// `[1, nranks)` (matching the bench harness's sampling), skipping the
/// longest.
fn worker_ranks(nranks: u32, longest: u32, k: u32) -> Vec<u32> {
    let mut ranks = Vec::new();
    let step = (nranks / k.max(1)).max(1);
    let mut r = 1;
    while ranks.len() + 1 < k as usize && r < nranks {
        if r != longest && !ranks.contains(&r) {
            ranks.push(r);
        }
        r += step;
    }
    ranks
}

/// Default `Collect`: trace the most computationally demanding task at
/// each training count with the context's tracer configuration. When a
/// store is attached, each training trace is cached individually under
/// `training-p<P>`. With `ranks_per_count > 1`, additional worker ranks
/// are traced per count and filed under `training-p<P>-r<R>`; the
/// returned training set (and thus every prediction) is unchanged.
#[derive(Debug, Default, Clone, Copy)]
pub struct DefaultCollect;

impl Collect for DefaultCollect {
    fn collect(&self, ctx: &PipelineCtx, obs: &mut dyn StageObserver) -> Result<Vec<TaskTrace>> {
        let recorder = ctx.obs.recorder().cloned();
        // One memo across the whole training sweep: identical block
        // simulations recur across core counts (and across ranks within a
        // count), and memoization is result-identical, so this only trades
        // time for memory.
        let memo = SigMemo::new();
        let mut traces = Vec::with_capacity(ctx.config.training.len());
        for &p in &ctx.config.training {
            // One phase span per training count, nested under the stage.
            let _phase = recorder
                .as_ref()
                .map(|rec| rec.child_span(StageKind::Collect.label(), &format!("p{p}")));
            let artifact = format!("training-p{p}");
            let mut cached = None;
            if let Some(store) = &ctx.store {
                cached = store.get_trace(&ctx.config_hash, &artifact)?;
                obs.cache_event(StageKind::Collect, &artifact, cached.is_some());
            }
            let trace = match cached {
                Some(trace) => trace,
                None => {
                    let sig = collect_signature_memo_obs(
                        ctx.app.spmd(),
                        p,
                        &ctx.machine,
                        &ctx.tracer,
                        &memo,
                        &ctx.obs,
                    );
                    obs.progress(
                        StageKind::Collect,
                        &format!(
                            "traced {p} cores (longest task = rank {})",
                            sig.comm.longest_rank
                        ),
                    );
                    if let Some(store) = &ctx.store {
                        store.put_trace(&ctx.config_hash, &artifact, sig.longest_task())?;
                    }
                    sig.longest_task().clone()
                }
            };
            // Wide collection: trace the worker ranks too. The cached (or
            // fresh) longest trace records its own rank, so resumed runs
            // sample the same workers.
            if ctx.config.ranks_per_count > 1 {
                let workers = worker_ranks(p, trace.rank, ctx.config.ranks_per_count);
                for &r in &workers {
                    let artifact = format!("training-p{p}-r{r}");
                    if let Some(store) = &ctx.store {
                        let hit = store.get_trace(&ctx.config_hash, &artifact)?.is_some();
                        obs.cache_event(StageKind::Collect, &artifact, hit);
                        if hit {
                            continue;
                        }
                    }
                    let worker = collect_task_trace_memo_obs(
                        ctx.app.spmd(),
                        r,
                        p,
                        &ctx.machine,
                        &ctx.tracer,
                        Some(&memo),
                        &ctx.obs,
                    );
                    if let Some(store) = &ctx.store {
                        store.put_trace(&ctx.config_hash, &artifact, &worker)?;
                    }
                }
                obs.progress(
                    StageKind::Collect,
                    &format!("traced {} worker ranks at {p} cores", workers.len()),
                );
            }
            traces.push(trace);
        }
        // Memo totals are scheduling-invariant: misses equal the number of
        // unique block-simulation keys, hits the remainder.
        let metrics = ctx.obs.metrics();
        metrics.counter("tracer.sig_memo.hits").add(memo.hits());
        metrics.counter("tracer.sig_memo.misses").add(memo.misses());
        // Guard the basis-point rate against zero-lookup runs (every
        // training trace served from the store): report 0 bp rather than
        // dividing by zero — and always set the gauge, so the key is
        // present in every snapshot.
        let lookups = memo.hits() + memo.misses();
        let rate_bp = (memo.hits() * 10_000).checked_div(lookups).unwrap_or(0);
        metrics.gauge("tracer.sig_memo.hit_rate_bp").set(rate_bp);
        Ok(traces)
    }
}

/// Default `Fit`: the paper's per-element canonical-form selection.
#[derive(Debug, Default, Clone, Copy)]
pub struct DefaultFit;

impl Fit for DefaultFit {
    fn fit(
        &self,
        ctx: &PipelineCtx,
        obs: &mut dyn StageObserver,
        traces: &[TaskTrace],
    ) -> Result<SignatureFit> {
        let fit = fit_signature_obs(traces, ctx.config.target, &ctx.extrap, &ctx.obs)?;
        obs.progress(
            StageKind::Fit,
            &format!("fit {} feature elements", fit.fits.len()),
        );
        Ok(fit)
    }
}

/// Default `Synthesize`: evaluate the fits into a task trace.
#[derive(Debug, Default, Clone, Copy)]
pub struct DefaultSynthesize;

impl Synthesize for DefaultSynthesize {
    fn synthesize(
        &self,
        _ctx: &PipelineCtx,
        _obs: &mut dyn StageObserver,
        fit: &SignatureFit,
    ) -> Result<TaskTrace> {
        Ok(synthesize_from_fit(fit))
    }
}

/// Default `Convolve`: Eq. (1) with the app's communication profile at
/// the target count.
#[derive(Debug, Default, Clone, Copy)]
pub struct DefaultConvolve;

impl Convolve for DefaultConvolve {
    fn convolve(
        &self,
        ctx: &PipelineCtx,
        _obs: &mut dyn StageObserver,
        trace: &TaskTrace,
    ) -> Result<Prediction> {
        let comm = ctx.app.comm_obs(ctx.config.target, &ctx.obs);
        Ok(try_predict_runtime(trace, &comm, &ctx.machine)?)
    }
}

/// Default `Validate`: collect a real trace at the target count, predict
/// from it, and measure the execution-driven ground truth.
#[derive(Debug, Default, Clone, Copy)]
pub struct DefaultValidate;

impl Validate for DefaultValidate {
    fn validate(
        &self,
        ctx: &PipelineCtx,
        obs: &mut dyn StageObserver,
        prediction: &Prediction,
    ) -> Result<Option<Validation>> {
        if !ctx.config.validate {
            return Ok(None);
        }
        let target = ctx.config.target;
        let sig =
            collect_signature_with_obs(ctx.app.spmd(), target, &ctx.machine, &ctx.tracer, &ctx.obs);
        obs.progress(StageKind::Validate, &format!("collected {target} cores"));
        let collected = try_predict_runtime(sig.longest_task(), &sig.comm, &ctx.machine)?;
        let gt = ground_truth_obs(ctx.app.spmd(), target, &ctx.machine, &ctx.tracer, &ctx.obs);
        obs.progress(StageKind::Validate, "measured ground truth");
        Ok(Some(Validation {
            extrapolated_error: relative_error(prediction.total_seconds, gt.total_seconds),
            collected_error: relative_error(collected.total_seconds, gt.total_seconds),
            collected,
            measured_seconds: gt.total_seconds,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::worker_ranks;

    #[test]
    fn worker_ranks_spread_evenly_and_skip_the_longest() {
        // k = 1 means longest-only: no workers.
        assert!(worker_ranks(384, 7, 1).is_empty());
        // k = 4 at 16 ranks: step 4, candidates 1, 5, 9.
        assert_eq!(worker_ranks(16, 0, 4), vec![1, 5, 9]);
        // The longest rank is never re-traced as a worker.
        assert_eq!(worker_ranks(16, 5, 4), vec![1, 9, 13]);
        // k larger than nranks saturates without looping forever.
        let all = worker_ranks(4, 0, 64);
        assert_eq!(all, vec![1, 2, 3]);
    }
}
