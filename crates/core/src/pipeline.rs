//! The staged pipeline engine.
//!
//! [`Pipeline`] wires the five [stage traits](crate::stage) together,
//! times each stage, reports progress through a
//! [`StageObserver`](crate::stage::StageObserver), and — when an
//! [`ArtifactStore`] is attached — reuses any artifact already filed
//! under the run's config hash, so re-running an identical config resumes
//! instead of recomputing:
//!
//! * each training trace is cached individually (`training-p<P>.bin`),
//! * the synthetic trace short-circuits Fit + Synthesize
//!   (`extrapolated.json`),
//! * the prediction and validation records short-circuit Convolve and
//!   Validate (`prediction.json`, `validation.json`).
//!
//! Store reuse assumes stages compute pure functions of the config, which
//! holds for the default stage set. Swapping in a custom stage disables
//! the reuse that the swap could invalidate: a custom `Collect` disables
//! the store entirely for that run; a custom `Fit`/`Synthesize`/
//! `Convolve`/`Validate` disables the engine-level artifact reuse while
//! keeping per-trace collection caching.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use xtrace_psins::Prediction;
use xtrace_tracer::TaskTrace;

use crate::config::{PipelineConfig, PipelineCtx};
use crate::error::Result;
use crate::stage::{
    Collect, Convolve, DefaultCollect, DefaultConvolve, DefaultFit, DefaultSynthesize,
    DefaultValidate, Fit, NullObserver, StageKind, StageObserver, Synthesize, Validate,
};
use crate::store::ArtifactStore;

/// Wall-clock time of one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTiming {
    /// Which stage.
    pub stage: StageKind,
    /// Elapsed seconds (including any artifact-store traffic).
    pub seconds: f64,
}

/// How the extrapolated prediction compares against reality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Validation {
    /// Relative error of the extrapolated-trace prediction vs the
    /// execution-driven measured runtime.
    pub extrapolated_error: f64,
    /// Relative error of the collected-trace prediction vs measured.
    pub collected_error: f64,
    /// Prediction from the trace actually collected at the target count.
    pub collected: Prediction,
    /// The execution-driven measured runtime in seconds.
    pub measured_seconds: f64,
}

/// Everything a pipeline run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Config hash the artifacts were filed under.
    pub config_hash: String,
    /// Training core counts, in collection order.
    pub training_counts: Vec<u32>,
    /// The synthetic trace at the target core count.
    pub extrapolated: TaskTrace,
    /// The runtime prediction from the synthetic trace.
    pub prediction: Prediction,
    /// Validation against collection + ground truth, when enabled.
    pub validation: Option<Validation>,
    /// Per-stage wall-clock timings, in execution order.
    pub timings: Vec<StageTiming>,
    /// Artifact-store lookups that were reused.
    pub cache_hits: usize,
    /// Artifact-store lookups that had to be computed.
    pub cache_misses: usize,
    /// Per-element canonical-form fit diagnostics. Present whenever the
    /// Fit stage ran this process; on store-resumed runs it is loaded
    /// from the `fit-diagnostics` artifact (and is `None` when resuming
    /// from a store written before diagnostics existed, or when no store
    /// is attached on a short-circuited run).
    pub fit_diagnostics: Option<xtrace_obs::FitDiagnostics>,
}

/// Forwards to a caller observer while counting cache traffic.
struct Counting<'a> {
    inner: &'a mut dyn StageObserver,
    hits: usize,
    misses: usize,
}

impl StageObserver for Counting<'_> {
    fn stage_started(&mut self, stage: StageKind) {
        self.inner.stage_started(stage);
    }
    fn stage_finished(&mut self, stage: StageKind, seconds: f64) {
        self.inner.stage_finished(stage, seconds);
    }
    fn progress(&mut self, stage: StageKind, message: &str) {
        self.inner.progress(stage, message);
    }
    fn cache_event(&mut self, stage: StageKind, artifact: &str, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        self.inner.cache_event(stage, artifact, hit);
    }
}

/// The engine: a resolved config plus one implementation per stage.
pub struct Pipeline {
    ctx: PipelineCtx,
    observer: Box<dyn StageObserver>,
    collect: Box<dyn Collect>,
    fit: Box<dyn Fit>,
    synthesize: Box<dyn Synthesize>,
    convolve: Box<dyn Convolve>,
    validate: Box<dyn Validate>,
    custom_collect: bool,
    custom_downstream: bool,
}

impl Pipeline {
    /// Builds a pipeline with the default stage set.
    pub fn new(config: PipelineConfig) -> Result<Self> {
        Ok(Self {
            ctx: config.resolve()?,
            observer: Box::new(NullObserver),
            collect: Box::new(DefaultCollect),
            fit: Box::new(DefaultFit),
            synthesize: Box::new(DefaultSynthesize),
            convolve: Box::new(DefaultConvolve),
            validate: Box::new(DefaultValidate),
            custom_collect: false,
            custom_downstream: false,
        })
    }

    /// Attaches an artifact store rooted at `root`; identical re-runs
    /// resume from it.
    pub fn with_store(mut self, root: impl Into<std::path::PathBuf>) -> Result<Self> {
        self.ctx.store = Some(ArtifactStore::open(root)?);
        Ok(self)
    }

    /// Attaches an already-open artifact store handle — the way
    /// [`crate::XtraceEngine`] shares one cached store across sessions.
    pub fn with_store_handle(mut self, store: ArtifactStore) -> Self {
        self.ctx.store = Some(store);
        self
    }

    /// Installs a progress observer.
    pub fn with_observer(mut self, observer: Box<dyn StageObserver>) -> Self {
        self.observer = observer;
        self
    }

    /// Attaches an observability recorder: shorthand for
    /// [`Pipeline::with_obs`] with a context built around `recorder`.
    /// The hot kernels' counters — sig-memo hits, fit wins per canonical
    /// form, rank classes, convolve-cache hits, artifact-store traffic —
    /// land in the same snapshot as the engine's per-stage spans. The
    /// recorder is scoped to this run; nothing is installed
    /// process-globally, so concurrent pipelines never share counters.
    pub fn with_recorder(self, recorder: std::sync::Arc<xtrace_obs::Recorder>) -> Self {
        self.with_obs(xtrace_obs::ObsContext::with_recorder(recorder))
    }

    /// Attaches the observability context every stage, kernel, and store
    /// access of this run reports into.
    pub fn with_obs(mut self, obs: xtrace_obs::ObsContext) -> Self {
        self.ctx.obs = obs;
        self
    }

    /// Replaces the Collect stage (disables store reuse for this run).
    pub fn with_collect(mut self, stage: Box<dyn Collect>) -> Self {
        self.collect = stage;
        self.custom_collect = true;
        self
    }

    /// Replaces the Fit stage (disables engine-level artifact reuse).
    pub fn with_fit(mut self, stage: Box<dyn Fit>) -> Self {
        self.fit = stage;
        self.custom_downstream = true;
        self
    }

    /// Replaces the Synthesize stage (disables engine-level artifact
    /// reuse).
    pub fn with_synthesize(mut self, stage: Box<dyn Synthesize>) -> Self {
        self.synthesize = stage;
        self.custom_downstream = true;
        self
    }

    /// Replaces the Convolve stage (disables engine-level artifact
    /// reuse).
    pub fn with_convolve(mut self, stage: Box<dyn Convolve>) -> Self {
        self.convolve = stage;
        self.custom_downstream = true;
        self
    }

    /// Replaces the Validate stage (disables engine-level artifact
    /// reuse).
    pub fn with_validate(mut self, stage: Box<dyn Validate>) -> Self {
        self.validate = stage;
        self.custom_downstream = true;
        self
    }

    /// The resolved inputs (read-only).
    pub fn ctx(&self) -> &PipelineCtx {
        &self.ctx
    }

    /// Runs Collect → Fit → Synthesize → Convolve → Validate.
    pub fn run(&mut self) -> Result<PipelineReport> {
        if self.custom_collect {
            self.ctx.store = None;
        }
        // Bind the store's counters to this run's context, so `store.*`
        // metrics land in the run's snapshot even when other runs share
        // the store handle. Without a context the store keeps its
        // ambient-metrics fallback.
        if self.ctx.obs.enabled() {
            if let Some(store) = self.ctx.store.take() {
                self.ctx.store = Some(store.with_obs(self.ctx.obs.clone()));
            }
        }
        let hash = self.ctx.config_hash.clone();
        let engine_store = if self.custom_downstream {
            None
        } else {
            self.ctx.store.clone()
        };
        let mut obs = Counting {
            inner: self.observer.as_mut(),
            hits: 0,
            misses: 0,
        };
        let mut timings = Vec::with_capacity(5);

        // Observability: stages and kernels all receive ctx.obs, so every
        // counter lands next to this run's stage spans — no process-global
        // state, and concurrent runs stay isolated.
        let recorder = self.ctx.obs.recorder().cloned();
        if let Some(rec) = &recorder {
            // Pre-register the headline counters so every snapshot carries
            // them (reading zero when the run never touches that path —
            // e.g. ConvolveCache is only exercised by the replay
            // extension).
            let m = rec.metrics();
            for name in [
                "tracer.sig_memo.hits",
                "tracer.sig_memo.misses",
                "tracer.blocks_simulated",
                "store.hits",
                "store.misses",
                "store.writes",
                "extrap.elements_fit",
                "spmd.events_stepped",
                "psins.groups_convolved",
                "psins.convolve_cache.hits",
                "psins.convolve_cache.misses",
            ] {
                m.counter(name);
            }
            m.gauge("spmd.rank_classes");
        }
        // Journal: wall-clock begin/end per stage on the "pipeline" lane
        // (the no-op handle when the recorder has no journal). Stage
        // kernels emit their own fine-grained events through the same
        // context.
        let journal = self.ctx.obs.journal();
        let run_start = Instant::now();
        journal.begin(xtrace_obs::STAGE_PARENT, "pipeline", &[]);
        let stage_begin = |stage: StageKind| {
            journal.begin(stage.label(), "pipeline", &[]);
        };
        let stage_span = |stage: StageKind, seconds: f64| {
            if let Some(rec) = &recorder {
                rec.record_span(Some(xtrace_obs::STAGE_PARENT), stage.label(), seconds);
            }
            journal.end(stage.label(), "pipeline", &[]);
        };

        // Collect. Per-trace caching lives inside DefaultCollect.
        obs.stage_started(StageKind::Collect);
        stage_begin(StageKind::Collect);
        let t = Instant::now();
        let traces = self.collect.collect(&self.ctx, &mut obs)?;
        let dt = t.elapsed().as_secs_f64();
        obs.stage_finished(StageKind::Collect, dt);
        timings.push(StageTiming {
            stage: StageKind::Collect,
            seconds: dt,
        });
        stage_span(StageKind::Collect, dt);

        // Fit + Synthesize, short-circuited together by a filed synthetic
        // trace (a SignatureFit is an intermediate and is not persisted).
        let cached = match &engine_store {
            Some(store) => {
                let hit = store.get_trace_json(&hash, "extrapolated")?;
                obs.cache_event(StageKind::Synthesize, "extrapolated", hit.is_some());
                hit
            }
            None => None,
        };
        let mut fit_diagnostics: Option<xtrace_obs::FitDiagnostics> = None;
        let extrapolated = match cached {
            Some(trace) => {
                for stage in [StageKind::Fit, StageKind::Synthesize] {
                    obs.stage_started(stage);
                    stage_begin(stage);
                    obs.stage_finished(stage, 0.0);
                    timings.push(StageTiming {
                        stage,
                        seconds: 0.0,
                    });
                    stage_span(stage, 0.0);
                }
                // The Fit stage was skipped; reload its diagnostics from
                // the store (absent when the store predates them).
                if let Some(store) = &engine_store {
                    fit_diagnostics =
                        store.get_json::<xtrace_obs::FitDiagnostics>(&hash, "fit-diagnostics")?;
                }
                trace
            }
            None => {
                obs.stage_started(StageKind::Fit);
                stage_begin(StageKind::Fit);
                let t = Instant::now();
                let fit = self.fit.fit(&self.ctx, &mut obs, &traces)?;
                let dt = t.elapsed().as_secs_f64();
                obs.stage_finished(StageKind::Fit, dt);
                timings.push(StageTiming {
                    stage: StageKind::Fit,
                    seconds: dt,
                });
                stage_span(StageKind::Fit, dt);

                // Diagnose the fit outside the stage timing: a pure,
                // deterministic function of the fit, so it costs the same
                // with and without a recorder and is bit-identical across
                // thread counts.
                let mut xs: Vec<f64> = self
                    .ctx
                    .config
                    .training
                    .iter()
                    .map(|&p| f64::from(p))
                    .collect();
                xs.sort_by(f64::total_cmp);
                let diagnostics = xtrace_extrap::diagnose_fit(&fit, &xs, &self.ctx.extrap);
                if let Some(store) = &engine_store {
                    store.put_json(&hash, "fit-diagnostics", &diagnostics)?;
                }
                fit_diagnostics = Some(diagnostics);

                obs.stage_started(StageKind::Synthesize);
                stage_begin(StageKind::Synthesize);
                let t = Instant::now();
                let trace = self.synthesize.synthesize(&self.ctx, &mut obs, &fit)?;
                let dt = t.elapsed().as_secs_f64();
                obs.stage_finished(StageKind::Synthesize, dt);
                timings.push(StageTiming {
                    stage: StageKind::Synthesize,
                    seconds: dt,
                });
                stage_span(StageKind::Synthesize, dt);
                if let Some(store) = &engine_store {
                    store.put_trace_json(&hash, "extrapolated", &trace)?;
                }
                trace
            }
        };

        // Convolve.
        obs.stage_started(StageKind::Convolve);
        stage_begin(StageKind::Convolve);
        let t = Instant::now();
        let cached = match &engine_store {
            Some(store) => {
                let hit = store.get_json::<Prediction>(&hash, "prediction")?;
                obs.cache_event(StageKind::Convolve, "prediction", hit.is_some());
                hit
            }
            None => None,
        };
        let prediction = match cached {
            Some(p) => p,
            None => {
                let p = self.convolve.convolve(&self.ctx, &mut obs, &extrapolated)?;
                if let Some(store) = &engine_store {
                    store.put_json(&hash, "prediction", &p)?;
                }
                p
            }
        };
        let dt = t.elapsed().as_secs_f64();
        obs.stage_finished(StageKind::Convolve, dt);
        timings.push(StageTiming {
            stage: StageKind::Convolve,
            seconds: dt,
        });
        stage_span(StageKind::Convolve, dt);

        // Validate (only when the config asks for it).
        obs.stage_started(StageKind::Validate);
        stage_begin(StageKind::Validate);
        let t = Instant::now();
        let cached = match &engine_store {
            Some(store) if self.ctx.config.validate => {
                let hit = store.get_json::<Validation>(&hash, "validation")?;
                obs.cache_event(StageKind::Validate, "validation", hit.is_some());
                hit
            }
            _ => None,
        };
        let validation = match cached {
            Some(v) => Some(v),
            None => {
                let v = self.validate.validate(&self.ctx, &mut obs, &prediction)?;
                if let (Some(store), Some(v)) = (&engine_store, &v) {
                    store.put_json(&hash, "validation", v)?;
                }
                v
            }
        };
        let dt = t.elapsed().as_secs_f64();
        obs.stage_finished(StageKind::Validate, dt);
        timings.push(StageTiming {
            stage: StageKind::Validate,
            seconds: dt,
        });
        stage_span(StageKind::Validate, dt);

        if let Some(rec) = &recorder {
            rec.record_span(
                None,
                xtrace_obs::STAGE_PARENT,
                run_start.elapsed().as_secs_f64(),
            );
        }
        journal.end(xtrace_obs::STAGE_PARENT, "pipeline", &[]);

        Ok(PipelineReport {
            config_hash: hash,
            training_counts: self.ctx.config.training.clone(),
            extrapolated,
            prediction,
            validation,
            timings,
            cache_hits: obs.hits,
            cache_misses: obs.misses,
            fit_diagnostics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FormSet;
    use crate::error::XtraceError;
    use std::path::PathBuf;

    fn quick_config() -> PipelineConfig {
        let mut cfg = PipelineConfig::new("stencil3d", "opteron", vec![2, 4, 8], 32);
        cfg.fast_tracer = true;
        cfg.validate = false;
        cfg
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("xtrace-core-pipeline-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn pipeline_runs_and_reports_all_stages() {
        let report = Pipeline::new(quick_config()).unwrap().run().unwrap();
        assert_eq!(report.training_counts, vec![2, 4, 8]);
        assert_eq!(report.extrapolated.nranks, 32);
        assert!(report.prediction.total_seconds > 0.0);
        assert!(report.validation.is_none(), "validation disabled");
        let stages: Vec<_> = report.timings.iter().map(|t| t.stage).collect();
        assert_eq!(
            stages,
            vec![
                StageKind::Collect,
                StageKind::Fit,
                StageKind::Synthesize,
                StageKind::Convolve,
                StageKind::Validate
            ]
        );
        assert_eq!(
            report.cache_hits + report.cache_misses,
            0,
            "no store attached"
        );
    }

    #[test]
    fn validation_compares_against_ground_truth() {
        let mut cfg = quick_config();
        cfg.validate = true;
        let report = Pipeline::new(cfg).unwrap().run().unwrap();
        let v = report.validation.expect("validation ran");
        assert!(v.measured_seconds > 0.0);
        assert!(v.extrapolated_error >= 0.0);
        assert!(v.collected.total_seconds > 0.0);
    }

    #[test]
    fn second_run_resumes_from_the_store() {
        let root = tmp("resume");
        let run = || {
            Pipeline::new(quick_config())
                .unwrap()
                .with_store(&root)
                .unwrap()
                .run()
                .unwrap()
        };
        let cold = run();
        assert_eq!(cold.cache_hits, 0);
        assert!(cold.cache_misses > 0);

        let warm = run();
        assert_eq!(warm.cache_misses, 0, "every artifact reused");
        // 3 training traces + extrapolated + prediction.
        assert_eq!(warm.cache_hits, 5);
        assert_eq!(warm.prediction, cold.prediction);
        assert_eq!(warm.extrapolated, cold.extrapolated);
    }

    #[test]
    fn wide_collection_stores_worker_ranks_without_changing_predictions() {
        let root = tmp("wide");
        let baseline = Pipeline::new(quick_config()).unwrap().run().unwrap();
        let mut wide_cfg = quick_config();
        wide_cfg.ranks_per_count = 2;
        let run = || {
            Pipeline::new(wide_cfg.clone())
                .unwrap()
                .with_store(&root)
                .unwrap()
                .run()
                .unwrap()
        };
        let cold = run();
        assert_eq!(
            cold.prediction, baseline.prediction,
            "worker-rank collection must not perturb the prediction"
        );
        assert!(
            cold.cache_misses > 5,
            "worker artifacts add store entries beyond the 5 longest-rank ones, got {}",
            cold.cache_misses
        );
        let warm = run();
        assert_eq!(warm.cache_misses, 0, "worker artifacts reused too");
        assert_eq!(warm.cache_hits, cold.cache_misses);
        assert_eq!(warm.prediction, baseline.prediction);
    }

    #[test]
    fn config_changes_miss_the_store() {
        let root = tmp("keyed");
        let mut p = Pipeline::new(quick_config())
            .unwrap()
            .with_store(&root)
            .unwrap();
        p.run().unwrap();
        let mut changed = quick_config();
        changed.forms = FormSet::Extended;
        let report = Pipeline::new(changed)
            .unwrap()
            .with_store(&root)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.cache_hits, 0, "different config hash, fresh entry");
    }

    #[test]
    fn custom_stage_disables_engine_artifact_reuse() {
        struct IdentityFit;
        impl crate::stage::Fit for IdentityFit {
            fn fit(
                &self,
                ctx: &PipelineCtx,
                _obs: &mut dyn StageObserver,
                traces: &[xtrace_tracer::TaskTrace],
            ) -> crate::error::Result<xtrace_extrap::SignatureFit> {
                Ok(xtrace_extrap::fit_signature(
                    traces,
                    ctx.config.target,
                    &ctx.extrap,
                )?)
            }
        }
        let root = tmp("custom");
        // Seed the store with a default run.
        Pipeline::new(quick_config())
            .unwrap()
            .with_store(&root)
            .unwrap()
            .run()
            .unwrap();
        let report = Pipeline::new(quick_config())
            .unwrap()
            .with_store(&root)
            .unwrap()
            .with_fit(Box::new(IdentityFit))
            .run()
            .unwrap();
        // Training traces still reuse; extrapolated/prediction do not.
        assert_eq!(report.cache_hits, 3);
    }

    #[test]
    fn invalid_store_root_is_a_store_error() {
        let err = Pipeline::new(quick_config())
            .unwrap()
            .with_store("/proc/definitely-not-writable/store")
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, XtraceError::Store(_)));
    }

    #[test]
    fn observer_sees_stage_lifecycle() {
        #[derive(Default)]
        struct Recording(std::rc::Rc<std::cell::RefCell<Vec<String>>>);
        impl StageObserver for Recording {
            fn stage_started(&mut self, stage: StageKind) {
                self.0.borrow_mut().push(format!("start:{}", stage.label()));
            }
            fn stage_finished(&mut self, stage: StageKind, _s: f64) {
                self.0.borrow_mut().push(format!("end:{}", stage.label()));
            }
        }
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let obs = Recording(log.clone());
        Pipeline::new(quick_config())
            .unwrap()
            .with_observer(Box::new(obs))
            .run()
            .unwrap();
        let events = log.borrow();
        assert_eq!(events.first().map(String::as_str), Some("start:collect"));
        assert!(events.contains(&"end:synthesize".to_string()));
        assert_eq!(events.last().map(String::as_str), Some("end:validate"));
    }
}
