//! The multi-client session engine.
//!
//! [`Pipeline`](crate::Pipeline) executes one run for one caller;
//! [`XtraceEngine`] serves *many* callers from one process. It owns the
//! shared resources — a [sharded, cached artifact
//! store](crate::store::ShardedCache) and a fresh [`ObsContext`] per cold
//! run — and adds **request coalescing**: concurrent [`XtraceEngine::run`]
//! calls with the same [config hash](PipelineConfig::config_hash) await a
//! single pipeline execution and share its [`EngineOutcome`], instead of
//! racing N identical collections. The config hash already fingerprints
//! every output-relevant field, so it is exactly the right coalescing key:
//! two configs may share a flight if and only if they would file the same
//! artifacts.
//!
//! Sessions stay observably isolated: every cold run gets its own
//! journal-enabled recorder, so each outcome carries the metrics and
//! journal of *its* execution only — never counters bled in from a
//! neighboring session. A coalesced caller receives a copy of the leader's
//! snapshot (the execution that actually produced its result), flagged
//! with [`EngineOutcome::coalesced`].

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use xtrace_obs::{JournalSnapshot, ObsContext, Recorder, Snapshot};

use crate::config::PipelineConfig;
use crate::error::{Result, XtraceError};
use crate::pipeline::{Pipeline, PipelineReport};
use crate::stage::StageObserver;
use crate::store::ArtifactStore;

/// Everything one engine-run produced: the pipeline's report plus the
/// run's own observability snapshots.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// The pipeline result.
    pub report: PipelineReport,
    /// Metrics snapshot of the execution that produced `report` — scoped
    /// to that run, no cross-session bleed.
    pub metrics: Snapshot,
    /// Event journal of the producing execution.
    pub journal: Option<JournalSnapshot>,
    /// `true` when this caller joined another caller's in-flight
    /// execution instead of running the pipeline itself.
    pub coalesced: bool,
}

/// One in-flight execution that followers can await.
#[derive(Default)]
struct Flight {
    /// `None` until the leader publishes; then the shared outcome
    /// (`coalesced` still `false` — followers flip their copy).
    slot: Mutex<Option<std::result::Result<EngineOutcome, String>>>,
    cv: Condvar,
    /// Callers currently parked on `cv` (observability for tests and
    /// load-shedding heuristics).
    waiters: AtomicUsize,
}

/// A process-wide pipeline service: shared cached store, per-run
/// observability contexts, and request coalescing keyed by config hash.
///
/// ```
/// use xtrace_core::{PipelineConfig, XtraceEngine};
///
/// let engine = XtraceEngine::new();
/// let cfg = PipelineConfig::builder("stencil3d", "opteron", vec![2, 4, 8], 32)
///     .fast_tracer(true)
///     .validate(false)
///     .build();
/// let outcome = engine.run(&cfg)?;
/// assert!(outcome.report.prediction.total_seconds > 0.0);
/// assert!(!outcome.coalesced);
/// // The run's metrics are its own:
/// assert!(outcome.metrics.counters["tracer.blocks_simulated"] > 0);
/// # Ok::<(), xtrace_core::XtraceError>(())
/// ```
pub struct XtraceEngine {
    store: Option<ArtifactStore>,
    inflight: Mutex<HashMap<String, Arc<Flight>>>,
}

impl Default for XtraceEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl XtraceEngine {
    /// An engine with no artifact store: every cold run recomputes.
    pub fn new() -> Self {
        Self {
            store: None,
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Attaches a shared artifact store rooted at `root`, opened with the
    /// in-memory [sharded cache](crate::store::ShardedCache) so concurrent
    /// sessions serve repeated artifacts from memory.
    pub fn with_store(mut self, root: impl Into<PathBuf>) -> Result<Self> {
        self.store = Some(ArtifactStore::open_shared(root)?);
        Ok(self)
    }

    /// The engine's shared store, when one is attached.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// Distinct config hashes currently executing.
    pub fn in_flight(&self) -> usize {
        self.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Callers currently parked waiting to coalesce onto another
    /// caller's execution.
    pub fn waiting(&self) -> usize {
        self.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(|f| f.waiters.load(Ordering::Acquire))
            .sum()
    }

    /// Runs `config` through the pipeline, coalescing with any identical
    /// in-flight request.
    ///
    /// The first caller for a given config hash (the *leader*) executes
    /// the pipeline under a fresh journal-enabled [`ObsContext`]; callers
    /// that arrive while it is running await the same execution and get a
    /// clone of its outcome with [`EngineOutcome::coalesced`] set. Calls
    /// arriving after completion start a new flight — with a store
    /// attached, that re-run resolves as cache hits.
    pub fn run(&self, config: &PipelineConfig) -> Result<EngineOutcome> {
        self.run_with_observer(config, None)
    }

    /// [`XtraceEngine::run`] with a progress observer.
    ///
    /// The observer sees stage callbacks only if this caller becomes the
    /// leader; a coalesced caller returns without stage-level progress
    /// (its work happened on another caller's observer).
    pub fn run_with_observer(
        &self,
        config: &PipelineConfig,
        observer: Option<Box<dyn StageObserver>>,
    ) -> Result<EngineOutcome> {
        let key = config.config_hash();
        let (flight, leader) = {
            let mut map = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
            match map.get(&key) {
                Some(flight) => {
                    // Registered before the map lock drops, so the leader
                    // can observe every follower that will coalesce.
                    flight.waiters.fetch_add(1, Ordering::AcqRel);
                    (Arc::clone(flight), false)
                }
                None => {
                    let flight = Arc::new(Flight::default());
                    map.insert(key.clone(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };

        if leader {
            let result = self.execute(config, observer);
            // Retire the flight before publishing: a caller arriving now
            // starts a fresh flight (and, with a store, resumes warm)
            // rather than receiving a stale outcome forever.
            self.inflight
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&key);
            let shared = match &result {
                Ok(outcome) => Ok(outcome.clone()),
                Err(e) => Err(e.to_string()),
            };
            *flight.slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(shared);
            flight.cv.notify_all();
            result
        } else {
            let mut slot = flight.slot.lock().unwrap_or_else(PoisonError::into_inner);
            while slot.is_none() {
                slot = flight.cv.wait(slot).unwrap_or_else(PoisonError::into_inner);
            }
            flight.waiters.fetch_sub(1, Ordering::AcqRel);
            match slot.as_ref() {
                Some(Ok(outcome)) => Ok(EngineOutcome {
                    coalesced: true,
                    ..outcome.clone()
                }),
                Some(Err(message)) => Err(XtraceError::Model(format!(
                    "coalesced pipeline failed: {message}"
                ))),
                None => unreachable!("loop exits only when the slot is filled"),
            }
        }
    }

    /// One cold execution under a fresh scoped context.
    fn execute(
        &self,
        config: &PipelineConfig,
        observer: Option<Box<dyn StageObserver>>,
    ) -> Result<EngineOutcome> {
        let recorder = Recorder::with_journal();
        let obs = ObsContext::with_recorder(Arc::clone(&recorder));
        let mut pipeline = Pipeline::new(config.clone())?.with_obs(obs);
        if let Some(store) = &self.store {
            pipeline = pipeline.with_store_handle(store.clone());
        }
        if let Some(observer) = observer {
            pipeline = pipeline.with_observer(observer);
        }
        let report = pipeline.run()?;
        Ok(EngineOutcome {
            report,
            metrics: recorder.snapshot(),
            journal: recorder.journal_snapshot(),
            coalesced: false,
        })
    }
}

impl std::fmt::Debug for XtraceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XtraceEngine")
            .field("store", &self.store)
            .field("in_flight", &self.in_flight())
            .field("waiting", &self.waiting())
            .finish()
    }
}
