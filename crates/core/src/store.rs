//! Content-addressed, versioned artifact store.
//!
//! Pipeline outputs are filed under the run's
//! [config hash](crate::config::PipelineConfig::config_hash):
//!
//! ```text
//! <root>/store.json                   manifest (format + version)
//! <root>/<hash>/training-p<P>.bin     training traces (compact binary codec)
//! <root>/<hash>/extrapolated.json     synthetic trace (versioned JSON envelope)
//! <root>/<hash>/prediction.json       runtime prediction
//! <root>/<hash>/validation.json       validation record
//! ```
//!
//! Because the hash covers every output-relevant config field, *resume is
//! a cache hit*: re-running an identical pipeline finds each artifact and
//! skips the computation that produced it, while any config change lands
//! in a fresh entry. Serialization is delegated to `xtrace-tracer`'s codec
//! (`to_bytes`/`from_bytes`, `save_json`/`parse_json`) so the store and
//! the CLI share one on-disk trace format.
//!
//! A missing artifact reads as `Ok(None)`; so does a *corrupt* one (the
//! pipeline recomputes and overwrites it). Only environmental failures —
//! an unreadable root, a manifest written by a newer library version —
//! are errors.

use std::io::ErrorKind;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use xtrace_tracer::{from_bytes, parse_json, save_json, to_bytes, TaskTrace};

use crate::error::{Result, XtraceError};

/// Manifest `format` field.
pub const STORE_FORMAT: &str = "xtrace-artifact-store";
/// Current store layout version.
pub const STORE_VERSION: u32 = 1;

/// A directory of pipeline artifacts keyed by config hash.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

fn store_err(path: &Path, e: std::io::Error) -> XtraceError {
    XtraceError::Store(format!("{}: {e}", path.display()))
}

// Observability: store traffic is cold-path (file I/O), so per-call
// handle registration against the ambient registry is fine here.
fn record_lookup(hit: bool) {
    xtrace_obs::metrics()
        .counter(if hit { "store.hits" } else { "store.misses" })
        .incr();
}

fn record_write() {
    xtrace_obs::metrics().counter("store.writes").incr();
}

impl ArtifactStore {
    /// Opens (or initializes) a store rooted at `root`.
    ///
    /// A fresh directory gets a manifest; an existing one must carry a
    /// manifest with this library's format and a version no newer than
    /// [`STORE_VERSION`].
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| store_err(&root, e))?;
        let manifest = root.join("store.json");
        match std::fs::read_to_string(&manifest) {
            Ok(s) => {
                let v: serde_json::Value = serde_json::from_str(&s).map_err(|e| {
                    XtraceError::Store(format!("{}: bad manifest: {e}", manifest.display()))
                })?;
                if v["format"].as_str() != Some(STORE_FORMAT) {
                    return Err(XtraceError::Store(format!(
                        "{}: not an xtrace artifact store",
                        root.display()
                    )));
                }
                let version = v["version"].as_u64().unwrap_or(0) as u32;
                if version > STORE_VERSION {
                    return Err(XtraceError::Store(format!(
                        "{}: store version {version} is newer than supported {STORE_VERSION}",
                        root.display()
                    )));
                }
            }
            Err(e) if e.kind() == ErrorKind::NotFound => {
                let body = format!(
                    "{{\n  \"format\": \"{STORE_FORMAT}\",\n  \"version\": {STORE_VERSION}\n}}\n"
                );
                std::fs::write(&manifest, body).map_err(|e| store_err(&manifest, e))?;
            }
            Err(e) => return Err(store_err(&manifest, e)),
        }
        Ok(Self { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry(&self, hash: &str, name: &str) -> PathBuf {
        self.root.join(hash).join(name)
    }

    fn ensure_entry_dir(&self, hash: &str) -> Result<()> {
        let dir = self.root.join(hash);
        std::fs::create_dir_all(&dir).map_err(|e| store_err(&dir, e))
    }

    fn read_artifact(&self, hash: &str, name: &str) -> Result<Option<Vec<u8>>> {
        let path = self.entry(hash, name);
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(None),
            Err(e) => Err(store_err(&path, e)),
        }
    }

    /// Files a trace under `<hash>/<name>.bin` (binary codec).
    ///
    /// The encoder itself reports `tracer.codec.compressed_bytes` /
    /// `tracer.codec.raw_bytes`; the store adds the on-disk total under
    /// `store.trace_bytes_written`.
    pub fn put_trace(&self, hash: &str, name: &str, trace: &TaskTrace) -> Result<()> {
        self.ensure_entry_dir(hash)?;
        let path = self.entry(hash, &format!("{name}.bin"));
        let bytes = to_bytes(trace);
        xtrace_obs::metrics()
            .counter("store.trace_bytes_written")
            .add(bytes.len() as u64);
        std::fs::write(&path, bytes).map_err(|e| store_err(&path, e))?;
        record_write();
        Ok(())
    }

    /// Looks a binary trace up; corrupt artifacts read as a miss.
    pub fn get_trace(&self, hash: &str, name: &str) -> Result<Option<TaskTrace>> {
        let found = match self.read_artifact(hash, &format!("{name}.bin"))? {
            Some(bytes) => from_bytes(&bytes).ok(),
            None => None,
        };
        record_lookup(found.is_some());
        Ok(found)
    }

    /// Files a trace under `<hash>/<name>.json` (versioned JSON envelope).
    pub fn put_trace_json(&self, hash: &str, name: &str, trace: &TaskTrace) -> Result<()> {
        self.ensure_entry_dir(hash)?;
        let path = self.entry(hash, &format!("{name}.json"));
        save_json(trace, &path)?;
        record_write();
        Ok(())
    }

    /// Looks a JSON-envelope trace up; corrupt artifacts read as a miss.
    pub fn get_trace_json(&self, hash: &str, name: &str) -> Result<Option<TaskTrace>> {
        let file = format!("{name}.json");
        let found = match self.read_artifact(hash, &file)? {
            Some(bytes) => match String::from_utf8(bytes) {
                Ok(s) => parse_json(&s, &self.entry(hash, &file)).ok(),
                Err(_) => None,
            },
            None => None,
        };
        record_lookup(found.is_some());
        Ok(found)
    }

    /// Files any serializable value under `<hash>/<name>.json`.
    pub fn put_json<T: Serialize>(&self, hash: &str, name: &str, value: &T) -> Result<()> {
        self.ensure_entry_dir(hash)?;
        let path = self.entry(hash, &format!("{name}.json"));
        let body = serde_json::to_string_pretty(value)
            .map_err(|e| XtraceError::Store(format!("{}: {e}", path.display())))?;
        std::fs::write(&path, body).map_err(|e| store_err(&path, e))?;
        record_write();
        Ok(())
    }

    /// Looks a JSON value up; corrupt artifacts read as a miss.
    pub fn get_json<T: Deserialize>(&self, hash: &str, name: &str) -> Result<Option<T>> {
        let found = match self.read_artifact(hash, &format!("{name}.json"))? {
            Some(bytes) => match String::from_utf8(bytes) {
                Ok(s) => serde_json::from_str(&s).ok(),
                Err(_) => None,
            },
            None => None,
        };
        record_lookup(found.is_some());
        Ok(found)
    }
}

/// Convolved group tables are pure functions of (trace, machine), so the
/// store memoizes them under a shared `convolve/` entry keyed by the
/// replay layer's content hash — any pipeline run (or bench) touching the
/// same group traces reuses them. Best-effort by contract: I/O failures
/// degrade to recomputation.
impl xtrace_psins::ConvolveCache for ArtifactStore {
    fn get_group(&self, key: &str) -> Option<xtrace_psins::GroupBlockTimes> {
        self.get_json("convolve", key).ok().flatten()
    }

    fn put_group(&self, key: &str, value: &xtrace_psins::GroupBlockTimes) {
        let _ = self.put_json("convolve", key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_machine::presets;
    use xtrace_tracer::{collect_signature_with, TracerConfig};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("xtrace-core-store-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_trace() -> TaskTrace {
        let app = xtrace_apps::StencilProxy::small();
        let machine = presets::opteron();
        collect_signature_with(&app, 2, &machine, &TracerConfig::fast())
            .longest_task()
            .clone()
    }

    #[test]
    fn open_writes_a_manifest_and_reopens() {
        let root = tmp("manifest");
        let store = ArtifactStore::open(&root).unwrap();
        let manifest = std::fs::read_to_string(root.join("store.json")).unwrap();
        assert!(manifest.contains(STORE_FORMAT));
        drop(store);
        ArtifactStore::open(&root).expect("reopen succeeds");
    }

    #[test]
    fn open_rejects_newer_store_versions() {
        let root = tmp("newer");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(
            root.join("store.json"),
            format!("{{\"format\": \"{STORE_FORMAT}\", \"version\": 99}}"),
        )
        .unwrap();
        let err = ArtifactStore::open(&root).unwrap_err();
        assert!(matches!(err, XtraceError::Store(_)));
        assert!(err.to_string().contains("newer than supported"));
    }

    #[test]
    fn open_rejects_foreign_manifests() {
        let root = tmp("foreign");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join("store.json"), "{\"format\": \"something-else\"}").unwrap();
        assert!(ArtifactStore::open(&root).is_err());
    }

    #[test]
    fn binary_and_json_traces_roundtrip() {
        let store = ArtifactStore::open(tmp("roundtrip")).unwrap();
        let trace = sample_trace();
        assert_eq!(store.get_trace("h", "training-p2").unwrap(), None);
        store.put_trace("h", "training-p2", &trace).unwrap();
        assert_eq!(
            store.get_trace("h", "training-p2").unwrap(),
            Some(trace.clone())
        );
        store.put_trace_json("h", "extrapolated", &trace).unwrap();
        assert_eq!(
            store.get_trace_json("h", "extrapolated").unwrap(),
            Some(trace)
        );
    }

    #[test]
    fn corrupt_artifacts_read_as_misses() {
        let root = tmp("corrupt");
        let store = ArtifactStore::open(&root).unwrap();
        let trace = sample_trace();
        store.put_trace("h", "t", &trace).unwrap();
        std::fs::write(root.join("h").join("t.bin"), b"garbage").unwrap();
        assert_eq!(store.get_trace("h", "t").unwrap(), None);
        store.put_json("h", "v", &42u32).unwrap();
        std::fs::write(root.join("h").join("v.json"), "not json").unwrap();
        assert_eq!(store.get_json::<u32>("h", "v").unwrap(), None);
    }

    #[test]
    fn entries_are_isolated_by_hash() {
        let store = ArtifactStore::open(tmp("isolated")).unwrap();
        let trace = sample_trace();
        store.put_trace("aaaa", "t", &trace).unwrap();
        assert_eq!(store.get_trace("bbbb", "t").unwrap(), None);
    }

    #[test]
    fn store_memoizes_convolved_group_tables() {
        use xtrace_psins::{ConvolveCache, GroupBlockTimes};
        let store = ArtifactStore::open(tmp("convolve")).unwrap();
        let table = GroupBlockTimes {
            columns: vec!["jacobi-sweep".into(), "residual".into()],
            per_iteration: vec![1.25e-9, 3.5e-10],
        };
        assert!(store.get_group("deadbeefdeadbeef").is_none());
        store.put_group("deadbeefdeadbeef", &table);
        assert_eq!(store.get_group("deadbeefdeadbeef"), Some(table));
    }

    #[test]
    fn cached_replay_model_reuses_store_entries() {
        use xtrace_psins::GroupComputeModel;
        let store = ArtifactStore::open(tmp("convolve-model")).unwrap();
        let app = xtrace_apps::StencilProxy::small();
        let machine = presets::opteron();
        let cfg = TracerConfig::fast();
        let t0 = xtrace_tracer::collect_task_trace(&app, 0, 4, &machine, &cfg);
        let t1 = xtrace_tracer::collect_task_trace(&app, 1, 4, &machine, &cfg);
        let groups = vec![(t0, 1u64), (t1, 3u64)];
        let (_, cold) =
            GroupComputeModel::try_new_cached(&groups, 4, &machine, &store).expect("cold");
        assert_eq!(cold, 0);
        let (_, warm) =
            GroupComputeModel::try_new_cached(&groups, 4, &machine, &store).expect("warm");
        assert_eq!(warm, 2);
    }
}
