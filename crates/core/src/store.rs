//! Content-addressed, versioned artifact store.
//!
//! Pipeline outputs are filed under the run's
//! [config hash](crate::config::PipelineConfig::config_hash):
//!
//! ```text
//! <root>/store.json                   manifest (format + version)
//! <root>/<hash>/training-p<P>.bin     training traces (compact binary codec)
//! <root>/<hash>/extrapolated.json     synthetic trace (versioned JSON envelope)
//! <root>/<hash>/prediction.json       runtime prediction
//! <root>/<hash>/validation.json       validation record
//! ```
//!
//! Because the hash covers every output-relevant config field, *resume is
//! a cache hit*: re-running an identical pipeline finds each artifact and
//! skips the computation that produced it, while any config change lands
//! in a fresh entry. Serialization is delegated to `xtrace-tracer`'s codec
//! (`to_bytes`/`from_bytes`, envelope JSON) so the store and the CLI share
//! one on-disk trace format.
//!
//! A missing artifact reads as `Ok(None)`; so does a *corrupt* one (the
//! pipeline recomputes and overwrites it). Only environmental failures —
//! an unreadable root, a manifest written by a newer library version —
//! are errors.
//!
//! ## Backends and concurrency
//!
//! The typed API sits on [`ArtifactBackend`], a raw byte-level trait with
//! two implementations: [`FileBackend`] (one file per artifact, writes
//! published by atomic rename so concurrent readers never observe a torn
//! artifact) and [`ShardedCache`], a read-mostly in-memory write-through
//! layer over another backend. The cache shards its map by artifact
//! namespace across [`STORE_SHARDS`] `RwLock`s, so many sessions of one
//! process can hit different namespaces without contending on a single
//! lock; per-shard hit/miss/write counters ([`ShardStats`]) make the
//! traffic observable. [`ArtifactStore::open_shared`] builds the cached
//! stack — the configuration [`crate::XtraceEngine`] uses.

use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use serde::{Deserialize, Serialize};
use xtrace_obs::ObsContext;
use xtrace_tracer::{from_bytes, parse_json, to_bytes_obs, trace_json_string, TaskTrace};

use crate::error::{Result, XtraceError};

/// Manifest `format` field.
pub const STORE_FORMAT: &str = "xtrace-artifact-store";
/// Current store layout version.
pub const STORE_VERSION: u32 = 1;
/// Lock shards in a [`ShardedCache`] (namespaces hash across them).
pub const STORE_SHARDS: usize = 8;

fn store_err(path: &Path, e: std::io::Error) -> XtraceError {
    XtraceError::Store(format!("{}: {e}", path.display()))
}

/// Raw byte-level artifact storage: the substrate under the typed
/// [`ArtifactStore`] API.
///
/// `namespace` is the artifact's grouping key (a pipeline config hash, or
/// the shared `convolve` memo namespace); `name` is the file name within
/// it, extension included. Implementations must be safe for concurrent
/// readers and writers: a `load` racing a `save` of the same artifact
/// returns either the old or the new bytes, never a torn mix.
pub trait ArtifactBackend: Send + Sync + std::fmt::Debug {
    /// The bytes of `<namespace>/<name>`, or `None` when absent.
    fn load(&self, namespace: &str, name: &str) -> Result<Option<Vec<u8>>>;
    /// Durably stores `<namespace>/<name>`, replacing any previous value.
    fn save(&self, namespace: &str, name: &str, bytes: &[u8]) -> Result<()>;
}

/// The original one-file-per-artifact backend.
///
/// Writes land in a unique temporary file first and are published with
/// `rename`, which is atomic on POSIX filesystems — concurrent readers
/// (other threads or other processes sharing the store directory) see
/// whole artifacts only.
#[derive(Debug)]
pub struct FileBackend {
    root: PathBuf,
}

/// Distinguishes concurrent writers' temporary files (process-wide).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl FileBackend {
    /// Opens (or initializes) a backend rooted at `root`.
    ///
    /// A fresh directory gets a manifest; an existing one must carry a
    /// manifest with this library's format and a version no newer than
    /// [`STORE_VERSION`].
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| store_err(&root, e))?;
        let manifest = root.join("store.json");
        match std::fs::read_to_string(&manifest) {
            Ok(s) => {
                let v: serde_json::Value = serde_json::from_str(&s).map_err(|e| {
                    XtraceError::Store(format!("{}: bad manifest: {e}", manifest.display()))
                })?;
                if v["format"].as_str() != Some(STORE_FORMAT) {
                    return Err(XtraceError::Store(format!(
                        "{}: not an xtrace artifact store",
                        root.display()
                    )));
                }
                let version = v["version"].as_u64().unwrap_or(0) as u32;
                if version > STORE_VERSION {
                    return Err(XtraceError::Store(format!(
                        "{}: store version {version} is newer than supported {STORE_VERSION}",
                        root.display()
                    )));
                }
            }
            Err(e) if e.kind() == ErrorKind::NotFound => {
                let body = format!(
                    "{{\n  \"format\": \"{STORE_FORMAT}\",\n  \"version\": {STORE_VERSION}\n}}\n"
                );
                std::fs::write(&manifest, body).map_err(|e| store_err(&manifest, e))?;
            }
            Err(e) => return Err(store_err(&manifest, e)),
        }
        Ok(Self { root })
    }

    /// The backend's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry(&self, namespace: &str, name: &str) -> PathBuf {
        self.root.join(namespace).join(name)
    }
}

impl ArtifactBackend for FileBackend {
    fn load(&self, namespace: &str, name: &str) -> Result<Option<Vec<u8>>> {
        let path = self.entry(namespace, name);
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(None),
            Err(e) => Err(store_err(&path, e)),
        }
    }

    fn save(&self, namespace: &str, name: &str, bytes: &[u8]) -> Result<()> {
        let dir = self.root.join(namespace);
        std::fs::create_dir_all(&dir).map_err(|e| store_err(&dir, e))?;
        let path = dir.join(name);
        let tmp = dir.join(format!(
            ".{name}.tmp{}",
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, bytes).map_err(|e| store_err(&tmp, e))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            store_err(&path, e)
        })
    }
}

/// Per-shard (or aggregated) cache traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups answered from the in-memory map.
    pub hits: u64,
    /// Lookups that had to consult the inner backend.
    pub misses: u64,
    /// Write-through saves routed via this shard.
    pub writes: u64,
}

/// One shard's map: `(namespace, name)` → cached artifact bytes.
type ShardMap = std::collections::HashMap<(String, String), Arc<Vec<u8>>>;

#[derive(Debug, Default)]
struct Shard {
    map: RwLock<ShardMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
}

/// A sharded, read-mostly, write-through in-memory cache over another
/// [`ArtifactBackend`].
///
/// Artifacts hash by *namespace* onto one of [`STORE_SHARDS`] independent
/// `RwLock`-guarded maps, so concurrent sessions working on different
/// pipeline configs never contend on one lock, and identical sessions
/// share cached bytes under read locks. Saves write through to the inner
/// backend first (durability), then publish to the shard; loads populate
/// the shard on miss. Absence is never cached, so an artifact written by
/// another process through the shared directory is still found.
pub struct ShardedCache {
    inner: Arc<dyn ArtifactBackend>,
    shards: [Shard; STORE_SHARDS],
}

impl ShardedCache {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: Arc<dyn ArtifactBackend>) -> Self {
        Self {
            inner,
            shards: std::array::from_fn(|_| Shard::default()),
        }
    }

    /// FNV-1a over the namespace: same grouping key, same shard.
    fn shard_of(&self, namespace: &str) -> &Shard {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in namespace.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        &self.shards[(h % STORE_SHARDS as u64) as usize]
    }

    /// Traffic counters per shard, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                writes: s.writes.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Aggregated traffic counters over every shard.
    pub fn stats(&self) -> ShardStats {
        self.shard_stats()
            .iter()
            .fold(ShardStats::default(), |a, s| ShardStats {
                hits: a.hits + s.hits,
                misses: a.misses + s.misses,
                writes: a.writes + s.writes,
            })
    }
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &STORE_SHARDS)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ArtifactBackend for ShardedCache {
    fn load(&self, namespace: &str, name: &str) -> Result<Option<Vec<u8>>> {
        let shard = self.shard_of(namespace);
        let key = (namespace.to_string(), name.to_string());
        {
            let map = shard
                .map
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(bytes) = map.get(&key) {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Some(bytes.as_ref().clone()));
            }
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        let loaded = self.inner.load(namespace, name)?;
        if let Some(bytes) = &loaded {
            let mut map = shard
                .map
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            map.insert(key, Arc::new(bytes.clone()));
        }
        Ok(loaded)
    }

    fn save(&self, namespace: &str, name: &str, bytes: &[u8]) -> Result<()> {
        // Durability first: only publish to the cache what the inner
        // backend accepted, so a failed write can't leave phantom bytes.
        self.inner.save(namespace, name, bytes)?;
        let shard = self.shard_of(namespace);
        shard.writes.fetch_add(1, Ordering::Relaxed);
        let mut map = shard
            .map
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.insert(
            (namespace.to_string(), name.to_string()),
            Arc::new(bytes.to_vec()),
        );
        Ok(())
    }
}

/// A directory of pipeline artifacts keyed by config hash.
///
/// The typed API (traces, JSON values) over an [`ArtifactBackend`].
/// Cloning shares the backend, so one store can serve many sessions;
/// [`ArtifactStore::with_obs`] rebinds the clone to a session's
/// [`ObsContext`] so `store.*` counters land in that run's snapshot.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    backend: Arc<dyn ArtifactBackend>,
    cache: Option<Arc<ShardedCache>>,
    root: PathBuf,
    obs: Option<ObsContext>,
}

impl ArtifactStore {
    /// Opens (or initializes) a plain file-backed store rooted at `root`.
    ///
    /// Every lookup and write goes straight to disk — the semantics the
    /// store always had. Use [`ArtifactStore::open_shared`] for the
    /// in-memory-cached stack meant to be shared by concurrent sessions.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let file = FileBackend::open(root)?;
        let root = file.root().to_path_buf();
        Ok(Self {
            backend: Arc::new(file),
            cache: None,
            root,
            obs: None,
        })
    }

    /// Opens a store whose file backend is fronted by a [`ShardedCache`],
    /// for many concurrent readers and writers in one process.
    pub fn open_shared(root: impl Into<PathBuf>) -> Result<Self> {
        let file = FileBackend::open(root)?;
        let root = file.root().to_path_buf();
        let cache = Arc::new(ShardedCache::new(Arc::new(file)));
        Ok(Self {
            backend: cache.clone(),
            cache: Some(cache),
            root,
            obs: None,
        })
    }

    /// Rebinds this handle (typically a clone) to an explicit
    /// observability context; without one, store counters land on the
    /// ambient context.
    #[must_use]
    pub fn with_obs(mut self, obs: ObsContext) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The effective observability context for this handle.
    fn obs(&self) -> ObsContext {
        self.obs.clone().unwrap_or_else(ObsContext::ambient)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The in-memory cache layer's aggregated counters, when this store
    /// was opened with [`ArtifactStore::open_shared`].
    pub fn cache_stats(&self) -> Option<ShardStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Per-shard cache counters (shard order), when cached.
    pub fn cache_shard_stats(&self) -> Option<Vec<ShardStats>> {
        self.cache.as_ref().map(|c| c.shard_stats())
    }

    fn record_lookup(&self, hit: bool) {
        self.obs()
            .metrics()
            .counter(if hit { "store.hits" } else { "store.misses" })
            .incr();
    }

    fn record_write(&self) {
        self.obs().metrics().counter("store.writes").incr();
    }

    fn entry(&self, hash: &str, name: &str) -> PathBuf {
        self.root.join(hash).join(name)
    }

    /// Files a trace under `<hash>/<name>.bin` (binary codec).
    ///
    /// The encoder itself reports `tracer.codec.compressed_bytes` /
    /// `tracer.codec.raw_bytes`; the store adds the on-disk total under
    /// `store.trace_bytes_written`.
    pub fn put_trace(&self, hash: &str, name: &str, trace: &TaskTrace) -> Result<()> {
        let obs = self.obs();
        let bytes = to_bytes_obs(trace, &obs);
        obs.metrics()
            .counter("store.trace_bytes_written")
            .add(bytes.len() as u64);
        self.backend.save(hash, &format!("{name}.bin"), &bytes)?;
        self.record_write();
        Ok(())
    }

    /// Looks a binary trace up; corrupt artifacts read as a miss.
    pub fn get_trace(&self, hash: &str, name: &str) -> Result<Option<TaskTrace>> {
        let found = match self.backend.load(hash, &format!("{name}.bin"))? {
            Some(bytes) => from_bytes(&bytes).ok(),
            None => None,
        };
        self.record_lookup(found.is_some());
        Ok(found)
    }

    /// Files a trace under `<hash>/<name>.json` (versioned JSON envelope).
    pub fn put_trace_json(&self, hash: &str, name: &str, trace: &TaskTrace) -> Result<()> {
        let path = self.entry(hash, &format!("{name}.json"));
        let body = trace_json_string(trace)
            .map_err(|e| XtraceError::Store(format!("{}: {e}", path.display())))?;
        self.backend
            .save(hash, &format!("{name}.json"), body.as_bytes())?;
        self.record_write();
        Ok(())
    }

    /// Looks a JSON-envelope trace up; corrupt artifacts read as a miss.
    pub fn get_trace_json(&self, hash: &str, name: &str) -> Result<Option<TaskTrace>> {
        let file = format!("{name}.json");
        let found = match self.backend.load(hash, &file)? {
            Some(bytes) => match String::from_utf8(bytes) {
                Ok(s) => parse_json(&s, &self.entry(hash, &file)).ok(),
                Err(_) => None,
            },
            None => None,
        };
        self.record_lookup(found.is_some());
        Ok(found)
    }

    /// Files any serializable value under `<hash>/<name>.json`.
    pub fn put_json<T: Serialize>(&self, hash: &str, name: &str, value: &T) -> Result<()> {
        let path = self.entry(hash, &format!("{name}.json"));
        let body = serde_json::to_string_pretty(value)
            .map_err(|e| XtraceError::Store(format!("{}: {e}", path.display())))?;
        self.backend
            .save(hash, &format!("{name}.json"), body.as_bytes())?;
        self.record_write();
        Ok(())
    }

    /// Looks a JSON value up; corrupt artifacts read as a miss.
    pub fn get_json<T: Deserialize>(&self, hash: &str, name: &str) -> Result<Option<T>> {
        let found = match self.backend.load(hash, &format!("{name}.json"))? {
            Some(bytes) => match String::from_utf8(bytes) {
                Ok(s) => serde_json::from_str(&s).ok(),
                Err(_) => None,
            },
            None => None,
        };
        self.record_lookup(found.is_some());
        Ok(found)
    }
}

/// Convolved group tables are pure functions of (trace, machine), so the
/// store memoizes them under a shared `convolve/` entry keyed by the
/// replay layer's content hash — any pipeline run (or bench) touching the
/// same group traces reuses them. Best-effort by contract: I/O failures
/// degrade to recomputation.
impl xtrace_psins::ConvolveCache for ArtifactStore {
    fn get_group(&self, key: &str) -> Option<xtrace_psins::GroupBlockTimes> {
        self.get_json("convolve", key).ok().flatten()
    }

    fn put_group(&self, key: &str, value: &xtrace_psins::GroupBlockTimes) {
        let _ = self.put_json("convolve", key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_machine::presets;
    use xtrace_tracer::{collect_signature_with, TracerConfig};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("xtrace-core-store-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_trace() -> TaskTrace {
        let app = xtrace_apps::StencilProxy::small();
        let machine = presets::opteron();
        collect_signature_with(&app, 2, &machine, &TracerConfig::fast())
            .longest_task()
            .clone()
    }

    #[test]
    fn open_writes_a_manifest_and_reopens() {
        let root = tmp("manifest");
        let store = ArtifactStore::open(&root).unwrap();
        let manifest = std::fs::read_to_string(root.join("store.json")).unwrap();
        assert!(manifest.contains(STORE_FORMAT));
        drop(store);
        ArtifactStore::open(&root).expect("reopen succeeds");
        ArtifactStore::open_shared(&root).expect("shared reopen succeeds");
    }

    #[test]
    fn open_rejects_newer_store_versions() {
        let root = tmp("newer");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(
            root.join("store.json"),
            format!("{{\"format\": \"{STORE_FORMAT}\", \"version\": 99}}"),
        )
        .unwrap();
        let err = ArtifactStore::open(&root).unwrap_err();
        assert!(matches!(err, XtraceError::Store(_)));
        assert!(err.to_string().contains("newer than supported"));
    }

    #[test]
    fn open_rejects_foreign_manifests() {
        let root = tmp("foreign");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join("store.json"), "{\"format\": \"something-else\"}").unwrap();
        assert!(ArtifactStore::open(&root).is_err());
    }

    #[test]
    fn binary_and_json_traces_roundtrip() {
        let store = ArtifactStore::open(tmp("roundtrip")).unwrap();
        let trace = sample_trace();
        assert_eq!(store.get_trace("h", "training-p2").unwrap(), None);
        store.put_trace("h", "training-p2", &trace).unwrap();
        assert_eq!(
            store.get_trace("h", "training-p2").unwrap(),
            Some(trace.clone())
        );
        store.put_trace_json("h", "extrapolated", &trace).unwrap();
        assert_eq!(
            store.get_trace_json("h", "extrapolated").unwrap(),
            Some(trace)
        );
    }

    #[test]
    fn corrupt_artifacts_read_as_misses() {
        let root = tmp("corrupt");
        let store = ArtifactStore::open(&root).unwrap();
        let trace = sample_trace();
        store.put_trace("h", "t", &trace).unwrap();
        std::fs::write(root.join("h").join("t.bin"), b"garbage").unwrap();
        assert_eq!(store.get_trace("h", "t").unwrap(), None);
        store.put_json("h", "v", &42u32).unwrap();
        std::fs::write(root.join("h").join("v.json"), "not json").unwrap();
        assert_eq!(store.get_json::<u32>("h", "v").unwrap(), None);
    }

    #[test]
    fn entries_are_isolated_by_hash() {
        let store = ArtifactStore::open(tmp("isolated")).unwrap();
        let trace = sample_trace();
        store.put_trace("aaaa", "t", &trace).unwrap();
        assert_eq!(store.get_trace("bbbb", "t").unwrap(), None);
    }

    #[test]
    fn store_memoizes_convolved_group_tables() {
        use xtrace_psins::{ConvolveCache, GroupBlockTimes};
        let store = ArtifactStore::open(tmp("convolve")).unwrap();
        let table = GroupBlockTimes {
            columns: vec!["jacobi-sweep".into(), "residual".into()],
            per_iteration: vec![1.25e-9, 3.5e-10],
        };
        assert!(store.get_group("deadbeefdeadbeef").is_none());
        store.put_group("deadbeefdeadbeef", &table);
        assert_eq!(store.get_group("deadbeefdeadbeef"), Some(table));
    }

    #[test]
    fn cached_replay_model_reuses_store_entries() {
        use xtrace_psins::GroupComputeModel;
        let store = ArtifactStore::open(tmp("convolve-model")).unwrap();
        let app = xtrace_apps::StencilProxy::small();
        let machine = presets::opteron();
        let cfg = TracerConfig::fast();
        let t0 = xtrace_tracer::collect_task_trace(&app, 0, 4, &machine, &cfg);
        let t1 = xtrace_tracer::collect_task_trace(&app, 1, 4, &machine, &cfg);
        let groups = vec![(t0, 1u64), (t1, 3u64)];
        let (_, cold) =
            GroupComputeModel::try_new_cached(&groups, 4, &machine, &store).expect("cold");
        assert_eq!(cold, 0);
        let (_, warm) =
            GroupComputeModel::try_new_cached(&groups, 4, &machine, &store).expect("warm");
        assert_eq!(warm, 2);
    }

    #[test]
    fn shared_store_serves_cached_bytes_and_counts_traffic() {
        let root = tmp("shared");
        let plain = ArtifactStore::open(&root).unwrap();
        let store = ArtifactStore::open_shared(&root).unwrap();
        let trace = sample_trace();
        // Written behind the cache's back: the first cached read misses
        // the memory layer and populates it from disk, the second hits.
        plain.put_trace("h", "t", &trace).unwrap();
        assert_eq!(store.get_trace("h", "t").unwrap(), Some(trace.clone()));
        assert_eq!(store.get_trace("h", "t").unwrap(), Some(trace.clone()));
        let stats = store.cache_stats().expect("shared store has a cache");
        assert_eq!((stats.hits, stats.misses, stats.writes), (1, 1, 0));
        // Write-through: a cached save is immediately durable on disk
        // and served from memory afterwards.
        store.put_trace("h", "u", &trace).unwrap();
        assert!(store.root().join("h").join("u.bin").exists());
        assert_eq!(store.get_trace("h", "u").unwrap(), Some(trace));
        let stats = store.cache_stats().expect("shared store has a cache");
        assert_eq!((stats.hits, stats.misses, stats.writes), (2, 1, 1));
    }

    #[test]
    fn shard_counters_sum_to_total_lookups() {
        let store = ArtifactStore::open_shared(tmp("shard-sums")).unwrap();
        let namespaces: Vec<String> = (0..32).map(|i| format!("ns{i:02}")).collect();
        for ns in &namespaces {
            store.put_json(ns, "v", &7u32).unwrap();
        }
        let mut lookups = 0u64;
        for ns in &namespaces {
            for _ in 0..3 {
                assert_eq!(store.get_json::<u32>(ns, "v").unwrap(), Some(7));
                lookups += 1;
            }
            assert_eq!(store.get_json::<u32>(ns, "absent").unwrap(), None);
            lookups += 1;
        }
        let per_shard = store.cache_shard_stats().expect("cached");
        assert_eq!(per_shard.len(), STORE_SHARDS);
        let total: u64 = per_shard.iter().map(|s| s.hits + s.misses).sum();
        assert_eq!(total, lookups, "every lookup is counted exactly once");
        // 32 namespaces over 8 shards: the hash must actually spread them.
        assert!(
            per_shard.iter().filter(|s| s.hits + s.misses > 0).count() > 1,
            "namespaces all hashed to one shard"
        );
    }

    #[test]
    fn eight_thread_stress_disjoint_and_identical_artifacts() {
        let store = ArtifactStore::open_shared(tmp("stress")).unwrap();
        let trace = sample_trace();
        // Seed one artifact every thread reads (identical), then race
        // disjoint per-thread artifacts against those shared reads.
        store.put_trace("shared", "t", &trace).unwrap();
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for tid in 0..8u32 {
                let store = store.clone();
                let trace = &trace;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let ns = format!("thread{tid}");
                    for round in 0..10u32 {
                        store.put_trace(&ns, "mine", trace).expect("write");
                        let mine = store.get_trace(&ns, "mine").expect("read");
                        assert_eq!(mine.as_ref(), Some(trace), "torn disjoint read");
                        let shared = store.get_trace("shared", "t").expect("read");
                        assert_eq!(shared.as_ref(), Some(trace), "torn shared read");
                        // Identical-artifact contention: everyone rewrites
                        // the same bytes under the same key.
                        store.put_json("shared", "round", &round).expect("write");
                        let v: Option<u32> = store.get_json("shared", "round").expect("read");
                        assert!(v.is_some(), "shared value vanished");
                    }
                });
            }
        });
        let stats = store.cache_stats().expect("cached");
        // 1 seed + 8 threads x 10 rounds x 2 writes.
        assert_eq!(stats.writes, 1 + 8 * 10 * 2);
        let per_shard = store.cache_shard_stats().expect("cached");
        let lookups: u64 = per_shard.iter().map(|s| s.hits + s.misses).sum();
        // 8 threads x 10 rounds x 3 lookups, all counted.
        assert_eq!(lookups, 8 * 10 * 3);
    }
}
