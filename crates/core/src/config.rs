//! Pipeline configuration and its resolution into runnable inputs.
//!
//! [`PipelineConfig`] subsumes the scattered CLI flags (`--app`, `--scale`,
//! `--machine`, `--training`, `--target`, `--forms`) into one validated
//! value. Its [`PipelineConfig::config_hash`] is a stable fingerprint of
//! every field that influences the pipeline's *output*, and is the key
//! under which the [artifact store](crate::store) files results — two runs
//! with the same hash are guaranteed to want the same artifacts.

use serde::{Deserialize, Serialize};
use xtrace_apps::{ProxyApp, SpecfemProxy, StencilProxy, Uh3dProxy};
use xtrace_extrap::{CanonicalForm, ExtrapolationConfig};
use xtrace_machine::{presets, MachineProfile};
use xtrace_obs::ObsContext;
use xtrace_spmd::{CommProfile, SpmdApp};
use xtrace_tracer::TracerConfig;

use crate::error::{Result, XtraceError};

/// Which canonical-form set the fitter may choose from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FormSet {
    /// The paper's four forms (constant, linear, log, exponential).
    Paper,
    /// Section VI's extension (adds power/polynomial forms).
    Extended,
}

impl FormSet {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "paper" => Ok(FormSet::Paper),
            "extended" => Ok(FormSet::Extended),
            other => Err(XtraceError::Usage(format!(
                "unknown --forms {other:?} (paper|extended)"
            ))),
        }
    }

    /// The candidate forms this set allows.
    pub fn forms(self) -> Vec<CanonicalForm> {
        match self {
            FormSet::Paper => CanonicalForm::PAPER_SET.to_vec(),
            FormSet::Extended => CanonicalForm::EXTENDED_SET.to_vec(),
        }
    }

    /// The CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            FormSet::Paper => "paper",
            FormSet::Extended => "extended",
        }
    }
}

/// Everything a pipeline run depends on, in one serializable value.
///
/// Construct with [`PipelineConfig::new`] for the conventional defaults,
/// or [`PipelineConfig::builder`] to set optional knobs fluently. The
/// struct is `#[non_exhaustive]` so fields can be added without breaking
/// downstream crates; existing fields stay public and mutable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct PipelineConfig {
    /// Proxy application name (`specfem3d` | `uh3d` | `stencil3d`).
    pub app: String,
    /// Problem scale (`tiny` | `small` | `paper`).
    pub scale: String,
    /// Machine preset name, or a path to a profile exported with
    /// `machine-export`.
    pub machine: String,
    /// Training core counts (at least two, strictly below `target`).
    pub training: Vec<u32>,
    /// Core count to extrapolate to.
    pub target: u32,
    /// Canonical-form set for the fitter.
    pub forms: FormSet,
    /// Whether to run the `Validate` stage (collect at the target count
    /// and measure ground truth — far more expensive than the pipeline
    /// proper).
    pub validate: bool,
    /// Use the light tracer sampling configuration instead of the default
    /// (smaller sampled windows; used by tests and quick looks).
    pub fast_tracer: bool,
    /// How many ranks to trace and store per training core count
    /// (default 1: only the longest-running rank, which is all the fitter
    /// consumes). Values above 1 collect extra worker ranks — spread
    /// evenly across `[0, nranks)` — and file them in the artifact store
    /// for rank-level studies; predictions are unaffected.
    pub ranks_per_count: u32,
}

impl PipelineConfig {
    /// A config with the conventional defaults: paper forms, full
    /// validation, default tracer sampling.
    pub fn new(
        app: impl Into<String>,
        machine: impl Into<String>,
        training: Vec<u32>,
        target: u32,
    ) -> Self {
        Self {
            app: app.into(),
            scale: "small".into(),
            machine: machine.into(),
            training,
            target,
            forms: FormSet::Paper,
            validate: true,
            fast_tracer: false,
            ranks_per_count: 1,
        }
    }

    /// Starts a builder with the same defaults as [`PipelineConfig::new`].
    ///
    /// ```
    /// use xtrace_core::{FormSet, PipelineConfig};
    ///
    /// let cfg = PipelineConfig::builder("stencil3d", "opteron", vec![2, 4, 8], 32)
    ///     .scale("tiny")
    ///     .forms(FormSet::Extended)
    ///     .validate(false)
    ///     .fast_tracer(true)
    ///     .build();
    /// assert_eq!(cfg.scale, "tiny");
    /// assert!(!cfg.validate);
    /// ```
    pub fn builder(
        app: impl Into<String>,
        machine: impl Into<String>,
        training: Vec<u32>,
        target: u32,
    ) -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            config: Self::new(app, machine, training, target),
        }
    }

    /// FNV-1a 64-bit fingerprint of the canonical JSON encoding of this
    /// config, as a 16-digit hex string. Identical configs — and only
    /// identical configs, modulo hash collisions — share artifact-store
    /// entries.
    pub fn config_hash(&self) -> String {
        let canonical = serde_json::to_string(self).expect("config serializes");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in canonical.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Validates the config and builds the app, machine, and per-stage
    /// configurations the engine needs.
    pub fn resolve(&self) -> Result<PipelineCtx> {
        if self.training.len() < 2 {
            return Err(XtraceError::Usage(format!(
                "need at least 2 training core counts, got {}",
                self.training.len()
            )));
        }
        if let Some(&p) = self.training.iter().find(|&&p| p >= self.target) {
            return Err(XtraceError::Usage(format!(
                "training count {p} does not lie below the target {}",
                self.target
            )));
        }
        if self.ranks_per_count == 0 {
            return Err(XtraceError::Usage(
                "--ranks-per-count must be at least 1".into(),
            ));
        }
        let app = make_app(&self.app, &self.scale)?;
        let machine = make_machine(&self.machine)?;
        let tracer = if self.fast_tracer {
            TracerConfig::fast()
        } else {
            TracerConfig::default()
        };
        let extrap = ExtrapolationConfig {
            forms: self.forms.forms(),
            min_traces: self.training.len().clamp(2, 3),
            ..ExtrapolationConfig::default()
        };
        Ok(PipelineCtx {
            config: self.clone(),
            config_hash: self.config_hash(),
            app,
            machine,
            tracer,
            extrap,
            store: None,
            obs: ObsContext::disabled(),
        })
    }
}

/// Fluent constructor for [`PipelineConfig`], started by
/// [`PipelineConfig::builder`]. Each setter overrides one default; `build`
/// returns the finished config (validation still happens in
/// [`PipelineConfig::resolve`], where the error context lives).
#[derive(Debug, Clone)]
pub struct PipelineConfigBuilder {
    config: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Problem scale (`tiny` | `small` | `paper`; default `small`).
    #[must_use]
    pub fn scale(mut self, scale: impl Into<String>) -> Self {
        self.config.scale = scale.into();
        self
    }

    /// Canonical-form set for the fitter (default [`FormSet::Paper`]).
    #[must_use]
    pub fn forms(mut self, forms: FormSet) -> Self {
        self.config.forms = forms;
        self
    }

    /// Whether to run the expensive `Validate` stage (default `true`).
    #[must_use]
    pub fn validate(mut self, validate: bool) -> Self {
        self.config.validate = validate;
        self
    }

    /// Use the light tracer sampling configuration (default `false`).
    #[must_use]
    pub fn fast_tracer(mut self, fast: bool) -> Self {
        self.config.fast_tracer = fast;
        self
    }

    /// How many ranks to trace per training core count (default `1`).
    #[must_use]
    pub fn ranks_per_count(mut self, n: u32) -> Self {
        self.config.ranks_per_count = n;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> PipelineConfig {
        self.config
    }
}

/// Object-safe bundle of the two app capabilities the pipeline needs:
/// the SPMD program (for tracing) and the communication profile (for the
/// convolution).
pub trait PipelineApp {
    /// The traceable SPMD application.
    fn spmd(&self) -> &dyn SpmdApp;
    /// The MPI-profiling pass at `nranks`.
    fn comm(&self, nranks: u32) -> CommProfile;
    /// The MPI-profiling pass at `nranks`, reporting into an explicit
    /// observability context. The default ignores the context so that
    /// hand-written `PipelineApp` impls keep compiling; [`ProxyApp`]s
    /// route their simulation counters into it.
    fn comm_obs(&self, nranks: u32, obs: &ObsContext) -> CommProfile {
        let _ = obs;
        self.comm(nranks)
    }
}

impl<T: ProxyApp> PipelineApp for T {
    fn spmd(&self) -> &dyn SpmdApp {
        self.as_spmd()
    }
    fn comm(&self, nranks: u32) -> CommProfile {
        self.comm_profile(nranks)
    }
    fn comm_obs(&self, nranks: u32, obs: &ObsContext) -> CommProfile {
        self.comm_profile_obs(nranks, obs)
    }
}

/// Resolved pipeline inputs: the config plus everything constructed from
/// it. Stages receive this immutably.
pub struct PipelineCtx {
    /// The originating configuration.
    pub config: PipelineConfig,
    /// [`PipelineConfig::config_hash`] of `config`, precomputed.
    pub config_hash: String,
    /// The proxy application.
    pub app: Box<dyn PipelineApp>,
    /// The target machine profile.
    pub machine: MachineProfile,
    /// Tracer sampling parameters.
    pub tracer: TracerConfig,
    /// Fitting parameters.
    pub extrap: ExtrapolationConfig,
    /// Artifact store for resume-as-cache-hit, when attached.
    pub store: Option<crate::store::ArtifactStore>,
    /// The run's observability context. Stages emit metrics, journal
    /// events, and spans through this handle — never through the ambient
    /// process default — so concurrent runs in one process stay isolated.
    pub obs: ObsContext,
}

impl std::fmt::Debug for PipelineCtx {
    // Not derivable: `app` is a trait object.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineCtx")
            .field("config", &self.config)
            .field("config_hash", &self.config_hash)
            .field("app", &self.app.spmd().name())
            .field("machine", &self.machine.name)
            .field("tracer", &self.tracer)
            .field("extrap", &self.extrap)
            .field("store", &self.store)
            .field("obs", &self.obs)
            .finish()
    }
}

/// The SPECFEM3D tiny-scale configuration shared by the golden pipeline
/// test and quick CLI runs: a few thousand elements, ten timesteps.
fn tiny_specfem() -> SpecfemProxy {
    let mut app = SpecfemProxy::small();
    app.cfg.total_elements = 6144;
    app.cfg.timesteps = 10;
    app.cfg.collect_per_rank = 4096;
    app.cfg.source_iters = 500_000;
    app
}

/// UH3D at tiny scale (matching the integration-test configuration).
fn tiny_uh3d() -> Uh3dProxy {
    let mut app = Uh3dProxy::small();
    app.cfg.total_particles = 1 << 14;
    app.cfg.grid_cells = 1 << 13;
    app.cfg.sort_base = 512;
    app
}

/// Builds a proxy application by name and scale.
pub fn make_app(name: &str, scale: &str) -> Result<Box<dyn PipelineApp>> {
    match scale {
        "tiny" | "small" | "paper" => {}
        other => {
            return Err(XtraceError::Usage(format!(
                "unknown --scale {other:?} (tiny|small|paper)"
            )))
        }
    }
    match name {
        "specfem3d" | "specfem3d-proxy" => Ok(match scale {
            "tiny" => Box::new(tiny_specfem()),
            "paper" => Box::new(SpecfemProxy::paper_scale()),
            _ => Box::new(SpecfemProxy::small()),
        }),
        "uh3d" | "uh3d-proxy" => Ok(match scale {
            "tiny" => Box::new(tiny_uh3d()),
            "paper" => Box::new(Uh3dProxy::paper_scale()),
            _ => Box::new(Uh3dProxy::small()),
        }),
        "stencil3d" | "stencil3d-proxy" => Ok(match scale {
            "paper" => Box::new(StencilProxy::medium()),
            _ => Box::new(StencilProxy::small()),
        }),
        other => Err(XtraceError::Usage(format!(
            "unknown application {other:?} (specfem3d | uh3d | stencil3d)"
        ))),
    }
}

/// Resolves a machine: a `.json` path is loaded as an exported
/// [`xtrace_machine::MachineProfileSpec`]; anything else is looked up in
/// the presets.
pub fn make_machine(name: &str) -> Result<MachineProfile> {
    if name.ends_with(".json") {
        let s = std::fs::read_to_string(name).map_err(|e| {
            XtraceError::Io(xtrace_tracer::IoError::Io {
                path: name.into(),
                source: e,
            })
        })?;
        let spec: xtrace_machine::MachineProfileSpec = serde_json::from_str(&s).map_err(|e| {
            XtraceError::Io(xtrace_tracer::IoError::Parse {
                path: name.into(),
                message: e.to_string(),
            })
        })?;
        return Ok(MachineProfile::from_spec(spec)?);
    }
    presets::by_name(name).ok_or_else(|| {
        let names: Vec<String> = presets::all().into_iter().map(|m| m.name).collect();
        XtraceError::Usage(format!(
            "unknown machine {name:?}; available: {}",
            names.join(", ")
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PipelineConfig {
        PipelineConfig::new("stencil3d", "opteron", vec![2, 4, 8], 32)
    }

    #[test]
    fn config_hash_is_stable_and_field_sensitive() {
        let a = cfg();
        assert_eq!(a.config_hash(), a.config_hash());
        assert_eq!(a.config_hash().len(), 16);
        let mut b = cfg();
        b.target = 64;
        assert_ne!(a.config_hash(), b.config_hash());
        let mut c = cfg();
        c.forms = FormSet::Extended;
        assert_ne!(a.config_hash(), c.config_hash());
    }

    #[test]
    fn builder_matches_new_and_overrides_defaults() {
        let built = PipelineConfig::builder("stencil3d", "opteron", vec![2, 4, 8], 32).build();
        assert_eq!(built, cfg());
        assert_eq!(built.config_hash(), cfg().config_hash());

        let custom = PipelineConfig::builder("uh3d", "cray-xt5", vec![4, 8], 64)
            .scale("tiny")
            .forms(FormSet::Extended)
            .validate(false)
            .fast_tracer(true)
            .build();
        assert_eq!(custom.scale, "tiny");
        assert_eq!(custom.forms, FormSet::Extended);
        assert!(!custom.validate);
        assert!(custom.fast_tracer);
        custom.resolve().expect("builder output resolves");
    }

    #[test]
    fn ranks_per_count_defaults_hashes_and_validates() {
        let base = cfg();
        assert_eq!(base.ranks_per_count, 1);

        let wide = PipelineConfig::builder("stencil3d", "opteron", vec![2, 4, 8], 32)
            .ranks_per_count(64)
            .build();
        assert_eq!(wide.ranks_per_count, 64);
        assert_ne!(base.config_hash(), wide.config_hash());
        wide.resolve().expect("wide config resolves");

        let mut bad = cfg();
        bad.ranks_per_count = 0;
        let err = bad.resolve().unwrap_err();
        assert!(err.to_string().contains("ranks-per-count"), "{err}");
    }

    #[test]
    fn resolve_validates_training_counts() {
        let mut bad = cfg();
        bad.training = vec![2];
        assert!(matches!(bad.resolve().unwrap_err(), XtraceError::Usage(_)));
        let mut bad = cfg();
        bad.training = vec![2, 32];
        let err = bad.resolve().unwrap_err();
        assert!(err.to_string().contains("below the target"), "{err}");
    }

    #[test]
    fn resolve_rejects_unknown_names_as_usage_errors() {
        let mut bad = cfg();
        bad.app = "lammps".into();
        let err = bad.resolve().unwrap_err();
        assert_eq!(err.exit_code(), crate::error::EXIT_USAGE);
        assert!(err.to_string().contains("unknown application"));

        let mut bad = cfg();
        bad.machine = "cray-xt9".into();
        let err = bad.resolve().unwrap_err();
        assert!(err.to_string().contains("unknown machine"));
        assert!(err.to_string().contains("cray-xt5"), "suggests valid names");

        let mut bad = cfg();
        bad.scale = "huge".into();
        assert!(bad.resolve().is_err());
    }

    #[test]
    fn every_scale_resolves_for_every_app() {
        for app in ["specfem3d", "uh3d", "stencil3d"] {
            for scale in ["tiny", "small", "paper"] {
                let mut c = cfg();
                c.app = app.into();
                c.scale = scale.into();
                let ctx = c.resolve().expect("resolves");
                assert!(!ctx.app.spmd().name().is_empty());
            }
        }
    }
}
