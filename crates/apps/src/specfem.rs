//! SPECFEM3D proxy: spectral-element seismic wave propagation.
//!
//! Kernel structure mirrored from the public SPECFEM3D_GLOBE solver loop:
//!
//! 1. **`stiffness-matmul`** — per-element application of the elastic
//!    operator: strided sweeps over the displacement field, repeated reads
//!    of the small element-local workspace (derivative matrices), indirect
//!    (mesh-connectivity) gathers, FMA-dominated arithmetic.
//! 2. **`attenuation-update`** — a kernel whose footprint is the
//!    *constant-size* element workspace, independent of core count. This is
//!    the paper's Table III block: its L1 hit rate does not move under
//!    strong scaling, but jumps when the hypothetical target's L1 grows
//!    from 12 KB to 56 KB.
//! 3. **`boundary-gather`** — assembling interface values with random
//!    access into the displacement field.
//! 4. **`newmark-update`** — the unit-stride time-integration sweep over
//!    all grid points.
//! 5. **`reduce-norm`** — stability-norm computation whose trip count grows
//!    with ⌈log₂ P⌉ (tree-combine work), the logarithmic canonical form's
//!    natural source.
//! 6. **`source-inject`** — the seismic source, which lives on the master
//!    rank: a constant amount of work regardless of core count.
//! 7. **`master-collect`** — the master rank's aggregation of interface
//!    summaries from every task: its trip count grows *linearly with P*.
//!
//! Strong scaling: the global element count is fixed; per-rank regions and
//! trip counts derive from [`scaled_share`]. Communication per timestep: a
//! six-neighbor halo exchange, a source-parameter broadcast, and an 8-byte
//! allreduce.
//!
//! The master structure is the key to matching the paper's observations.
//! The methodology extrapolates "the MPI task that consumed the most
//! computational time", and the paper's own element plots (Figures 4–5)
//! show that task's features *flat or growing* with core count — behaviour
//! characteristic of a master/bottleneck rank whose coordination work
//! scales with the job, not of a pure 1/P worker (whose hyperbolically
//! decaying counts lie outside the span of the four canonical forms). Here
//! rank 0 carries the source and the aggregation duties, so it is always
//! the longest task, and by the target scale its runtime is dominated by
//! constant/linear/logarithmic elements the fits capture exactly; the
//! strong-scaled worker kernels shrink below the 0.1% influence threshold,
//! exactly as the paper reports for its high-error elements.

use serde::{Deserialize, Serialize};
use xtrace_ir::{
    AddressPattern, BasicBlock, BlockId, FpOp, Instruction, MemOp, Program, SourceLoc,
};
use xtrace_spmd::{NetworkModel, RankEvent, RankProgram, SpmdApp};

use crate::decomp::{neighbors6, scaled_share, ScalingMode};
use crate::ProxyApp;

/// Global (core-count-independent) problem description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecfemConfig {
    /// Total spectral elements in the mesh.
    pub total_elements: u64,
    /// Gauss–Lobatto–Legendre points per element edge (points per element
    /// = `gll³`).
    pub gll: u32,
    /// Timesteps simulated.
    pub timesteps: u64,
    /// Element-local workspace bytes (derivative matrices etc.) —
    /// deliberately between 12 KB and 56 KB for the Table III experiment.
    pub elem_work_bytes: u64,
    /// Base trip count of the `reduce-norm` block (scaled by ⌈log₂ P⌉).
    pub norm_base: u64,
    /// Trips of the master rank's `source-inject` block (constant in P).
    pub source_iters: u64,
    /// Per-task trips of the master's `master-collect` block (total trips =
    /// `collect_per_rank × P`).
    pub collect_per_rank: u64,
    /// Master aggregation buffer bytes (constant in P).
    pub master_buf_bytes: u64,
    /// Strong (fixed global mesh) or weak (fixed per-rank mesh) scaling.
    pub scaling: ScalingMode,
}

impl SpecfemConfig {
    /// Points per element.
    pub fn points_per_element(&self) -> u64 {
        u64::from(self.gll).pow(3)
    }
}

/// The proxy application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecfemProxy {
    /// Problem description.
    pub cfg: SpecfemConfig,
}

impl SpecfemProxy {
    /// Full-scale configuration used by the paper-reproduction experiments
    /// (traced at 96/384/1536 cores, evaluated at 6144).
    pub fn paper_scale() -> Self {
        Self {
            cfg: SpecfemConfig {
                total_elements: 884_736, // 96^3 elements
                gll: 5,
                timesteps: 962,
                elem_work_bytes: 24 * 1024,
                norm_base: 4096,
                source_iters: 2_000_000,
                collect_per_rank: 8192,
                master_buf_bytes: 32 * 1024 * 1024,
                scaling: ScalingMode::Strong,
            },
        }
    }

    /// The paper-scale problem under weak scaling: `total_elements / 96`
    /// elements *per rank* at every core count (matching the strong
    /// configuration at its smallest training count).
    pub fn paper_scale_weak() -> Self {
        let mut app = Self::paper_scale();
        app.cfg.total_elements /= 96;
        app.cfg.scaling = ScalingMode::Weak;
        app
    }

    /// Tiny configuration for unit tests, doctests, and examples.
    pub fn small() -> Self {
        Self {
            cfg: SpecfemConfig {
                total_elements: 768,
                gll: 3,
                timesteps: 4,
                elem_work_bytes: 24 * 1024,
                norm_base: 64,
                source_iters: 2048,
                collect_per_rank: 64,
                master_buf_bytes: 256 * 1024,
                scaling: ScalingMode::Strong,
            },
        }
    }

    /// Elements owned by `rank` at `nranks` (strong scaling with
    /// remainder-aware distribution).
    pub fn elements_of(&self, rank: u32, nranks: u32) -> u64 {
        scaled_share(self.cfg.total_elements, rank, nranks, self.cfg.scaling).max(1)
    }

    /// Interface (boundary) points of a rank's near-cubic element patch.
    fn boundary_points(&self, elems: u64) -> u64 {
        let faces = 6.0 * (elems as f64).powf(2.0 / 3.0);
        let per_face_pts = u64::from(self.cfg.gll).pow(2);
        ((faces.ceil() as u64).max(1)) * per_face_pts
    }
}

impl SpmdApp for SpecfemProxy {
    fn name(&self) -> &str {
        "specfem3d-proxy"
    }

    fn rank_program(&self, rank: u32, nranks: u32) -> RankProgram {
        let cfg = &self.cfg;
        let elems = self.elements_of(rank, nranks);
        let pts = elems * cfg.points_per_element();
        let bpoints = self.boundary_points(elems);

        let mut b = Program::builder();
        // Wavefield arrays (3 components each, SoA, unit-stride sweeps).
        let displ = b.region("displ", pts * 3 * 8, 8);
        let accel = b.region("accel", pts * 3 * 8, 8);
        let veloc = b.region("veloc", pts * 3 * 8, 8);
        // Constant-footprint element workspace (Table III region).
        let work = b.region("elem-work", cfg.elem_work_bytes, 8);
        // Interface assembly buffer.
        let bound = b.region("bound-buf", bpoints * 8, 8);
        // Master aggregation buffer (constant footprint, master-sized work).
        let master_buf = b.region("master-buf", cfg.master_buf_bytes, 8);
        // The seismic source's local neighborhood: a point source touches a
        // fixed set of elements regardless of the decomposition, so this
        // region's footprint is constant in P.
        let source_field = b.region("source-field", 2 * 1024 * 1024, 8);

        let unit = AddressPattern::unit(8);

        let stiffness = b.block(
            BasicBlock::new(
                BlockId(0),
                "stiffness-matmul",
                SourceLoc::new("compute_forces.f90", 312, "compute_forces_elastic"),
                pts,
                vec![
                    Instruction::mem(MemOp::Load, displ, 8, unit).with_repeat(3),
                    Instruction::mem(MemOp::Load, work, 8, unit).with_repeat(2),
                    Instruction::mem(MemOp::Load, displ, 8, AddressPattern::Random),
                    Instruction::fp(FpOp::Fma).with_repeat(9),
                    Instruction::fp(FpOp::Mul).with_repeat(2),
                    Instruction::mem(MemOp::Store, accel, 8, unit).with_repeat(3),
                ],
            )
            .with_ilp(2.5),
        );

        let attenuation = b.block(
            BasicBlock::new(
                BlockId(0),
                "attenuation-update",
                SourceLoc::new("attenuation.f90", 88, "update_memory_variables"),
                pts,
                vec![
                    Instruction::mem(MemOp::Load, work, 8, unit).with_repeat(2),
                    Instruction::fp(FpOp::Fma).with_repeat(4),
                    Instruction::fp(FpOp::Mul),
                ],
            )
            .with_ilp(2.0),
        );

        let boundary = b.block(
            BasicBlock::new(
                BlockId(0),
                "boundary-gather",
                SourceLoc::new("assemble_mpi.f90", 141, "assemble_boundary"),
                bpoints,
                vec![
                    Instruction::mem(MemOp::Load, displ, 8, AddressPattern::Random),
                    Instruction::fp(FpOp::Add).with_repeat(2),
                    Instruction::mem(MemOp::Store, bound, 8, unit),
                ],
            )
            .with_ilp(1.5),
        );

        let newmark = b.block(
            BasicBlock::new(
                BlockId(0),
                "newmark-update",
                SourceLoc::new("update_displacement.f90", 54, "update_displ"),
                pts * 3,
                vec![
                    Instruction::mem(MemOp::Load, accel, 8, unit),
                    Instruction::mem(MemOp::Load, veloc, 8, unit),
                    Instruction::fp(FpOp::Fma).with_repeat(3),
                    Instruction::mem(MemOp::Store, veloc, 8, unit),
                    Instruction::mem(MemOp::Store, displ, 8, unit),
                ],
            )
            .with_ilp(3.0),
        );

        // Tree-combine work: one pass over the boundary buffer per tree
        // stage — the logarithmically growing element (Figure 5's shape).
        let log_p = u64::from(NetworkModel::tree_depth(nranks)).max(1);
        let norm = b.block(
            BasicBlock::new(
                BlockId(0),
                "reduce-norm",
                SourceLoc::new("check_stability.f90", 27, "compute_norm"),
                cfg.norm_base * log_p,
                vec![
                    Instruction::mem(MemOp::Load, bound, 8, unit),
                    Instruction::fp(FpOp::Fma),
                    Instruction::fp(FpOp::Sqrt),
                ],
            )
            .with_ilp(1.0),
        );

        // Master-rank responsibilities: rank 0 carries the seismic source
        // (constant work) and aggregates interface summaries from all P
        // tasks (work linear in P). Worker ranks execute a single token
        // trip so the SPMD event shape is preserved.
        let is_master = rank == 0;
        let source = b.block(
            BasicBlock::new(
                BlockId(0),
                "source-inject",
                SourceLoc::new("sources.f90", 64, "add_source_term"),
                if is_master { cfg.source_iters } else { 1 },
                vec![
                    Instruction::mem(MemOp::Load, work, 8, unit),
                    Instruction::mem(MemOp::Load, source_field, 8, AddressPattern::Random),
                    Instruction::fp(FpOp::Fma).with_repeat(3),
                    Instruction::mem(MemOp::Store, source_field, 8, AddressPattern::Random),
                ],
            )
            .with_ilp(1.5),
        );
        let collect = b.block(
            BasicBlock::new(
                BlockId(0),
                "master-collect",
                SourceLoc::new("assemble_mpi.f90", 233, "collect_interfaces"),
                if is_master {
                    cfg.collect_per_rank * u64::from(nranks)
                } else {
                    1
                },
                vec![
                    Instruction::mem(MemOp::Load, master_buf, 8, unit),
                    Instruction::fp(FpOp::Add).with_repeat(4),
                    Instruction::fp(FpOp::Fma).with_repeat(2),
                    Instruction::mem(MemOp::Store, master_buf, 8, unit),
                ],
            )
            .with_ilp(2.0),
        );

        let program = b.build().expect("specfem proxy program is valid");

        let face_bytes = (bpoints / 6).max(1) * 8;
        let ts = cfg.timesteps;
        RankProgram {
            program,
            events: vec![
                RankEvent::Compute {
                    block: source,
                    invocations: ts,
                },
                RankEvent::Broadcast {
                    bytes: 4096,
                    repeats: ts,
                },
                RankEvent::Compute {
                    block: stiffness,
                    invocations: ts,
                },
                RankEvent::Compute {
                    block: attenuation,
                    invocations: ts,
                },
                RankEvent::Exchange {
                    neighbors: neighbors6(rank, nranks),
                    bytes_per_neighbor: face_bytes,
                    repeats: ts,
                },
                RankEvent::Compute {
                    block: boundary,
                    invocations: ts,
                },
                RankEvent::Compute {
                    block: newmark,
                    invocations: ts,
                },
                RankEvent::Compute {
                    block: norm,
                    invocations: ts,
                },
                RankEvent::Compute {
                    block: collect,
                    invocations: ts,
                },
                RankEvent::Allreduce {
                    bytes: 8,
                    repeats: ts,
                },
            ],
        }
    }

    /// A rank's program is a function of its element share and whether it
    /// is the master, so those two facts are the whole class key. The
    /// share takes at most two values (remainder ranks get one extra
    /// element), encoded as "differs from the last rank's share" — the
    /// last rank always holds the base share.
    fn rank_class(&self, rank: u32, nranks: u32) -> Option<u64> {
        let extra = self.elements_of(rank, nranks) != self.elements_of(nranks - 1, nranks);
        Some(u64::from(extra) << 1 | u64::from(rank == 0))
    }

    fn exchange_partners(&self, rank: u32, nranks: u32) -> Vec<Vec<u32>> {
        vec![neighbors6(rank, nranks)]
    }
}

impl ProxyApp for SpecfemProxy {
    fn as_spmd(&self) -> &dyn SpmdApp {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_scaling_shrinks_per_rank_footprint() {
        let app = SpecfemProxy::paper_scale();
        // Compare the strong-scaled wavefield regions (the master buffer is
        // constant by design).
        let displ = |p: u32| {
            let prog = app.rank_program(0, p).program;
            prog.regions()
                .iter()
                .find(|r| r.name == "displ")
                .unwrap()
                .bytes
        };
        let f96 = displ(96);
        let f6144 = displ(6144);
        assert!(
            f96 > 30 * f6144,
            "displ should shrink ~64x: {f96} vs {f6144}"
        );
    }

    #[test]
    fn elem_work_region_is_scale_invariant() {
        let app = SpecfemProxy::paper_scale();
        for p in [96u32, 384, 1536, 6144] {
            let prog = app.rank_program(0, p).program;
            let work = prog
                .regions()
                .iter()
                .find(|r| r.name == "elem-work")
                .unwrap();
            assert_eq!(work.bytes, 24 * 1024);
        }
    }

    #[test]
    fn reduce_norm_grows_logarithmically() {
        let app = SpecfemProxy::paper_scale();
        let iters = |p: u32| {
            let prog = app.rank_program(0, p).program;
            prog.block_by_name("reduce-norm").unwrap().iterations
        };
        // tree_depth: 96->7, 384->9, 1536->11, 6144->13.
        assert_eq!(iters(96), 4096 * 7);
        assert_eq!(iters(384), 4096 * 9);
        assert_eq!(iters(1536), 4096 * 11);
        assert_eq!(iters(6144), 4096 * 13);
    }

    #[test]
    fn worker_work_scales_inversely_with_p() {
        let app = SpecfemProxy::paper_scale();
        // Worker ranks carry only the decomposed kernels.
        let refs = |p: u32| app.rank_program(p / 2, p).total_mem_refs();
        let r96 = refs(96);
        let r384 = refs(384);
        // Within 10% of a 4x reduction (log-P block and remainders distort
        // slightly).
        let ratio = r96 as f64 / r384 as f64;
        assert!((3.2..=4.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn master_work_dominates_at_the_target_scale() {
        // By 6144 cores the shrinking kernels must fall below the paper's
        // 0.1% influence threshold (per instruction) on the master rank.
        let app = SpecfemProxy::paper_scale();
        let prog = app.rank_program(0, 6144).program;
        let collect = prog.block_by_name("master-collect").unwrap();
        let stiffness = prog.block_by_name("stiffness-matmul").unwrap();
        let master_refs = collect.mem_refs_per_invocation() as f64;
        // Largest single stiffness instruction: 3 refs per iteration.
        let worst_worker_instr = (stiffness.iterations * 3) as f64;
        let total = prog
            .blocks()
            .iter()
            .map(|b| b.mem_refs_per_invocation() as f64)
            .sum::<f64>();
        assert!(
            master_refs / total > 0.9,
            "master share {}",
            master_refs / total
        );
        assert!(
            worst_worker_instr / total < 0.001,
            "worker instruction influence {}",
            worst_worker_instr / total
        );
    }

    #[test]
    fn rank_zero_gets_remainder_work() {
        let app = SpecfemProxy::paper_scale();
        // 884736 / 96 divides exactly; pick one that does not.
        let e0 = app.elements_of(0, 100);
        let e99 = app.elements_of(99, 100);
        assert_eq!(e0, e99 + 1);
    }

    #[test]
    fn all_seven_blocks_present_with_stable_names() {
        let prog = SpecfemProxy::small().rank_program(0, 8).program;
        for name in [
            "stiffness-matmul",
            "attenuation-update",
            "boundary-gather",
            "newmark-update",
            "reduce-norm",
            "source-inject",
            "master-collect",
        ] {
            assert!(prog.block_by_name(name).is_some(), "missing {name}");
        }
        assert_eq!(prog.blocks().len(), 7);
    }

    #[test]
    fn master_blocks_live_on_rank_zero() {
        let app = SpecfemProxy::paper_scale();
        for p in [96u32, 1536, 6144] {
            let master = app.rank_program(0, p).program;
            let worker = app.rank_program(p / 2, p).program;
            assert_eq!(
                master.block_by_name("source-inject").unwrap().iterations,
                app.cfg.source_iters
            );
            assert_eq!(worker.block_by_name("source-inject").unwrap().iterations, 1);
            assert_eq!(
                master.block_by_name("master-collect").unwrap().iterations,
                app.cfg.collect_per_rank * u64::from(p)
            );
            assert_eq!(
                worker.block_by_name("master-collect").unwrap().iterations,
                1
            );
        }
    }

    #[test]
    fn master_collect_grows_linearly_with_p() {
        let app = SpecfemProxy::paper_scale();
        let iters = |p: u32| {
            app.rank_program(0, p)
                .program
                .block_by_name("master-collect")
                .unwrap()
                .iterations
        };
        assert_eq!(iters(384), 4 * iters(96));
        assert_eq!(iters(6144), 64 * iters(96));
    }

    #[test]
    fn master_buf_footprint_is_constant() {
        let app = SpecfemProxy::paper_scale();
        for p in [96u32, 6144] {
            let prog = app.rank_program(0, p).program;
            let r = prog
                .regions()
                .iter()
                .find(|r| r.name == "master-buf")
                .unwrap();
            assert_eq!(r.bytes, app.cfg.master_buf_bytes);
        }
    }

    #[test]
    fn events_interleave_compute_and_comm() {
        let rp = SpecfemProxy::small().rank_program(0, 8);
        assert_eq!(rp.events.len(), 10);
        assert!(rp.events.iter().any(|e| e.is_comm()));
        // Exchange partners are valid.
        if let RankEvent::Exchange { neighbors, .. } = &rp.events[4] {
            assert!(!neighbors.is_empty());
            assert!(neighbors.iter().all(|&n| n < 8));
        } else {
            panic!("event 4 should be the halo exchange");
        }
    }

    #[test]
    fn weak_scaling_keeps_per_rank_work_constant() {
        let app = SpecfemProxy::paper_scale_weak();
        // The decomposed kernels are exactly constant per rank; only the
        // log-P reduction block grows (as it must even under weak scaling).
        let stiffness_iters = |p: u32| {
            app.rank_program(p / 2, p)
                .program
                .block_by_name("stiffness-matmul")
                .unwrap()
                .iterations
        };
        assert_eq!(stiffness_iters(96), stiffness_iters(384));
        assert_eq!(stiffness_iters(96), stiffness_iters(6144));
        let displ = |p: u32| {
            app.rank_program(1, p)
                .program
                .regions()
                .iter()
                .find(|r| r.name == "displ")
                .unwrap()
                .bytes
        };
        assert_eq!(displ(96), displ(6144), "weak footprints are constant");
    }

    #[test]
    fn rank_zero_is_always_the_longest_task() {
        use crate::ProxyApp;
        let app = SpecfemProxy::small();
        for p in [2u32, 8, 24] {
            assert_eq!(app.comm_profile(p).longest_rank, 0, "p={p}");
        }
    }

    #[test]
    fn single_rank_program_is_valid() {
        let rp = SpecfemProxy::small().rank_program(0, 1);
        assert!(rp.total_mem_refs() > 0);
        assert!(rp.total_flops() > 0);
    }

    #[test]
    fn rank_classes_match_materialized_grouping() {
        use xtrace_spmd::RankClasses;
        let app = SpecfemProxy::small();
        // 768 elements over 100 ranks leaves a remainder, so remainder
        // workers, plain workers, and the master are all present.
        for p in [1u32, 7, 100] {
            let fast = RankClasses::try_from_app(&app, p).unwrap();
            let programs: Vec<_> = (0..p).map(|r| app.rank_program(r, p)).collect();
            let slow = RankClasses::try_from_programs(&programs).unwrap();
            assert_eq!(fast.assignment(), slow.assignment(), "p={p}");
            assert!(fast.num_classes() <= 3, "p={p}: {}", fast.num_classes());
        }
    }
}
