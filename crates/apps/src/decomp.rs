//! Domain decomposition helpers shared by the proxies.
//!
//! All three proxy apps decompose a fixed global problem across `P` ranks:
//! a near-cubic 3-D process grid for neighbor topology, and a
//! remainder-aware split of global counts so the first `total mod P` ranks
//! own one extra unit. The uneven split is deliberate — it creates the load
//! imbalance that gives "the MPI task that consumed the most computational
//! time" (Section IV) a well-defined identity.

use serde::{Deserialize, Serialize};

/// How a proxy's global problem maps onto ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScalingMode {
    /// Fixed global problem: per-rank share shrinks as `1/P` (the paper's
    /// evaluation mode: "Each application was scaled using strong scaling").
    #[default]
    Strong,
    /// Fixed per-rank problem: the config's global counts are interpreted
    /// *per rank*, so footprints and trip counts are constant in P while
    /// the global problem grows (the Section-VI future-work mode).
    Weak,
}

/// Per-rank share of `total` units under the given scaling mode (under weak
/// scaling, `total` is already the per-rank amount).
#[inline]
pub fn scaled_share(total: u64, rank: u32, nranks: u32, mode: ScalingMode) -> u64 {
    match mode {
        ScalingMode::Strong => share_of(total, rank, nranks),
        ScalingMode::Weak => {
            assert!(rank < nranks, "rank {rank} out of range for {nranks}");
            total
        }
    }
}

/// Ceiling division for positive counts.
#[inline]
pub fn ceil_div(total: u64, parts: u64) -> u64 {
    assert!(parts > 0, "cannot split across zero parts");
    total.div_ceil(parts)
}

/// The number of units rank `rank` of `nranks` owns when `total` units are
/// block-distributed with remainders going to the lowest ranks.
#[inline]
pub fn share_of(total: u64, rank: u32, nranks: u32) -> u64 {
    assert!(nranks > 0);
    assert!(rank < nranks, "rank {rank} out of range for {nranks}");
    let p = u64::from(nranks);
    let base = total / p;
    let rem = total % p;
    base + u64::from(u64::from(rank) < rem)
}

/// Factors `p` into a near-cubic 3-D grid `(px, py, pz)` with
/// `px·py·pz == p` and `px ≥ py ≥ pz`.
pub fn factor3(p: u32) -> (u32, u32, u32) {
    assert!(p > 0);
    let mut best = (p, 1, 1);
    let mut best_score = u64::MAX;
    let mut z = 1u32;
    while z * z * z <= p {
        if p.is_multiple_of(z) {
            let rest = p / z;
            let mut y = z;
            while y * y <= rest {
                if rest.is_multiple_of(y) {
                    let x = rest / y;
                    // Lower surface-to-volume = more cubic.
                    let score = u64::from(x) * u64::from(y)
                        + u64::from(y) * u64::from(z)
                        + u64::from(x) * u64::from(z);
                    if score < best_score {
                        best_score = score;
                        best = (x, y, z);
                    }
                }
                y += 1;
            }
        }
        z += 1;
    }
    best
}

/// The six face neighbors (±x, ±y, ±z, periodic) of `rank` in the
/// [`factor3`] grid of `nranks`, deduplicated and excluding self (so small
/// grids with wraparound self-edges still produce valid neighbor lists).
pub fn neighbors6(rank: u32, nranks: u32) -> Vec<u32> {
    assert!(rank < nranks);
    let (px, py, pz) = factor3(nranks);
    let x = rank % px;
    let y = (rank / px) % py;
    let z = rank / (px * py);
    let idx = |x: u32, y: u32, z: u32| z * px * py + y * px + x;
    let mut out = Vec::with_capacity(6);
    let candidates = [
        idx((x + 1) % px, y, z),
        idx((x + px - 1) % px, y, z),
        idx(x, (y + 1) % py, z),
        idx(x, (y + py - 1) % py, z),
        idx(x, y, (z + 1) % pz),
        idx(x, y, (z + pz - 1) % pz),
    ];
    for c in candidates {
        if c != rank && !out.contains(&c) {
            out.push(c);
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_div_rounds_up() {
        assert_eq!(ceil_div(10, 3), 4);
        assert_eq!(ceil_div(9, 3), 3);
        assert_eq!(ceil_div(0, 3), 0);
        assert_eq!(ceil_div(1, 100), 1);
    }

    #[test]
    fn shares_sum_to_total() {
        for total in [0u64, 1, 7, 100, 12345] {
            for p in [1u32, 2, 3, 8, 96] {
                let sum: u64 = (0..p).map(|r| share_of(total, r, p)).sum();
                assert_eq!(sum, total, "total {total} over {p}");
            }
        }
    }

    #[test]
    fn shares_differ_by_at_most_one_and_front_load() {
        let shares: Vec<u64> = (0..5).map(|r| share_of(17, r, 5)).collect();
        assert_eq!(shares, vec![4, 4, 3, 3, 3]);
    }

    #[test]
    fn factor3_is_exact_and_ordered() {
        for p in [1u32, 2, 6, 8, 96, 384, 1024, 1536, 4096, 6144, 8192] {
            let (x, y, z) = factor3(p);
            assert_eq!(x * y * z, p, "p={p}");
            assert!(x >= y && y >= z);
        }
    }

    #[test]
    fn factor3_prefers_cubic_shapes() {
        assert_eq!(factor3(8), (2, 2, 2));
        assert_eq!(factor3(64), (4, 4, 4));
        assert_eq!(factor3(96), (6, 4, 4));
        assert_eq!(factor3(6144), (24, 16, 16));
        assert_eq!(factor3(8192), (32, 16, 16));
    }

    #[test]
    fn neighbors_are_valid_and_symmetric() {
        for p in [2u32, 6, 8, 24, 96] {
            for r in 0..p {
                let ns = neighbors6(r, p);
                assert!(!ns.is_empty(), "rank {r}/{p} has neighbors");
                assert!(ns.len() <= 6);
                for &n in &ns {
                    assert!(n < p);
                    assert_ne!(n, r);
                    assert!(
                        neighbors6(n, p).contains(&r),
                        "asymmetric edge {r}<->{n} at p={p}"
                    );
                }
            }
        }
    }

    #[test]
    fn interior_rank_of_large_grid_has_six_neighbors() {
        // 4x4x4 grid, interior-ish rank.
        let ns = neighbors6(21, 64);
        assert_eq!(ns.len(), 6);
    }

    #[test]
    fn two_rank_grid_has_single_neighbor() {
        assert_eq!(neighbors6(0, 2), vec![1]);
        assert_eq!(neighbors6(1, 2), vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn share_of_rejects_bad_rank() {
        share_of(10, 5, 5);
    }

    #[test]
    fn weak_share_is_constant_in_p() {
        for p in [1u32, 2, 96, 6144] {
            assert_eq!(scaled_share(1000, 0, p, ScalingMode::Weak), 1000);
            assert_eq!(scaled_share(1000, p - 1, p, ScalingMode::Weak), 1000);
        }
    }

    #[test]
    fn strong_share_matches_share_of() {
        assert_eq!(
            scaled_share(17, 2, 5, ScalingMode::Strong),
            share_of(17, 2, 5)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn weak_share_rejects_bad_rank() {
        scaled_share(10, 5, 5, ScalingMode::Weak);
    }
}
