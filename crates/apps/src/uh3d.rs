//! UH3D proxy: hybrid particle-in-cell magnetosphere simulation.
//!
//! UH3D "treats the ions as particles and the electrons as a fluid"; the
//! proxy mirrors that hybrid structure:
//!
//! 1. **`particle-push`** — ion advance: strided particle reads/writes,
//!    random E/B field gathers, and a random gather into the per-rank slice
//!    of a plasma-moment table. Under strong scaling the gathered regions
//!    shrink like `1/P`, so the gathers' cache hit rates *rise roughly
//!    linearly with the core count* — the behaviour the paper's Figure 4
//!    fits with the linear canonical form.
//! 2. **`current-deposit`** — scatter of particle currents onto the grid.
//! 3. **`field-stencil`** — the electron-fluid / electromagnetic field
//!    update: a multi-plane stencil sweep over the field arrays mixed with
//!    an irregular boundary lookup. This is the Table II block: its
//!    footprint drops through L3 and L2 as the core count grows.
//! 4. **`particle-sort`** — bucket exchange whose trip count grows with
//!    ⌈log₂ P⌉ (tree-staged binning); its memory-operation count follows
//!    the logarithmic form, the paper's Figure 5.
//! 5. **`diag-energy`** — field-energy diagnostic sweep.
//! 6. **`master-viz`** — the master rank's aggregation of per-task moment
//!    summaries for visualization output (the UH3D reference describes
//!    exactly this pipeline: "visualization strategies for analysis of very
//!    large multi-variate data sets"). Its trip count grows *linearly with
//!    P* — aggregating from every task — over a constant-footprint staging
//!    buffer, making rank 0 the most computationally demanding task at
//!    every core count with element behaviour squarely inside the span of
//!    the four canonical forms (see the `specfem` module docs for why the
//!    longest task must look like this for the methodology to work).
//!
//! Communication per step: particle migration and field halo exchanges with
//! the six face neighbors, plus a diagnostics allreduce.

use serde::{Deserialize, Serialize};
use xtrace_ir::{
    AddressPattern, BasicBlock, BlockId, FpOp, Instruction, MemOp, Program, SourceLoc,
};
use xtrace_spmd::{NetworkModel, RankEvent, RankProgram, SpmdApp};

use crate::decomp::{neighbors6, scaled_share, ScalingMode};
use crate::ProxyApp;

/// Global problem description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uh3dConfig {
    /// Total ion macro-particles.
    pub total_particles: u64,
    /// Total field grid cells.
    pub grid_cells: u64,
    /// Total bytes of the plasma-moment lookup table (domain-decomposed
    /// like the grid).
    pub moment_table_bytes: u64,
    /// Timesteps simulated.
    pub timesteps: u64,
    /// Base trip count of the `particle-sort` block (scaled by ⌈log₂ P⌉).
    pub sort_base: u64,
    /// Per-task trips of the master's `master-viz` block (total trips =
    /// `viz_per_rank × P`).
    pub viz_per_rank: u64,
    /// Master visualization staging buffer bytes (constant in P).
    pub viz_buf_bytes: u64,
    /// Strong (fixed global problem) or weak (fixed per-rank problem)
    /// scaling.
    pub scaling: ScalingMode,
}

/// The proxy application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uh3dProxy {
    /// Problem description.
    pub cfg: Uh3dConfig,
}

/// Bytes per macro-particle (position, velocity, weight, species).
const PARTICLE_BYTES: u64 = 64;
/// Bytes per grid cell across the six E/B field components.
const FIELD_CELL_BYTES: u64 = 48;
/// Bytes per grid cell of the current-density array (three components).
const CURRENT_CELL_BYTES: u64 = 24;

impl Uh3dProxy {
    /// Full-scale configuration (traced at 1024/2048/4096, evaluated at
    /// 8192 — the paper's Table I row).
    pub fn paper_scale() -> Self {
        Self {
            cfg: Uh3dConfig {
                total_particles: 1 << 31,    // ~2.1e9 ions
                grid_cells: 1 << 29,         // ~5.4e8 cells -> 24 GiB of fields
                moment_table_bytes: 4 << 30, // 4 GiB moment table
                timesteps: 212,
                sort_base: 1 << 21,
                viz_per_rank: 1 << 17,
                viz_buf_bytes: 64 * 1024 * 1024,
                scaling: ScalingMode::Strong,
            },
        }
    }

    /// Tiny configuration for tests and examples.
    pub fn small() -> Self {
        Self {
            cfg: Uh3dConfig {
                total_particles: 4096,
                grid_cells: 2048,
                moment_table_bytes: 256 * 1024,
                timesteps: 4,
                sort_base: 32,
                viz_per_rank: 16,
                viz_buf_bytes: 128 * 1024,
                scaling: ScalingMode::Strong,
            },
        }
    }

    /// Particles owned by a rank.
    pub fn particles_of(&self, rank: u32, nranks: u32) -> u64 {
        scaled_share(self.cfg.total_particles, rank, nranks, self.cfg.scaling).max(1)
    }

    /// Grid cells owned by a rank.
    pub fn cells_of(&self, rank: u32, nranks: u32) -> u64 {
        scaled_share(self.cfg.grid_cells, rank, nranks, self.cfg.scaling).max(1)
    }
}

impl SpmdApp for Uh3dProxy {
    fn name(&self) -> &str {
        "uh3d-proxy"
    }

    fn rank_program(&self, rank: u32, nranks: u32) -> RankProgram {
        let cfg = &self.cfg;
        let parts = self.particles_of(rank, nranks);
        let cells = self.cells_of(rank, nranks);
        let moment_bytes = match cfg.scaling {
            ScalingMode::Strong => (cfg.moment_table_bytes / u64::from(nranks)).max(4096),
            ScalingMode::Weak => cfg.moment_table_bytes.max(4096),
        };
        // Subgrid edge length (cells are a near-cube).
        let nx = (cells as f64).cbrt().ceil() as u64;

        let mut b = Program::builder();
        let particles = b.region("particles", parts * PARTICLE_BYTES, 8);
        let field = b.region("field", cells * FIELD_CELL_BYTES, 8);
        let current = b.region("current", cells * CURRENT_CELL_BYTES, 8);
        let moments = b.region("moments", moment_bytes, 8);
        let viz_buf = b.region("viz-buf", cfg.viz_buf_bytes, 8);
        // Radix staging buckets for the particle sort: sized by the bin
        // count, not the particle population — constant in P.
        let sort_buckets = b.region("sort-buckets", 32 * 1024 * 1024, 8);

        let unit = AddressPattern::unit(8);
        let particle_stride = AddressPattern::Strided {
            stride: PARTICLE_BYTES,
        };

        let push = b.block(
            BasicBlock::new(
                BlockId(0),
                "particle-push",
                SourceLoc::new("push.f90", 205, "push_ions"),
                parts,
                vec![
                    Instruction::mem(MemOp::Load, particles, 8, particle_stride).with_repeat(2),
                    Instruction::mem(MemOp::Load, field, 8, AddressPattern::Random).with_repeat(2),
                    Instruction::mem(MemOp::Load, moments, 8, AddressPattern::Random),
                    Instruction::fp(FpOp::Fma).with_repeat(12),
                    Instruction::fp(FpOp::Div),
                    Instruction::mem(MemOp::Store, particles, 8, particle_stride).with_repeat(2),
                ],
            )
            .with_ilp(2.0),
        );

        let deposit = b.block(
            BasicBlock::new(
                BlockId(0),
                "current-deposit",
                SourceLoc::new("deposit.f90", 77, "deposit_current"),
                parts,
                vec![
                    Instruction::mem(MemOp::Load, particles, 8, particle_stride),
                    Instruction::mem(MemOp::Store, current, 8, AddressPattern::Random)
                        .with_repeat(3),
                    Instruction::fp(FpOp::Add).with_repeat(3),
                    Instruction::fp(FpOp::Mul).with_repeat(2),
                ],
            )
            .with_ilp(1.5),
        );

        let stencil = b.block(
            BasicBlock::new(
                BlockId(0),
                "field-stencil",
                SourceLoc::new("field.f90", 410, "advance_fields"),
                cells,
                vec![
                    Instruction::mem(
                        MemOp::Load,
                        field,
                        8,
                        AddressPattern::Stencil {
                            points: 6,
                            plane: nx * 8,
                        },
                    )
                    .with_repeat(6),
                    Instruction::mem(MemOp::Load, field, 8, AddressPattern::Random),
                    Instruction::mem(MemOp::Load, current, 8, unit),
                    Instruction::fp(FpOp::Fma).with_repeat(6),
                    Instruction::fp(FpOp::Mul).with_repeat(2),
                    Instruction::mem(MemOp::Store, field, 8, unit),
                ],
            )
            .with_ilp(2.5),
        );

        // Tree-staged bucket binning: one particle sweep per tree stage.
        let log_p = u64::from(NetworkModel::tree_depth(nranks)).max(1);
        let sort = b.block(
            BasicBlock::new(
                BlockId(0),
                "particle-sort",
                SourceLoc::new("sort.f90", 33, "bin_particles"),
                cfg.sort_base * log_p,
                vec![
                    Instruction::mem(MemOp::Load, sort_buckets, 8, unit),
                    Instruction::mem(MemOp::Store, sort_buckets, 8, unit),
                    Instruction::fp(FpOp::Add),
                ],
            )
            .with_ilp(1.0),
        );

        let diag = b.block(
            BasicBlock::new(
                BlockId(0),
                "diag-energy",
                SourceLoc::new("diagnostics.f90", 19, "field_energy"),
                cells,
                vec![
                    Instruction::mem(MemOp::Load, field, 8, unit).with_repeat(2),
                    Instruction::fp(FpOp::Fma).with_repeat(2),
                ],
            )
            .with_ilp(3.0),
        );

        // Master-rank visualization aggregation: work linear in P over a
        // constant staging buffer. Workers run a single token trip.
        let viz = b.block(
            BasicBlock::new(
                BlockId(0),
                "master-viz",
                SourceLoc::new("viz.f90", 152, "aggregate_moments"),
                if rank == 0 {
                    cfg.viz_per_rank * u64::from(nranks)
                } else {
                    1
                },
                vec![
                    Instruction::mem(MemOp::Load, viz_buf, 8, unit),
                    Instruction::fp(FpOp::Fma).with_repeat(4),
                    Instruction::mem(MemOp::Store, viz_buf, 8, unit),
                ],
            )
            .with_ilp(2.0),
        );

        let program = b.build().expect("uh3d proxy program is valid");

        let neighbors = neighbors6(rank, nranks);
        // Particle migration: surface particles leave each step.
        let migration_bytes = ((parts as f64).powf(2.0 / 3.0).ceil() as u64) * PARTICLE_BYTES;
        // Field halo: one face of the subgrid.
        let halo_bytes = nx * nx * FIELD_CELL_BYTES;
        let ts = cfg.timesteps;
        RankProgram {
            program,
            events: vec![
                RankEvent::Compute {
                    block: push,
                    invocations: ts,
                },
                RankEvent::Compute {
                    block: deposit,
                    invocations: ts,
                },
                RankEvent::Exchange {
                    neighbors: neighbors.clone(),
                    bytes_per_neighbor: migration_bytes,
                    repeats: ts,
                },
                RankEvent::Compute {
                    block: stencil,
                    invocations: ts,
                },
                RankEvent::Exchange {
                    neighbors,
                    bytes_per_neighbor: halo_bytes,
                    repeats: ts,
                },
                RankEvent::Compute {
                    block: sort,
                    invocations: ts,
                },
                RankEvent::Compute {
                    block: diag,
                    invocations: ts,
                },
                RankEvent::Compute {
                    block: viz,
                    invocations: ts,
                },
                RankEvent::Allreduce {
                    bytes: 64,
                    repeats: ts,
                },
            ],
        }
    }

    /// Programs are a function of the particle share, the cell share, and
    /// mastership; each share takes at most two values (remainder ranks
    /// carry one extra unit), encoded as "differs from the last rank".
    fn rank_class(&self, rank: u32, nranks: u32) -> Option<u64> {
        let last = nranks - 1;
        let pe = self.particles_of(rank, nranks) != self.particles_of(last, nranks);
        let ce = self.cells_of(rank, nranks) != self.cells_of(last, nranks);
        Some(u64::from(pe) << 2 | u64::from(ce) << 1 | u64::from(rank == 0))
    }

    fn exchange_partners(&self, rank: u32, nranks: u32) -> Vec<Vec<u32>> {
        let n = neighbors6(rank, nranks);
        vec![n.clone(), n]
    }
}

impl ProxyApp for Uh3dProxy {
    fn as_spmd(&self) -> &dyn SpmdApp {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_footprint_halves_per_doubling() {
        let app = Uh3dProxy::paper_scale();
        let field_bytes = |p: u32| {
            let prog = app.rank_program(0, p).program;
            prog.regions()
                .iter()
                .find(|r| r.name == "field")
                .unwrap()
                .bytes
        };
        let f1024 = field_bytes(1024);
        let f2048 = field_bytes(2048);
        let f8192 = field_bytes(8192);
        assert!((f1024 as f64 / f2048 as f64 - 2.0).abs() < 0.01);
        assert!((f1024 as f64 / f8192 as f64 - 8.0).abs() < 0.01);
        // Table II setup: at 8192 the field slice sits near the L3 capacity
        // of the target machines (a few MB).
        assert!(f8192 > 1 << 21 && f8192 < 1 << 23, "f8192 = {f8192}");
    }

    #[test]
    fn sort_block_grows_logarithmically() {
        let app = Uh3dProxy::paper_scale();
        let iters = |p: u32| {
            app.rank_program(0, p)
                .program
                .block_by_name("particle-sort")
                .unwrap()
                .iterations
        };
        let base = 1u64 << 21;
        assert_eq!(iters(1024), base * 10);
        assert_eq!(iters(2048), base * 11);
        assert_eq!(iters(4096), base * 12);
        assert_eq!(iters(8192), base * 13);
    }

    #[test]
    fn sort_memops_match_figure5_magnitude() {
        // Figure 5 plots ~2e9..1.6e10 memory operations for the log-model
        // instruction; the proxy's totals must land in that decade.
        let app = Uh3dProxy::paper_scale();
        let prog = app.rank_program(0, 8192);
        let blk = prog.program.block_by_name("particle-sort").unwrap();
        let total = blk.mem_refs_per_invocation() * app.cfg.timesteps;
        assert!(
            (1e9..1e11).contains(&(total as f64)),
            "total sort memops {total:e}"
        );
    }

    #[test]
    fn moment_table_slice_shrinks_linearly() {
        let app = Uh3dProxy::paper_scale();
        let bytes = |p: u32| {
            app.rank_program(0, p)
                .program
                .regions()
                .iter()
                .find(|r| r.name == "moments")
                .unwrap()
                .bytes
        };
        assert_eq!(bytes(1024), 4 * 1024 * 1024);
        assert_eq!(bytes(8192), 512 * 1024);
    }

    #[test]
    fn six_blocks_with_stable_names() {
        let prog = Uh3dProxy::small().rank_program(0, 4).program;
        for name in [
            "particle-push",
            "current-deposit",
            "field-stencil",
            "particle-sort",
            "diag-energy",
            "master-viz",
        ] {
            assert!(prog.block_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn master_viz_is_linear_in_p_and_rank_zero_only() {
        let app = Uh3dProxy::paper_scale();
        let iters = |rank: u32, p: u32| {
            app.rank_program(rank, p)
                .program
                .block_by_name("master-viz")
                .unwrap()
                .iterations
        };
        assert_eq!(iters(0, 2048), 2 * iters(0, 1024));
        assert_eq!(iters(0, 8192), 8 * iters(0, 1024));
        assert_eq!(iters(7, 8192), 1, "workers run a token trip");
    }

    #[test]
    fn rank_zero_is_always_the_longest_task() {
        use crate::ProxyApp;
        let app = Uh3dProxy::small();
        for p in [2u32, 8, 24] {
            assert_eq!(app.comm_profile(p).longest_rank, 0, "p={p}");
        }
    }

    #[test]
    fn shrinking_kernels_fall_below_influence_threshold_at_target() {
        let app = Uh3dProxy::paper_scale();
        let prog = app.rank_program(0, 8192).program;
        let total: f64 = prog
            .blocks()
            .iter()
            .map(|b| b.mem_refs_per_invocation() as f64)
            .sum();
        for name in [
            "particle-push",
            "current-deposit",
            "field-stencil",
            "diag-energy",
        ] {
            let blk = prog.block_by_name(name).unwrap();
            for ins in &blk.instrs {
                if ins.is_mem() {
                    let refs = (blk.iterations * u64::from(ins.repeat)) as f64;
                    assert!(
                        refs / total < 0.001,
                        "{name} instruction influence {} >= 0.1%",
                        refs / total
                    );
                }
            }
        }
        // The log-growing sort block stays influential (Figure 5's subject).
        let sort = prog.block_by_name("particle-sort").unwrap();
        let sort_refs = sort.mem_refs_per_invocation() as f64;
        assert!(
            sort_refs / total > 0.001,
            "sort influence {}",
            sort_refs / total
        );
    }

    #[test]
    fn events_include_two_exchanges_and_allreduce() {
        let rp = Uh3dProxy::small().rank_program(0, 8);
        let n_exchange = rp
            .events
            .iter()
            .filter(|e| matches!(e, RankEvent::Exchange { .. }))
            .count();
        assert_eq!(n_exchange, 2, "migration + halo");
        assert!(rp
            .events
            .iter()
            .any(|e| matches!(e, RankEvent::Allreduce { .. })));
    }

    #[test]
    fn small_config_is_cheap_to_trace() {
        let rp = Uh3dProxy::small().rank_program(0, 2);
        assert!(rp.total_mem_refs() < 1_000_000);
    }

    #[test]
    fn rank_classes_match_materialized_grouping() {
        use xtrace_spmd::RankClasses;
        let app = Uh3dProxy::small();
        // 4096 particles / 2048 cells over 96 ranks: both shares carry
        // remainders, at different rank boundaries.
        for p in [1u32, 96] {
            let fast = RankClasses::try_from_app(&app, p).unwrap();
            let programs: Vec<_> = (0..p).map(|r| app.rank_program(r, p)).collect();
            let slow = RankClasses::try_from_programs(&programs).unwrap();
            assert_eq!(fast.assignment(), slow.assignment(), "p={p}");
            assert!(fast.num_classes() <= 5, "p={p}: {}", fast.num_classes());
        }
    }
}
