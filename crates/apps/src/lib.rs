//! # xtrace-apps — strong-scaling proxy applications
//!
//! The paper evaluates on two production codes: SPECFEM3D_GLOBE ("a
//! spectral-element application enabling the simulation of global seismic
//! wave propagation") and UH3D ("a global code to model the Earth's
//! magnetosphere … that treats the ions as particles and the electrons as a
//! fluid"). Neither code — nor the Cray XT5 they ran on — is available
//! here, so this crate provides *proxy applications*: IR-level programs
//! with the same kernel structure, data-movement patterns, and
//! strong-scaling behaviour.
//!
//! * [`SpecfemProxy`] — spectral-element wave propagation: per-element
//!   dense operator application (FMA-heavy, mixed strided/indirect access),
//!   a constant-footprint element workspace (the paper's Table III block),
//!   boundary gather/scatter, a Newmark time-integration sweep, a
//!   reduction block whose work grows with ⌈log₂ P⌉, six-neighbor halo
//!   exchange, and a per-step allreduce.
//! * [`Uh3dProxy`] — hybrid particle-in-cell: particle push with random
//!   field gathers, current deposition scatter, an electromagnetic field
//!   stencil sweep (the Table II block whose footprint drops through the
//!   cache levels as P grows), a ⌈log₂ P⌉ particle-sort block, particle
//!   migration, and diagnostics reductions.
//! * [`StencilProxy`] — a minimal 3-D Jacobi relaxation, used by examples
//!   and tests where a two-block app suffices.
//!
//! All three implement [`xtrace_spmd::SpmdApp`] and the convenience trait
//! [`ProxyApp`]. By default every application **strong-scales**: global
//! problem sizes are fixed in the config, and per-rank region sizes / trip
//! counts are derived from `(rank, nranks)`, so the per-core working set
//! and work shrink as the core count rises — "the effect of this … is
//! that, as the core count increases, the work and data footprint per core
//! begins to decrease for most computational phases" (Section V). Setting
//! [`ScalingMode::Weak`] instead fixes the per-rank problem (the
//! Section-VI future-work mode).

#![warn(missing_docs)]

pub mod decomp;
pub mod specfem;
pub mod stencil;
pub mod uh3d;

pub use decomp::{ceil_div, factor3, neighbors6, scaled_share, share_of, ScalingMode};
pub use specfem::{SpecfemConfig, SpecfemProxy};
pub use stencil::{StencilConfig, StencilProxy};
pub use uh3d::{Uh3dConfig, Uh3dProxy};

use xtrace_obs::ObsContext;
use xtrace_spmd::{CommProfile, MpiProfiler, NetworkModel, SpmdApp};

/// Convenience layer over [`SpmdApp`] shared by the proxies.
pub trait ProxyApp: SpmdApp {
    /// Network model used when profiling communication (the base system's
    /// interconnect; Kraken-like defaults).
    fn profiling_net(&self) -> NetworkModel {
        NetworkModel::new(6.0e-6, 1.6e9)
    }

    /// Upcast helper (object-safe access to the underlying [`SpmdApp`]).
    fn as_spmd(&self) -> &dyn SpmdApp;

    /// Runs the lightweight MPI profiling pass (PSiNSTracer analog) at
    /// `nranks`: identifies the most computationally demanding task and
    /// summarizes its communication events. Telemetry lands on the ambient
    /// observability context; use [`ProxyApp::comm_profile_obs`] from
    /// session-scoped code.
    fn comm_profile(&self, nranks: u32) -> CommProfile {
        self.comm_profile_obs(nranks, &ObsContext::ambient())
    }

    /// [`ProxyApp::comm_profile`] recording the profiling simulation into
    /// an explicit observability context.
    fn comm_profile_obs(&self, nranks: u32, obs: &ObsContext) -> CommProfile {
        MpiProfiler::default().profile_obs(self.as_spmd(), nranks, &self.profiling_net(), obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_spmd::SpmdApp;

    fn shape_of(app: &dyn SpmdApp, nranks: u32) -> Vec<u8> {
        app.rank_program(0, nranks)
            .events
            .iter()
            .map(|e| e.kind_tag())
            .collect()
    }

    /// Every proxy must be SPMD-aligned at representative core counts.
    #[test]
    fn all_apps_are_spmd_aligned() {
        let apps: Vec<Box<dyn SpmdApp>> = vec![
            Box::new(SpecfemProxy::small()),
            Box::new(Uh3dProxy::small()),
            Box::new(StencilProxy::small()),
        ];
        for app in &apps {
            for p in [1u32, 2, 8, 24] {
                let shape = shape_of(app.as_ref(), p);
                for r in 0..p {
                    let prog = app.rank_program(r, p);
                    let s: Vec<u8> = prog.events.iter().map(|e| e.kind_tag()).collect();
                    assert_eq!(s, shape, "{} rank {r}/{p}", app.name());
                }
            }
        }
    }

    #[test]
    fn rank_programs_are_deterministic() {
        let app = SpecfemProxy::small();
        assert_eq!(app.rank_program(3, 8), app.rank_program(3, 8));
    }

    #[test]
    fn comm_profiles_identify_a_longest_task() {
        let app = Uh3dProxy::small();
        let prof = app.comm_profile(8);
        assert_eq!(prof.nranks, 8);
        assert!(prof.longest_rank < 8);
        assert!(!prof.events.is_empty());
    }
}
