//! A minimal 3-D Jacobi relaxation proxy.
//!
//! Two blocks (a stencil sweep and a residual reduction), one halo
//! exchange, one allreduce. Used by examples, tests, and benches that need
//! a strong-scaling SPMD app without the full SPECFEM/UH3D structure.

use serde::{Deserialize, Serialize};
use xtrace_ir::{
    AddressPattern, BasicBlock, BlockId, FpOp, Instruction, MemOp, Program, SourceLoc,
};
use xtrace_spmd::{RankEvent, RankProgram, SpmdApp};

use crate::decomp::{neighbors6, scaled_share, ScalingMode};
use crate::ProxyApp;

/// Global problem description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StencilConfig {
    /// Total grid cells.
    pub grid_cells: u64,
    /// Sweeps (timesteps).
    pub timesteps: u64,
    /// Strong (fixed global grid) or weak (fixed per-rank grid) scaling.
    pub scaling: ScalingMode,
}

/// The proxy application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StencilProxy {
    /// Problem description.
    pub cfg: StencilConfig,
}

impl StencilProxy {
    /// A mid-sized configuration (64 MiB of state).
    pub fn medium() -> Self {
        Self {
            cfg: StencilConfig {
                grid_cells: 8 * 1024 * 1024,
                timesteps: 10,
                scaling: ScalingMode::Strong,
            },
        }
    }

    /// Tiny configuration for tests.
    pub fn small() -> Self {
        Self {
            cfg: StencilConfig {
                grid_cells: 4096,
                timesteps: 3,
                scaling: ScalingMode::Strong,
            },
        }
    }
}

impl SpmdApp for StencilProxy {
    fn name(&self) -> &str {
        "stencil3d-proxy"
    }

    fn rank_program(&self, rank: u32, nranks: u32) -> RankProgram {
        let cells = scaled_share(self.cfg.grid_cells, rank, nranks, self.cfg.scaling).max(1);
        let nx = (cells as f64).cbrt().ceil() as u64;

        let mut b = Program::builder();
        let grid = b.region("grid", cells * 8, 8);
        let next = b.region("next", cells * 8, 8);

        let sweep = b.block(
            BasicBlock::new(
                BlockId(0),
                "jacobi-sweep",
                SourceLoc::new("jacobi.c", 41, "sweep"),
                cells,
                vec![
                    Instruction::mem(
                        MemOp::Load,
                        grid,
                        8,
                        AddressPattern::Stencil {
                            points: 7,
                            plane: nx * 8,
                        },
                    )
                    .with_repeat(7),
                    Instruction::fp(FpOp::Add).with_repeat(6),
                    Instruction::fp(FpOp::Mul),
                    Instruction::mem(MemOp::Store, next, 8, AddressPattern::unit(8)),
                ],
            )
            .with_ilp(3.0),
        );

        let residual = b.block(
            BasicBlock::new(
                BlockId(0),
                "residual",
                SourceLoc::new("jacobi.c", 77, "residual"),
                cells,
                vec![
                    Instruction::mem(MemOp::Load, grid, 8, AddressPattern::unit(8)),
                    Instruction::mem(MemOp::Load, next, 8, AddressPattern::unit(8)),
                    Instruction::fp(FpOp::Fma),
                ],
            )
            .with_ilp(2.0),
        );

        let program = b.build().expect("stencil proxy program is valid");
        let ts = self.cfg.timesteps;
        RankProgram {
            program,
            events: vec![
                RankEvent::Compute {
                    block: sweep,
                    invocations: ts,
                },
                RankEvent::Exchange {
                    neighbors: neighbors6(rank, nranks),
                    bytes_per_neighbor: nx * nx * 8,
                    repeats: ts,
                },
                RankEvent::Compute {
                    block: residual,
                    invocations: ts,
                },
                RankEvent::Allreduce {
                    bytes: 8,
                    repeats: ts,
                },
            ],
        }
    }

    /// Programs depend only on the rank's cell share, which takes at most
    /// two values (remainder ranks get one extra cell).
    fn rank_class(&self, rank: u32, nranks: u32) -> Option<u64> {
        let cells = scaled_share(self.cfg.grid_cells, rank, nranks, self.cfg.scaling).max(1);
        let last = scaled_share(self.cfg.grid_cells, nranks - 1, nranks, self.cfg.scaling).max(1);
        Some(u64::from(cells != last))
    }

    fn exchange_partners(&self, rank: u32, nranks: u32) -> Vec<Vec<u32>> {
        vec![neighbors6(rank, nranks)]
    }
}

impl ProxyApp for StencilProxy {
    fn as_spmd(&self) -> &dyn SpmdApp {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_rank_cells_shrink_with_p() {
        let app = StencilProxy::medium();
        let c2 = app.rank_program(0, 2).program.footprint_bytes();
        let c16 = app.rank_program(0, 16).program.footprint_bytes();
        assert!((c2 as f64 / c16 as f64 - 8.0).abs() < 0.1);
    }

    #[test]
    fn program_has_two_blocks() {
        let prog = StencilProxy::small().rank_program(0, 4).program;
        assert!(prog.block_by_name("jacobi-sweep").is_some());
        assert!(prog.block_by_name("residual").is_some());
    }

    #[test]
    fn total_work_is_independent_of_p_up_to_remainders() {
        let app = StencilProxy::medium();
        let total = |p: u32| -> u64 {
            (0..p)
                .map(|r| app.rank_program(r, p).total_mem_refs())
                .sum()
        };
        let t4 = total(4);
        let t8 = total(8);
        let rel = (t4 as f64 - t8 as f64).abs() / t4 as f64;
        assert!(rel < 0.01, "strong scaling conserves total work: {rel}");
    }

    #[test]
    fn rank_classes_match_materialized_grouping() {
        use xtrace_spmd::RankClasses;
        let app = StencilProxy::small();
        // 4096 cells over 80 ranks leaves a remainder.
        for p in [1u32, 80] {
            let fast = RankClasses::try_from_app(&app, p).unwrap();
            let programs: Vec<_> = (0..p).map(|r| app.rank_program(r, p)).collect();
            let slow = RankClasses::try_from_programs(&programs).unwrap();
            assert_eq!(fast.assignment(), slow.assignment(), "p={p}");
            assert!(fast.num_classes() <= 2, "p={p}");
        }
    }
}
