//! Property tests for the proxy applications: SPMD alignment,
//! determinism, and scaling invariants must hold for arbitrary (bounded)
//! configurations, not just the shipped presets.

use proptest::prelude::*;
use xtrace_apps::{ScalingMode, SpecfemConfig, SpecfemProxy, StencilConfig, StencilProxy};
use xtrace_spmd::SpmdApp;

fn arb_specfem() -> impl Strategy<Value = SpecfemProxy> {
    (
        64u64..100_000,
        2u32..6,
        1u64..50,
        1u64..4096,
        1u64..100_000,
        1u64..4096,
        prop_oneof![Just(ScalingMode::Strong), Just(ScalingMode::Weak)],
    )
        .prop_map(
            |(
                total_elements,
                gll,
                timesteps,
                norm_base,
                source_iters,
                collect_per_rank,
                scaling,
            )| {
                SpecfemProxy {
                    cfg: SpecfemConfig {
                        total_elements,
                        gll,
                        timesteps,
                        elem_work_bytes: 24 * 1024,
                        norm_base,
                        source_iters,
                        collect_per_rank,
                        master_buf_bytes: 1 << 20,
                        scaling,
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every rank of every configuration produces the same event shape.
    #[test]
    fn specfem_is_spmd_aligned_for_any_config(
        app in arb_specfem(),
        nranks in 1u32..32,
    ) {
        let shape: Vec<u8> = app
            .rank_program(0, nranks)
            .events
            .iter()
            .map(|e| e.kind_tag())
            .collect();
        for r in 1..nranks {
            let s: Vec<u8> = app
                .rank_program(r, nranks)
                .events
                .iter()
                .map(|e| e.kind_tag())
                .collect();
            prop_assert_eq!(&s, &shape, "rank {} misaligned", r);
        }
    }

    /// Rank programs are pure functions of (config, rank, nranks).
    #[test]
    fn specfem_programs_are_deterministic(
        app in arb_specfem(),
        rank in 0u32..16,
        nranks in 16u32..64,
    ) {
        prop_assert_eq!(app.rank_program(rank, nranks), app.rank_program(rank, nranks));
    }

    /// Programs always validate (no dangling regions, no duplicate names)
    /// and carry positive work.
    #[test]
    fn specfem_programs_are_valid_and_nonempty(
        app in arb_specfem(),
        nranks in 1u32..64,
        rank_frac in 0.0f64..1.0,
    ) {
        let rank = ((f64::from(nranks) - 1.0) * rank_frac) as u32;
        let rp = app.rank_program(rank, nranks);
        prop_assert!(rp.total_mem_refs() > 0);
        prop_assert!(rp.total_flops() > 0);
        prop_assert!(!rp.program.blocks().is_empty());
        // Exchange neighbors are valid ranks.
        for e in &rp.events {
            if let xtrace_spmd::RankEvent::Exchange { neighbors, .. } = e {
                for &n in neighbors {
                    prop_assert!(n < nranks);
                    prop_assert!(n != rank);
                }
            }
        }
    }

    /// Strong scaling conserves total stencil work across core counts (up
    /// to remainder rounding), weak scaling multiplies it by P.
    #[test]
    fn stencil_scaling_laws_hold(
        cells_exp in 12u32..20,
        timesteps in 1u64..8,
        p in 2u32..32,
    ) {
        let cells = 1u64 << cells_exp;
        let strong = StencilProxy {
            cfg: StencilConfig {
                grid_cells: cells,
                timesteps,
                scaling: ScalingMode::Strong,
            },
        };
        let weak = StencilProxy {
            cfg: StencilConfig {
                grid_cells: cells,
                timesteps,
                scaling: ScalingMode::Weak,
            },
        };
        let total_strong: u64 = (0..p).map(|r| strong.rank_program(r, p).total_mem_refs()).sum();
        let single = strong.rank_program(0, 1).total_mem_refs();
        let rel = (total_strong as f64 - single as f64).abs() / single as f64;
        prop_assert!(rel < 0.02, "strong scaling conserves work: {rel}");

        let weak_rank = weak.rank_program(0, p).total_mem_refs();
        let weak_single = weak.rank_program(0, 1).total_mem_refs();
        prop_assert_eq!(weak_rank, weak_single, "weak per-rank work constant");
    }
}
