//! Property tests for the extrapolation core: fits must recover their own
//! generating forms, selection must stay sane, and trace synthesis must
//! preserve the physical invariants of feature vectors.

use proptest::prelude::*;
use xtrace_extrap::{
    extrapolate_signature, fit_form, select_best, select_best_guarded, CanonicalForm,
    ExtrapolationConfig, SelectionCriterion,
};
use xtrace_ir::SourceLoc;
use xtrace_tracer::{BlockRecord, FeatureVector, InstrRecord, TaskTrace};

const XS: [f64; 3] = [1024.0, 2048.0, 4096.0];

proptest! {
    /// Fitting data generated from a form recovers that form's predictions
    /// (not necessarily its parameters — exp/power are fitted in log space)
    /// to within numerical tolerance at the training points.
    #[test]
    fn fits_reproduce_their_generating_form(
        a in 0.1f64..1e6,
        b_lin in -0.1f64..0.1,
        b_log in -10.0f64..10.0,
        b_exp in -1e-4f64..1e-4,
    ) {
        let cases = vec![
            (CanonicalForm::Constant, [a, 0.0, 0.0]),
            (CanonicalForm::Linear, [a, b_lin, 0.0]),
            (CanonicalForm::Logarithmic, [a, b_log, 0.0]),
            (CanonicalForm::Exponential, [a, b_exp, 0.0]),
        ];
        for (form, params) in cases {
            let ys: Vec<f64> = XS.iter().map(|&x| form.eval(&params, x)).collect();
            if ys.iter().any(|y| !y.is_finite() || (form == CanonicalForm::Exponential && *y <= 0.0)) {
                continue;
            }
            let fit = fit_form(form, &XS, &ys);
            prop_assume!(fit.is_some());
            let fit = fit.unwrap();
            for (&x, &y) in XS.iter().zip(&ys) {
                let scale = y.abs().max(1.0);
                prop_assert!(
                    (fit.eval(x) - y).abs() / scale < 1e-6,
                    "{form:?} at {x}: {} vs {y}",
                    fit.eval(x)
                );
            }
        }
    }

    /// On data generated from one of the paper's forms, the selected model
    /// must predict the true value at 8192 cores accurately (whichever form
    /// wins ties).
    #[test]
    fn selection_extrapolates_form_generated_data_exactly(
        a in 0.5f64..1e4,
        b in 0.0f64..0.5,
        which in 0usize..3,
    ) {
        let form = [
            CanonicalForm::Constant,
            CanonicalForm::Linear,
            CanonicalForm::Logarithmic,
        ][which];
        let params = [a, b * 1e-3, 0.0];
        let ys: Vec<f64> = XS.iter().map(|&x| form.eval(&params, x)).collect();
        let best = select_best(&CanonicalForm::PAPER_SET, &XS, &ys, SelectionCriterion::Sse);
        let truth = form.eval(&params, 8192.0);
        let scale = truth.abs().max(1.0);
        prop_assert!(
            (best.eval(8192.0) - truth).abs() / scale < 1e-5,
            "{form:?}: predicted {} vs truth {truth}",
            best.eval(8192.0)
        );
    }

    /// The guard's contract: for non-negative series the returned model
    /// never predicts a negative value at the target.
    #[test]
    fn guarded_selection_is_nonnegative_at_target(
        ys in proptest::collection::vec(0.0f64..1e9, 3),
        target in 4097u32..100_000,
    ) {
        let m = select_best_guarded(
            &CanonicalForm::PAPER_SET,
            &XS,
            &ys,
            SelectionCriterion::Sse,
            f64::from(target),
        );
        prop_assert!(m.eval(f64::from(target)) >= 0.0);
    }

    /// Extrapolating a family of *identical* traces (every feature constant
    /// in P) returns the same trace at the target count.
    #[test]
    fn constant_traces_extrapolate_to_themselves(
        mem_ops in 1.0f64..1e12,
        hr0 in 0.0f64..1.0,
        hr1_delta in 0.0f64..0.5,
        ws in 1.0f64..1e9,
    ) {
        let hr1 = (hr0 + hr1_delta).min(1.0);
        let make = |p: u32| {
            let mut f = FeatureVector {
                exec_count: mem_ops,
                mem_ops,
                loads: mem_ops,
                bytes_per_ref: 8.0,
                working_set: ws,
                ilp: 2.0,
                ..Default::default()
            };
            f.hit_rates = [hr0, hr1, 1.0, 1.0];
            TaskTrace {
                app: "prop".into(),
                rank: 0,
                nranks: p,
                machine: "m".into(),
                depth: 2,
                blocks: vec![BlockRecord {
                    name: "k".into(),
                    source: SourceLoc::new("p.c", 1, "f"),
                    invocations: 7,
                    iterations: 11,
                    instrs: vec![InstrRecord {
                        instr: 0,
                        pattern: "strided".into(),
                        features: f,
                    }],
                }],
            }
        };
        let traces = vec![make(1024), make(2048), make(4096)];
        let out = extrapolate_signature(&traces, 8192, &ExtrapolationConfig::default()).unwrap();
        let f = &out.blocks[0].instrs[0].features;
        prop_assert!((f.mem_ops - mem_ops).abs() / mem_ops < 1e-9);
        prop_assert!((f.hit_rates[0] - hr0).abs() < 1e-9);
        prop_assert!((f.hit_rates[1] - hr1).abs() < 1e-9);
        prop_assert!((f.working_set - ws).abs() / ws < 1e-9);
        prop_assert_eq!(out.blocks[0].invocations, 7);
        prop_assert_eq!(out.blocks[0].iterations, 11);
    }

    /// Synthesized feature vectors always satisfy the physical invariants,
    /// whatever (monotone-rate) training data they were fitted to.
    #[test]
    fn synthesized_vectors_are_physical(
        series in proptest::collection::vec(
            (0.0f64..1e10, 0.0f64..1.0, 0.0f64..1.0),
            3,
        ),
        target in 4097u32..50_000,
    ) {
        let make = |p: u32, (count, r0, r1): (f64, f64, f64)| {
            let mut f = FeatureVector {
                exec_count: count,
                mem_ops: count,
                loads: count,
                bytes_per_ref: 8.0,
                working_set: 1e6,
                ilp: 1.0,
                ..Default::default()
            };
            // Cumulative rates must be monotone in the training data.
            let lo = r0.min(r1);
            let hi = r0.max(r1);
            f.hit_rates = [lo, hi, 1.0, 1.0];
            TaskTrace {
                app: "prop".into(),
                rank: 0,
                nranks: p,
                machine: "m".into(),
                depth: 2,
                blocks: vec![BlockRecord {
                    name: "k".into(),
                    source: SourceLoc::new("p.c", 1, "f"),
                    invocations: 1,
                    iterations: 1,
                    instrs: vec![InstrRecord {
                        instr: 0,
                        pattern: "random".into(),
                        features: f,
                    }],
                }],
            }
        };
        let traces: Vec<TaskTrace> = [1024u32, 2048, 4096]
            .iter()
            .zip(series)
            .map(|(&p, s)| make(p, s))
            .collect();
        let out = extrapolate_signature(&traces, target, &ExtrapolationConfig::default()).unwrap();
        let f = &out.blocks[0].instrs[0].features;
        prop_assert!(f.mem_ops >= 0.0);
        prop_assert!(f.exec_count >= 0.0);
        prop_assert!(f.working_set >= 0.0);
        prop_assert!(f.ilp >= 1.0);
        let mut prev = 0.0;
        for &h in &f.hit_rates {
            prop_assert!((0.0..=1.0).contains(&h), "rate {h} out of range");
            prop_assert!(h + 1e-12 >= prev, "rates must stay cumulative");
            prev = h;
        }
    }

    /// Fit SSE is never negative and never worse than the constant model's
    /// when the candidate set includes the constant form.
    #[test]
    fn best_fit_never_loses_to_the_mean(
        ys in proptest::collection::vec(-1e6f64..1e6, 3),
    ) {
        let best = select_best(&CanonicalForm::PAPER_SET, &XS, &ys, SelectionCriterion::Sse);
        let mean = ys.iter().sum::<f64>() / 3.0;
        let const_sse: f64 = ys.iter().map(|y| (y - mean) * (y - mean)).sum();
        prop_assert!(best.sse >= 0.0);
        prop_assert!(best.sse <= const_sse + 1e-9 * const_sse.abs().max(1.0));
    }

    /// The (block, instruction) fitting fan-out must be invisible:
    /// extrapolation returns bit-identical traces at one thread, at N
    /// threads, and across repeated runs on the same inputs.
    #[test]
    fn extrapolation_is_thread_count_invariant_and_repeatable(
        blocks in proptest::collection::vec(
            proptest::collection::vec((1.0f64..1e10, 0.0f64..1.0, 0.0f64..1.0), 1..5),
            1..5,
        ),
        threads in 2usize..6,
        target in 4097u32..50_000,
    ) {
        // Per-count growth factors so the series exercise non-constant
        // forms; rates are made cumulative per vector.
        let make = |p: u32, factor: f64| {
            TaskTrace {
                app: "prop".into(),
                rank: 0,
                nranks: p,
                machine: "m".into(),
                depth: 2,
                blocks: blocks
                    .iter()
                    .enumerate()
                    .map(|(bi, instrs)| BlockRecord {
                        name: format!("b{bi}"),
                        source: SourceLoc::new("p.c", bi as u32, "f"),
                        invocations: 3 + bi as u64,
                        iterations: 5,
                        instrs: instrs
                            .iter()
                            .enumerate()
                            .map(|(ii, &(count, r0, r1))| {
                                let mut f = FeatureVector {
                                    exec_count: count * factor,
                                    mem_ops: count * factor,
                                    loads: count * factor,
                                    bytes_per_ref: 8.0,
                                    working_set: 1e6 * factor,
                                    ilp: 1.5,
                                    ..Default::default()
                                };
                                f.hit_rates = [r0.min(r1), r0.max(r1), 1.0, 1.0];
                                InstrRecord {
                                    instr: ii as u32,
                                    pattern: "strided".into(),
                                    features: f,
                                }
                            })
                            .collect(),
                    })
                    .collect(),
            }
        };
        let traces = vec![
            make(1024, 1.0),
            make(2048, 1.4),
            make(4096, 2.1),
        ];
        let cfg = ExtrapolationConfig::default();
        let run = |n: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("pool");
            pool.install(|| extrapolate_signature(&traces, target, &cfg).expect("valid ladder"))
        };
        let one_thread = run(1);
        let many_threads = run(threads);
        let again = run(threads);
        prop_assert_eq!(&one_thread, &many_threads);
        prop_assert_eq!(&one_thread, &again);
    }
}
