//! Fit-quality reporting: how well did the canonical forms describe the
//! training data?
//!
//! The paper reasons about its fits qualitatively ("for most of the
//! extrapolated elements this method of model fitting showed good
//! accuracy"); this module quantifies that statement for any extrapolation
//! run: per-form usage counts, R² distributions, and influence-weighted
//! coverage, all derived from the [`ElementFit`] records the detailed API
//! returns.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::extrapolate::ElementFit;
use crate::forms::CanonicalForm;

/// Aggregate quality statistics for one extrapolation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// Elements fitted.
    pub n_elements: usize,
    /// Elements belonging to influential instructions (at `threshold`).
    pub n_influential: usize,
    /// Chosen-form histogram over all elements, keyed by form label.
    pub form_counts: BTreeMap<String, usize>,
    /// Chosen-form histogram over influential elements only.
    pub influential_form_counts: BTreeMap<String, usize>,
    /// Fraction of elements whose training series was fitted exactly
    /// (residual at numerical noise).
    pub frac_exact: f64,
    /// Mean R² over elements with nonzero variance.
    pub mean_r2: f64,
    /// Worst (lowest) R² over influential elements with nonzero variance.
    pub worst_influential_r2: f64,
    /// Influence threshold used.
    pub threshold: f64,
}

impl FitReport {
    /// Builds the report from the fits of
    /// [`crate::extrapolate_signature_detailed`] (or the series variant).
    pub fn from_fits(fits: &[ElementFit], threshold: f64) -> Self {
        let mut form_counts = BTreeMap::new();
        let mut influential_form_counts = BTreeMap::new();
        let mut exact = 0usize;
        let mut r2_sum = 0.0;
        let mut r2_n = 0usize;
        let mut worst_influential_r2 = 1.0f64;
        let mut n_influential = 0usize;

        for f in fits {
            *form_counts
                .entry(f.model.form.label().to_string())
                .or_insert(0) += 1;
            let influential = f.influence >= threshold;
            if influential {
                n_influential += 1;
                *influential_form_counts
                    .entry(f.model.form.label().to_string())
                    .or_insert(0) += 1;
            }

            let mean = f.values.iter().sum::<f64>() / f.values.len().max(1) as f64;
            let ss_tot: f64 = f.values.iter().map(|v| (v - mean) * (v - mean)).sum();
            let scale: f64 = f.values.iter().map(|v| v * v).sum::<f64>().max(1e-300);
            if f.model.sse <= 1e-18 * scale {
                exact += 1;
            }
            if ss_tot > 1e-18 * scale {
                let r2 = f.model.r2(ss_tot).clamp(0.0, 1.0);
                r2_sum += r2;
                r2_n += 1;
                if influential {
                    worst_influential_r2 = worst_influential_r2.min(r2);
                }
            }
        }

        Self {
            n_elements: fits.len(),
            n_influential,
            form_counts,
            influential_form_counts,
            frac_exact: if fits.is_empty() {
                0.0
            } else {
                exact as f64 / fits.len() as f64
            },
            mean_r2: if r2_n > 0 { r2_sum / r2_n as f64 } else { 1.0 },
            worst_influential_r2,
            threshold,
        }
    }

    /// Usage count of one form over all elements.
    pub fn count_of(&self, form: CanonicalForm) -> usize {
        self.form_counts.get(form.label()).copied().unwrap_or(0)
    }

    /// Renders a compact multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fit report: {} elements ({} influential at {:.2}%)\n",
            self.n_elements,
            self.n_influential,
            100.0 * self.threshold
        ));
        out.push_str("  chosen forms (all / influential):\n");
        for (label, n) in &self.form_counts {
            let ni = self.influential_form_counts.get(label).unwrap_or(&0);
            out.push_str(&format!("    {label:<10} {n:>6} / {ni}\n"));
        }
        out.push_str(&format!(
            "  exact fits: {:.1}%   mean R^2: {:.4}   worst influential R^2: {:.4}",
            100.0 * self.frac_exact,
            self.mean_r2,
            self.worst_influential_r2
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extrapolate::{extrapolate_signature_detailed, ExtrapolationConfig};
    use xtrace_ir::SourceLoc;
    use xtrace_tracer::{BlockRecord, FeatureVector, InstrRecord, TaskTrace};

    fn trace_at(p: u32) -> TaskTrace {
        let pf = f64::from(p);
        let mut f = FeatureVector {
            exec_count: 100.0 + 3.0 * pf.ln(),
            mem_ops: 1e3 * pf,
            loads: 1e3 * pf,
            bytes_per_ref: 8.0,
            working_set: 1e6,
            ilp: 2.0,
            ..Default::default()
        };
        f.hit_rates = [0.3, 0.35 + 5e-5 * pf, 1.0, 1.0];
        TaskTrace {
            app: "t".into(),
            rank: 0,
            nranks: p,
            machine: "m".into(),
            depth: 2,
            blocks: vec![BlockRecord {
                name: "k".into(),
                source: SourceLoc::new("a.c", 1, "f"),
                invocations: 10,
                iterations: 10,
                instrs: vec![InstrRecord {
                    instr: 0,
                    pattern: "strided".into(),
                    features: f,
                }],
            }],
        }
    }

    fn report() -> FitReport {
        let traces = vec![trace_at(1024), trace_at(2048), trace_at(4096)];
        let (_t, fits) =
            extrapolate_signature_detailed(&traces, 8192, &ExtrapolationConfig::default()).unwrap();
        FitReport::from_fits(&fits, 0.001)
    }

    #[test]
    fn counts_cover_every_element() {
        let r = report();
        let total: usize = r.form_counts.values().sum();
        assert_eq!(total, r.n_elements);
        assert!(r.n_elements > 0);
    }

    #[test]
    fn exact_synthetic_data_yields_exact_fits_and_high_r2() {
        let r = report();
        // Every element is generated from a canonical form.
        assert!(r.frac_exact > 0.95, "frac_exact {}", r.frac_exact);
        assert!(r.mean_r2 > 0.99, "mean R^2 {}", r.mean_r2);
        assert!(r.worst_influential_r2 > 0.99);
    }

    #[test]
    fn form_histogram_reflects_the_generating_laws() {
        let r = report();
        // Linear (mem ops, loads, L2 rate), logarithmic (exec), constant
        // (everything else).
        assert!(r.count_of(CanonicalForm::Linear) >= 3);
        assert!(r.count_of(CanonicalForm::Logarithmic) >= 1);
        assert!(r.count_of(CanonicalForm::Constant) >= 5);
    }

    #[test]
    fn render_is_readable() {
        let s = report().render();
        assert!(s.contains("fit report"));
        assert!(s.contains("Linear"));
        assert!(s.contains("R^2"));
    }

    #[test]
    fn empty_fits_are_benign() {
        let r = FitReport::from_fits(&[], 0.001);
        assert_eq!(r.n_elements, 0);
        assert_eq!(r.frac_exact, 0.0);
        assert_eq!(r.mean_r2, 1.0);
    }
}
