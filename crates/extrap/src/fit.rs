//! Least-squares fitting and model selection.
//!
//! Each form reduces to (possibly transformed) linear least squares:
//! constant = mean; linear over `x`; logarithmic over `ln x`; exponential
//! and power via log-transforming `y` (valid only for positive series).
//! The quadratic extension solves its 3×3 normal equations directly.
//! Residuals (SSE) are always recomputed in the *original* space so
//! transformed fits compete fairly, and selection picks the smallest
//! residual with ties broken toward the simpler form — "the best of those
//! fits is used" (Section IV).

use crate::forms::{CanonicalForm, FittedModel};

/// How the best form is chosen among the candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionCriterion {
    /// Smallest sum of squared residuals (the paper's criterion).
    #[default]
    Sse,
    /// Smallest corrected AIC — penalizes parameters; needs ≥ `k+2` points
    /// to admit a `k`-parameter form (ablation option).
    Aicc,
}

/// Ordinary least squares of `y` on a single transformed regressor
/// `t(x)`; returns `(intercept, slope)`.
fn ols(ts: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    let n = ts.len() as f64;
    let st: f64 = ts.iter().sum();
    let sy: f64 = ys.iter().sum();
    let stt: f64 = ts.iter().map(|t| t * t).sum();
    let sty: f64 = ts.iter().zip(ys).map(|(t, y)| t * y).sum();
    let det = n * stt - st * st;
    if det.abs() < 1e-12 * (n * stt).abs().max(1.0) {
        return None; // regressor is (numerically) constant
    }
    let slope = (n * sty - st * sy) / det;
    let intercept = (sy - slope * st) / n;
    Some((intercept, slope))
}

/// Solves the 3×3 normal equations for `y = a + b·x + c·x²` by Gaussian
/// elimination with partial pivoting.
fn quad_fit(xs: &[f64], ys: &[f64]) -> Option<[f64; 3]> {
    let n = xs.len() as f64;
    let s1: f64 = xs.iter().sum();
    let s2: f64 = xs.iter().map(|x| x * x).sum();
    let s3: f64 = xs.iter().map(|x| x * x * x).sum();
    let s4: f64 = xs.iter().map(|x| x * x * x * x).sum();
    let sy: f64 = ys.iter().sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let sx2y: f64 = xs.iter().zip(ys).map(|(x, y)| x * x * y).sum();
    let mut m = [[n, s1, s2, sy], [s1, s2, s3, sxy], [s2, s3, s4, sx2y]];
    for col in 0..3 {
        let pivot = (col..3).max_by(|&a, &b| {
            m[a][col]
                .abs()
                .partial_cmp(&m[b][col].abs())
                .expect("finite")
        })?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        for row in 0..3 {
            if row != col {
                let f = m[row][col] / m[col][col];
                let pivot_row = m[col];
                for (cell, pv) in m[row].iter_mut().zip(pivot_row).skip(col) {
                    *cell -= f * pv;
                }
            }
        }
    }
    Some([m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]])
}

/// Computes SSE of a parameterized form against the data in original space.
fn sse_of(form: CanonicalForm, params: &[f64; 3], xs: &[f64], ys: &[f64]) -> f64 {
    xs.iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let e = form.eval(params, x) - y;
            e * e
        })
        .sum()
}

/// Fits one canonical form to the series.
///
/// Returns `None` when the form is not applicable: fewer than `n_params`
/// points, non-positive values for the log-transformed forms, or a
/// degenerate regressor. The constant form is always applicable for a
/// non-empty series.
pub fn fit_form(form: CanonicalForm, xs: &[f64], ys: &[f64]) -> Option<FittedModel> {
    assert_eq!(xs.len(), ys.len(), "mismatched series lengths");
    let n = xs.len();
    if n < form.n_params() || n == 0 {
        return None;
    }
    if !xs.iter().chain(ys.iter()).all(|v| v.is_finite()) {
        return None;
    }
    let params: [f64; 3] = match form {
        CanonicalForm::Constant => {
            let a = ys.iter().sum::<f64>() / n as f64;
            [a, 0.0, 0.0]
        }
        CanonicalForm::Linear => {
            let (a, b) = ols(xs, ys)?;
            [a, b, 0.0]
        }
        CanonicalForm::Logarithmic => {
            if xs.iter().any(|&x| x <= 0.0) {
                return None;
            }
            let ts: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
            let (a, b) = ols(&ts, ys)?;
            [a, b, 0.0]
        }
        CanonicalForm::Exponential => {
            if ys.iter().any(|&y| y <= 0.0) {
                return None;
            }
            let lys: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
            let (la, b) = ols(xs, &lys)?;
            [la.exp(), b, 0.0]
        }
        CanonicalForm::Power => {
            if xs.iter().any(|&x| x <= 0.0) || ys.iter().any(|&y| y <= 0.0) {
                return None;
            }
            let ts: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
            let lys: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
            let (la, b) = ols(&ts, &lys)?;
            [la.exp(), b, 0.0]
        }
        CanonicalForm::Quadratic => quad_fit(xs, ys)?,
    };
    if !params.iter().all(|p| p.is_finite()) {
        return None;
    }
    let sse = sse_of(form, &params, xs, ys);
    if !sse.is_finite() {
        return None;
    }
    Some(FittedModel {
        form,
        params,
        sse,
        n,
    })
}

/// Fits every applicable form from `forms`.
pub fn fit_all(forms: &[CanonicalForm], xs: &[f64], ys: &[f64]) -> Vec<FittedModel> {
    forms.iter().filter_map(|&f| fit_form(f, xs, ys)).collect()
}

/// Fits all candidate forms and returns the best per `criterion`, breaking
/// ties toward the simpler form.
///
/// Falls back to the constant form (the mean) when no candidate applies —
/// a series always has *some* model, so extrapolation never aborts on one
/// pathological element.
///
/// ```
/// use xtrace_extrap::{select_best, CanonicalForm, SelectionCriterion};
///
/// // An L2 hit rate rising linearly with the core count (the paper's
/// // Figure 4 situation).
/// let cores = [1024.0, 2048.0, 4096.0];
/// let hit_rates = [0.15, 0.20, 0.30];
/// let best = select_best(
///     &CanonicalForm::PAPER_SET,
///     &cores,
///     &hit_rates,
///     SelectionCriterion::Sse,
/// );
/// assert_eq!(best.form, CanonicalForm::Linear);
/// let at_8192 = best.eval(8192.0);
/// assert!(at_8192 > 0.30, "extrapolates beyond the training range");
/// ```
pub fn select_best(
    forms: &[CanonicalForm],
    xs: &[f64],
    ys: &[f64],
    criterion: SelectionCriterion,
) -> FittedModel {
    let mut fits = fit_all(forms, xs, ys);
    sort_fits(&mut fits, ys, criterion);
    fits.into_iter()
        .next()
        .unwrap_or_else(|| constant_fallback(xs, ys))
}

/// Orders fits best-first under `criterion`. Residuals that are exact to
/// numerical noise (relative to the data's magnitude) count as ties, broken
/// toward the simpler form — three points fitted exactly by both a
/// 2-parameter and a 3-parameter form must prefer the former.
fn sort_fits(fits: &mut [FittedModel], ys: &[f64], criterion: SelectionCriterion) {
    let data_scale: f64 = ys.iter().map(|y| y * y).sum::<f64>().max(1e-300);
    let floor = 1e-18 * data_scale;
    fits.sort_by(|a, b| {
        let key = |m: &FittedModel| match criterion {
            SelectionCriterion::Sse => m.sse,
            SelectionCriterion::Aicc => m.aicc(),
        };
        let ka = key(a).max(if criterion == SelectionCriterion::Sse {
            0.0
        } else {
            f64::MIN
        });
        let kb = key(b).max(if criterion == SelectionCriterion::Sse {
            0.0
        } else {
            f64::MIN
        });
        let tied = match criterion {
            SelectionCriterion::Sse => ka < floor && kb < floor,
            SelectionCriterion::Aicc => (ka - kb).abs() < 1e-9 * ka.abs().max(kb.abs()).max(1e-30),
        } || {
            let scale = ka.abs().max(kb.abs()).max(1e-30);
            ((ka - kb) / scale).abs() < 1e-9
        };
        if tied {
            a.form.complexity().cmp(&b.form.complexity())
        } else {
            ka.partial_cmp(&kb).expect("finite keys after filtering")
        }
    });
}

fn constant_fallback(xs: &[f64], ys: &[f64]) -> FittedModel {
    let a = if ys.is_empty() {
        0.0
    } else {
        ys.iter().sum::<f64>() / ys.len() as f64
    };
    FittedModel {
        form: CanonicalForm::Constant,
        params: [a, 0.0, 0.0],
        sse: sse_of(CanonicalForm::Constant, &[a, 0.0, 0.0], xs, ys),
        n: xs.len(),
    }
}

/// [`select_best`] with an extrapolation sanity guard: when every training
/// value is non-negative (a count, a rate, a size), candidate models whose
/// prediction at `target_x` is negative are discarded before selection.
///
/// The paper does not specify this detail, but without it a logarithmic or
/// linear fit to a decaying series routinely wins on residual and then
/// extrapolates below zero — a physically meaningless count. The guard
/// keeps the best *sane* model; if none is sane the constant fallback is
/// used.
pub fn select_best_guarded(
    forms: &[CanonicalForm],
    xs: &[f64],
    ys: &[f64],
    criterion: SelectionCriterion,
    target_x: f64,
) -> FittedModel {
    let nonneg = ys.iter().all(|&y| y >= 0.0);
    if !nonneg {
        return select_best(forms, xs, ys, criterion);
    }
    let mut fits: Vec<FittedModel> = fit_all(forms, xs, ys)
        .into_iter()
        .filter(|m| m.eval(target_x) >= 0.0)
        .collect();
    sort_fits(&mut fits, ys, criterion);
    fits.into_iter()
        .next()
        .unwrap_or_else(|| constant_fallback(xs, ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: &[f64] = &[1024.0, 2048.0, 4096.0];

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * b.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn constant_fit_recovers_mean() {
        let m = fit_form(CanonicalForm::Constant, P, &[5.0, 7.0, 6.0]).unwrap();
        assert_close(m.params[0], 6.0, 1e-12);
        assert_close(m.sse, 2.0, 1e-12);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let ys: Vec<f64> = P.iter().map(|x| 3.0 + 0.25 * x).collect();
        let m = fit_form(CanonicalForm::Linear, P, &ys).unwrap();
        assert_close(m.params[0], 3.0, 1e-9);
        assert_close(m.params[1], 0.25, 1e-9);
        assert!(m.sse < 1e-12);
        assert_close(m.eval(8192.0), 3.0 + 0.25 * 8192.0, 1e-9);
    }

    #[test]
    fn log_fit_recovers_exact_log() {
        let ys: Vec<f64> = P.iter().map(|x: &f64| 10.0 + 2.0 * x.ln()).collect();
        let m = fit_form(CanonicalForm::Logarithmic, P, &ys).unwrap();
        assert_close(m.params[0], 10.0, 1e-9);
        assert_close(m.params[1], 2.0, 1e-9);
        assert!(m.sse < 1e-12);
    }

    #[test]
    fn exp_fit_recovers_exact_exponential() {
        let ys: Vec<f64> = P.iter().map(|x| 2.0 * (0.0005 * x).exp()).collect();
        let m = fit_form(CanonicalForm::Exponential, P, &ys).unwrap();
        assert_close(m.params[0], 2.0, 1e-6);
        assert_close(m.params[1], 0.0005, 1e-6);
        assert!(m.sse < 1e-9 * ys[2] * ys[2]);
    }

    #[test]
    fn power_fit_recovers_exact_power_law() {
        let ys: Vec<f64> = P.iter().map(|x: &f64| 7.0 * x.powf(-1.0)).collect();
        let m = fit_form(CanonicalForm::Power, P, &ys).unwrap();
        assert_close(m.params[0], 7.0, 1e-9);
        assert_close(m.params[1], -1.0, 1e-9);
    }

    #[test]
    fn quadratic_fit_recovers_exact_parabola() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 - 2.0 * x + 0.5 * x * x).collect();
        let m = fit_form(CanonicalForm::Quadratic, &xs, &ys).unwrap();
        assert_close(m.params[0], 1.0, 1e-9);
        assert_close(m.params[1], -2.0, 1e-9);
        assert_close(m.params[2], 0.5, 1e-9);
    }

    #[test]
    fn exp_fit_rejects_nonpositive_values() {
        assert!(fit_form(CanonicalForm::Exponential, P, &[1.0, 0.0, 2.0]).is_none());
        assert!(fit_form(CanonicalForm::Exponential, P, &[1.0, -1.0, 2.0]).is_none());
        assert!(fit_form(CanonicalForm::Power, P, &[1.0, 0.0, 2.0]).is_none());
    }

    #[test]
    fn log_fit_rejects_nonpositive_x() {
        assert!(fit_form(
            CanonicalForm::Logarithmic,
            &[0.0, 1.0, 2.0],
            &[1.0, 2.0, 3.0]
        )
        .is_none());
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(fit_form(CanonicalForm::Linear, &[1.0], &[1.0]).is_none());
        assert!(fit_form(CanonicalForm::Quadratic, &[1.0, 2.0], &[1.0, 2.0]).is_none());
        assert!(fit_form(CanonicalForm::Constant, &[1.0], &[5.0]).is_some());
    }

    #[test]
    fn degenerate_x_rejected_for_sloped_forms() {
        let xs = [4.0, 4.0, 4.0];
        assert!(fit_form(CanonicalForm::Linear, &xs, &[1.0, 2.0, 3.0]).is_none());
        assert!(fit_form(CanonicalForm::Constant, &xs, &[1.0, 2.0, 3.0]).is_some());
    }

    #[test]
    fn non_finite_data_rejected() {
        assert!(fit_form(CanonicalForm::Linear, P, &[1.0, f64::NAN, 2.0]).is_none());
        assert!(fit_form(
            CanonicalForm::Linear,
            &[1.0, f64::INFINITY, 3.0],
            &[1.0, 2.0, 3.0]
        )
        .is_none());
    }

    #[test]
    fn selection_picks_the_generating_form() {
        // Linear data: linear must beat log and exp on SSE.
        let ys: Vec<f64> = P.iter().map(|x| 0.1 + 3e-5 * x).collect();
        let best = select_best(&CanonicalForm::PAPER_SET, P, &ys, SelectionCriterion::Sse);
        assert_eq!(best.form, CanonicalForm::Linear);

        let ys: Vec<f64> = P.iter().map(|x: &f64| 5.0 + 1.7 * x.ln()).collect();
        let best = select_best(&CanonicalForm::PAPER_SET, P, &ys, SelectionCriterion::Sse);
        assert_eq!(best.form, CanonicalForm::Logarithmic);
    }

    #[test]
    fn constant_data_prefers_constant_form() {
        // Every 2-param form also fits y = c exactly; the tie must break to
        // the simplest.
        let best = select_best(
            &CanonicalForm::PAPER_SET,
            P,
            &[0.875, 0.875, 0.875],
            SelectionCriterion::Sse,
        );
        assert_eq!(best.form, CanonicalForm::Constant);
        assert_close(best.eval(8192.0), 0.875, 1e-12);
    }

    #[test]
    fn aicc_with_three_points_admits_only_constant() {
        let ys: Vec<f64> = P.iter().map(|x| 0.1 + 3e-5 * x).collect();
        let best = select_best(&CanonicalForm::PAPER_SET, P, &ys, SelectionCriterion::Aicc);
        assert_eq!(best.form, CanonicalForm::Constant);
    }

    #[test]
    fn aicc_with_five_points_picks_true_form() {
        let xs = [256.0, 512.0, 1024.0, 2048.0, 4096.0];
        let ys: Vec<f64> = xs.iter().map(|x| 0.1 + 3e-5 * x).collect();
        let best = select_best(
            &CanonicalForm::PAPER_SET,
            &xs,
            &ys,
            SelectionCriterion::Aicc,
        );
        assert_eq!(best.form, CanonicalForm::Linear);
    }

    #[test]
    fn selection_never_panics_on_empty_forms() {
        let m = select_best(&[], P, &[1.0, 2.0, 3.0], SelectionCriterion::Sse);
        assert_eq!(m.form, CanonicalForm::Constant);
        assert_close(m.params[0], 2.0, 1e-12);
    }

    #[test]
    fn fit_all_returns_applicable_subset() {
        // Negative values: exp and power drop out.
        let fits = fit_all(&CanonicalForm::EXTENDED_SET, P, &[-1.0, -2.0, -3.0]);
        let forms: Vec<_> = fits.iter().map(|f| f.form).collect();
        assert!(forms.contains(&CanonicalForm::Constant));
        assert!(forms.contains(&CanonicalForm::Linear));
        assert!(forms.contains(&CanonicalForm::Logarithmic));
        assert!(!forms.contains(&CanonicalForm::Exponential));
        assert!(!forms.contains(&CanonicalForm::Power));
    }

    #[test]
    fn noisy_linear_still_selects_linear() {
        // A sign-changing linear series: exp/power are inapplicable and the
        // log form's residual is far worse.
        let xs = [96.0, 384.0, 1536.0];
        let noise = [0.0002, -0.0003, 0.0001];
        let ys: Vec<f64> = xs
            .iter()
            .zip(noise)
            .map(|(x, n)| -0.01 + 4e-5 * x + n)
            .collect();
        let best = select_best(&CanonicalForm::PAPER_SET, &xs, &ys, SelectionCriterion::Sse);
        assert_eq!(best.form, CanonicalForm::Linear);
    }

    #[test]
    fn guard_discards_negative_extrapolations() {
        // A 1/x-decaying count: the log form wins on residual but predicts
        // a negative count at 8192; the guard must reject it.
        let ys: Vec<f64> = P.iter().map(|x| 1e9 / x).collect();
        let unguarded = select_best(&CanonicalForm::PAPER_SET, P, &ys, SelectionCriterion::Sse);
        assert!(unguarded.eval(8192.0) < 0.0, "unguarded pick goes negative");
        let guarded = select_best_guarded(
            &CanonicalForm::PAPER_SET,
            P,
            &ys,
            SelectionCriterion::Sse,
            8192.0,
        );
        assert!(guarded.eval(8192.0) >= 0.0);
        assert_eq!(guarded.form, CanonicalForm::Exponential);
    }

    #[test]
    fn guard_is_inert_for_growing_series() {
        let ys: Vec<f64> = P.iter().map(|x| 0.1 + 3e-5 * x).collect();
        let a = select_best(&CanonicalForm::PAPER_SET, P, &ys, SelectionCriterion::Sse);
        let b = select_best_guarded(
            &CanonicalForm::PAPER_SET,
            P,
            &ys,
            SelectionCriterion::Sse,
            8192.0,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn guard_skips_sign_changing_series() {
        // Negative values present: the guard defers to plain selection
        // (the xs are geometric, so this series is exactly linear in ln x).
        let ys = [-5.0, 0.0, 5.0];
        let g = select_best_guarded(
            &CanonicalForm::PAPER_SET,
            P,
            &ys,
            SelectionCriterion::Sse,
            8192.0,
        );
        assert_eq!(
            g,
            select_best(&CanonicalForm::PAPER_SET, P, &ys, SelectionCriterion::Sse)
        );
        assert_eq!(g.form, CanonicalForm::Logarithmic);
        assert!(g.eval(8192.0) > 5.0, "no clamping applied");
    }
}
