//! Extrapolated-vs-collected element error analysis.
//!
//! Section IV's accuracy claim: "every extrapolated element within all of
//! the influential instructions had an absolute relative error of less than
//! 20%", where influence is the instruction's share of the task's memory
//! operations ("for those instructions without memory operations,
//! floating-point operations were used"; threshold 0.1%). This module
//! reproduces that measurement given a synthetic trace and a trace actually
//! collected at the same core count.

use serde::{Deserialize, Serialize};
use xtrace_tracer::{FeatureId, TaskTrace};

/// One element's extrapolation error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElementError {
    /// Block name.
    pub block: String,
    /// Instruction index within the block.
    pub instr: u32,
    /// Feature element.
    pub feature: FeatureId,
    /// Value in the collected (ground-truth) trace.
    pub expected: f64,
    /// Value in the extrapolated trace.
    pub got: f64,
    /// Absolute relative error (|got − expected| / |expected|; exact-zero
    /// agreement counts as 0, a nonzero prediction of a zero truth as 1).
    pub rel_err: f64,
    /// Instruction influence in the collected trace.
    pub influence: f64,
}

/// Aggregate statistics over a set of element errors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// Elements compared.
    pub n_total: usize,
    /// Elements belonging to influential instructions.
    pub n_influential: usize,
    /// Largest relative error among influential elements.
    pub max_rel_err_influential: f64,
    /// Mean relative error among influential elements.
    pub mean_rel_err_influential: f64,
    /// Fraction of influential elements with error below 20% (the paper
    /// reports 1.0).
    pub frac_influential_under_20pct: f64,
    /// Largest relative error over *all* elements (the paper acknowledges
    /// higher errors on non-influential instructions).
    pub max_rel_err_all: f64,
}

/// Computes the absolute relative error with the conventions above.
fn rel_err(got: f64, expected: f64) -> f64 {
    if expected == 0.0 {
        if got == 0.0 {
            0.0
        } else {
            1.0
        }
    } else {
        (got - expected).abs() / expected.abs()
    }
}

/// Compares an extrapolated trace against a collected trace element by
/// element.
///
/// # Panics
///
/// Panics if the traces' block/instruction structures do not align (they
/// come from the same application, so they always do in practice).
pub fn element_errors(extrapolated: &TaskTrace, collected: &TaskTrace) -> Vec<ElementError> {
    assert_eq!(
        extrapolated.blocks.len(),
        collected.blocks.len(),
        "block count mismatch"
    );
    let ids = FeatureId::all(collected.depth);
    let mut out = Vec::new();
    for (eb, cb) in extrapolated.blocks.iter().zip(&collected.blocks) {
        assert_eq!(eb.name, cb.name, "block order mismatch");
        assert_eq!(
            eb.instrs.len(),
            cb.instrs.len(),
            "instruction count mismatch in {}",
            eb.name
        );
        for (ei, ci) in eb.instrs.iter().zip(&cb.instrs) {
            let influence = collected.influence(&ci.features);
            for &fid in &ids {
                let expected = ci.features.get(fid);
                let got = ei.features.get(fid);
                out.push(ElementError {
                    block: cb.name.clone(),
                    instr: ci.instr,
                    feature: fid,
                    expected,
                    got,
                    rel_err: rel_err(got, expected),
                    influence,
                });
            }
        }
    }
    out
}

/// Summarizes element errors with the given influence threshold (paper:
/// 0.001).
pub fn summarize(errors: &[ElementError], influence_threshold: f64) -> ErrorSummary {
    let influential: Vec<&ElementError> = errors
        .iter()
        .filter(|e| e.influence >= influence_threshold)
        .collect();
    let max_inf = influential.iter().map(|e| e.rel_err).fold(0.0f64, f64::max);
    let mean_inf = if influential.is_empty() {
        0.0
    } else {
        influential.iter().map(|e| e.rel_err).sum::<f64>() / influential.len() as f64
    };
    let under = if influential.is_empty() {
        1.0
    } else {
        influential.iter().filter(|e| e.rel_err < 0.20).count() as f64 / influential.len() as f64
    };
    ErrorSummary {
        n_total: errors.len(),
        n_influential: influential.len(),
        max_rel_err_influential: max_inf,
        mean_rel_err_influential: mean_inf,
        frac_influential_under_20pct: under,
        max_rel_err_all: errors.iter().map(|e| e.rel_err).fold(0.0f64, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_ir::SourceLoc;
    use xtrace_tracer::{BlockRecord, FeatureVector, InstrRecord};

    fn trace(mem_ops: f64, l1: f64) -> TaskTrace {
        let mut f = FeatureVector {
            exec_count: mem_ops,
            mem_ops,
            loads: mem_ops,
            bytes_per_ref: 8.0,
            ..Default::default()
        };
        f.hit_rates[0] = l1;
        TaskTrace {
            app: "t".into(),
            rank: 0,
            nranks: 8192,
            machine: "m".into(),
            depth: 1,
            blocks: vec![BlockRecord {
                name: "k".into(),
                source: SourceLoc::new("a.c", 1, "f"),
                invocations: 1,
                iterations: 1,
                instrs: vec![InstrRecord {
                    instr: 0,
                    pattern: "strided".into(),
                    features: f,
                }],
            }],
        }
    }

    #[test]
    fn identical_traces_have_zero_error() {
        let t = trace(1e6, 0.9);
        let errs = element_errors(&t, &t);
        assert!(!errs.is_empty());
        assert!(errs.iter().all(|e| e.rel_err == 0.0));
        let s = summarize(&errs, 0.001);
        assert_eq!(s.max_rel_err_all, 0.0);
        assert_eq!(s.frac_influential_under_20pct, 1.0);
    }

    #[test]
    fn errors_are_relative() {
        let ex = trace(1.1e6, 0.9);
        let coll = trace(1e6, 0.9);
        let errs = element_errors(&ex, &coll);
        let mem = errs
            .iter()
            .find(|e| e.feature == FeatureId::MemOps)
            .unwrap();
        assert!((mem.rel_err - 0.1).abs() < 1e-9);
        assert_eq!(mem.expected, 1e6);
        assert_eq!(mem.got, 1.1e6);
    }

    #[test]
    fn zero_expected_conventions() {
        assert_eq!(rel_err(0.0, 0.0), 0.0);
        assert_eq!(rel_err(5.0, 0.0), 1.0);
    }

    #[test]
    fn summary_separates_influential_elements() {
        // Two instructions: one with 99.9% of mem ops, one with 0.01%.
        let mut coll = trace(1e6, 0.9);
        let mut tiny = coll.blocks[0].instrs[0].clone();
        tiny.instr = 1;
        tiny.features.mem_ops = 100.0;
        tiny.features.loads = 100.0;
        coll.blocks[0].instrs.push(tiny.clone());
        let mut ex = coll.clone();
        // Large error on the non-influential instruction only.
        ex.blocks[0].instrs[1].features.mem_ops = 500.0;

        let errs = element_errors(&ex, &coll);
        let s = summarize(&errs, 0.001);
        assert!(s.n_influential < s.n_total);
        assert_eq!(s.max_rel_err_influential, 0.0);
        assert!(s.max_rel_err_all > 0.5);
        assert_eq!(s.frac_influential_under_20pct, 1.0);
    }

    #[test]
    fn empty_influential_set_is_benign() {
        let errs = element_errors(&trace(1e6, 0.9), &trace(1e6, 0.9));
        let s = summarize(&errs, 2.0); // impossible threshold
        assert_eq!(s.n_influential, 0);
        assert_eq!(s.frac_influential_under_20pct, 1.0);
        assert_eq!(s.mean_rel_err_influential, 0.0);
    }

    #[test]
    #[should_panic(expected = "block count mismatch")]
    fn mismatched_traces_panic() {
        let a = trace(1.0, 0.5);
        let mut b = trace(1.0, 0.5);
        b.blocks.clear();
        element_errors(&a, &b);
    }
}
