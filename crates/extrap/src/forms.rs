//! The canonical function forms.
//!
//! "We use four canonical forms in this work: constant, linear, exponential
//! and logarithmic" (Section IV). Polynomial (quadratic) and power forms
//! are the paper's named future work ("Future research will add more
//! canonical forms (e.g., polynomial)") and are available through
//! [`CanonicalForm::EXTENDED_SET`].

use serde::{Deserialize, Serialize};

/// A candidate scaling law for one feature element as a function of the
/// core count `x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CanonicalForm {
    /// `y = a`
    Constant,
    /// `y = a + b·x`
    Linear,
    /// `y = a + b·ln x`
    Logarithmic,
    /// `y = a·e^(b·x)`
    Exponential,
    /// `y = a·x^b` (extension)
    Power,
    /// `y = a + b·x + c·x²` (extension)
    Quadratic,
}

impl CanonicalForm {
    /// The paper's form set.
    pub const PAPER_SET: [CanonicalForm; 4] = [
        CanonicalForm::Constant,
        CanonicalForm::Linear,
        CanonicalForm::Logarithmic,
        CanonicalForm::Exponential,
    ];

    /// Paper set plus the Section-VI extensions.
    pub const EXTENDED_SET: [CanonicalForm; 6] = [
        CanonicalForm::Constant,
        CanonicalForm::Linear,
        CanonicalForm::Logarithmic,
        CanonicalForm::Exponential,
        CanonicalForm::Power,
        CanonicalForm::Quadratic,
    ];

    /// Number of free parameters.
    pub fn n_params(&self) -> usize {
        match self {
            CanonicalForm::Constant => 1,
            CanonicalForm::Quadratic => 3,
            _ => 2,
        }
    }

    /// Evaluates the form at `x` with parameters `[a, b, c]` (unused
    /// entries ignored). Exponents are clamped to ±700 so pathological
    /// extrapolations saturate instead of overflowing to infinity.
    pub fn eval(&self, params: &[f64; 3], x: f64) -> f64 {
        let [a, b, c] = *params;
        match self {
            CanonicalForm::Constant => a,
            CanonicalForm::Linear => a + b * x,
            CanonicalForm::Logarithmic => a + b * x.max(f64::MIN_POSITIVE).ln(),
            CanonicalForm::Exponential => a * (b * x).clamp(-700.0, 700.0).exp(),
            CanonicalForm::Power => {
                a * (b * x.max(f64::MIN_POSITIVE).ln())
                    .clamp(-700.0, 700.0)
                    .exp()
            }
            CanonicalForm::Quadratic => a + b * x + c * x * x,
        }
    }

    /// Display name used in experiment output (matches the paper's figure
    /// legends).
    pub fn label(&self) -> &'static str {
        match self {
            CanonicalForm::Constant => "Constant",
            CanonicalForm::Linear => "Linear",
            CanonicalForm::Logarithmic => "Log",
            CanonicalForm::Exponential => "Exp",
            CanonicalForm::Power => "Power",
            CanonicalForm::Quadratic => "Quadratic",
        }
    }

    /// Complexity rank used to break residual ties in favor of the simpler
    /// model.
    pub fn complexity(&self) -> u8 {
        match self {
            CanonicalForm::Constant => 0,
            CanonicalForm::Linear => 1,
            CanonicalForm::Logarithmic => 2,
            CanonicalForm::Power => 3,
            CanonicalForm::Exponential => 4,
            CanonicalForm::Quadratic => 5,
        }
    }
}

/// A fitted canonical form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedModel {
    /// The form that was fitted.
    pub form: CanonicalForm,
    /// Parameters `[a, b, c]`.
    pub params: [f64; 3],
    /// Sum of squared residuals *in the original (untransformed) space*,
    /// so models fitted via log transforms compare fairly.
    pub sse: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl FittedModel {
    /// Evaluates the fitted model.
    pub fn eval(&self, x: f64) -> f64 {
        self.form.eval(&self.params, x)
    }

    /// Root-mean-square residual.
    pub fn rmse(&self) -> f64 {
        (self.sse / self.n as f64).sqrt()
    }

    /// Coefficient of determination against the fitted data's variance
    /// `ss_tot` (caller supplies it since the model does not retain the
    /// data). Returns 1.0 for zero-variance data fitted exactly.
    pub fn r2(&self, ss_tot: f64) -> f64 {
        if ss_tot <= 0.0 {
            if self.sse <= 1e-24 {
                1.0
            } else {
                0.0
            }
        } else {
            1.0 - self.sse / ss_tot
        }
    }

    /// Corrected Akaike information criterion. Returns `+inf` when the
    /// sample is too small for the correction (`n < k + 2`), which with the
    /// paper's three training points rules out every 2-parameter form —
    /// exactly the small-sample pathology the selection-criterion ablation
    /// explores.
    pub fn aicc(&self) -> f64 {
        let n = self.n as f64;
        let k = self.form.n_params() as f64;
        if n < k + 2.0 {
            return f64::INFINITY;
        }
        let sse = self.sse.max(1e-300);
        n * (sse / n).ln() + 2.0 * k + 2.0 * k * (k + 1.0) / (n - k - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_definitions() {
        let p = [2.0, 3.0, 0.5];
        assert_eq!(CanonicalForm::Constant.eval(&p, 10.0), 2.0);
        assert_eq!(CanonicalForm::Linear.eval(&p, 10.0), 32.0);
        assert!(
            (CanonicalForm::Logarithmic.eval(&p, 10.0) - (2.0 + 3.0 * 10f64.ln())).abs() < 1e-12
        );
        assert!(
            (CanonicalForm::Exponential.eval(&[2.0, 0.1, 0.0], 10.0) - 2.0 * 1f64.exp()).abs()
                < 1e-12
        );
        assert!((CanonicalForm::Power.eval(&[2.0, 2.0, 0.0], 3.0) - 18.0).abs() < 1e-12);
        assert_eq!(CanonicalForm::Quadratic.eval(&p, 10.0), 2.0 + 30.0 + 50.0);
    }

    #[test]
    fn exponential_never_overflows() {
        let y = CanonicalForm::Exponential.eval(&[1.0, 10.0, 0.0], 1e6);
        assert!(y.is_finite());
        let y = CanonicalForm::Power.eval(&[1.0, 500.0, 0.0], 1e6);
        assert!(y.is_finite());
    }

    #[test]
    fn paper_set_is_the_four_forms() {
        assert_eq!(CanonicalForm::PAPER_SET.len(), 4);
        assert!(!CanonicalForm::PAPER_SET.contains(&CanonicalForm::Quadratic));
        assert!(CanonicalForm::EXTENDED_SET.contains(&CanonicalForm::Quadratic));
    }

    #[test]
    fn param_counts() {
        assert_eq!(CanonicalForm::Constant.n_params(), 1);
        assert_eq!(CanonicalForm::Linear.n_params(), 2);
        assert_eq!(CanonicalForm::Quadratic.n_params(), 3);
    }

    #[test]
    fn complexity_orders_simple_first() {
        assert!(CanonicalForm::Constant.complexity() < CanonicalForm::Linear.complexity());
        assert!(CanonicalForm::Linear.complexity() < CanonicalForm::Exponential.complexity());
    }

    #[test]
    fn aicc_is_infinite_for_three_points_two_params() {
        let m = FittedModel {
            form: CanonicalForm::Linear,
            params: [0.0, 1.0, 0.0],
            sse: 0.5,
            n: 3,
        };
        assert!(m.aicc().is_infinite());
        let c = FittedModel {
            form: CanonicalForm::Constant,
            params: [1.0, 0.0, 0.0],
            sse: 0.5,
            n: 3,
        };
        assert!(c.aicc().is_finite());
    }

    #[test]
    fn aicc_finite_with_enough_points() {
        let m = FittedModel {
            form: CanonicalForm::Linear,
            params: [0.0, 1.0, 0.0],
            sse: 0.5,
            n: 5,
        };
        assert!(m.aicc().is_finite());
    }

    #[test]
    fn r2_handles_zero_variance() {
        let exact = FittedModel {
            form: CanonicalForm::Constant,
            params: [5.0, 0.0, 0.0],
            sse: 0.0,
            n: 3,
        };
        assert_eq!(exact.r2(0.0), 1.0);
        let wrong = FittedModel { sse: 1.0, ..exact };
        assert_eq!(wrong.r2(0.0), 0.0);
        assert!((exact.r2(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_is_sqrt_mean_sse() {
        let m = FittedModel {
            form: CanonicalForm::Constant,
            params: [0.0; 3],
            sse: 12.0,
            n: 3,
        };
        assert!((m.rmse() - 2.0).abs() < 1e-12);
    }
}
