//! Full-signature synthesis: the Section-VI goal of generating *all* P
//! trace files, not just the longest task's.
//!
//! "An application signature is made of a series of trace files — for a run
//! at 1024 cores the prediction framework uses 1024 trace files … In
//! generating synthetic trace files from 1024, 2048, and 4096 core trace
//! files we need to generate 8192 trace files. The challenge … is
//! determining how the work distribution per core changes as the
//! application strong scales. Meaning is there groups of tasks that do
//! similar work and as you scale the number of cores the size of the group
//! … also scales."
//!
//! This module implements that plan: cluster the sampled tasks at each
//! training core count, fit canonical forms to each cluster's *population
//! fraction* as a function of the core count, extrapolate both the fraction
//! and the cluster's centroid trace to the target, and emit one
//! representative trace per group together with the number of ranks it
//! stands for. The groups cover all P target ranks without materializing P
//! files.

use serde::{Deserialize, Serialize};
use xtrace_tracer::TaskTrace;

use crate::cluster::cluster_tasks;
use crate::extrapolate::{extrapolate_signature, ExtrapolationConfig, ExtrapolationError};
use crate::fit::select_best_guarded;

/// One group of the synthesized signature: a representative trace and how
/// many target ranks behave like it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignatureGroup {
    /// The group's synthetic trace at the target core count.
    pub trace: TaskTrace,
    /// Ranks this group stands for at the target.
    pub ranks: u64,
    /// The group's population fraction at each training count (diagnostic).
    pub training_fractions: Vec<f64>,
}

/// A synthesized whole-application signature: groups covering all target
/// ranks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSignature {
    /// Target core count.
    pub nranks: u32,
    /// Groups ordered heaviest (most memory operations) first; group 0 is
    /// the longest-task trace of the main methodology.
    pub groups: Vec<SignatureGroup>,
}

impl SyntheticSignature {
    /// Total ranks covered (always equals `nranks`).
    pub fn total_ranks(&self) -> u64 {
        self.groups.iter().map(|g| g.ranks).sum()
    }

    /// The heaviest group's trace — the longest-task signature.
    pub fn longest(&self) -> &TaskTrace {
        &self.groups[0].trace
    }
}

/// Synthesizes the full signature at `target` from per-count task samples.
///
/// `per_count` supplies, for each training core count, the traces of a
/// *sample* of ranks (the same sample size at every count keeps fractions
/// comparable). Clusters are matched across counts by their total-memory-
/// operation rank, heaviest first — adequate for master/worker populations;
/// richer matching is future work, as in the paper.
///
/// # Panics
///
/// Panics if `per_count` is empty, any sample is empty, or `k == 0`.
pub fn synthesize_full_signature(
    per_count: &[(u32, Vec<TaskTrace>)],
    target: u32,
    k: usize,
    cfg: &ExtrapolationConfig,
) -> Result<SyntheticSignature, ExtrapolationError> {
    assert!(!per_count.is_empty(), "need at least one training count");
    assert!(k > 0, "need at least one cluster");
    let k_eff = per_count
        .iter()
        .map(|(_, ts)| ts.len())
        .min()
        .expect("nonempty")
        .min(k)
        .max(1);

    // Per count: representatives ordered heaviest-first, plus the fraction
    // of the sample each cluster holds and its member-rank set.
    let mut rep_series: Vec<Vec<TaskTrace>> = vec![Vec::new(); k_eff];
    let mut frac_series: Vec<Vec<f64>> = vec![Vec::new(); k_eff];
    let mut member_series: Vec<Vec<Vec<u32>>> = vec![Vec::new(); k_eff];
    let mut xs = Vec::with_capacity(per_count.len());
    for (p, traces) in per_count {
        assert!(!traces.is_empty(), "empty task sample at {p} cores");
        xs.push(f64::from(*p));
        let clustering = cluster_tasks(traces, k_eff);
        let mut reps: Vec<(usize, &TaskTrace)> = clustering
            .centroid_members
            .iter()
            .enumerate()
            .map(|(c, &i)| (c, &traces[i]))
            .collect();
        reps.sort_by(|a, b| {
            b.1.total_mem_ops()
                .partial_cmp(&a.1.total_mem_ops())
                .expect("finite")
        });
        for (j, (c, rep)) in reps.into_iter().enumerate() {
            rep_series[j].push((*rep).clone());
            let members = clustering.members(c);
            frac_series[j].push(members.len() as f64 / traces.len() as f64);
            let mut ranks: Vec<u32> = members.iter().map(|&i| traces[i].rank).collect();
            ranks.sort_unstable();
            member_series[j].push(ranks);
        }
    }

    // Extrapolate each group's centroid trace and population. A group whose
    // member-rank set is *identical at every training count* is an absolute
    // population (e.g. the master: always exactly {rank 0}) — extrapolating
    // its sample fraction would inflate it by the sampling ratio. Groups
    // with varying membership scale proportionally via fraction fits.
    let tx = f64::from(target);
    let mut groups = Vec::with_capacity(k_eff);
    let mut absolute = Vec::with_capacity(k_eff);
    for ((reps, fracs), members) in rep_series.into_iter().zip(&frac_series).zip(&member_series) {
        let trace = extrapolate_signature(&reps, target, cfg)?;
        let stable_membership = members.windows(2).all(|w| w[0] == w[1]);
        let ranks = if stable_membership {
            absolute.push(true);
            members[0].len() as u64
        } else {
            absolute.push(false);
            let frac_model = select_best_guarded(&cfg.forms, &xs, fracs, cfg.criterion, tx);
            let frac = frac_model.eval(tx).clamp(0.0, 1.0);
            (frac * f64::from(target)).round() as u64
        };
        groups.push(SignatureGroup {
            trace,
            ranks,
            training_fractions: fracs.clone(),
        });
    }

    // Re-normalize rank counts to cover exactly `target`: the largest
    // *proportional* group absorbs rounding drift (absolute groups keep
    // their exact populations); if every group is absolute, the largest
    // overall absorbs it.
    let assigned: u64 = groups.iter().map(|g| g.ranks).sum();
    if assigned != u64::from(target) {
        let largest = groups
            .iter()
            .enumerate()
            .filter(|(i, _)| !absolute[*i])
            .max_by_key(|(_, g)| g.ranks)
            .map(|(i, _)| i)
            .or_else(|| {
                groups
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, g)| g.ranks)
                    .map(|(i, _)| i)
            })
            .expect("at least one group");
        let diff = i64::try_from(u64::from(target)).expect("fits")
            - i64::try_from(assigned).expect("fits");
        let new = i64::try_from(groups[largest].ranks).expect("fits") + diff;
        groups[largest].ranks = u64::try_from(new.max(0)).expect("non-negative");
    }

    Ok(SyntheticSignature {
        nranks: target,
        groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_ir::SourceLoc;
    use xtrace_tracer::{BlockRecord, FeatureVector, InstrRecord};

    /// A master/worker population: rank 0 heavy with linear-in-P work,
    /// workers light with 1/P work.
    fn sample(p: u32, nworkers: usize) -> Vec<TaskTrace> {
        let task = |rank: u32, mem_ops: f64| {
            let f = FeatureVector {
                exec_count: mem_ops,
                mem_ops,
                loads: mem_ops,
                bytes_per_ref: 8.0,
                working_set: 1e6,
                ..Default::default()
            };
            TaskTrace {
                app: "synth".into(),
                rank,
                nranks: p,
                machine: "m".into(),
                depth: 1,
                blocks: vec![BlockRecord {
                    name: "k".into(),
                    source: SourceLoc::new("s.c", 1, "f"),
                    invocations: 1,
                    iterations: 1,
                    instrs: vec![InstrRecord {
                        instr: 0,
                        pattern: "strided".into(),
                        features: f,
                    }],
                }],
            }
        };
        let mut v = vec![task(0, 1e3 * f64::from(p))];
        for r in 0..nworkers {
            v.push(task(r as u32 + 1, 1e9 / f64::from(p)));
        }
        v
    }

    fn per_count() -> Vec<(u32, Vec<TaskTrace>)> {
        vec![
            (1024, sample(1024, 7)),
            (2048, sample(2048, 7)),
            (4096, sample(4096, 7)),
        ]
    }

    #[test]
    fn groups_cover_all_target_ranks() {
        let sig = synthesize_full_signature(&per_count(), 8192, 2, &ExtrapolationConfig::default())
            .unwrap();
        assert_eq!(sig.nranks, 8192);
        assert_eq!(sig.total_ranks(), 8192);
        assert_eq!(sig.groups.len(), 2);
    }

    #[test]
    fn master_group_is_first_and_small() {
        let sig = synthesize_full_signature(&per_count(), 8192, 2, &ExtrapolationConfig::default())
            .unwrap();
        // Heaviest-first ordering: at 8192 the master (linear work, ~8e6
        // ops) outweighs a worker (1e9/8192 ~ 1.2e5 ops).
        assert!(sig.groups[0].trace.total_mem_ops() > sig.groups[1].trace.total_mem_ops());
        // The master cluster's membership is {rank 0} at every training
        // count -> an absolute population of 1, not a sample fraction.
        assert_eq!(sig.groups[0].ranks, 1);
        assert_eq!(sig.groups[1].ranks, 8191);
        assert_eq!(sig.longest(), &sig.groups[0].trace);
    }

    #[test]
    fn master_trace_extrapolates_linearly() {
        let sig = synthesize_full_signature(&per_count(), 8192, 2, &ExtrapolationConfig::default())
            .unwrap();
        let got = sig.groups[0].trace.total_mem_ops();
        let truth = 1e3 * 8192.0;
        assert!((got - truth).abs() / truth < 1e-6, "{got} vs {truth}");
    }

    #[test]
    fn fractions_are_recorded_per_training_count() {
        let sig = synthesize_full_signature(&per_count(), 8192, 2, &ExtrapolationConfig::default())
            .unwrap();
        for g in &sig.groups {
            assert_eq!(g.training_fractions.len(), 3);
            for &f in &g.training_fractions {
                assert!((0.0..=1.0).contains(&f));
            }
        }
        assert!((sig.groups[0].training_fractions[0] - 0.125).abs() < 1e-12);
    }

    #[test]
    fn k_one_degenerates_to_single_group() {
        let sig = synthesize_full_signature(&per_count(), 8192, 1, &ExtrapolationConfig::default())
            .unwrap();
        assert_eq!(sig.groups.len(), 1);
        assert_eq!(sig.groups[0].ranks, 8192);
    }

    #[test]
    #[should_panic(expected = "at least one training count")]
    fn empty_input_panics() {
        let _ = synthesize_full_signature(&[], 8192, 2, &ExtrapolationConfig::default());
    }
}
