//! Task clustering: the Section-VI extension.
//!
//! "We believe that we can improve the accuracy of the synthetic traces by
//! using clustering algorithms. These algorithms could be used to first
//! cluster MPI-tasks with similar properties and then use the 'centroid'
//! file from each cluster as a base to extrapolate data in the centroid
//! trace files." This module implements exactly that: k-means over compact
//! per-task summary vectors, a representative ("centroid member") task per
//! cluster, and per-cluster extrapolation across core counts.

use xtrace_tracer::TaskTrace;

use crate::extrapolate::{extrapolate_signature, ExtrapolationConfig, ExtrapolationError};

/// Result of clustering one core count's task traces.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Number of clusters actually produced (≤ requested `k`).
    pub k: usize,
    /// Cluster index per input trace.
    pub assignments: Vec<usize>,
    /// Index (into the input slice) of each cluster's representative: the
    /// member nearest its centroid — the "centroid file".
    pub centroid_members: Vec<usize>,
}

impl Clustering {
    /// The members of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Compact per-task summary used as the clustering feature space:
/// log-scaled work totals plus memory-weighted hit rates.
fn summary(t: &TaskTrace) -> [f64; 6] {
    let mem = t.total_mem_ops();
    let fp = t.total_fp_ops();
    let mut wsum = 0.0;
    let mut hr = [0.0f64; 3];
    let mut ws = 0.0;
    for b in &t.blocks {
        for i in &b.instrs {
            let w = i.features.mem_ops;
            if w > 0.0 {
                wsum += w;
                for (l, h) in hr.iter_mut().enumerate() {
                    *h += w * i.features.hit_rates[l];
                }
                ws += i.features.working_set * w;
            }
        }
    }
    if wsum > 0.0 {
        for h in hr.iter_mut() {
            *h /= wsum;
        }
        ws /= wsum;
    }
    [
        (1.0 + mem).ln(),
        (1.0 + fp).ln(),
        hr[0],
        hr[1],
        (1.0 + ws).ln(),
        (1.0 + t.blocks.len() as f64).ln(),
    ]
}

fn dist2(a: &[f64; 6], b: &[f64; 6]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Deterministic k-means (Lloyd's algorithm) over task summaries.
///
/// Initialization spreads seeds evenly through the tasks sorted by summary
/// norm, which is deterministic and scale-aware; iteration runs to
/// convergence or 100 rounds. `k` is clamped to the number of tasks.
///
/// # Panics
///
/// Panics if `traces` is empty or `k == 0`.
pub fn cluster_tasks(traces: &[TaskTrace], k: usize) -> Clustering {
    assert!(!traces.is_empty(), "cannot cluster zero tasks");
    assert!(k > 0, "need at least one cluster");
    let k = k.min(traces.len());
    let points: Vec<[f64; 6]> = traces.iter().map(summary).collect();

    // Deterministic init: sort by norm, take evenly spaced members.
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        let na: f64 = points[a].iter().map(|v| v * v).sum();
        let nb: f64 = points[b].iter().map(|v| v * v).sum();
        na.partial_cmp(&nb).expect("finite summaries")
    });
    let mut centroids: Vec<[f64; 6]> = (0..k)
        .map(|j| points[order[j * (points.len() - 1) / k.max(1)]])
        .collect();
    // De-duplicate identical seeds by nudging (keeps k clusters alive for
    // duplicate-heavy inputs).
    for j in 1..k {
        if centroids[..j].contains(&centroids[j]) {
            centroids[j][0] += 1e-9 * j as f64;
        }
    }

    let mut assignments = vec![0usize; points.len()];
    for _ in 0..100 {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    dist2(p, &centroids[a])
                        .partial_cmp(&dist2(p, &centroids[b]))
                        .expect("finite")
                })
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut sums = vec![[0.0f64; 6]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i];
            counts[c] += 1;
            for (s, v) in sums[c].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in sums[c].iter_mut() {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c];
            }
        }
        if !changed {
            break;
        }
    }

    // Representative member per cluster (nearest to centroid). Empty
    // clusters inherit the globally nearest point so the structure stays
    // total.
    let centroid_members = (0..k)
        .map(|c| {
            let members: Vec<usize> = (0..points.len()).filter(|&i| assignments[i] == c).collect();
            let pool: &[usize] = if members.is_empty() { &order } else { &members };
            *pool
                .iter()
                .min_by(|&&a, &&b| {
                    dist2(&points[a], &centroids[c])
                        .partial_cmp(&dist2(&points[b], &centroids[c]))
                        .expect("finite")
                })
                .expect("pool nonempty")
        })
        .collect();

    Clustering {
        k,
        assignments,
        centroid_members,
    }
}

/// Per-cluster extrapolation across core counts.
///
/// For each training core count, tasks are clustered into `k` groups;
/// clusters are matched across counts by their rank in total memory
/// operations (heaviest first); each matched series of centroid traces is
/// then extrapolated to `target`. Returns one synthetic trace per cluster,
/// heaviest first — index 0 generalizes the single-longest-task
/// methodology of the main paper.
pub fn extrapolate_clusters(
    per_count: &[(u32, Vec<TaskTrace>)],
    target: u32,
    k: usize,
    cfg: &ExtrapolationConfig,
) -> Result<Vec<TaskTrace>, ExtrapolationError> {
    assert!(!per_count.is_empty(), "need at least one core count");
    let k_eff = per_count
        .iter()
        .map(|(_, ts)| ts.len())
        .min()
        .expect("nonempty")
        .min(k)
        .max(1);

    // Per count: representative traces ordered heaviest-first.
    let mut series: Vec<Vec<&TaskTrace>> = vec![Vec::new(); k_eff];
    for (_, traces) in per_count {
        let clustering = cluster_tasks(traces, k_eff);
        let mut reps: Vec<&TaskTrace> = clustering
            .centroid_members
            .iter()
            .map(|&i| &traces[i])
            .collect();
        reps.sort_by(|a, b| {
            b.total_mem_ops()
                .partial_cmp(&a.total_mem_ops())
                .expect("finite")
        });
        for (j, r) in reps.into_iter().enumerate() {
            series[j].push(r);
        }
    }

    series
        .into_iter()
        .map(|reps| {
            let owned: Vec<TaskTrace> = reps.into_iter().cloned().collect();
            extrapolate_signature(&owned, target, cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_ir::SourceLoc;
    use xtrace_tracer::{BlockRecord, FeatureVector, InstrRecord};

    fn task(p: u32, rank: u32, mem_ops: f64, l1: f64) -> TaskTrace {
        let mut f = FeatureVector {
            exec_count: mem_ops,
            mem_ops,
            loads: mem_ops,
            bytes_per_ref: 8.0,
            working_set: 1e6,
            ..Default::default()
        };
        f.hit_rates[0] = l1;
        TaskTrace {
            app: "t".into(),
            rank,
            nranks: p,
            machine: "m".into(),
            depth: 1,
            blocks: vec![BlockRecord {
                name: "k".into(),
                source: SourceLoc::new("a.c", 1, "f"),
                invocations: 1,
                iterations: 1,
                instrs: vec![InstrRecord {
                    instr: 0,
                    pattern: "strided".into(),
                    features: f,
                }],
            }],
        }
    }

    #[test]
    fn separates_two_obvious_groups() {
        // Four heavy low-locality tasks, four light high-locality ones.
        let mut tasks = Vec::new();
        for r in 0..4 {
            tasks.push(task(8, r, 1e9, 0.5));
        }
        for r in 4..8 {
            tasks.push(task(8, r, 1e3, 0.99));
        }
        let c = cluster_tasks(&tasks, 2);
        assert_eq!(c.k, 2);
        let a = c.assignments[0];
        assert!(c.assignments[..4].iter().all(|&x| x == a));
        assert!(c.assignments[4..].iter().all(|&x| x != a));
        // Representatives come one from each group.
        let reps = &c.centroid_members;
        assert_eq!(reps.len(), 2);
        assert_ne!(
            c.assignments[reps[0]], c.assignments[reps[1]],
            "representatives are in distinct clusters"
        );
    }

    #[test]
    fn k_clamped_to_task_count() {
        let tasks = vec![task(4, 0, 1.0, 0.9), task(4, 1, 2.0, 0.9)];
        let c = cluster_tasks(&tasks, 10);
        assert_eq!(c.k, 2);
    }

    #[test]
    fn single_cluster_contains_everything() {
        let tasks: Vec<TaskTrace> = (0..5)
            .map(|r| task(4, r, 1e6 * (r + 1) as f64, 0.9))
            .collect();
        let c = cluster_tasks(&tasks, 1);
        assert!(c.assignments.iter().all(|&a| a == 0));
        assert_eq!(c.members(0).len(), 5);
    }

    #[test]
    fn identical_tasks_do_not_crash() {
        let tasks: Vec<TaskTrace> = (0..6).map(|r| task(4, r, 1e6, 0.9)).collect();
        let c = cluster_tasks(&tasks, 3);
        assert_eq!(c.assignments.len(), 6);
    }

    #[test]
    fn clustering_is_deterministic() {
        let tasks: Vec<TaskTrace> = (0..10)
            .map(|r| task(4, r, 10f64.powi(r as i32 % 4), 0.5 + 0.04 * f64::from(r)))
            .collect();
        assert_eq!(cluster_tasks(&tasks, 3), cluster_tasks(&tasks, 3));
    }

    #[test]
    fn cluster_extrapolation_produces_k_traces() {
        // Two populations whose mem ops scale as 2e9/p and 1e6/p.
        let mk = |p: u32| -> Vec<TaskTrace> {
            let mut v = Vec::new();
            for r in 0..3 {
                v.push(task(p, r, 2e9 / f64::from(p), 0.6));
            }
            for r in 3..6 {
                v.push(task(p, r, 1e6 / f64::from(p), 0.95));
            }
            v
        };
        let per_count = vec![(1024u32, mk(1024)), (2048, mk(2048)), (4096, mk(4096))];
        let out =
            extrapolate_clusters(&per_count, 8192, 2, &ExtrapolationConfig::default()).unwrap();
        assert_eq!(out.len(), 2);
        // Heaviest cluster first; both scale ~1/p (best-of-4 approximates).
        assert!(out[0].total_mem_ops() > out[1].total_mem_ops());
        assert_eq!(out[0].nranks, 8192);
        let truth = 2e9 / 8192.0;
        let rel = (out[0].total_mem_ops() - truth).abs() / truth;
        // Hyperbolic decay: best sane form within a small factor (see
        // extrapolate.rs tests for the full story).
        assert!(rel < 0.8, "heavy cluster rel err {rel}");
    }

    #[test]
    #[should_panic(expected = "zero tasks")]
    fn empty_input_panics() {
        cluster_tasks(&[], 2);
    }
}
