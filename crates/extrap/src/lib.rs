//! # xtrace-extrap — trace extrapolation (the paper's contribution)
//!
//! "The methodology finds the best statistical fit from among a set of
//! canonical functions in terms of how a set of features … change across a
//! series of small core counts. The statistical models for each of these
//! application features can then be utilized to generate an extrapolated
//! trace of the application at scale."
//!
//! Concretely (Section IV):
//!
//! * every element of every instruction's feature vector is treated as an
//!   independent scalar series over the training core counts;
//! * four canonical forms — **constant, linear, exponential, logarithmic**
//!   — are least-squares-fitted to each series ([`fit`]);
//! * the best fit (by residual) is evaluated at the target core count to
//!   synthesize the element ([`extrapolate`]);
//! * three training core counts "generally provided adequate accuracy";
//! * elements are *influential* when their instruction carries more than
//!   0.1% of the task's memory operations (FP operations for memory-free
//!   instructions); the paper reports <20% element error for all
//!   influential instructions ([`analysis`]).
//!
//! The Section-VI future-work items are implemented as options: polynomial
//! and power canonical forms ([`forms::CanonicalForm::EXTENDED_SET`]), an
//! AICc selection criterion, and k-means clustering of MPI tasks for
//! whole-signature extrapolation ([`cluster`]).

#![warn(missing_docs)]

pub mod analysis;
pub mod cluster;
pub mod extrapolate;
pub mod fit;
pub mod forms;
pub mod report;
pub mod synth;

pub use analysis::{element_errors, summarize, ElementError, ErrorSummary};
pub use cluster::{cluster_tasks, extrapolate_clusters, Clustering};
pub use extrapolate::{
    diagnose_fit, extrapolate_series, extrapolate_series_detailed, extrapolate_signature,
    extrapolate_signature_detailed, fit_signature, fit_signature_obs, parallel_fit_enabled,
    synthesize_from_fit, BlockModels, ElementFit, ExtrapolationConfig, ExtrapolationError,
    SignatureFit, MIN_PAR_FIT_ELEMENTS,
};
pub use fit::{fit_all, fit_form, select_best, select_best_guarded, SelectionCriterion};
pub use forms::{CanonicalForm, FittedModel};
pub use report::FitReport;
pub use synth::{synthesize_full_signature, SignatureGroup, SyntheticSignature};
