//! Whole-trace extrapolation.
//!
//! "The framework is designed to take each element of an instruction's
//! feature vector … and find the model that best fits its behavior and use
//! this to generate the vector at the higher core count. This process is
//! used for all the elements of an instruction's feature vector for all the
//! instructions of an MPI task to generate \[a\] synthetic application
//! signature at the higher core count" (Section IV).
//!
//! Input: the longest task's trace files from ≥ `min_traces` (default 3)
//! training core counts. Blocks are aligned across traces by name,
//! instructions by index. Output: a synthetic [`TaskTrace`] at the target
//! core count, plus (from the `_detailed` variant) the chosen model for
//! every element, which the figure-generating benches report.
//!
//! Post-processing keeps the synthetic vectors physical: counts are clamped
//! non-negative, hit rates to `[0, 1]` with cumulative monotonicity across
//! levels restored. Elements are otherwise extrapolated independently,
//! exactly as in the paper (no cross-element consistency is forced).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use xtrace_obs::ObsContext;
use xtrace_tracer::{FeatureId, TaskTrace, TraceColumns};

use crate::fit::{fit_all, select_best_guarded, SelectionCriterion};
use crate::forms::{CanonicalForm, FittedModel};

/// Extrapolation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtrapolationConfig {
    /// Candidate canonical forms (default: the paper's four).
    pub forms: Vec<CanonicalForm>,
    /// Model-selection criterion (default: smallest residual).
    pub criterion: SelectionCriterion,
    /// Influence threshold: instructions carrying at least this share of
    /// the task's memory (or FP) operations are "influential" (paper:
    /// 0.1%). Informational — all elements are extrapolated either way; the
    /// threshold drives error reporting.
    pub influence_threshold: f64,
    /// Minimum number of training traces (paper: three "generally provided
    /// adequate accuracy").
    pub min_traces: usize,
}

impl Default for ExtrapolationConfig {
    fn default() -> Self {
        Self {
            forms: CanonicalForm::PAPER_SET.to_vec(),
            criterion: SelectionCriterion::Sse,
            influence_threshold: 0.001,
            min_traces: 3,
        }
    }
}

/// Why an extrapolation request was rejected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExtrapolationError {
    /// Fewer training traces than `min_traces`.
    TooFewTraces {
        /// Traces supplied.
        got: usize,
        /// Traces required.
        need: usize,
    },
    /// Two training traces share a core count.
    DuplicateCoreCount(u32),
    /// Traces come from different applications.
    MismatchedApps(String, String),
    /// Traces were simulated against different target machines.
    MismatchedMachines(String, String),
    /// A block present in one trace is missing or reordered in another.
    MismatchedBlocks {
        /// Name of the offending block.
        block: String,
    },
    /// A block's instruction count differs across traces.
    MismatchedInstrCount {
        /// Name of the offending block.
        block: String,
    },
    /// The target core count does not exceed every training count.
    TargetNotLarger {
        /// Requested target.
        target: u32,
        /// Largest training count.
        max_input: u32,
    },
    /// Two training points share an abscissa (generic-series API).
    DuplicatePoint(f64),
    /// The target abscissa does not exceed every training abscissa
    /// (generic-series API).
    TargetNotBeyond {
        /// Requested target.
        target: f64,
        /// Largest training abscissa.
        max_input: f64,
    },
    /// A training abscissa is not finite (generic-series API).
    NonFinitePoint(f64),
}

impl std::fmt::Display for ExtrapolationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtrapolationError::TooFewTraces { got, need } => {
                write!(f, "{got} training traces supplied, {need} required")
            }
            ExtrapolationError::DuplicateCoreCount(p) => {
                write!(f, "two training traces at {p} cores")
            }
            ExtrapolationError::MismatchedApps(a, b) => {
                write!(f, "traces from different applications: {a:?} vs {b:?}")
            }
            ExtrapolationError::MismatchedMachines(a, b) => {
                write!(f, "traces against different machines: {a:?} vs {b:?}")
            }
            ExtrapolationError::MismatchedBlocks { block } => {
                write!(f, "block {block:?} missing or reordered across traces")
            }
            ExtrapolationError::MismatchedInstrCount { block } => {
                write!(f, "block {block:?} has differing instruction counts")
            }
            ExtrapolationError::TargetNotLarger { target, max_input } => {
                write!(
                    f,
                    "target core count {target} must exceed the largest training count {max_input}"
                )
            }
            ExtrapolationError::DuplicatePoint(x) => {
                write!(f, "two training traces at abscissa {x}")
            }
            ExtrapolationError::TargetNotBeyond { target, max_input } => {
                write!(
                    f,
                    "target abscissa {target} must exceed the largest training abscissa {max_input}"
                )
            }
            ExtrapolationError::NonFinitePoint(x) => {
                write!(f, "training abscissa {x} is not finite")
            }
        }
    }
}

impl std::error::Error for ExtrapolationError {}

/// The fitted invocation/iteration models of one block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockModels {
    /// Model of the block's invocation count across core counts.
    pub invocations: FittedModel,
    /// Model of the block's per-invocation trip count.
    pub iterations: FittedModel,
}

/// The complete fitted model of a signature: the output of the *Fit*
/// phase and the sole input of the *Synthesize* phase.
///
/// [`fit_signature`] produces one; [`synthesize_from_fit`] turns it into
/// the synthetic [`TaskTrace`]. The two-phase split lets pipeline engines
/// time, persist, and resume the phases independently; composing them is
/// bit-identical to the fused [`extrapolate_signature_detailed`] API,
/// which is itself implemented as exactly that composition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignatureFit {
    /// The largest training trace — the structural template synthesis
    /// copies block/instruction layout (and non-extrapolated fields) from.
    pub base: TaskTrace,
    /// Abscissa the models are evaluated at (the target core count, or an
    /// arbitrary input-parameter value for the series API).
    pub target_x: f64,
    /// Core-count label of the synthetic trace.
    pub out_nranks: u32,
    /// Per-element fits, grouped per instruction in block-major order;
    /// within an instruction, in `FeatureId::all(base.depth)` order.
    pub fits: Vec<ElementFit>,
    /// Per-block invocation/iteration models, in block order.
    pub block_models: Vec<BlockModels>,
}

/// The chosen model for one extrapolated element (reported by the detailed
/// API and the figure benches).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElementFit {
    /// Block the element belongs to.
    pub block: String,
    /// Instruction index within the block.
    pub instr: u32,
    /// Which feature element.
    pub feature: FeatureId,
    /// The winning fitted model.
    pub model: FittedModel,
    /// The training values, parallel to the training core counts.
    pub values: Vec<f64>,
    /// Instruction influence (share of task memory/FP operations) in the
    /// largest training trace.
    pub influence: f64,
}

/// Extrapolates the signature to `target` cores. See the module docs.
///
/// ```
/// use xtrace_extrap::{extrapolate_signature, ExtrapolationConfig};
/// use xtrace_ir::SourceLoc;
/// use xtrace_tracer::{BlockRecord, FeatureVector, InstrRecord, TaskTrace};
///
/// // A one-block trace whose memory-op count grows linearly with P.
/// let trace_at = |p: u32| TaskTrace {
///     app: "demo".into(),
///     rank: 0,
///     nranks: p,
///     machine: "m".into(),
///     depth: 1,
///     blocks: vec![BlockRecord {
///         name: "kernel".into(),
///         source: SourceLoc::new("k.f90", 1, "kernel"),
///         invocations: 1,
///         iterations: 1,
///         instrs: vec![InstrRecord {
///             instr: 0,
///             pattern: "strided".into(),
///             features: FeatureVector {
///                 exec_count: 1e3 * f64::from(p),
///                 mem_ops: 1e3 * f64::from(p),
///                 loads: 1e3 * f64::from(p),
///                 bytes_per_ref: 8.0,
///                 ..Default::default()
///             },
///         }],
///     }],
/// };
/// let training = vec![trace_at(1024), trace_at(2048), trace_at(4096)];
/// let synthetic =
///     extrapolate_signature(&training, 8192, &ExtrapolationConfig::default()).unwrap();
/// let ops = synthetic.blocks[0].instrs[0].features.mem_ops;
/// assert!((ops - 8.192e6).abs() < 1.0);
/// ```
pub fn extrapolate_signature(
    traces: &[TaskTrace],
    target: u32,
    cfg: &ExtrapolationConfig,
) -> Result<TaskTrace, ExtrapolationError> {
    extrapolate_signature_detailed(traces, target, cfg).map(|(t, _)| t)
}

/// Like [`extrapolate_signature`] but also returns every element's chosen
/// model.
pub fn extrapolate_signature_detailed(
    traces: &[TaskTrace],
    target: u32,
    cfg: &ExtrapolationConfig,
) -> Result<(TaskTrace, Vec<ElementFit>), ExtrapolationError> {
    let fit = fit_signature(traces, target, cfg)?;
    let trace = synthesize_from_fit(&fit);
    Ok((trace, fit.fits))
}

/// The *Fit* phase: validates the training family, fits the canonical
/// forms to every feature element, and returns the complete signature
/// model. Feed the result to [`synthesize_from_fit`].
pub fn fit_signature(
    traces: &[TaskTrace],
    target: u32,
    cfg: &ExtrapolationConfig,
) -> Result<SignatureFit, ExtrapolationError> {
    fit_signature_obs(traces, target, cfg, &ObsContext::ambient())
}

/// [`fit_signature`] recording fit telemetry into an explicit
/// observability context.
pub fn fit_signature_obs(
    traces: &[TaskTrace],
    target: u32,
    cfg: &ExtrapolationConfig,
    obs: &ObsContext,
) -> Result<SignatureFit, ExtrapolationError> {
    if traces.len() < cfg.min_traces.max(1) {
        return Err(ExtrapolationError::TooFewTraces {
            got: traces.len(),
            need: cfg.min_traces.max(1),
        });
    }

    // Sort by core count; validate the family.
    let mut sorted: Vec<&TaskTrace> = traces.iter().collect();
    sorted.sort_by_key(|t| t.nranks);
    for w in sorted.windows(2) {
        if w[0].nranks == w[1].nranks {
            return Err(ExtrapolationError::DuplicateCoreCount(w[0].nranks));
        }
    }
    validate_family(&sorted)?;
    let base = *sorted.last().expect("nonempty");
    if target <= base.nranks {
        return Err(ExtrapolationError::TargetNotLarger {
            target,
            max_input: base.nranks,
        });
    }

    let xs: Vec<f64> = sorted.iter().map(|t| f64::from(t.nranks)).collect();
    Ok(fit_sorted(
        &sorted,
        &xs,
        f64::from(target),
        target,
        cfg,
        obs,
    ))
}

/// Generic-series extrapolation: the same per-element methodology over an
/// arbitrary abscissa — the paper's Section-VI input-parameter extension
/// ("employ the same scaling and extrapolating strategies … to capture and
/// model how changes in input set parameters changes the feature vectors").
///
/// `points` pairs each training trace with its abscissa (a problem size, a
/// resolution, any scalar knob); the synthesized trace is evaluated at
/// `target_x` and keeps the base trace's core count.
pub fn extrapolate_series(
    points: &[(f64, TaskTrace)],
    target_x: f64,
    cfg: &ExtrapolationConfig,
) -> Result<TaskTrace, ExtrapolationError> {
    extrapolate_series_detailed(points, target_x, cfg).map(|(t, _)| t)
}

/// [`extrapolate_series`] with the per-element fit report.
pub fn extrapolate_series_detailed(
    points: &[(f64, TaskTrace)],
    target_x: f64,
    cfg: &ExtrapolationConfig,
) -> Result<(TaskTrace, Vec<ElementFit>), ExtrapolationError> {
    if points.len() < cfg.min_traces.max(1) {
        return Err(ExtrapolationError::TooFewTraces {
            got: points.len(),
            need: cfg.min_traces.max(1),
        });
    }
    for &(x, _) in points {
        if !x.is_finite() {
            return Err(ExtrapolationError::NonFinitePoint(x));
        }
    }
    let mut order: Vec<&(f64, TaskTrace)> = points.iter().collect();
    order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite abscissas"));
    for w in order.windows(2) {
        if w[0].0 == w[1].0 {
            return Err(ExtrapolationError::DuplicatePoint(w[0].0));
        }
    }
    let sorted: Vec<&TaskTrace> = order.iter().map(|(_, t)| t).collect();
    validate_family(&sorted)?;
    let max_x = order.last().expect("nonempty").0;
    if target_x <= max_x || !target_x.is_finite() {
        return Err(ExtrapolationError::TargetNotBeyond {
            target: target_x,
            max_input: max_x,
        });
    }
    let xs: Vec<f64> = order.iter().map(|(x, _)| *x).collect();
    let out_nranks = sorted.last().expect("nonempty").nranks;
    let fit = fit_sorted(
        &sorted,
        &xs,
        target_x,
        out_nranks,
        cfg,
        &ObsContext::ambient(),
    );
    let trace = synthesize_from_fit(&fit);
    Ok((trace, fit.fits))
}

/// Checks that the traces form one family: same application, same target
/// machine, identical block/instruction structure.
fn validate_family(sorted: &[&TaskTrace]) -> Result<(), ExtrapolationError> {
    let base = *sorted.last().expect("nonempty");
    for t in sorted {
        if t.app != base.app {
            return Err(ExtrapolationError::MismatchedApps(
                t.app.clone(),
                base.app.clone(),
            ));
        }
        if t.machine != base.machine {
            return Err(ExtrapolationError::MismatchedMachines(
                t.machine.clone(),
                base.machine.clone(),
            ));
        }
        if t.blocks.len() != base.blocks.len() {
            return Err(ExtrapolationError::MismatchedBlocks {
                block: base
                    .blocks
                    .iter()
                    .map(|b| b.name.clone())
                    .find(|n| t.block(n).is_none())
                    .unwrap_or_default(),
            });
        }
        for (tb, bb) in t.blocks.iter().zip(&base.blocks) {
            if tb.name != bb.name {
                return Err(ExtrapolationError::MismatchedBlocks {
                    block: bb.name.clone(),
                });
            }
            if tb.instrs.len() != bb.instrs.len() {
                return Err(ExtrapolationError::MismatchedInstrCount {
                    block: bb.name.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Element-major series matrix: every `(block, instruction, feature)`
/// element's training series across core counts as one contiguous slice.
///
/// Built by flattening each training trace into [`TraceColumns`] once and
/// transposing, so the per-element fitting loop reads `ys` straight out of
/// a flat column instead of chasing `blocks[bi].instrs[ii]` records in
/// every trace — the fitter-side half of the columnar layout. Values are
/// copied bit-for-bit, so fits are identical to the record-walking
/// formulation.
struct ElementSeries {
    /// `[pair-major][feature][trace]`: element `(p, f)`'s series starts at
    /// `(p * n_features + f) * n_traces`.
    data: Vec<f64>,
    n_traces: usize,
    n_features: usize,
}

impl ElementSeries {
    /// Gathers the matrix from the sorted training family. Pair order is
    /// blocks in trace order, instructions in block order — the same
    /// flattening [`TraceColumns`] uses and `fit_sorted`'s `pairs` vec
    /// enumerates.
    fn gather(sorted: &[&TaskTrace], feature_ids: &[FeatureId]) -> Self {
        let n_traces = sorted.len();
        let n_features = feature_ids.len();
        let n_pairs: usize = sorted
            .last()
            .map_or(0, |t| t.blocks.iter().map(|b| b.instrs.len()).sum());
        let mut data = vec![0.0; n_pairs * n_features * n_traces];
        for (ti, t) in sorted.iter().enumerate() {
            let cols = TraceColumns::from_trace(t);
            for (fi, &fid) in feature_ids.iter().enumerate() {
                let col = cols.features.column(fid);
                for (ei, &v) in col.iter().enumerate() {
                    data[(ei * n_features + fi) * n_traces + ti] = v;
                }
            }
        }
        Self {
            data,
            n_traces,
            n_features,
        }
    }

    /// Element `(pair, feature)`'s training series, contiguous.
    #[inline]
    fn ys(&self, pair: usize, fi: usize) -> &[f64] {
        let start = (pair * self.n_features + fi) * self.n_traces;
        &self.data[start..start + self.n_traces]
    }
}

/// Fits every element of one instruction, reading each element's series
/// as a contiguous slice of the pre-gathered [`ElementSeries`].
///
/// Pure function of its inputs, so instructions can be fitted in parallel;
/// the returned fits are in `feature_ids` order.
#[allow(clippy::too_many_arguments)]
fn fit_instr(
    sorted: &[&TaskTrace],
    series: &ElementSeries,
    pair: usize,
    xs: &[f64],
    tx: f64,
    cfg: &ExtrapolationConfig,
    feature_ids: &[FeatureId],
    bi: usize,
    ii: usize,
) -> Vec<ElementFit> {
    let base = *sorted.last().expect("nonempty");
    let bb = &base.blocks[bi];
    let base_instr = &bb.instrs[ii];
    let influence = base.influence(&base_instr.features);
    let mut fits = Vec::with_capacity(feature_ids.len());
    for (fi, &fid) in feature_ids.iter().enumerate() {
        let ys = series.ys(pair, fi);
        let model = select_best_guarded(&cfg.forms, xs, ys, cfg.criterion, tx);
        fits.push(ElementFit {
            block: bb.name.clone(),
            instr: ii as u32,
            feature: fid,
            model,
            values: ys.to_vec(),
            influence,
        });
    }
    fits
}

/// Fewest element fits for which the rayon fan-out pays for itself.
///
/// Each fit is well under a microsecond of work (BENCH_extrap measures
/// ~0.4 µs), while spawning and joining a handful of threads costs on the
/// order of 100 µs — which is why BENCH_extrap measured a 0.77x "speedup"
/// on the 420-element paper signature. Signatures below this count take
/// the serial loop unconditionally; past it the fitting work dominates the
/// fan-out by several times.
pub const MIN_PAR_FIT_ELEMENTS: usize = 1024;

/// True when [`extrapolate_signature`] will fan element fitting out over
/// the rayon pool for a signature with `n_elements` element fits:
/// the signature must be large enough to amortize thread spawn/join (see
/// [`MIN_PAR_FIT_ELEMENTS`]), the installed pool must have more than one
/// thread, and the host must actually have more than one core (threads in
/// excess of cores only add scheduling overhead). Exposed so benches can
/// tell a genuine fan-out measurement from two runs of the same serial
/// path.
pub fn parallel_fit_enabled(n_elements: usize) -> bool {
    n_elements >= MIN_PAR_FIT_ELEMENTS
        && rayon::current_num_threads() > 1
        && std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) > 1
}

/// The fitting core: fit every element over `xs` and bundle the models.
///
/// Instructions are independent fitting problems, so the element fits fan
/// out over `(block, instruction)` pairs with rayon — but only when the
/// fan-out can pay for itself (see [`parallel_fit_enabled`]). The collect
/// is ordered and the fits of each pair are concatenated in pair order, so
/// the output is bit-identical to serial evaluation at any thread count.
fn fit_sorted(
    sorted: &[&TaskTrace],
    xs: &[f64],
    tx: f64,
    out_nranks: u32,
    cfg: &ExtrapolationConfig,
    obs: &ObsContext,
) -> SignatureFit {
    let base = *sorted.last().expect("nonempty");
    let feature_ids = FeatureId::all(base.depth);

    // `(pair, block, instruction)`: `pair` is the flat instruction index —
    // the row of the element-series matrix gathered below.
    let pairs: Vec<(usize, usize, usize)> = base
        .blocks
        .iter()
        .enumerate()
        .flat_map(|(bi, bb)| (0..bb.instrs.len()).map(move |ii| (bi, ii)))
        .enumerate()
        .map(|(p, (bi, ii))| (p, bi, ii))
        .collect();
    // One columnar gather up front: after this, no fit touches a trace
    // record again — every series is a contiguous slice.
    let series = ElementSeries::gather(sorted, &feature_ids);
    let parallel = parallel_fit_enabled(pairs.len() * feature_ids.len());
    let fits: Vec<ElementFit> = if parallel {
        pairs
            .par_iter()
            .map(|&(p, bi, ii)| fit_instr(sorted, &series, p, xs, tx, cfg, &feature_ids, bi, ii))
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect()
    } else {
        pairs
            .iter()
            .flat_map(|&(p, bi, ii)| {
                fit_instr(sorted, &series, p, xs, tx, cfg, &feature_ids, bi, ii)
            })
            .collect()
    };

    // Observability: per-canonical-form win counts are a pure function of
    // the input series, so they are identical on the serial and parallel
    // paths; which path ran depends on the installed thread pool and is
    // therefore recorded under the scheduling-dependent prefix.
    let metrics = obs.metrics();
    if metrics.enabled() {
        metrics
            .counter(if parallel {
                "sched.extrap.parallel_fit_calls"
            } else {
                "sched.extrap.serial_fit_calls"
            })
            .incr();
        metrics
            .counter("extrap.elements_fit")
            .add(fits.len() as u64);
        let mut wins: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for fit in &fits {
            *wins.entry(fit.model.form.label()).or_insert(0) += 1;
        }
        for (label, n) in wins {
            metrics.counter(&format!("extrap.fit_wins.{label}")).add(n);
        }
    }
    // Journal: one instant per element fit decision. Emitted here, after
    // the (possibly parallel) fan-out reassembled in pair order, so the
    // stream order is deterministic; only the which-path-ran marker is
    // scheduling-dependent and carries the sched. prefix for masking.
    let journal = obs.journal();
    if journal.enabled() {
        journal.instant(
            if parallel {
                "sched.extrap.parallel_fit"
            } else {
                "sched.extrap.serial_fit"
            },
            "fit",
            &[],
        );
        for (i, fit) in fits.iter().enumerate() {
            journal.instant(
                &format!("extrap.fit.{}", fit.model.form.label()),
                "fit",
                &[
                    ("index", i as f64),
                    ("sse", fit.model.sse),
                    ("influence", fit.influence),
                ],
            );
        }
    }

    // Block-level invocation/iteration counts get the same treatment.
    let block_models = (0..base.blocks.len())
        .map(|bi| {
            let series = |f: &dyn Fn(&TaskTrace) -> f64| -> Vec<f64> {
                sorted.iter().map(|t| f(t)).collect()
            };
            BlockModels {
                invocations: select_best_guarded(
                    &cfg.forms,
                    xs,
                    &series(&|t| t.blocks[bi].invocations as f64),
                    cfg.criterion,
                    tx,
                ),
                iterations: select_best_guarded(
                    &cfg.forms,
                    xs,
                    &series(&|t| t.blocks[bi].iterations as f64),
                    cfg.criterion,
                    tx,
                ),
            }
        })
        .collect();

    SignatureFit {
        base: base.clone(),
        target_x: tx,
        out_nranks,
        fits,
        block_models,
    }
}

/// The *Synthesize* phase: evaluates every fitted model at the target,
/// post-processes the vectors back to physical ranges (counts clamped
/// non-negative, rates to `[0, 1]` with cumulative monotonicity across
/// cache levels restored), and assembles the synthetic trace.
///
/// Deterministic and bit-identical to the fused extrapolation APIs.
pub fn synthesize_from_fit(fit: &SignatureFit) -> TaskTrace {
    let base = &fit.base;
    let tx = fit.target_x;
    let feature_ids = FeatureId::all(base.depth);
    let mut chunks = fit.fits.chunks(feature_ids.len());

    let mut out_blocks = Vec::with_capacity(base.blocks.len());
    for (bb, models) in base.blocks.iter().zip(&fit.block_models) {
        let mut out_instrs = Vec::with_capacity(bb.instrs.len());
        for base_instr in &bb.instrs {
            let instr_fits = chunks.next().expect("one fit chunk per instruction");
            let mut features = base_instr.features;
            for ef in instr_fits {
                let fid = ef.feature;
                let mut v = ef.model.eval(tx);
                if fid.is_rate() {
                    v = v.clamp(0.0, 1.0);
                } else if fid == FeatureId::Ilp {
                    v = v.max(1.0);
                } else {
                    v = v.max(0.0);
                }
                features.set(fid, v);
            }
            // Restore cumulative monotonicity of the hit-rate vector.
            for l in 1..features.hit_rates.len() {
                features.hit_rates[l] = features.hit_rates[l].max(features.hit_rates[l - 1]);
            }
            for l in base.depth..features.hit_rates.len() {
                features.hit_rates[l] = 1.0;
            }
            out_instrs.push(xtrace_tracer::InstrRecord {
                instr: base_instr.instr,
                pattern: base_instr.pattern.clone(),
                features,
            });
        }

        out_blocks.push(xtrace_tracer::BlockRecord {
            name: bb.name.clone(),
            source: bb.source.clone(),
            invocations: models.invocations.eval(tx).max(0.0).round() as u64,
            iterations: models.iterations.eval(tx).max(0.0).round() as u64,
            instrs: out_instrs,
        });
    }

    TaskTrace {
        app: base.app.clone(),
        rank: base.rank,
        nranks: fit.out_nranks,
        machine: base.machine.clone(),
        depth: base.depth,
        blocks: out_blocks,
    }
}

/// Builds the [`FitDiagnostics`](xtrace_obs::FitDiagnostics) record for a
/// completed fit: per element, the winner plus the SSE/R² of *every*
/// applicable candidate form (re-fit from the stored training values —
/// cheap, and it keeps the fitting hot path untouched), the winner's
/// training-point residuals, and the extrapolation distance.
///
/// `xs` are the training core counts in ascending order — the same
/// abscissas [`fit_signature`] fitted over. Elements whose stored value
/// series does not match `xs` in length (foreign `SignatureFit`s) get
/// empty candidate/residual lists rather than wrong numbers.
///
/// Pure function of the fit, so the artifact is bit-identical across
/// thread counts.
pub fn diagnose_fit(
    fit: &SignatureFit,
    xs: &[f64],
    cfg: &ExtrapolationConfig,
) -> xtrace_obs::FitDiagnostics {
    let mut form_wins: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut elements = Vec::with_capacity(fit.fits.len());
    for ef in &fit.fits {
        let winner = ef.model.form.label().to_string();
        *form_wins.entry(winner.clone()).or_insert(0) += 1;
        let ys = &ef.values;
        let n = ys.len() as f64;
        let mean = if ys.is_empty() {
            0.0
        } else {
            ys.iter().sum::<f64>() / n
        };
        let ss_tot: f64 = ys.iter().map(|y| (y - mean) * (y - mean)).sum();
        let (candidates, residuals) = if ys.len() == xs.len() && !ys.is_empty() {
            let candidates = fit_all(&cfg.forms, xs, ys)
                .iter()
                .map(|m| xtrace_obs::CandidateFit {
                    form: m.form.label().to_string(),
                    sse: m.sse,
                    r2: m.r2(ss_tot),
                })
                .collect();
            let residuals = xs
                .iter()
                .zip(ys)
                .map(|(&x, &y)| y - ef.model.eval(x))
                .collect();
            (candidates, residuals)
        } else {
            (Vec::new(), Vec::new())
        };
        elements.push(xtrace_obs::ElementDiagnostics {
            block: ef.block.clone(),
            instr: ef.instr,
            feature: ef.feature.label(),
            winner,
            winner_sse: ef.model.sse,
            winner_r2: ef.model.r2(ss_tot),
            candidates,
            residuals,
            influence: ef.influence,
        });
    }
    xtrace_obs::FitDiagnostics {
        target_x: fit.target_x,
        training_xs: xs.to_vec(),
        form_wins,
        elements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_ir::SourceLoc;
    use xtrace_tracer::{BlockRecord, FeatureVector, InstrRecord};

    /// Builds a synthetic training trace at `p` cores where each feature
    /// follows a known law:
    ///   mem_ops = 1e9 / p (power/exp-ish), hit L1 = 0.8 constant,
    ///   hit L2 = 0.1 + 5e-5 p (linear), exec = 100 + 3 ln p (log).
    fn trace_at(p: u32) -> TaskTrace {
        let pf = f64::from(p);
        let mut f = FeatureVector {
            exec_count: 100.0 + 3.0 * pf.ln(),
            mem_ops: 1e9 / pf,
            loads: 1e9 / pf,
            bytes_per_ref: 8.0,
            working_set: 1e8 / pf,
            ilp: 2.0,
            ..Default::default()
        };
        f.hit_rates = [0.3, 0.35 + 5e-5 * pf, 1.0, 1.0];
        TaskTrace {
            app: "t".into(),
            rank: 0,
            nranks: p,
            machine: "m".into(),
            depth: 2,
            blocks: vec![BlockRecord {
                name: "k".into(),
                source: SourceLoc::new("a.c", 1, "f"),
                invocations: 10,
                iterations: (1e6 / pf) as u64,
                instrs: vec![InstrRecord {
                    instr: 0,
                    pattern: "strided".into(),
                    features: f,
                }],
            }],
        }
    }

    fn training() -> Vec<TaskTrace> {
        vec![trace_at(1024), trace_at(2048), trace_at(4096)]
    }

    #[test]
    fn extrapolates_each_law_correctly() {
        let cfg = ExtrapolationConfig::default();
        let out = extrapolate_signature(&training(), 8192, &cfg).unwrap();
        assert_eq!(out.nranks, 8192);
        let f = &out.blocks[0].instrs[0].features;
        // Constant element.
        assert!((f.hit_rates[0] - 0.3).abs() < 1e-9, "L1 {}", f.hit_rates[0]);
        // Linear element.
        let expect_l2 = 0.35 + 5e-5 * 8192.0;
        assert!(
            (f.hit_rates[1] - expect_l2).abs() < 1e-6,
            "L2 {} vs {expect_l2}",
            f.hit_rates[1]
        );
        // Logarithmic element.
        let expect_exec = 100.0 + 3.0 * 8192f64.ln();
        assert!(
            (f.exec_count - expect_exec).abs() / expect_exec < 1e-9,
            "exec {} vs {expect_exec}",
            f.exec_count
        );
    }

    #[test]
    fn inverse_scaling_extrapolates_within_tolerance() {
        // 1/p is none of the paper's four forms; the best of the four must
        // still land in the right regime (the paper reports <20% element
        // error for exactly this reason).
        let cfg = ExtrapolationConfig::default();
        let out = extrapolate_signature(&training(), 8192, &cfg).unwrap();
        let got = out.blocks[0].instrs[0].features.mem_ops;
        let truth = 1e9 / 8192.0;
        let rel = (got - truth).abs() / truth;
        // Hyperbolic decay is outside the span of the four forms; the best
        // sane pick (exponential) lands within a small factor, and the
        // extended power form (Section VI) removes the bias — see
        // `extended_forms_nail_inverse_scaling`.
        assert!(got > 0.0, "guarded extrapolation stays positive");
        assert!(rel < 0.8, "mem_ops rel err {rel}");
    }

    #[test]
    fn extended_forms_nail_inverse_scaling() {
        // The Section-VI power form fits 1/p exactly.
        let cfg = ExtrapolationConfig {
            forms: CanonicalForm::EXTENDED_SET.to_vec(),
            ..Default::default()
        };
        let out = extrapolate_signature(&training(), 8192, &cfg).unwrap();
        let got = out.blocks[0].instrs[0].features.mem_ops;
        let truth = 1e9 / 8192.0;
        assert!((got - truth).abs() / truth < 1e-6);
    }

    #[test]
    fn detailed_reports_chosen_forms() {
        let cfg = ExtrapolationConfig::default();
        let (_, fits) = extrapolate_signature_detailed(&training(), 8192, &cfg).unwrap();
        let find = |fid: FeatureId| fits.iter().find(|f| f.feature == fid).unwrap();
        assert_eq!(
            find(FeatureId::HitRate(0)).model.form,
            CanonicalForm::Constant
        );
        assert_eq!(
            find(FeatureId::HitRate(1)).model.form,
            CanonicalForm::Linear
        );
        assert_eq!(
            find(FeatureId::ExecCount).model.form,
            CanonicalForm::Logarithmic
        );
        assert_eq!(find(FeatureId::ExecCount).values.len(), 3);
    }

    #[test]
    fn hit_rates_stay_probabilities_and_monotone() {
        // Construct traces whose linear L2 fit would exceed 1 at the target.
        let mut traces = training();
        for t in &mut traces {
            let p = f64::from(t.nranks);
            t.blocks[0].instrs[0].features.hit_rates[1] = 0.5 + 1.2e-4 * p;
            t.blocks[0].instrs[0].features.hit_rates[0] = 0.4;
        }
        let out = extrapolate_signature(&traces, 8192, &ExtrapolationConfig::default()).unwrap();
        let hr = out.blocks[0].instrs[0].features.hit_rates;
        assert!(hr[1] <= 1.0);
        assert!(hr[0] <= hr[1] + 1e-12);
        assert!(hr[1] <= hr[2] + 1e-12);
        assert_eq!(hr[2], 1.0, "beyond-depth levels pinned to 1");
    }

    #[test]
    fn counts_never_go_negative() {
        // Steeply decreasing linear series would cross zero at the target.
        let mut traces = training();
        for t in &mut traces {
            let p = f64::from(t.nranks);
            t.blocks[0].instrs[0].features.fp_add = (5000.0 - p).max(0.0);
        }
        let out = extrapolate_signature(&traces, 8192, &ExtrapolationConfig::default()).unwrap();
        assert!(out.blocks[0].instrs[0].features.fp_add >= 0.0);
    }

    #[test]
    fn rejects_too_few_traces() {
        let t = training();
        let err =
            extrapolate_signature(&t[..2], 8192, &ExtrapolationConfig::default()).unwrap_err();
        assert_eq!(err, ExtrapolationError::TooFewTraces { got: 2, need: 3 });
    }

    #[test]
    fn rejects_duplicate_core_counts() {
        let t = vec![trace_at(1024), trace_at(1024), trace_at(4096)];
        assert_eq!(
            extrapolate_signature(&t, 8192, &ExtrapolationConfig::default()).unwrap_err(),
            ExtrapolationError::DuplicateCoreCount(1024)
        );
    }

    #[test]
    fn rejects_target_not_larger() {
        let err =
            extrapolate_signature(&training(), 4096, &ExtrapolationConfig::default()).unwrap_err();
        assert_eq!(
            err,
            ExtrapolationError::TargetNotLarger {
                target: 4096,
                max_input: 4096
            }
        );
    }

    #[test]
    fn rejects_mismatched_blocks() {
        let mut t = training();
        t[1].blocks[0].name = "other".into();
        assert!(matches!(
            extrapolate_signature(&t, 8192, &ExtrapolationConfig::default()),
            Err(ExtrapolationError::MismatchedBlocks { .. })
        ));
    }

    #[test]
    fn rejects_mismatched_apps_and_machines() {
        let mut t = training();
        t[0].app = "other-app".into();
        assert!(matches!(
            extrapolate_signature(&t, 8192, &ExtrapolationConfig::default()),
            Err(ExtrapolationError::MismatchedApps(..))
        ));
        let mut t = training();
        t[2].machine = "other-machine".into();
        assert!(matches!(
            extrapolate_signature(&t, 8192, &ExtrapolationConfig::default()),
            Err(ExtrapolationError::MismatchedMachines(..))
        ));
    }

    #[test]
    fn rejects_mismatched_instr_counts() {
        let mut t = training();
        let extra = t[1].blocks[0].instrs[0].clone();
        t[1].blocks[0].instrs.push(extra);
        assert!(matches!(
            extrapolate_signature(&t, 8192, &ExtrapolationConfig::default()),
            Err(ExtrapolationError::MismatchedInstrCount { .. })
        ));
    }

    #[test]
    fn input_order_does_not_matter() {
        let cfg = ExtrapolationConfig::default();
        let fwd = extrapolate_signature(&training(), 8192, &cfg).unwrap();
        let mut rev = training();
        rev.reverse();
        let bwd = extrapolate_signature(&rev, 8192, &cfg).unwrap();
        assert_eq!(fwd, bwd);
    }

    #[test]
    fn block_invocations_and_iterations_extrapolate() {
        let out =
            extrapolate_signature(&training(), 8192, &ExtrapolationConfig::default()).unwrap();
        assert_eq!(out.blocks[0].invocations, 10, "constant invocations");
        let truth = 1e6 / 8192.0;
        let got = out.blocks[0].iterations as f64;
        assert!(got > 0.0, "iterations stay positive");
        assert!((got - truth).abs() / truth < 0.8, "{got} vs {truth}");
    }

    #[test]
    fn series_extrapolation_over_problem_size() {
        // Input-parameter sensitivity (Section VI): the abscissa is a
        // problem size, not a core count. mem_ops grows linearly with it.
        let mk = |size: f64| {
            let mut t = trace_at(1024);
            t.blocks[0].instrs[0].features.mem_ops = 50.0 * size;
            t.blocks[0].instrs[0].features.loads = 50.0 * size;
            t.blocks[0].instrs[0].features.exec_count = 50.0 * size;
            t
        };
        let points = vec![(1e6, mk(1e6)), (2e6, mk(2e6)), (4e6, mk(4e6))];
        let out = extrapolate_series(&points, 1e7, &ExtrapolationConfig::default()).unwrap();
        assert_eq!(out.nranks, 1024, "core count carried through unchanged");
        let got = out.blocks[0].instrs[0].features.mem_ops;
        assert!((got - 5e8).abs() / 5e8 < 1e-9, "linear-in-size: {got}");
    }

    #[test]
    fn series_rejects_duplicate_and_nonfinite_points() {
        let t0 = trace_at(1024);
        let points = vec![(1e6, t0.clone()), (1e6, t0.clone()), (4e6, t0.clone())];
        assert_eq!(
            extrapolate_series(&points, 1e7, &ExtrapolationConfig::default()).unwrap_err(),
            ExtrapolationError::DuplicatePoint(1e6)
        );
        let points = vec![(f64::NAN, t0.clone()), (2e6, t0.clone()), (4e6, t0.clone())];
        assert!(matches!(
            extrapolate_series(&points, 1e7, &ExtrapolationConfig::default()),
            Err(ExtrapolationError::NonFinitePoint(_))
        ));
    }

    #[test]
    fn series_rejects_target_inside_training_range() {
        let t0 = trace_at(1024);
        let points = vec![(1.0, t0.clone()), (2.0, t0.clone()), (4.0, t0.clone())];
        assert!(matches!(
            extrapolate_series(&points, 3.0, &ExtrapolationConfig::default()),
            Err(ExtrapolationError::TargetNotBeyond { .. })
        ));
    }

    #[test]
    fn signature_and_series_agree_on_core_count_axis() {
        // The signature API is the series API with x = nranks.
        let traces = training();
        let points: Vec<(f64, TaskTrace)> = traces
            .iter()
            .map(|t| (f64::from(t.nranks), t.clone()))
            .collect();
        let a = extrapolate_signature(&traces, 8192, &ExtrapolationConfig::default()).unwrap();
        let mut b = extrapolate_series(&points, 8192.0, &ExtrapolationConfig::default()).unwrap();
        // The series API labels the output with the base count.
        b.nranks = 8192;
        assert_eq!(a, b);
    }

    #[test]
    fn diagnose_fit_reports_candidates_residuals_and_distance() {
        let traces = training();
        let cfg = ExtrapolationConfig::default();
        let fit = fit_signature(&traces, 8192, &cfg).unwrap();
        let xs: Vec<f64> = {
            let mut xs: Vec<f64> = traces.iter().map(|t| f64::from(t.nranks)).collect();
            xs.sort_by(f64::total_cmp);
            xs
        };
        let diag = diagnose_fit(&fit, &xs, &cfg);
        assert_eq!(diag.elements.len(), fit.fits.len());
        assert_eq!(diag.form_wins.values().sum::<u64>(), fit.fits.len() as u64);
        assert_eq!(
            diag.extrapolation_distance(),
            8192.0 / xs.last().copied().unwrap()
        );
        for (e, ef) in diag.elements.iter().zip(&fit.fits) {
            assert_eq!(e.winner, ef.model.form.label());
            assert_eq!(e.residuals.len(), xs.len());
            // The winner must be among the candidates with the same SSE.
            let winner = e
                .candidates
                .iter()
                .find(|c| c.form == e.winner)
                .expect("winner among candidates");
            assert!((winner.sse - e.winner_sse).abs() <= 1e-9 * (1.0 + e.winner_sse.abs()));
        }
        // Deterministic: a second diagnosis is bit-identical.
        assert_eq!(diag, diagnose_fit(&fit, &xs, &cfg));
    }

    #[test]
    fn errors_display_readably() {
        let e = ExtrapolationError::TooFewTraces { got: 1, need: 3 };
        assert!(e.to_string().contains("1 training traces"));
        let e = ExtrapolationError::TargetNotLarger {
            target: 10,
            max_input: 20,
        };
        assert!(e.to_string().contains("exceed"));
    }
}
