//! # xtrace-psins — convolution and ground-truth simulation
//!
//! The PMaC convolution "maps the operations required by the application
//! (the application signature) to their expected behavior on the target
//! machine (the machine profile)"; the PSiNS simulator "replays the entire
//! execution of the HPC application on the target/predicted system in order
//! to calculate a predicted runtime" (Section III). This crate provides
//! both that prediction path and the independent "measured" number Table I
//! compares against:
//!
//! * [`predict::try_predict_runtime`] — Eq. (1): per-instruction memory time
//!   from operation counts, reference sizes, and MultiMAPS-surface
//!   bandwidth looked up by cache hit rates; floating-point time from the
//!   machine's arithmetic rates; per-block overlap combining; communication
//!   replayed through the network model. Consumes a [`TaskTrace`] — either
//!   collected or extrapolated, which is the entire point.
//! * [`ground_truth::ground_truth`] — the execution-driven stand-in for
//!   wall-clock measurement: the same rank's address streams are charged
//!   *exact per-access* costs (level latency, streaming prefetch, store
//!   penalty) instead of surface-bucketed bandwidths. The gap between
//!   prediction and ground truth is genuine modeling error — the surface
//!   cannot distinguish miss *patterns* with equal hit rates — mirroring
//!   the few-percent errors the real framework reports.

#![warn(missing_docs)]

pub mod energy;
pub mod ground_truth;
pub mod predict;
pub mod replay;

#[allow(deprecated)] // the deprecated panicking forms stay re-exported until removal
pub use energy::predict_energy;
pub use energy::{try_predict_energy, EnergyPrediction};
pub use ground_truth::{
    ground_truth, ground_truth_for_rank, ground_truth_for_rank_obs, ground_truth_obs, GroundTruth,
};
#[allow(deprecated)] // the deprecated panicking forms stay re-exported until removal
pub use predict::predict_runtime;
pub use predict::{try_predict_runtime, BlockTime, Prediction};
pub use replay::{
    ground_truth_application, try_replay_groups, try_replay_groups_traced, ConvolveCache,
    GroupBlockTimes, GroupComputeModel,
};
#[allow(deprecated)] // the deprecated panicking forms stay re-exported until removal
pub use replay::{replay_groups, replay_groups_traced};

use xtrace_tracer::TaskTrace;

/// Why a prediction could not be computed.
#[derive(Clone, PartialEq)]
#[non_exhaustive]
pub enum PredictError {
    /// The trace's simulated hierarchy does not match the profile the
    /// prediction was asked against — its hit rates would be meaningless.
    MachineMismatch {
        /// Machine the trace was collected against.
        trace_machine: String,
        /// Machine the prediction was requested for.
        profile_machine: String,
    },
    /// Signature groups cover fewer ranks than the replay needs.
    GroupCoverage {
        /// Ranks the groups cover.
        covered: u64,
        /// Ranks the replay was asked for.
        needed: u64,
    },
    /// The bulk-synchronous replay itself failed (malformed rank programs,
    /// an SPMD violation, or a bad neighbor list).
    Simulation {
        /// The engine's error description.
        detail: String,
    },
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::MachineMismatch {
                trace_machine,
                profile_machine,
            } => write!(
                f,
                "trace was collected against {trace_machine:?}, not {profile_machine:?}"
            ),
            PredictError::GroupCoverage { covered, needed } => {
                write!(f, "groups cover {covered} ranks, need {needed}")
            }
            PredictError::Simulation { detail } => {
                write!(f, "replay simulation failed: {detail}")
            }
        }
    }
}

// Debug delegates to Display so `.expect(...)` panics in the panicking
// wrappers carry the human-readable message (and the substrings the
// long-standing `#[should_panic(expected = ...)]` tests assert on).
impl std::fmt::Debug for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for PredictError {}

/// Convenience: absolute relative error between a prediction and a
/// reference runtime, as reported in the paper's Table I.
pub fn relative_error(predicted: f64, measured: f64) -> f64 {
    assert!(measured > 0.0, "measured runtime must be positive");
    (predicted - measured).abs() / measured
}

/// Shared helper: the per-block FP time of a trace block on a machine.
pub(crate) fn block_fp_seconds(
    block: &xtrace_tracer::BlockRecord,
    machine: &xtrace_machine::MachineProfile,
) -> f64 {
    let mut adds = 0.0f64;
    let mut muls = 0.0f64;
    let mut divs = 0.0f64;
    let mut sqrts = 0.0f64;
    let mut fmas = 0.0f64;
    let mut ilp = 1.0f64;
    for i in &block.instrs {
        adds += i.features.fp_add;
        muls += i.features.fp_mul;
        divs += i.features.fp_div;
        sqrts += i.features.fp_sqrt;
        fmas += i.features.fp_fma;
        ilp = ilp.max(i.features.ilp);
    }
    machine.fp.seconds(
        adds as u64,
        muls as u64,
        divs as u64,
        sqrts as u64,
        fmas as u64,
        ilp,
        machine.clock_hz,
    )
}

/// Shared helper: typed check that a trace was simulated against the given
/// machine.
pub(crate) fn try_check_machine(
    trace: &TaskTrace,
    machine: &xtrace_machine::MachineProfile,
) -> Result<(), PredictError> {
    if trace.machine == machine.name {
        Ok(())
    } else {
        Err(PredictError::MachineMismatch {
            trace_machine: trace.machine.clone(),
            profile_machine: machine.name.clone(),
        })
    }
}

/// Shared helper: sanity-check that a trace was simulated against the given
/// machine.
pub(crate) fn check_machine(trace: &TaskTrace, machine: &xtrace_machine::MachineProfile) {
    assert_eq!(
        trace.machine, machine.name,
        "trace was collected against {:?}, not {:?}",
        trace.machine, machine.name
    );
}
