//! Energy prediction from application signatures.
//!
//! The paper's opening move is that its features are "important for both
//! performance and energy"; the PMaC publications around it (Laurenzano et
//! al., Euro-Par'11; Tiwari et al., HPPAC'12) convolve the same signatures
//! with per-operation energy costs. This module does that: dynamic energy
//! from the per-instruction operation counts and hit rates (references
//! apportioned to the exact level that served them), static energy from the
//! predicted runtime, network energy from the communication profile.
//!
//! Because the inputs are exactly the feature-vector elements the
//! extrapolator synthesizes, *energy at scale* can be predicted from an
//! extrapolated trace the same way runtime is — tested below.

use serde::{Deserialize, Serialize};
use xtrace_machine::MachineProfile;
use xtrace_spmd::{CommKind, CommProfile};
use xtrace_tracer::TaskTrace;

use crate::predict::predict_checked;
use crate::{check_machine, try_check_machine, PredictError};

/// A predicted energy budget for the traced task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyPrediction {
    /// Dynamic energy of memory references, in joules.
    pub memory_joules: f64,
    /// Dynamic energy of floating-point work, in joules.
    pub fp_joules: f64,
    /// Network-interface energy, in joules.
    pub comm_joules: f64,
    /// Static (leakage/idle) energy over the predicted runtime, in joules.
    pub static_joules: f64,
    /// Total energy, in joules.
    pub total_joules: f64,
    /// Implied average power (total energy / predicted runtime), in watts.
    pub avg_watts: f64,
    /// The runtime prediction the static component integrates over.
    pub runtime_seconds: f64,
}

/// Bytes a task pushes onto the network per the communication profile.
fn comm_bytes(comm: &CommProfile) -> f64 {
    comm.events
        .iter()
        .map(|e| {
            let per = match e.kind {
                CommKind::Exchange => e.bytes * u64::from(e.neighbors),
                // Tree collectives: one payload per tree stage.
                CommKind::Allreduce => {
                    e.bytes * 2 * u64::from(xtrace_spmd::NetworkModel::tree_depth(comm.nranks))
                }
                CommKind::Broadcast => {
                    e.bytes * u64::from(xtrace_spmd::NetworkModel::tree_depth(comm.nranks))
                }
                CommKind::Alltoall => e.bytes * u64::from(comm.nranks.saturating_sub(1)),
                CommKind::Barrier => 0,
            };
            (per * e.repeats) as f64
        })
        .sum()
}

/// Predicts the traced task's energy on `machine` (works identically for
/// collected and extrapolated traces).
///
/// Fails with [`PredictError::MachineMismatch`] if the trace was simulated
/// against a different machine than `machine`.
pub fn try_predict_energy(
    trace: &TaskTrace,
    comm: &CommProfile,
    machine: &MachineProfile,
) -> Result<EnergyPrediction, PredictError> {
    try_check_machine(trace, machine)?;
    Ok(energy_checked(trace, comm, machine))
}

/// Panicking form of [`try_predict_energy`] for traces known to match the
/// machine.
///
/// # Panics
///
/// Panics if the trace was simulated against a different machine than
/// `machine`.
#[deprecated(
    since = "0.1.0",
    note = "use try_predict_energy and handle PredictError; the panicking \
            form will be removed"
)]
pub fn predict_energy(
    trace: &TaskTrace,
    comm: &CommProfile,
    machine: &MachineProfile,
) -> EnergyPrediction {
    check_machine(trace, machine);
    energy_checked(trace, comm, machine)
}

/// Energy model over a trace already known to match `machine`.
fn energy_checked(
    trace: &TaskTrace,
    comm: &CommProfile,
    machine: &MachineProfile,
) -> EnergyPrediction {
    let power = &machine.power;
    let mut memory_joules = 0.0;
    let mut fp_joules = 0.0;
    for block in &trace.blocks {
        for instr in &block.instrs {
            let f = &instr.features;
            if f.mem_ops > 0.0 {
                memory_joules +=
                    power.memory_joules(f.mem_ops, &f.hit_rates[..trace.depth], trace.depth);
            }
            // FLOPs: FMA counts double.
            let flops = f.fp_add + f.fp_mul + f.fp_div + f.fp_sqrt + 2.0 * f.fp_fma;
            fp_joules += power.fp_joules(flops);
        }
    }
    let runtime = predict_checked(trace, comm, machine).total_seconds;
    let comm_joules = power.net_joules(comm_bytes(comm));
    let static_joules = power.static_joules(runtime);
    let total = memory_joules + fp_joules + comm_joules + static_joules;
    EnergyPrediction {
        memory_joules,
        fp_joules,
        comm_joules,
        static_joules,
        total_joules: total,
        avg_watts: if runtime > 0.0 { total / runtime } else { 0.0 },
        runtime_seconds: runtime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_apps::{ProxyApp, SpecfemProxy, StencilProxy};
    use xtrace_extrap::{extrapolate_signature, ExtrapolationConfig};
    use xtrace_machine::presets;
    use xtrace_tracer::{collect_signature_with, TracerConfig};

    fn stencil_energy(p: u32) -> EnergyPrediction {
        let app = StencilProxy::medium();
        let machine = presets::cray_xt5();
        let sig = collect_signature_with(&app, p, &machine, &TracerConfig::fast());
        try_predict_energy(sig.longest_task(), &sig.comm, &machine).expect("machine matches")
    }

    #[test]
    fn energy_decomposes_and_is_positive() {
        let e = stencil_energy(8);
        assert!(e.memory_joules > 0.0);
        assert!(e.fp_joules > 0.0);
        assert!(e.comm_joules > 0.0);
        assert!(e.static_joules > 0.0);
        let sum = e.memory_joules + e.fp_joules + e.comm_joules + e.static_joules;
        assert!((e.total_joules - sum).abs() < 1e-12);
        assert!(e.avg_watts > 0.0);
    }

    #[test]
    fn average_power_exceeds_the_static_floor() {
        let e = stencil_energy(8);
        let machine = presets::cray_xt5();
        assert!(e.avg_watts > machine.power.static_watts);
        // ... but stays within an order of magnitude of it (sanity).
        assert!(e.avg_watts < 100.0 * machine.power.static_watts);
    }

    #[test]
    fn strong_scaling_cuts_per_task_energy() {
        let e4 = stencil_energy(4);
        let e16 = stencil_energy(16);
        assert!(e16.total_joules < e4.total_joules);
    }

    #[test]
    fn extrapolated_energy_matches_collected_energy() {
        // The headline extension: energy at scale from the synthetic trace.
        let mut app = SpecfemProxy::small();
        app.cfg.total_elements = 6144;
        app.cfg.timesteps = 10;
        app.cfg.collect_per_rank = 4096;
        let machine = presets::cray_xt5();
        let cfg = TracerConfig::fast();
        let training: Vec<_> = [6u32, 24, 96]
            .iter()
            .map(|&p| {
                collect_signature_with(&app, p, &machine, &cfg)
                    .longest_task()
                    .clone()
            })
            .collect();
        let ex = extrapolate_signature(&training, 384, &ExtrapolationConfig::default()).unwrap();
        let coll = collect_signature_with(&app, 384, &machine, &cfg);
        let comm = app.comm_profile(384);
        let e_ex = try_predict_energy(&ex, &comm, &machine).expect("machine matches");
        let e_coll =
            try_predict_energy(coll.longest_task(), &coll.comm, &machine).expect("machine matches");
        let gap = (e_ex.total_joules - e_coll.total_joules).abs() / e_coll.total_joules;
        assert!(
            gap < 0.05,
            "extrapolated {} J vs collected {} J (gap {gap})",
            e_ex.total_joules,
            e_coll.total_joules
        );
    }

    #[test]
    fn worse_locality_costs_more_energy() {
        let app = StencilProxy::medium();
        let machine = presets::cray_xt5();
        let sig = collect_signature_with(&app, 4, &machine, &TracerConfig::fast());
        let base =
            try_predict_energy(sig.longest_task(), &sig.comm, &machine).expect("machine matches");
        let mut degraded = sig.longest_task().clone();
        for b in &mut degraded.blocks {
            for i in &mut b.instrs {
                for h in i.features.hit_rates.iter_mut().take(degraded.depth) {
                    *h *= 0.2;
                }
            }
        }
        let worse = try_predict_energy(&degraded, &sig.comm, &machine).expect("machine matches");
        assert!(worse.memory_joules > 3.0 * base.memory_joules);
    }
}
