//! The prediction path: Eq. (1) over a trace and a machine profile.
//!
//! ```text
//! memory_time = Σ_blocks Σ_refs (memory_ref[i,j] × size_of_ref) / memory_BW[j]
//! ```
//!
//! where a reference's "type" `j` — its place on the MultiMAPS surface —
//! is determined by its simulated cache hit rates. Floating-point time is
//! modeled "in a similar way with some overlap of memory and
//! floating-point work" (Section III-B): each block's memory and FP times
//! are combined with the machine's overlap factor, blocks are summed, and
//! the communication profile is replayed through the network model.

use serde::{Deserialize, Serialize};
use xtrace_machine::MachineProfile;
use xtrace_spmd::CommProfile;
use xtrace_tracer::TaskTrace;

use crate::{block_fp_seconds, check_machine, try_check_machine, PredictError};

/// Per-block time breakdown of a prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockTime {
    /// Block name.
    pub name: String,
    /// Eq. (1) memory time in seconds.
    pub memory_s: f64,
    /// Floating-point time in seconds.
    pub fp_s: f64,
    /// Overlap-combined block time.
    pub combined_s: f64,
}

/// A predicted application runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Total memory time across blocks.
    pub memory_seconds: f64,
    /// Total FP time across blocks.
    pub fp_seconds: f64,
    /// Overlap-combined computation time.
    pub compute_seconds: f64,
    /// Replayed communication time.
    pub comm_seconds: f64,
    /// Predicted application runtime (compute + communication).
    pub total_seconds: f64,
    /// Per-block breakdown, in trace order.
    pub per_block: Vec<BlockTime>,
}

/// Predicts the application runtime from a task trace (collected *or*
/// extrapolated), the communication profile, and a machine profile.
///
/// Fails with [`PredictError::MachineMismatch`] if the trace was simulated
/// against a different machine than `machine` (the hit rates would be
/// meaningless on another hierarchy).
pub fn try_predict_runtime(
    trace: &TaskTrace,
    comm: &CommProfile,
    machine: &MachineProfile,
) -> Result<Prediction, PredictError> {
    try_check_machine(trace, machine)?;
    Ok(predict_checked(trace, comm, machine))
}

/// Panicking form of [`try_predict_runtime`] for traces known to match the
/// machine.
///
/// # Panics
///
/// Panics if the trace was simulated against a different machine than
/// `machine`.
#[deprecated(
    since = "0.1.0",
    note = "use try_predict_runtime and handle PredictError; the panicking \
            form will be removed"
)]
pub fn predict_runtime(
    trace: &TaskTrace,
    comm: &CommProfile,
    machine: &MachineProfile,
) -> Prediction {
    check_machine(trace, machine);
    predict_checked(trace, comm, machine)
}

/// Eq. (1) over a trace already known to match `machine`.
pub(crate) fn predict_checked(
    trace: &TaskTrace,
    comm: &CommProfile,
    machine: &MachineProfile,
) -> Prediction {
    let surface = machine.surface();
    let mut per_block = Vec::with_capacity(trace.blocks.len());
    let mut memory_seconds = 0.0;
    let mut fp_seconds = 0.0;
    let mut compute_seconds = 0.0;

    for block in &trace.blocks {
        let mut mem_s = 0.0;
        for instr in &block.instrs {
            let f = &instr.features;
            if f.mem_ops > 0.0 {
                // The reference "type": hit rates plus access-pattern class
                // select the MultiMAPS bandwidth (Section III-B).
                let streaming = instr.pattern != "random";
                let bw = surface.lookup_class(&f.hit_rates[..trace.depth], streaming);
                debug_assert!(bw > 0.0, "surface bandwidth must be positive");
                let mut t = f.mem_ops * f.bytes_per_ref / bw;
                // Stores carry the machine's write-allocate surcharge on
                // top of the (load-measured) surface bandwidth.
                if f.stores > 0.0 {
                    let store_frac = f.stores / f.mem_ops;
                    t *= 1.0 + store_frac * (machine.mem_cost.store_penalty - 1.0);
                }
                mem_s += t;
            }
        }
        let fp_s = block_fp_seconds(block, machine);
        let combined = machine.combine_times(mem_s, fp_s);
        memory_seconds += mem_s;
        fp_seconds += fp_s;
        compute_seconds += combined;
        per_block.push(BlockTime {
            name: block.name.clone(),
            memory_s: mem_s,
            fp_s,
            combined_s: combined,
        });
    }

    let comm_seconds = comm.comm_seconds(&machine.net);
    Prediction {
        memory_seconds,
        fp_seconds,
        compute_seconds,
        comm_seconds,
        total_seconds: compute_seconds + comm_seconds,
        per_block,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_apps::StencilProxy;
    use xtrace_machine::presets;
    use xtrace_tracer::{collect_signature_with, TracerConfig};

    fn predict_stencil(p: u32) -> Prediction {
        let app = StencilProxy::medium();
        let machine = presets::cray_xt5();
        let sig = collect_signature_with(&app, p, &machine, &TracerConfig::fast());
        try_predict_runtime(sig.longest_task(), &sig.comm, &machine).expect("machine matches")
    }

    #[test]
    fn prediction_is_positive_and_decomposes() {
        let pred = predict_stencil(4);
        assert!(pred.total_seconds > 0.0);
        assert!(pred.memory_seconds > 0.0);
        assert!(pred.fp_seconds > 0.0);
        assert!(pred.comm_seconds > 0.0);
        assert!((pred.total_seconds - pred.compute_seconds - pred.comm_seconds).abs() < 1e-12);
        // Overlap: combined compute within [max, sum] of the parts.
        assert!(pred.compute_seconds >= pred.memory_seconds.max(pred.fp_seconds) - 1e-12);
        assert!(pred.compute_seconds <= pred.memory_seconds + pred.fp_seconds + 1e-12);
    }

    #[test]
    fn per_block_breakdown_sums_to_totals() {
        let pred = predict_stencil(4);
        let mem: f64 = pred.per_block.iter().map(|b| b.memory_s).sum();
        let combined: f64 = pred.per_block.iter().map(|b| b.combined_s).sum();
        assert!((mem - pred.memory_seconds).abs() < 1e-9);
        assert!((combined - pred.compute_seconds).abs() < 1e-9);
        assert_eq!(pred.per_block.len(), 2, "stencil proxy has two blocks");
    }

    #[test]
    fn strong_scaling_reduces_predicted_compute() {
        let p4 = predict_stencil(4);
        let p16 = predict_stencil(16);
        assert!(
            p16.compute_seconds < p4.compute_seconds / 2.0,
            "4x cores should cut compute well below half: {} vs {}",
            p16.compute_seconds,
            p4.compute_seconds
        );
    }

    #[test]
    fn worse_locality_means_more_memory_time() {
        // Same counts, degraded hit rates -> strictly more memory time.
        let app = StencilProxy::medium();
        let machine = presets::cray_xt5();
        let sig = collect_signature_with(&app, 4, &machine, &TracerConfig::fast());
        let base =
            try_predict_runtime(sig.longest_task(), &sig.comm, &machine).expect("machine matches");
        let mut degraded = sig.longest_task().clone();
        for b in &mut degraded.blocks {
            for i in &mut b.instrs {
                for h in i.features.hit_rates.iter_mut().take(degraded.depth) {
                    *h *= 0.3;
                }
            }
        }
        let worse = try_predict_runtime(&degraded, &sig.comm, &machine).expect("machine matches");
        assert!(worse.memory_seconds > 2.0 * base.memory_seconds);
    }

    #[test]
    #[should_panic(expected = "collected against")]
    #[allow(deprecated)] // the deprecated panicking form is what's under test
    fn rejects_wrong_machine() {
        let app = StencilProxy::small();
        let xt5 = presets::cray_xt5();
        let sig = collect_signature_with(&app, 2, &xt5, &TracerConfig::fast());
        let other = presets::opteron();
        predict_runtime(sig.longest_task(), &sig.comm, &other);
    }

    #[test]
    fn wrong_machine_is_a_typed_error() {
        let app = StencilProxy::small();
        let xt5 = presets::cray_xt5();
        let sig = collect_signature_with(&app, 2, &xt5, &TracerConfig::fast());
        let other = presets::opteron();
        let err = try_predict_runtime(sig.longest_task(), &sig.comm, &other).unwrap_err();
        assert_eq!(
            err,
            PredictError::MachineMismatch {
                trace_machine: xt5.name.clone(),
                profile_machine: other.name.clone(),
            }
        );
        assert!(err.to_string().contains("collected against"));
        // The matching case agrees with the panicking API bit-for-bit.
        let ok = try_predict_runtime(sig.longest_task(), &sig.comm, &xt5).unwrap();
        #[allow(deprecated)]
        let legacy = predict_runtime(sig.longest_task(), &sig.comm, &xt5);
        assert_eq!(ok, legacy);
    }

    #[test]
    fn relative_error_matches_definition() {
        assert!((crate::relative_error(139.0, 143.0) - 4.0 / 143.0).abs() < 1e-12);
        assert_eq!(crate::relative_error(100.0, 100.0), 0.0);
    }
}
