//! Whole-application replay: the full PSiNS role.
//!
//! "This mapping takes place in the PSiNS simulator that replays the
//! entire execution of the HPC application on the target/predicted system"
//! (Section III). The single-task prediction of [`crate::predict`] covers
//! the paper's evaluation; this module completes the replay picture: given
//! per-group traces (e.g. from the Section-VI full-signature synthesis),
//! every rank's compute segments are charged from its group's convolved
//! block times and the bulk-synchronous engine replays the whole event
//! script — synchronization waits, halo dependencies, collectives — to
//! produce an application-level runtime.
//!
//! The replay path is built to scale to the paper's target core counts
//! (6144/8192 ranks): convolution runs once per signature group (in
//! parallel across groups when a thread pool is available), the engine
//! deduplicates rank classes via [`xtrace_spmd::RankClasses`] so per-rank
//! program materialization never happens, and convolved group tables can
//! be memoized across pipeline runs through a [`ConvolveCache`].
//!
//! An exact counterpart, [`ground_truth_application`], runs every rank's
//! address streams with exact per-access costs through the same engine, so
//! replay predictions can be validated end to end.

use std::collections::HashMap;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use xtrace_machine::MachineProfile;
use xtrace_obs::ObsContext;
use xtrace_spmd::{ComputeModel, SimError, SimReport, SpmdApp, TimelineEntry};
use xtrace_tracer::{TaskTrace, TracerConfig};

use crate::ground_truth::ground_truth_for_rank;
use crate::predict::try_predict_runtime;
use crate::PredictError;

/// Convolved per-iteration block times of one signature group — the unit
/// of work a [`ConvolveCache`] memoizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupBlockTimes {
    /// Block names, in the group trace's block order.
    pub columns: Vec<String>,
    /// Convolved seconds per loop iteration, parallel to `columns`.
    pub per_iteration: Vec<f64>,
}

/// Memoization store for per-group convolution results.
///
/// The convolution of a group trace against a machine profile is pure, so
/// pipeline runs that share traces (e.g. resumed experiments, benches
/// sweeping core counts) can reuse it. `xtrace-core`'s `ArtifactStore`
/// implements this over its content-addressed JSON store.
///
/// Implementations are best-effort: a `get_group` miss (or a dropped
/// `put_group`) only costs recomputation, never correctness — serde JSON
/// round-trips `f64`s exactly, so cached and recomputed tables are
/// bit-identical.
pub trait ConvolveCache {
    /// Looks up a previously stored group table.
    fn get_group(&self, key: &str) -> Option<GroupBlockTimes>;
    /// Stores a group table under `key`.
    fn put_group(&self, key: &str, value: &GroupBlockTimes);
}

/// FNV-1a over the concatenation of `parts`, as a fixed-width hex string.
fn fnv1a_hex(parts: &[&[u8]]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &byte in *part {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Cache key of one group's convolution: machine identity plus the full
/// serialized trace (hit rates, block structure, counts).
fn convolve_key(trace: &TaskTrace, machine: &MachineProfile) -> String {
    let trace_bytes = xtrace_tracer::to_bytes(trace);
    fnv1a_hex(&[machine.name.as_bytes(), b"\0", &trace_bytes])
}

/// Convolves one group trace into per-iteration block times.
fn convolve_group(
    trace: &TaskTrace,
    nranks: u32,
    machine: &MachineProfile,
) -> Result<GroupBlockTimes, PredictError> {
    // Convolve once per group; communication is replayed by the engine, so
    // only block times are used here.
    let comm = xtrace_spmd::CommProfile {
        nranks,
        longest_rank: trace.rank,
        events: vec![],
        compute_imbalance: 1.0,
    };
    let pred = try_predict_runtime(trace, &comm, machine)?;
    let mut columns = Vec::with_capacity(pred.per_block.len());
    let mut per_iteration = Vec::with_capacity(pred.per_block.len());
    for (bt, block) in pred.per_block.iter().zip(&trace.blocks) {
        let units = (block.invocations.max(1) * block.iterations.max(1)) as f64;
        columns.push(bt.name.clone());
        per_iteration.push(bt.combined_s / units);
    }
    Ok(GroupBlockTimes {
        columns,
        per_iteration,
    })
}

/// A [`ComputeModel`] that charges each rank's compute segments from its
/// signature group's convolved per-block times.
///
/// Groups are `(trace, ranks)` pairs ordered heaviest-first (the layout
/// [`xtrace_extrap::synthesize_full_signature`] produces); ranks are
/// assigned to groups in order, so the heaviest group covers the lowest
/// ranks — matching the master-rank structure of the proxies, where rank 0
/// is the most computationally demanding task.
///
/// Block times are interned: the hot [`ComputeModel::seconds`] path is a
/// borrowed-str map lookup plus an indexed row read — no per-call `String`
/// allocation. The model also exposes its group assignment as
/// [`ComputeModel::class_key`], so the engine charges it once per (rank
/// class, group) pair instead of once per rank.
pub struct GroupComputeModel {
    /// Block name → column index (union over groups, first-seen order).
    name_ix: HashMap<String, usize>,
    /// Per group: column index → convolved seconds per loop iteration.
    ///
    /// Charging per *iteration* (not per invocation) makes the model
    /// transferable across ranks whose programs share block shapes but
    /// differ in trip counts — e.g. a worker's token-sized master block
    /// costs next to nothing even though the group trace came from the
    /// master.
    per_iteration: Vec<Vec<f64>>,
    /// Rank → group index.
    assignment: Vec<usize>,
}

impl GroupComputeModel {
    /// Builds the model for `nranks` ranks from signature groups.
    ///
    /// # Panics
    ///
    /// Panics if the groups cover fewer ranks than `nranks` or a group's
    /// trace was collected against a different machine.
    pub fn new(groups: &[(TaskTrace, u64)], nranks: u32, machine: &MachineProfile) -> Self {
        Self::try_new(groups, nranks, machine).expect("replay model construction failed")
    }

    /// Fallible form of [`GroupComputeModel::new`].
    pub fn try_new(
        groups: &[(TaskTrace, u64)],
        nranks: u32,
        machine: &MachineProfile,
    ) -> Result<Self, PredictError> {
        let tables = Self::convolve_all(groups, nranks, machine, None, &ObsContext::ambient())?.0;
        Ok(Self::from_tables(groups, nranks, tables))
    }

    /// Like [`GroupComputeModel::try_new`], memoizing per-group convolution
    /// results in `cache`. Returns the model and the number of cache hits.
    pub fn try_new_cached(
        groups: &[(TaskTrace, u64)],
        nranks: u32,
        machine: &MachineProfile,
        cache: &dyn ConvolveCache,
    ) -> Result<(Self, usize), PredictError> {
        Self::try_new_cached_obs(groups, nranks, machine, cache, &ObsContext::ambient())
    }

    /// [`GroupComputeModel::try_new_cached`] recording convolve telemetry
    /// into an explicit observability context.
    pub fn try_new_cached_obs(
        groups: &[(TaskTrace, u64)],
        nranks: u32,
        machine: &MachineProfile,
        cache: &dyn ConvolveCache,
        obs: &ObsContext,
    ) -> Result<(Self, usize), PredictError> {
        let (tables, hits) = Self::convolve_all(groups, nranks, machine, Some(cache), obs)?;
        Ok((Self::from_tables(groups, nranks, tables), hits))
    }

    /// Checks coverage and convolves every group (parallel across groups
    /// when a pool is available and there is more than one group to do).
    fn convolve_all(
        groups: &[(TaskTrace, u64)],
        nranks: u32,
        machine: &MachineProfile,
        cache: Option<&dyn ConvolveCache>,
        obs: &ObsContext,
    ) -> Result<(Vec<GroupBlockTimes>, usize), PredictError> {
        let covered: u64 = groups.iter().map(|(_, n)| n).sum();
        if covered < u64::from(nranks) {
            return Err(PredictError::GroupCoverage {
                covered,
                needed: u64::from(nranks),
            });
        }

        let mut hits = 0usize;
        let mut slots: Vec<Option<GroupBlockTimes>> = vec![None; groups.len()];
        let mut keys: Vec<Option<String>> = vec![None; groups.len()];
        if let Some(cache) = cache {
            for (gi, (trace, _)) in groups.iter().enumerate() {
                let key = convolve_key(trace, machine);
                if let Some(table) = cache.get_group(&key) {
                    slots[gi] = Some(table);
                    hits += 1;
                }
                keys[gi] = Some(key);
            }
        }

        let pending: Vec<usize> = (0..groups.len())
            .filter(|&gi| slots[gi].is_none())
            .collect();
        let computed: Vec<Result<GroupBlockTimes, PredictError>> =
            if pending.len() >= 2 && rayon::current_num_threads() > 1 {
                pending
                    .par_iter()
                    .map(|&gi| convolve_group(&groups[gi].0, nranks, machine))
                    .collect()
            } else {
                pending
                    .iter()
                    .map(|&gi| convolve_group(&groups[gi].0, nranks, machine))
                    .collect()
            };
        for (&gi, result) in pending.iter().zip(computed) {
            let table = result?;
            if let (Some(cache), Some(key)) = (cache, keys[gi].as_deref()) {
                cache.put_group(key, &table);
            }
            slots[gi] = Some(table);
        }
        // Observability: group and hit counts are input-determined (cache
        // probing happens serially above), never scheduling-dependent.
        let metrics = obs.metrics();
        if metrics.enabled() {
            metrics
                .counter("psins.groups_convolved")
                .add(pending.len() as u64);
            if cache.is_some() {
                metrics
                    .counter("psins.convolve_cache.hits")
                    .add(hits as u64);
                metrics
                    .counter("psins.convolve_cache.misses")
                    .add(pending.len() as u64);
            }
        }
        // Journal: one instant per convolved group, emitted here (serial,
        // after the possibly-parallel convolution reassembled in group
        // order) so the stream is deterministic. `cached` records whether
        // the group's table came from the convolve cache.
        let journal = obs.journal();
        if journal.enabled() {
            let mut was_pending = vec![false; groups.len()];
            for &gi in &pending {
                was_pending[gi] = true;
            }
            for (gi, (trace, n)) in groups.iter().enumerate() {
                journal.instant(
                    "psins.convolve.group",
                    "convolve",
                    &[
                        ("group", gi as f64),
                        ("ranks", *n as f64),
                        ("blocks", trace.blocks.len() as f64),
                        ("cached", f64::from(u8::from(!was_pending[gi]))),
                    ],
                );
            }
        }
        let tables = slots
            .into_iter()
            .map(|t| t.expect("every group slot was filled"))
            .collect();
        Ok((tables, hits))
    }

    /// Interns the per-group tables into the shared column layout and lays
    /// out the rank → group assignment.
    fn from_tables(groups: &[(TaskTrace, u64)], nranks: u32, tables: Vec<GroupBlockTimes>) -> Self {
        let mut name_ix: HashMap<String, usize> = HashMap::new();
        for table in &tables {
            for name in &table.columns {
                let next = name_ix.len();
                name_ix.entry(name.clone()).or_insert(next);
            }
        }
        let per_iteration = tables
            .iter()
            .map(|table| {
                let mut row = vec![0.0f64; name_ix.len()];
                for (name, &secs) in table.columns.iter().zip(&table.per_iteration) {
                    row[name_ix[name]] = secs;
                }
                row
            })
            .collect();
        let mut assignment = Vec::with_capacity(nranks as usize);
        for (gi, (_, n)) in groups.iter().enumerate() {
            for _ in 0..*n {
                if assignment.len() < nranks as usize {
                    assignment.push(gi);
                }
            }
        }
        Self {
            name_ix,
            per_iteration,
            assignment,
        }
    }
}

impl ComputeModel for GroupComputeModel {
    fn seconds(
        &mut self,
        rank: u32,
        program: &xtrace_ir::Program,
        block: xtrace_ir::BlockId,
        invocations: u64,
    ) -> f64 {
        let group = self.assignment[rank as usize];
        let b = program.block(block);
        let per_iter = self
            .name_ix
            .get(b.name.as_str())
            .map_or(0.0, |&ix| self.per_iteration[group][ix]);
        per_iter * b.iterations as f64 * invocations as f64
    }

    /// Charges depend only on the rank's group, so ranks sharing a group
    /// are one dedup class.
    fn class_key(&self, rank: u32) -> Option<u64> {
        Some(self.assignment[rank as usize] as u64)
    }
}

fn sim_err(err: SimError) -> PredictError {
    PredictError::Simulation {
        detail: err.to_string(),
    }
}

/// Replays the whole application with per-group convolved compute times.
///
/// # Panics
///
/// Panics on undersized groups, machine mismatches, or malformed rank
/// programs; see [`try_replay_groups`] for the typed-error form.
#[deprecated(
    since = "0.1.0",
    note = "use try_replay_groups and handle PredictError; the panicking \
            form will be removed"
)]
pub fn replay_groups(
    app: &dyn SpmdApp,
    nranks: u32,
    groups: &[(TaskTrace, u64)],
    machine: &MachineProfile,
) -> SimReport {
    try_replay_groups(app, nranks, groups, machine).expect("whole-application replay failed")
}

/// Fallible form of [`replay_groups`].
pub fn try_replay_groups(
    app: &dyn SpmdApp,
    nranks: u32,
    groups: &[(TaskTrace, u64)],
    machine: &MachineProfile,
) -> Result<SimReport, PredictError> {
    let mut model = GroupComputeModel::try_new(groups, nranks, machine)?;
    xtrace_spmd::try_simulate(app, nranks, &machine.net, &mut model).map_err(sim_err)
}

/// Like [`try_replay_groups`], additionally returning the predicted replay
/// timeline — per-rank, per-event intervals a timeline viewer can render
/// (the event-tracer half of PSiNS).
///
/// # Panics
///
/// Panics on undersized groups, machine mismatches, or malformed rank
/// programs; see [`try_replay_groups_traced`] for the typed-error form.
#[deprecated(
    since = "0.1.0",
    note = "use try_replay_groups_traced and handle PredictError; the \
            panicking form will be removed"
)]
pub fn replay_groups_traced(
    app: &dyn SpmdApp,
    nranks: u32,
    groups: &[(TaskTrace, u64)],
    machine: &MachineProfile,
) -> (SimReport, Vec<TimelineEntry>) {
    try_replay_groups_traced(app, nranks, groups, machine).expect("whole-application replay failed")
}

/// Fallible form of [`replay_groups_traced`].
pub fn try_replay_groups_traced(
    app: &dyn SpmdApp,
    nranks: u32,
    groups: &[(TaskTrace, u64)],
    machine: &MachineProfile,
) -> Result<(SimReport, Vec<TimelineEntry>), PredictError> {
    let mut model = GroupComputeModel::try_new(groups, nranks, machine)?;
    xtrace_spmd::try_simulate_traced(app, nranks, &machine.net, &mut model).map_err(sim_err)
}

/// A per-iteration block-time table for one rank, in the shared column
/// layout of the exact model.
fn exact_rank_table(
    app: &dyn SpmdApp,
    rank: u32,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
) -> Vec<(String, f64)> {
    // One exact execution per rank; apportion its total compute over
    // blocks proportionally to the convolution-free split, then scale so
    // the sum equals the exact total.
    let trace = xtrace_tracer::collect_task_trace(app, rank, nranks, machine, cfg);
    let exact_total = ground_truth_for_rank(app, rank, nranks, machine, cfg);
    let comm = xtrace_spmd::CommProfile {
        nranks,
        longest_rank: rank,
        events: vec![],
        compute_imbalance: 1.0,
    };
    // The trace was just collected against `machine`, so the checked
    // entry point's precondition holds by construction.
    let pred = crate::predict::predict_checked(&trace, &comm, machine);
    let pred_total: f64 = pred.per_block.iter().map(|b| b.combined_s).sum();
    let scale = if pred_total > 0.0 {
        exact_total / pred_total
    } else {
        0.0
    };
    pred.per_block
        .iter()
        .zip(&trace.blocks)
        .map(|(bt, block)| {
            let units = (block.invocations.max(1) * block.iterations.max(1)) as f64;
            (bt.name.clone(), bt.combined_s * scale / units)
        })
        .collect()
}

/// Exact whole-application measurement: every rank's compute time comes
/// from executing its address streams with exact per-access costs, then the
/// same engine replays the event script. Cost scales with `nranks` (one
/// sampled execution per rank, fanned out over the rayon pool when one is
/// available); intended for validation at moderate scale.
pub fn ground_truth_application(
    app: &dyn SpmdApp,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
) -> SimReport {
    // Build every rank's exact table up front: the builds are independent
    // and pure, so they parallelize; ordered reassembly keeps the model
    // (and therefore the report) identical to a serial build.
    let ranks: Vec<u32> = (0..nranks).collect();
    let raw_tables: Vec<Vec<(String, f64)>> = if nranks >= 2 && rayon::current_num_threads() > 1 {
        ranks
            .par_iter()
            .map(|&r| exact_rank_table(app, r, nranks, machine, cfg))
            .collect()
    } else {
        ranks
            .iter()
            .map(|&r| exact_rank_table(app, r, nranks, machine, cfg))
            .collect()
    };

    // Intern block names so the hot charging path is allocation-free.
    let mut name_ix: HashMap<String, usize> = HashMap::new();
    for table in &raw_tables {
        for (name, _) in table {
            let next = name_ix.len();
            name_ix.entry(name.clone()).or_insert(next);
        }
    }
    let tables: Vec<Vec<f64>> = raw_tables
        .into_iter()
        .map(|table| {
            let mut row = vec![0.0f64; name_ix.len()];
            for (name, secs) in table {
                row[name_ix[&name]] = secs;
            }
            row
        })
        .collect();

    struct ExactModel {
        name_ix: HashMap<String, usize>,
        /// rank → column index → seconds per iteration.
        tables: Vec<Vec<f64>>,
    }
    impl ComputeModel for ExactModel {
        fn seconds(
            &mut self,
            rank: u32,
            program: &xtrace_ir::Program,
            block: xtrace_ir::BlockId,
            invocations: u64,
        ) -> f64 {
            let b = program.block(block);
            let per_iter = self
                .name_ix
                .get(b.name.as_str())
                .map_or(0.0, |&ix| self.tables[rank as usize][ix]);
            per_iter * b.iterations as f64 * invocations as f64
        }

        /// Every rank has its own measured table, so no two ranks dedup.
        fn class_key(&self, rank: u32) -> Option<u64> {
            Some(u64::from(rank))
        }
    }

    let mut model = ExactModel { name_ix, tables };
    xtrace_spmd::simulate(app, nranks, &machine.net, &mut model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use xtrace_apps::StencilProxy;
    use xtrace_machine::presets;
    use xtrace_tracer::collect_task_trace;

    fn groups_for(
        app: &StencilProxy,
        nranks: u32,
        machine: &MachineProfile,
    ) -> Vec<(TaskTrace, u64)> {
        // Two groups: rank 0's trace for the first rank, rank 1's for the rest.
        let cfg = TracerConfig::fast();
        let t0 = collect_task_trace(app, 0, nranks, machine, &cfg);
        let t1 = collect_task_trace(app, 1, nranks, machine, &cfg);
        vec![(t0, 1), (t1, u64::from(nranks) - 1)]
    }

    #[test]
    fn replay_produces_a_synchronized_timeline() {
        let app = StencilProxy::medium();
        let machine = presets::cray_xt5();
        let groups = groups_for(&app, 8, &machine);
        let report = try_replay_groups(&app, 8, &groups, &machine).unwrap();
        assert_eq!(report.ranks.len(), 8);
        assert!(report.total_seconds > 0.0);
        // Trailing allreduce synchronizes everyone.
        for r in &report.ranks {
            assert!((r.finish_s - report.total_seconds).abs() < 1e-9);
            assert!(r.compute_s > 0.0);
        }
    }

    #[test]
    fn replay_matches_single_task_prediction_for_balanced_apps() {
        // For a balanced app the replay total should be close to the
        // longest-task prediction (compute + comm), since waits are small.
        let app = StencilProxy::medium();
        let machine = presets::cray_xt5();
        let cfg = TracerConfig::fast();
        let sig = xtrace_tracer::collect_signature_with(&app, 8, &machine, &cfg);
        let single =
            crate::predict::try_predict_runtime(sig.longest_task(), &sig.comm, &machine).unwrap();
        let groups = groups_for(&app, 8, &machine);
        let replay = try_replay_groups(&app, 8, &groups, &machine).unwrap();
        let rel = (replay.total_seconds - single.total_seconds).abs() / single.total_seconds;
        assert!(
            rel < 0.15,
            "replay {} vs single-task {} ({rel})",
            replay.total_seconds,
            single.total_seconds
        );
    }

    #[test]
    fn replay_tracks_exact_application_ground_truth() {
        let app = StencilProxy::medium();
        let machine = presets::cray_xt5();
        let cfg = TracerConfig::fast();
        let groups = groups_for(&app, 8, &machine);
        let replay = try_replay_groups(&app, 8, &groups, &machine).unwrap();
        let exact = ground_truth_application(&app, 8, &machine, &cfg);
        let rel = (replay.total_seconds - exact.total_seconds).abs() / exact.total_seconds;
        assert!(
            rel < 0.25,
            "replay {} vs exact {} ({rel})",
            replay.total_seconds,
            exact.total_seconds
        );
    }

    #[test]
    fn traced_replay_yields_a_renderable_timeline() {
        let app = StencilProxy::small();
        let machine = presets::cray_xt5();
        let groups = groups_for(&app, 4, &machine);
        let (report, timeline) = try_replay_groups_traced(&app, 4, &groups, &machine).unwrap();
        // 4 ranks x 4 events (sweep, exchange, residual, allreduce).
        assert_eq!(timeline.len(), 16);
        assert!(timeline.iter().any(|e| e.kind == "compute"));
        assert!(timeline.iter().any(|e| e.kind == "exchange"));
        let max_end = timeline.iter().map(|e| e.end_s).fold(0.0f64, f64::max);
        assert!((max_end - report.total_seconds).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "groups cover")]
    fn undersized_groups_panic() {
        let app = StencilProxy::small();
        let machine = presets::cray_xt5();
        let cfg = TracerConfig::fast();
        let t0 = collect_task_trace(&app, 0, 8, &machine, &cfg);
        GroupComputeModel::new(&[(t0, 2)], 8, &machine);
    }

    #[test]
    fn undersized_groups_report_typed_errors() {
        let app = StencilProxy::small();
        let machine = presets::cray_xt5();
        let cfg = TracerConfig::fast();
        let t0 = collect_task_trace(&app, 0, 8, &machine, &cfg);
        let err = GroupComputeModel::try_new(&[(t0, 2)], 8, &machine)
            .err()
            .expect("undersized groups must fail");
        assert_eq!(
            err,
            PredictError::GroupCoverage {
                covered: 2,
                needed: 8
            }
        );
        assert!(err.to_string().contains("groups cover 2 ranks, need 8"));
    }

    #[test]
    fn machine_mismatch_reports_typed_errors() {
        let app = StencilProxy::small();
        let machine = presets::cray_xt5();
        let cfg = TracerConfig::fast();
        let t0 = collect_task_trace(&app, 0, 4, &machine, &cfg);
        let other = presets::bluewaters_phase1();
        let err = GroupComputeModel::try_new(&[(t0, 4)], 4, &other)
            .err()
            .expect("machine mismatch must fail");
        assert!(matches!(err, PredictError::MachineMismatch { .. }));
    }

    /// In-memory ConvolveCache for tests.
    #[derive(Default)]
    struct MemCache {
        map: Mutex<HashMap<String, GroupBlockTimes>>,
    }
    impl ConvolveCache for MemCache {
        fn get_group(&self, key: &str) -> Option<GroupBlockTimes> {
            self.map.lock().expect("cache lock").get(key).cloned()
        }
        fn put_group(&self, key: &str, value: &GroupBlockTimes) {
            self.map
                .lock()
                .expect("cache lock")
                .insert(key.to_string(), value.clone());
        }
    }

    #[test]
    fn cached_construction_is_bit_identical_and_hits_on_reuse() {
        let app = StencilProxy::medium();
        let machine = presets::cray_xt5();
        let groups = groups_for(&app, 8, &machine);
        let cache = MemCache::default();

        let (_, cold_hits) =
            GroupComputeModel::try_new_cached(&groups, 8, &machine, &cache).expect("cold build");
        assert_eq!(cold_hits, 0);
        let (_, warm_hits) =
            GroupComputeModel::try_new_cached(&groups, 8, &machine, &cache).expect("warm build");
        assert_eq!(warm_hits, 2, "both group tables should come from cache");

        // The replay through the cache matches the uncached replay exactly.
        let mut cached_model = GroupComputeModel::try_new_cached(&groups, 8, &machine, &cache)
            .expect("warm build")
            .0;
        let mut plain_model = GroupComputeModel::try_new(&groups, 8, &machine).expect("build");
        let a = xtrace_spmd::try_simulate(&app, 8, &machine.net, &mut cached_model)
            .expect("cached replay");
        let b = xtrace_spmd::try_simulate(&app, 8, &machine.net, &mut plain_model)
            .expect("plain replay");
        assert_eq!(a, b);
    }

    #[test]
    fn group_tables_key_on_machine_and_trace() {
        let app = StencilProxy::small();
        let machine = presets::cray_xt5();
        let cfg = TracerConfig::fast();
        let t0 = collect_task_trace(&app, 0, 4, &machine, &cfg);
        let t1 = collect_task_trace(&app, 1, 4, &machine, &cfg);
        let k00 = convolve_key(&t0, &machine);
        let k10 = convolve_key(&t1, &machine);
        assert_ne!(k00, k10, "different traces must not collide");
        assert_eq!(k00, convolve_key(&t0, &machine), "keys are deterministic");
    }
}
