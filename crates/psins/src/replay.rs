//! Whole-application replay: the full PSiNS role.
//!
//! "This mapping takes place in the PSiNS simulator that replays the
//! entire execution of the HPC application on the target/predicted system"
//! (Section III). The single-task prediction of [`crate::predict`] covers
//! the paper's evaluation; this module completes the replay picture: given
//! per-group traces (e.g. from the Section-VI full-signature synthesis),
//! every rank's compute segments are charged from its group's convolved
//! block times and the bulk-synchronous engine replays the whole event
//! script — synchronization waits, halo dependencies, collectives — to
//! produce an application-level runtime.
//!
//! An exact counterpart, [`ground_truth_application`], runs every rank's
//! address streams with exact per-access costs through the same engine, so
//! replay predictions can be validated end to end.

use std::collections::HashMap;

use xtrace_machine::MachineProfile;
use xtrace_spmd::{
    simulate_programs, simulate_programs_traced, ComputeModel, RankProgram, SimReport, SpmdApp,
    TimelineEntry,
};
use xtrace_tracer::{TaskTrace, TracerConfig};

use crate::ground_truth::ground_truth_for_rank;
use crate::predict::predict_runtime;

/// A [`ComputeModel`] that charges each rank's compute segments from its
/// signature group's convolved per-block times.
///
/// Groups are `(trace, ranks)` pairs ordered heaviest-first (the layout
/// [`xtrace_extrap::synthesize_full_signature`] produces); ranks are
/// assigned to groups in order, so the heaviest group covers the lowest
/// ranks — matching the master-rank structure of the proxies, where rank 0
/// is the most computationally demanding task.
pub struct GroupComputeModel {
    /// Per group: block name → convolved seconds per loop iteration.
    ///
    /// Charging per *iteration* (not per invocation) makes the model
    /// transferable across ranks whose programs share block shapes but
    /// differ in trip counts — e.g. a worker's token-sized master block
    /// costs next to nothing even though the group trace came from the
    /// master.
    per_iteration: Vec<HashMap<String, f64>>,
    /// Rank → group index.
    assignment: Vec<usize>,
}

impl GroupComputeModel {
    /// Builds the model for `nranks` ranks from signature groups.
    ///
    /// # Panics
    ///
    /// Panics if the groups cover fewer ranks than `nranks` or a group's
    /// trace was collected against a different machine.
    pub fn new(groups: &[(TaskTrace, u64)], nranks: u32, machine: &MachineProfile) -> Self {
        let covered: u64 = groups.iter().map(|(_, n)| n).sum();
        assert!(
            covered >= u64::from(nranks),
            "groups cover {covered} ranks, need {nranks}"
        );
        let per_iteration = groups
            .iter()
            .map(|(trace, _)| {
                // Convolve once per group; communication is replayed by the
                // engine, so only block times are used here.
                let comm = xtrace_spmd::CommProfile {
                    nranks,
                    longest_rank: trace.rank,
                    events: vec![],
                    compute_imbalance: 1.0,
                };
                let pred = predict_runtime(trace, &comm, machine);
                pred.per_block
                    .iter()
                    .zip(&trace.blocks)
                    .map(|(bt, block)| {
                        let units = (block.invocations.max(1) * block.iterations.max(1)) as f64;
                        (bt.name.clone(), bt.combined_s / units)
                    })
                    .collect()
            })
            .collect();
        let mut assignment = Vec::with_capacity(nranks as usize);
        for (gi, (_, n)) in groups.iter().enumerate() {
            for _ in 0..*n {
                if assignment.len() < nranks as usize {
                    assignment.push(gi);
                }
            }
        }
        Self {
            per_iteration,
            assignment,
        }
    }
}

impl ComputeModel for GroupComputeModel {
    fn seconds(
        &mut self,
        rank: u32,
        program: &xtrace_ir::Program,
        block: xtrace_ir::BlockId,
        invocations: u64,
    ) -> f64 {
        let group = self.assignment[rank as usize];
        let b = program.block(block);
        self.per_iteration[group]
            .get(&b.name)
            .copied()
            .unwrap_or(0.0)
            * b.iterations as f64
            * invocations as f64
    }
}

/// Replays the whole application with per-group convolved compute times.
pub fn replay_groups(
    app: &dyn SpmdApp,
    nranks: u32,
    groups: &[(TaskTrace, u64)],
    machine: &MachineProfile,
) -> SimReport {
    let programs: Vec<RankProgram> = (0..nranks).map(|r| app.rank_program(r, nranks)).collect();
    let mut model = GroupComputeModel::new(groups, nranks, machine);
    simulate_programs(&programs, &machine.net, &mut model)
}

/// Like [`replay_groups`], additionally returning the predicted replay
/// timeline — per-rank, per-event intervals a timeline viewer can render
/// (the event-tracer half of PSiNS).
pub fn replay_groups_traced(
    app: &dyn SpmdApp,
    nranks: u32,
    groups: &[(TaskTrace, u64)],
    machine: &MachineProfile,
) -> (SimReport, Vec<TimelineEntry>) {
    let programs: Vec<RankProgram> = (0..nranks).map(|r| app.rank_program(r, nranks)).collect();
    let mut model = GroupComputeModel::new(groups, nranks, machine);
    simulate_programs_traced(&programs, &machine.net, &mut model)
}

/// Exact whole-application measurement: every rank's compute time comes
/// from executing its address streams with exact per-access costs, then the
/// same engine replays the event script. Cost scales with `nranks` (one
/// sampled execution per rank); intended for validation at moderate scale.
pub fn ground_truth_application(
    app: &dyn SpmdApp,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
) -> SimReport {
    // Per-rank *total* compute seconds, apportioned to blocks by the BSP
    // engine via a per-rank, per-block time table.
    struct ExactModel<'a> {
        app: &'a dyn SpmdApp,
        nranks: u32,
        machine: &'a MachineProfile,
        cfg: &'a TracerConfig,
        // rank -> block name -> seconds per invocation
        cache: HashMap<u32, HashMap<String, f64>>,
    }
    impl ExactModel<'_> {
        fn tables(&mut self, rank: u32) -> &HashMap<String, f64> {
            if !self.cache.contains_key(&rank) {
                // One exact execution per rank; apportion its total compute
                // over blocks proportionally to the convolution-free split
                // that ground_truth_for_rank already performs internally.
                // Recompute per-block here from the trace + exact totals.
                let trace = xtrace_tracer::collect_task_trace(
                    self.app,
                    rank,
                    self.nranks,
                    self.machine,
                    self.cfg,
                );
                let exact_total =
                    ground_truth_for_rank(self.app, rank, self.nranks, self.machine, self.cfg);
                // Weight blocks by their convolved share (communication-free
                // prediction), then scale so the sum equals the exact total.
                let comm = xtrace_spmd::CommProfile {
                    nranks: self.nranks,
                    longest_rank: rank,
                    events: vec![],
                    compute_imbalance: 1.0,
                };
                let pred = predict_runtime(&trace, &comm, self.machine);
                let pred_total: f64 = pred.per_block.iter().map(|b| b.combined_s).sum();
                let scale = if pred_total > 0.0 {
                    exact_total / pred_total
                } else {
                    0.0
                };
                let table = pred
                    .per_block
                    .iter()
                    .zip(&trace.blocks)
                    .map(|(bt, block)| {
                        let units = (block.invocations.max(1) * block.iterations.max(1)) as f64;
                        (bt.name.clone(), bt.combined_s * scale / units)
                    })
                    .collect();
                self.cache.insert(rank, table);
            }
            &self.cache[&rank]
        }
    }
    impl ComputeModel for ExactModel<'_> {
        fn seconds(
            &mut self,
            rank: u32,
            program: &xtrace_ir::Program,
            block: xtrace_ir::BlockId,
            invocations: u64,
        ) -> f64 {
            let b = program.block(block);
            let iters = b.iterations as f64;
            let name = b.name.clone();
            self.tables(rank).get(&name).copied().unwrap_or(0.0) * iters * invocations as f64
        }
    }

    let programs: Vec<RankProgram> = (0..nranks).map(|r| app.rank_program(r, nranks)).collect();
    let mut model = ExactModel {
        app,
        nranks,
        machine,
        cfg,
        cache: HashMap::new(),
    };
    simulate_programs(&programs, &machine.net, &mut model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_apps::StencilProxy;
    use xtrace_machine::presets;
    use xtrace_tracer::collect_task_trace;

    fn groups_for(
        app: &StencilProxy,
        nranks: u32,
        machine: &MachineProfile,
    ) -> Vec<(TaskTrace, u64)> {
        // Two groups: rank 0's trace for the first rank, rank 1's for the rest.
        let cfg = TracerConfig::fast();
        let t0 = collect_task_trace(app, 0, nranks, machine, &cfg);
        let t1 = collect_task_trace(app, 1, nranks, machine, &cfg);
        vec![(t0, 1), (t1, u64::from(nranks) - 1)]
    }

    #[test]
    fn replay_produces_a_synchronized_timeline() {
        let app = StencilProxy::medium();
        let machine = presets::cray_xt5();
        let groups = groups_for(&app, 8, &machine);
        let report = replay_groups(&app, 8, &groups, &machine);
        assert_eq!(report.ranks.len(), 8);
        assert!(report.total_seconds > 0.0);
        // Trailing allreduce synchronizes everyone.
        for r in &report.ranks {
            assert!((r.finish_s - report.total_seconds).abs() < 1e-9);
            assert!(r.compute_s > 0.0);
        }
    }

    #[test]
    fn replay_matches_single_task_prediction_for_balanced_apps() {
        // For a balanced app the replay total should be close to the
        // longest-task prediction (compute + comm), since waits are small.
        let app = StencilProxy::medium();
        let machine = presets::cray_xt5();
        let cfg = TracerConfig::fast();
        let sig = xtrace_tracer::collect_signature_with(&app, 8, &machine, &cfg);
        let single = predict_runtime(sig.longest_task(), &sig.comm, &machine);
        let groups = groups_for(&app, 8, &machine);
        let replay = replay_groups(&app, 8, &groups, &machine);
        let rel = (replay.total_seconds - single.total_seconds).abs() / single.total_seconds;
        assert!(
            rel < 0.15,
            "replay {} vs single-task {} ({rel})",
            replay.total_seconds,
            single.total_seconds
        );
    }

    #[test]
    fn replay_tracks_exact_application_ground_truth() {
        let app = StencilProxy::medium();
        let machine = presets::cray_xt5();
        let cfg = TracerConfig::fast();
        let groups = groups_for(&app, 8, &machine);
        let replay = replay_groups(&app, 8, &groups, &machine);
        let exact = ground_truth_application(&app, 8, &machine, &cfg);
        let rel = (replay.total_seconds - exact.total_seconds).abs() / exact.total_seconds;
        assert!(
            rel < 0.25,
            "replay {} vs exact {} ({rel})",
            replay.total_seconds,
            exact.total_seconds
        );
    }

    #[test]
    fn traced_replay_yields_a_renderable_timeline() {
        let app = StencilProxy::small();
        let machine = presets::cray_xt5();
        let groups = groups_for(&app, 4, &machine);
        let (report, timeline) = replay_groups_traced(&app, 4, &groups, &machine);
        // 4 ranks x 4 events (sweep, exchange, residual, allreduce).
        assert_eq!(timeline.len(), 16);
        assert!(timeline.iter().any(|e| e.kind == "compute"));
        assert!(timeline.iter().any(|e| e.kind == "exchange"));
        let max_end = timeline.iter().map(|e| e.end_s).fold(0.0f64, f64::max);
        assert!((max_end - report.total_seconds).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "groups cover")]
    fn undersized_groups_panic() {
        let app = StencilProxy::small();
        let machine = presets::cray_xt5();
        let cfg = TracerConfig::fast();
        let t0 = collect_task_trace(&app, 0, 8, &machine, &cfg);
        GroupComputeModel::new(&[(t0, 2)], 8, &machine);
    }
}
