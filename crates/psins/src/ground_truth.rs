//! Execution-driven ground truth: the reproduction's "measured runtime".
//!
//! The paper validates predictions against wall-clock runs on real
//! hardware. Here the hardware *is* the parametric machine model, so the
//! measured number is obtained by actually executing the longest task's
//! address streams against the cache simulator and charging every access
//! its exact cost from [`xtrace_machine::MemoryCostModel`] — per-level
//! latency, streaming-prefetch discounts, store penalties. No MultiMAPS
//! surface, no hit-rate bucketing: this path sees information the
//! convolution deliberately discards, which is what makes the
//! prediction-vs-measured comparison meaningful.
//!
//! Streams are bit-identical to the tracer's (same seeds, same sampling
//! bounds), and sampled costs are scaled to full dynamic counts the same
//! way the tracer scales hit-rate estimation.

use serde::{Deserialize, Serialize};
use xtrace_cache::CacheHierarchy;
use xtrace_ir::AccessStream;
use xtrace_machine::{MachineProfile, PrefetchState};
use xtrace_obs::ObsContext;
use xtrace_spmd::{MpiProfiler, RankEvent, SpmdApp};
use xtrace_tracer::{collect_task_trace_memo_obs, rank_stream_seed_for, TracerConfig};

/// The execution-driven "measured" runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Exact-cost computation time of the longest task.
    pub compute_seconds: f64,
    /// Replayed communication time.
    pub comm_seconds: f64,
    /// Measured application runtime.
    pub total_seconds: f64,
    /// Rank that was measured.
    pub rank: u32,
}

/// Measures the application at `nranks`: finds the most computationally
/// demanding task and executes it exactly.
pub fn ground_truth(
    app: &dyn SpmdApp,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
) -> GroundTruth {
    ground_truth_obs(app, nranks, machine, cfg, &ObsContext::ambient())
}

/// [`ground_truth`] recording the profiling/collection telemetry into an
/// explicit observability context.
pub fn ground_truth_obs(
    app: &dyn SpmdApp,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
    obs: &ObsContext,
) -> GroundTruth {
    let comm = MpiProfiler::default().profile_obs(app, nranks, &machine.net, obs);
    let compute = ground_truth_for_rank_obs(app, comm.longest_rank, nranks, machine, cfg, obs);
    let comm_seconds = comm.comm_seconds(&machine.net);
    GroundTruth {
        compute_seconds: compute,
        comm_seconds,
        total_seconds: compute + comm_seconds,
        rank: comm.longest_rank,
    }
}

/// Exact-cost computation seconds of one rank.
///
/// Walks every compute block's address stream (bounded by the tracer's
/// sampling cap, then scaled to full counts), charging per-access cycles;
/// floating-point time comes from the same machine rates the prediction
/// uses; block times are overlap-combined identically. The *only*
/// difference from the prediction is exact per-access memory costing.
pub fn ground_truth_for_rank(
    app: &dyn SpmdApp,
    rank: u32,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
) -> f64 {
    ground_truth_for_rank_obs(app, rank, nranks, machine, cfg, &ObsContext::ambient())
}

/// [`ground_truth_for_rank`] recording into an explicit observability
/// context.
pub fn ground_truth_for_rank_obs(
    app: &dyn SpmdApp,
    rank: u32,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
    obs: &ObsContext,
) -> f64 {
    let rp = app.rank_program(rank, nranks);
    let mut cache = CacheHierarchy::try_new(machine.hierarchy.clone())
        .expect("machine profile carries a valid hierarchy");
    let mut prefetch = PrefetchState::default();
    let seed = rank_stream_seed_for(app, cfg, rank, nranks);

    // Fold repeated Compute events per block (same treatment as the
    // tracer, so sampled streams agree).
    let mut order: Vec<xtrace_ir::BlockId> = Vec::new();
    let mut invocations: Vec<u64> = Vec::new();
    for ev in &rp.events {
        if let RankEvent::Compute {
            block,
            invocations: inv,
        } = ev
        {
            if let Some(pos) = order.iter().position(|b| b == block) {
                invocations[pos] += inv;
            } else {
                order.push(*block);
                invocations.push(*inv);
            }
        }
    }

    // FP time comes from the trace metadata (identical on both paths).
    let trace = collect_task_trace_memo_obs(app, rank, nranks, machine, cfg, None, obs);

    let mut compute_seconds = 0.0;
    for ((&block_id, &inv), record) in order.iter().zip(&invocations).zip(&trace.blocks) {
        let blk = rp.program.block(block_id);
        debug_assert_eq!(blk.name, record.name);
        let refs_per_iter: u64 = blk
            .instrs
            .iter()
            .filter(|i| i.is_mem())
            .map(|i| u64::from(i.repeat))
            .sum();
        let total_iters = blk.iterations.saturating_mul(inv);

        let mut mem_seconds = 0.0;
        if refs_per_iter > 0 && total_iters > 0 {
            // Warmup window mirrors the tracer's exactly (same stream, same
            // bounds) so both paths observe the same steady state.
            let sample_iters =
                total_iters.min((cfg.max_sampled_refs_per_block / refs_per_iter).max(1));
            let warmup_iters = sample_iters.min(total_iters - sample_iters);
            let mut cycles = 0.0f64;
            let mut stream = AccessStream::new(&rp.program, block_id, seed);
            stream.run_iterations(warmup_iters, &mut |a| {
                let lvl = cache.access(a.addr, a.bytes);
                // Warmup advances prefetch state but charges nothing.
                machine
                    .mem_cost
                    .cycles(&machine.hierarchy, &mut prefetch, lvl, a.addr, a.is_store);
            });
            stream.run_iterations(sample_iters, &mut |a| {
                let lvl = cache.access(a.addr, a.bytes);
                cycles += machine.mem_cost.cycles(
                    &machine.hierarchy,
                    &mut prefetch,
                    lvl,
                    a.addr,
                    a.is_store,
                );
            });
            let scale = total_iters as f64 / sample_iters as f64;
            mem_seconds = cycles * scale / machine.clock_hz;
        }
        let fp_seconds = crate::block_fp_seconds(record, machine);
        compute_seconds += machine.combine_times(mem_seconds, fp_seconds);
    }
    compute_seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::try_predict_runtime;
    use xtrace_apps::{StencilProxy, Uh3dProxy};
    use xtrace_machine::presets;
    use xtrace_tracer::collect_signature_with;

    #[test]
    fn ground_truth_is_positive_and_decomposes() {
        let app = StencilProxy::medium();
        let machine = presets::cray_xt5();
        let gt = ground_truth(&app, 4, &machine, &TracerConfig::fast());
        assert!(gt.compute_seconds > 0.0);
        assert!(gt.comm_seconds > 0.0);
        assert!((gt.total_seconds - gt.compute_seconds - gt.comm_seconds).abs() < 1e-12);
    }

    #[test]
    fn prediction_tracks_ground_truth_within_modeling_error() {
        // The headline property: the convolution must land near the
        // execution-driven measurement (the paper's framework reports
        // "usually less than 15% absolute relative error").
        let app = StencilProxy::medium();
        let machine = presets::cray_xt5();
        let cfg = TracerConfig::fast();
        let sig = collect_signature_with(&app, 8, &machine, &cfg);
        let pred = try_predict_runtime(sig.longest_task(), &sig.comm, &machine).unwrap();
        let gt = ground_truth(&app, 8, &machine, &cfg);
        let err = crate::relative_error(pred.total_seconds, gt.total_seconds);
        assert!(
            err < 0.25,
            "prediction {} vs measured {} (err {err})",
            pred.total_seconds,
            gt.total_seconds
        );
    }

    #[test]
    fn ground_truth_measures_the_longest_rank() {
        let app = Uh3dProxy::small();
        let machine = presets::cray_xt5();
        let gt = ground_truth(&app, 4, &machine, &TracerConfig::fast());
        assert_eq!(gt.rank, 0, "uh3d master rank is the longest task");
    }

    #[test]
    fn ground_truth_is_deterministic() {
        let app = StencilProxy::small();
        let machine = presets::cray_xt5();
        let cfg = TracerConfig::fast();
        let a = ground_truth(&app, 2, &machine, &cfg);
        let b = ground_truth(&app, 2, &machine, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn more_cores_reduce_measured_compute() {
        let app = StencilProxy::medium();
        let machine = presets::cray_xt5();
        let cfg = TracerConfig::fast();
        let gt4 = ground_truth(&app, 4, &machine, &cfg);
        let gt16 = ground_truth(&app, 16, &machine, &cfg);
        assert!(gt16.compute_seconds < gt4.compute_seconds);
    }
}
