//! Property tests for the convolution: predictions must be positive,
//! finite, monotone under locality degradation, and linear in operation
//! counts — for arbitrary (physical) feature vectors.

use std::sync::OnceLock;

use proptest::prelude::*;
use xtrace_ir::SourceLoc;
use xtrace_machine::{presets, MachineProfile};
use xtrace_psins::{try_predict_energy, try_predict_runtime};
use xtrace_spmd::{CommEventRecord, CommKind, CommProfile};
use xtrace_tracer::{BlockRecord, FeatureVector, InstrRecord, TaskTrace};

/// One shared machine (surface measured once across all cases).
fn machine() -> &'static MachineProfile {
    static M: OnceLock<MachineProfile> = OnceLock::new();
    M.get_or_init(|| {
        let m = presets::cray_xt5();
        let _ = m.surface();
        m
    })
}

fn trace(mem_ops: f64, rates: [f64; 3], fma: f64, random: bool) -> TaskTrace {
    let mut f = FeatureVector {
        exec_count: mem_ops.max(fma),
        mem_ops,
        loads: mem_ops,
        bytes_per_ref: 8.0,
        fp_fma: fma,
        working_set: 1e8,
        ilp: 2.0,
        ..Default::default()
    };
    f.hit_rates = [rates[0], rates[1], rates[2], 1.0];
    TaskTrace {
        app: "prop".into(),
        rank: 0,
        nranks: 128,
        machine: "cray-xt5".into(),
        depth: 3,
        blocks: vec![BlockRecord {
            name: "k".into(),
            source: SourceLoc::new("p.c", 1, "f"),
            invocations: 1,
            iterations: 1,
            instrs: vec![InstrRecord {
                instr: 0,
                pattern: if random { "random" } else { "strided" }.into(),
                features: f,
            }],
        }],
    }
}

fn comm() -> CommProfile {
    CommProfile {
        nranks: 128,
        longest_rank: 0,
        events: vec![CommEventRecord {
            kind: CommKind::Allreduce,
            neighbors: 0,
            bytes: 64,
            repeats: 10,
        }],
        compute_imbalance: 1.0,
    }
}

fn monotone(a: f64, b: f64, c: f64) -> [f64; 3] {
    let mut v = [a, b, c];
    v.sort_by(|x, y| x.partial_cmp(y).unwrap());
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Predictions are positive and finite for any physical inputs.
    #[test]
    fn predictions_are_positive_and_finite(
        mem_ops in 1.0f64..1e12,
        fma in 0.0f64..1e12,
        a in 0.0f64..1.0, b in 0.0f64..1.0, c in 0.0f64..1.0,
        random in any::<bool>(),
    ) {
        let t = trace(mem_ops, monotone(a, b, c), fma, random);
        let p = try_predict_runtime(&t, &comm(), machine()).unwrap();
        prop_assert!(p.total_seconds.is_finite());
        prop_assert!(p.total_seconds > 0.0);
        prop_assert!(p.memory_seconds > 0.0);
        prop_assert!(p.compute_seconds >= p.memory_seconds.max(p.fp_seconds) - 1e-12);

        let e = try_predict_energy(&t, &comm(), machine()).unwrap();
        prop_assert!(e.total_joules.is_finite() && e.total_joules > 0.0);
        prop_assert!(e.avg_watts >= machine().power.static_watts * (1.0 - 1e-9));
    }

    /// Memory time scales linearly with the operation count (Eq. 1).
    #[test]
    fn memory_time_is_linear_in_counts(
        mem_ops in 1.0f64..1e10,
        scale in 2.0f64..100.0,
        a in 0.0f64..1.0, b in 0.0f64..1.0, c in 0.0f64..1.0,
    ) {
        let rates = monotone(a, b, c);
        let one = try_predict_runtime(&trace(mem_ops, rates, 0.0, false), &comm(), machine()).unwrap();
        let many = try_predict_runtime(
            &trace(mem_ops * scale, rates, 0.0, false),
            &comm(),
            machine(),
        ).unwrap();
        let ratio = many.memory_seconds / one.memory_seconds;
        prop_assert!((ratio - scale).abs() / scale < 1e-9, "ratio {ratio} vs {scale}");
    }

    /// Losing all cache locality never speeds a prediction up.
    #[test]
    fn degrading_to_zero_locality_slows_things_down(
        mem_ops in 1e3f64..1e10,
        a in 0.2f64..1.0, b in 0.2f64..1.0, c in 0.2f64..1.0,
        random in any::<bool>(),
    ) {
        let rates = monotone(a, b, c);
        let good = try_predict_runtime(&trace(mem_ops, rates, 0.0, random), &comm(), machine()).unwrap();
        let bad = try_predict_runtime(
            &trace(mem_ops, [0.0, 0.0, 0.0], 0.0, random),
            &comm(),
            machine(),
        ).unwrap();
        prop_assert!(
            bad.memory_seconds >= good.memory_seconds * (1.0 - 1e-9),
            "zero locality {} vs {}",
            bad.memory_seconds,
            good.memory_seconds
        );
    }
}
