//! Property tests for the SPMD engine and network model.

use proptest::prelude::*;
use xtrace_ir::{AddressPattern, BasicBlock, BlockId, Instruction, MemOp, Program, SourceLoc};
use xtrace_spmd::{
    simulate, try_simulate, try_simulate_classes, try_simulate_programs_naive, NetworkModel,
    NominalComputeModel, RankClasses, RankEvent, RankProgram, SimOptions, SpmdApp,
};

/// App where rank r's compute weight is `weights[r]`, ending in a barrier.
struct Weighted {
    weights: Vec<u64>,
}

impl SpmdApp for Weighted {
    fn name(&self) -> &str {
        "weighted"
    }
    fn rank_program(&self, rank: u32, _nranks: u32) -> RankProgram {
        let mut b = Program::builder();
        let r = b.region("a", 4096, 8);
        let blk = b.block(BasicBlock::new(
            BlockId(0),
            "w",
            SourceLoc::new("t.c", 1, "f"),
            self.weights[rank as usize].max(1),
            vec![Instruction::mem(MemOp::Load, r, 8, AddressPattern::unit(8))],
        ));
        RankProgram {
            program: b.build().unwrap(),
            events: vec![
                RankEvent::Compute {
                    block: blk,
                    invocations: 1,
                },
                RankEvent::Barrier { repeats: 1 },
            ],
        }
    }
}

/// Randomized master/worker app: ranks below `split` run `master_iters`
/// block iterations, the rest `worker_iters`; the script is compute → ring
/// exchange → allreduce. When `with_keys`, exact class keys are provided
/// (masters and workers as two classes) so the engine takes the
/// O(classes) fast path; otherwise it groups materialized programs
/// structurally.
struct SplitApp {
    split: u32,
    master_iters: u64,
    worker_iters: u64,
    bytes: u64,
    with_keys: bool,
}

impl SplitApp {
    fn iters_of(&self, rank: u32) -> u64 {
        if rank < self.split {
            self.master_iters
        } else {
            self.worker_iters
        }
    }
}

impl SpmdApp for SplitApp {
    fn name(&self) -> &str {
        "split"
    }
    fn rank_program(&self, rank: u32, nranks: u32) -> RankProgram {
        let mut b = Program::builder();
        let r = b.region("a", 4096, 8);
        let blk = b.block(BasicBlock::new(
            BlockId(0),
            "w",
            SourceLoc::new("t.c", 1, "f"),
            self.iters_of(rank).max(1),
            vec![Instruction::mem(MemOp::Load, r, 8, AddressPattern::unit(8))],
        ));
        let ring = vec![(rank + nranks - 1) % nranks, (rank + 1) % nranks];
        RankProgram {
            program: b.build().unwrap(),
            events: vec![
                RankEvent::Compute {
                    block: blk,
                    invocations: 1,
                },
                RankEvent::Exchange {
                    neighbors: ring,
                    bytes_per_neighbor: self.bytes,
                    repeats: 1,
                },
                RankEvent::Allreduce {
                    bytes: 8,
                    repeats: 1,
                },
            ],
        }
    }
    fn rank_class(&self, rank: u32, _nranks: u32) -> Option<u64> {
        self.with_keys.then(|| u64::from(rank < self.split))
    }
}

proptest! {
    /// The class-deduplicated engine is bit-identical to the frozen naive
    /// per-rank walk on randomized master/worker splits — with and without
    /// app-provided class keys.
    #[test]
    fn dedup_matches_naive_on_random_splits(
        nranks in 2u32..24,
        split_seed in 0u32..1024,
        master_iters in 1u64..100_000,
        worker_iters in 1u64..100_000,
        bytes in 1u64..1_000_000,
    ) {
        // A non-uniform master/worker boundary: anywhere from a single
        // master to all-but-one masters.
        let split = 1 + split_seed % (nranks - 1);
        let net = NetworkModel::new(1e-6, 1e9);
        let keyless = SplitApp { split, master_iters, worker_iters, bytes, with_keys: false };
        let keyed = SplitApp { with_keys: true, ..keyless };

        let programs: Vec<RankProgram> =
            (0..nranks).map(|r| keyless.rank_program(r, nranks)).collect();
        let naive =
            try_simulate_programs_naive(&programs, &net, &mut NominalComputeModel::default())
                .expect("naive walk");
        let structural = try_simulate(&keyless, nranks, &net, &mut NominalComputeModel::default())
            .expect("structural dedup");
        let fast = try_simulate(&keyed, nranks, &net, &mut NominalComputeModel::default())
            .expect("keyed dedup");
        prop_assert_eq!(&structural, &naive);
        prop_assert_eq!(&fast, &naive);
    }

    /// Parallel bulk-synchronous stepping reassembles chunks in rank order:
    /// the report is bit-identical at any thread count, even when forced on
    /// below the usual rank threshold.
    #[test]
    fn parallel_stepping_is_thread_invariant(
        nranks in 2u32..24,
        split_seed in 0u32..1024,
        master_iters in 1u64..100_000,
        worker_iters in 1u64..100_000,
        bytes in 1u64..1_000_000,
    ) {
        // A non-uniform master/worker boundary: anywhere from a single
        // master to all-but-one masters.
        let split = 1 + split_seed % (nranks - 1);
        let net = NetworkModel::new(1e-6, 1e9);
        let app = SplitApp { split, master_iters, worker_iters, bytes, with_keys: true };
        let classes = RankClasses::try_from_app(&app, nranks).expect("classes build");

        let serial = try_simulate_classes(
            &classes,
            &net,
            &mut NominalComputeModel::default(),
            SimOptions::default().with_parallel(false).with_min_parallel_ranks(1),
        )
        .expect("serial stepping");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool");
        let parallel = pool
            .install(|| {
                try_simulate_classes(
                    &classes,
                    &net,
                    &mut NominalComputeModel::default(),
                    SimOptions::default().with_parallel(true).with_min_parallel_ranks(1),
                )
            })
            .expect("parallel stepping");
        prop_assert_eq!(&parallel, &serial);
    }
}

proptest! {
    /// Total runtime is at least the slowest rank's compute time, and every
    /// rank finishes together after a trailing collective.
    #[test]
    fn total_bounded_below_by_slowest_compute(
        weights in proptest::collection::vec(1u64..100_000, 1..24),
    ) {
        let app = Weighted { weights: weights.clone() };
        let net = NetworkModel::new(1e-6, 1e9);
        let report = simulate(
            &app,
            weights.len() as u32,
            &net,
            &mut NominalComputeModel::default(),
        );
        let max_compute = report
            .ranks
            .iter()
            .map(|r| r.compute_s)
            .fold(0.0f64, f64::max);
        prop_assert!(report.total_seconds >= max_compute);
        for r in &report.ranks {
            prop_assert!((r.finish_s - report.total_seconds).abs() < 1e-12);
            prop_assert!(r.comm_s >= 0.0);
            prop_assert!(r.compute_s >= 0.0);
        }
    }

    /// The most computational rank is an argmax of the weights (first one
    /// on ties).
    #[test]
    fn longest_rank_is_the_heaviest(
        weights in proptest::collection::vec(1u64..100_000, 1..24),
    ) {
        let app = Weighted { weights: weights.clone() };
        let net = NetworkModel::new(1e-6, 1e9);
        let report = simulate(
            &app,
            weights.len() as u32,
            &net,
            &mut NominalComputeModel::default(),
        );
        let longest = report.most_computational_rank() as usize;
        let max = *weights.iter().max().unwrap();
        prop_assert_eq!(weights[longest], max);
        // First-max tie break.
        let first_max = weights.iter().position(|&w| w == max).unwrap();
        prop_assert_eq!(longest, first_max);
    }

    /// Network costs are monotone in payload and participant count.
    #[test]
    fn network_costs_are_monotone(
        bytes_small in 0u64..1_000_000,
        extra in 1u64..1_000_000,
        p_small in 2u32..4096,
        p_factor in 2u32..8,
    ) {
        let net = NetworkModel::new(2e-6, 5e9);
        let bytes_large = bytes_small + extra;
        let p_large = p_small * p_factor;
        prop_assert!(net.p2p(bytes_large) > net.p2p(bytes_small));
        prop_assert!(net.allreduce(p_large, bytes_small) >= net.allreduce(p_small, bytes_small));
        prop_assert!(net.broadcast(p_small, bytes_large) > net.broadcast(p_small, bytes_small));
        prop_assert!(net.alltoall(p_large, bytes_small) > net.alltoall(p_small, bytes_small));
        prop_assert!(net.barrier(p_large) >= net.barrier(p_small));
    }

    /// Tree depth is exactly ceil(log2 P).
    #[test]
    fn tree_depth_is_ceil_log2(p in 1u32..1_000_000) {
        let d = NetworkModel::tree_depth(p);
        prop_assert!(1u64 << d >= u64::from(p));
        if d > 0 {
            prop_assert!(1u64 << (d - 1) < u64::from(p));
        }
    }

    /// Simulation is deterministic.
    #[test]
    fn simulation_is_deterministic(
        weights in proptest::collection::vec(1u64..10_000, 2..12),
    ) {
        let app = Weighted { weights: weights.clone() };
        let net = NetworkModel::new(1e-6, 1e9);
        let a = simulate(&app, weights.len() as u32, &net, &mut NominalComputeModel::default());
        let b = simulate(&app, weights.len() as u32, &net, &mut NominalComputeModel::default());
        prop_assert_eq!(a, b);
    }
}
