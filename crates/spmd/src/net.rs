//! Network cost model: the communication half of the machine profile.
//!
//! The PMaC machine profile contains measured rates for "communications
//! events, at various … message sizes" (Section III). A postal/α–β model —
//! per-message latency α plus bytes/bandwidth — reproduces that role;
//! collectives use the standard logarithmic-tree costs the PSiNS simulator
//! assumes. The model is deliberately analytic: both the prediction path
//! and the ground-truth path use it identically, so Table I differences
//! isolate *computation*-trace fidelity, which is the paper's subject.

use serde::{Deserialize, Serialize};

/// α–β network model with tree collectives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Per-message latency α, in seconds.
    pub latency_s: f64,
    /// Point-to-point bandwidth, in bytes per second.
    pub bandwidth_bps: f64,
}

impl NetworkModel {
    /// Creates a model; panics on non-positive parameters.
    pub fn new(latency_s: f64, bandwidth_bps: f64) -> Self {
        assert!(latency_s > 0.0 && bandwidth_bps > 0.0);
        Self {
            latency_s,
            bandwidth_bps,
        }
    }

    /// Cost of one point-to-point message of `bytes`.
    #[inline]
    pub fn p2p(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }

    /// Halo exchange with `neighbors` partners of `bytes` each; partner
    /// sendrecvs proceed concurrently but serialize on the local NIC.
    pub fn exchange(&self, neighbors: u32, bytes: u64) -> f64 {
        f64::from(neighbors) * self.p2p(bytes)
    }

    /// Tree depth for `nranks` participants: `ceil(log2 P)`, 0 for P ≤ 1.
    #[inline]
    pub fn tree_depth(nranks: u32) -> u32 {
        if nranks <= 1 {
            0
        } else {
            32 - (nranks - 1).leading_zeros()
        }
    }

    /// Allreduce: reduce-tree up plus broadcast-tree down.
    pub fn allreduce(&self, nranks: u32, bytes: u64) -> f64 {
        2.0 * f64::from(Self::tree_depth(nranks)) * self.p2p(bytes)
    }

    /// Broadcast: one tree traversal.
    pub fn broadcast(&self, nranks: u32, bytes: u64) -> f64 {
        f64::from(Self::tree_depth(nranks)) * self.p2p(bytes)
    }

    /// Personalized all-to-all: `P − 1` pairwise phases.
    pub fn alltoall(&self, nranks: u32, bytes_per_pair: u64) -> f64 {
        f64::from(nranks.saturating_sub(1)) * self.p2p(bytes_per_pair)
    }

    /// Barrier: a zero-byte allreduce.
    pub fn barrier(&self, nranks: u32) -> f64 {
        2.0 * f64::from(Self::tree_depth(nranks)) * self.latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        NetworkModel::new(1e-6, 1e9)
    }

    #[test]
    fn p2p_is_alpha_beta() {
        let n = net();
        let c = n.p2p(1_000_000);
        assert!((c - (1e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn tree_depth_matches_log2_ceiling() {
        assert_eq!(NetworkModel::tree_depth(0), 0);
        assert_eq!(NetworkModel::tree_depth(1), 0);
        assert_eq!(NetworkModel::tree_depth(2), 1);
        assert_eq!(NetworkModel::tree_depth(3), 2);
        assert_eq!(NetworkModel::tree_depth(4), 2);
        assert_eq!(NetworkModel::tree_depth(5), 3);
        assert_eq!(NetworkModel::tree_depth(1024), 10);
        assert_eq!(NetworkModel::tree_depth(8192), 13);
    }

    #[test]
    fn allreduce_grows_logarithmically() {
        let n = net();
        let a = n.allreduce(1024, 8);
        let b = n.allreduce(8192, 8);
        assert!((b / a - 13.0 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn collective_costs_are_ordered_sensibly() {
        let n = net();
        // Broadcast is half an allreduce for the same tree.
        assert!((n.allreduce(64, 128) - 2.0 * n.broadcast(64, 128)).abs() < 1e-15);
        // Barrier carries no payload.
        assert!(n.barrier(64) < n.allreduce(64, 1 << 20));
        // Alltoall dwarfs p2p at scale.
        assert!(n.alltoall(512, 1024) > n.p2p(1024) * 500.0);
    }

    #[test]
    fn exchange_scales_with_neighbor_count() {
        let n = net();
        assert!((n.exchange(6, 4096) - 6.0 * n.p2p(4096)).abs() < 1e-15);
        assert_eq!(n.exchange(0, 4096), 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_latency() {
        NetworkModel::new(0.0, 1e9);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let n = net();
        assert_eq!(n.allreduce(1, 1024), 0.0);
        assert_eq!(n.barrier(1), 0.0);
        assert_eq!(n.broadcast(1, 1024), 0.0);
        assert_eq!(n.alltoall(1, 1024), 0.0);
    }
}
