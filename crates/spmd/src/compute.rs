//! Compute-time models pluggable into the simulator.
//!
//! Three model classes drive the engine in this reproduction:
//!
//! * [`NominalComputeModel`] (here) — charges flat per-operation rates from
//!   block metadata alone. This is what the lightweight MPI profiling pass
//!   uses to find the most computationally demanding task cheaply, without
//!   simulating caches.
//! * The convolution model (`xtrace-psins::predict`) — Eq. (1) over a trace
//!   and a MultiMAPS surface.
//! * The execution-driven model (`xtrace-psins::ground_truth`) — exact
//!   per-access latencies from the cache simulator.

use xtrace_ir::{BlockId, Program};

/// Maps a compute segment to seconds for one rank.
pub trait ComputeModel {
    /// Seconds rank `rank` spends invoking `block` of `program`
    /// `invocations` times.
    fn seconds(&mut self, rank: u32, program: &Program, block: BlockId, invocations: u64) -> f64;

    /// Optional rank-equivalence key enabling class deduplication in the
    /// engine.
    ///
    /// Contract: two ranks returning equal `Some` keys must be charged the
    /// *same* seconds for the same `(program, block, invocations)` inputs.
    /// The engine then calls [`ComputeModel::seconds`] once per (rank
    /// class, model key) pair and reuses the result across the member
    /// ranks. Returning `None` (the default) opts the model out: every
    /// rank is charged individually, exactly like the naive engine — the
    /// safe choice for arbitrary (e.g. closure-based) models whose
    /// rank-dependence the engine cannot see.
    fn class_key(&self, _rank: u32) -> Option<u64> {
        None
    }
}

/// Flat-rate model: every memory reference and FLOP costs a fixed time.
///
/// Deliberately crude — it exists to *rank* tasks by computational demand
/// (its only use in the paper's pipeline), not to predict runtime.
#[derive(Debug, Clone, Copy)]
pub struct NominalComputeModel {
    /// Seconds charged per dynamic memory reference.
    pub secs_per_memref: f64,
    /// Seconds charged per FLOP.
    pub secs_per_flop: f64,
}

impl Default for NominalComputeModel {
    /// Rates of order a 1 GHz scalar core: 1 ns per reference, 0.5 ns per
    /// FLOP.
    fn default() -> Self {
        Self {
            secs_per_memref: 1e-9,
            secs_per_flop: 5e-10,
        }
    }
}

impl ComputeModel for NominalComputeModel {
    fn seconds(&mut self, _rank: u32, program: &Program, block: BlockId, invocations: u64) -> f64 {
        let b = program.block(block);
        let refs = b.mem_refs_per_invocation() * invocations;
        let flops = b.flops_per_invocation() * invocations;
        refs as f64 * self.secs_per_memref + flops as f64 * self.secs_per_flop
    }

    /// Rates are rank-independent, so every rank is in one class.
    fn class_key(&self, _rank: u32) -> Option<u64> {
        Some(0)
    }
}

/// Adapter letting closures act as compute models in tests and experiments.
impl<F> ComputeModel for F
where
    F: FnMut(u32, &Program, BlockId, u64) -> f64,
{
    fn seconds(&mut self, rank: u32, program: &Program, block: BlockId, invocations: u64) -> f64 {
        self(rank, program, block, invocations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_ir::{AddressPattern, BasicBlock, FpOp, Instruction, MemOp, SourceLoc};

    fn program() -> (Program, BlockId) {
        let mut b = Program::builder();
        let r = b.region("a", 4096, 8);
        let blk = b.block(BasicBlock::new(
            BlockId(0),
            "k",
            SourceLoc::new("x.c", 1, "f"),
            10,
            vec![
                Instruction::mem(MemOp::Load, r, 8, AddressPattern::unit(8)),
                Instruction::fp(FpOp::Add).with_repeat(4),
            ],
        ));
        (b.build().unwrap(), blk)
    }

    #[test]
    fn nominal_model_charges_linear_rates() {
        let (p, blk) = program();
        let mut m = NominalComputeModel {
            secs_per_memref: 2.0,
            secs_per_flop: 1.0,
        };
        // 3 invocations: refs = 30, flops = 120.
        let t = m.seconds(0, &p, blk, 3);
        assert!((t - (30.0 * 2.0 + 120.0)).abs() < 1e-9);
    }

    #[test]
    fn nominal_model_is_invocation_proportional() {
        let (p, blk) = program();
        let mut m = NominalComputeModel::default();
        let one = m.seconds(0, &p, blk, 1);
        let ten = m.seconds(0, &p, blk, 10);
        assert!((ten - 10.0 * one).abs() < 1e-15);
    }

    #[test]
    fn closures_are_compute_models() {
        let (p, blk) = program();
        let mut m = |rank: u32, _: &Program, _: BlockId, inv: u64| f64::from(rank) + inv as f64;
        assert_eq!(m.seconds(2, &p, blk, 3), 5.0);
    }

    #[test]
    fn class_keys_reflect_rank_dependence() {
        // The nominal model is rank-independent: one class for all ranks.
        let nominal = NominalComputeModel::default();
        assert_eq!(nominal.class_key(0), nominal.class_key(7));
        assert!(nominal.class_key(0).is_some());
        // Closures may be rank-dependent, so they must opt out of dedup.
        let m = |rank: u32, _: &Program, _: BlockId, inv: u64| f64::from(rank) + inv as f64;
        assert_eq!(ComputeModel::class_key(&m, 3), None);
    }
}
