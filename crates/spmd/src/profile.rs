//! Lightweight MPI profiling — the PSiNSTracer analog.
//!
//! Section IV: "we focus on extrapolating the trace data from the MPI task
//! that consumed the most computational time … identified using a
//! lightweight MPI profiling library based on the PSiNSTracer package."
//! [`MpiProfiler`] is that pass: it runs the cheap nominal-rate simulation
//! (no cache modeling) to rank tasks by compute demand, and records the
//! communication-event summary that the prediction later replays around the
//! convolved compute time.

use serde::{Deserialize, Serialize};
use xtrace_obs::ObsContext;

use crate::compute::NominalComputeModel;
use crate::event::{RankEvent, SpmdApp};
use crate::net::NetworkModel;
use crate::sim::{try_simulate_with_obs, SimOptions};

/// Communication event classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommKind {
    /// Neighbor halo exchange.
    Exchange,
    /// Global reduction.
    Allreduce,
    /// One-to-all broadcast.
    Broadcast,
    /// Personalized all-to-all.
    Alltoall,
    /// Pure synchronization.
    Barrier,
}

/// One (folded) communication event of the profiled task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommEventRecord {
    /// Event class.
    pub kind: CommKind,
    /// Neighbor count (exchanges only; 0 otherwise).
    pub neighbors: u32,
    /// Payload bytes (per neighbor for exchanges, per pair for all-to-all).
    pub bytes: u64,
    /// Folded repetition count.
    pub repeats: u64,
}

/// Communication summary of an application run at one core count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommProfile {
    /// Core count profiled.
    pub nranks: u32,
    /// The most computationally demanding task.
    pub longest_rank: u32,
    /// That task's communication events, in order.
    pub events: Vec<CommEventRecord>,
    /// Max/mean compute-time ratio across ranks (load imbalance).
    pub compute_imbalance: f64,
}

impl CommProfile {
    /// Replays the recorded events through a network model, returning the
    /// communication seconds the profiled task spends.
    pub fn comm_seconds(&self, net: &NetworkModel) -> f64 {
        self.events
            .iter()
            .map(|e| {
                let once = match e.kind {
                    CommKind::Exchange => net.exchange(e.neighbors, e.bytes),
                    CommKind::Allreduce => net.allreduce(self.nranks, e.bytes),
                    CommKind::Broadcast => net.broadcast(self.nranks, e.bytes),
                    CommKind::Alltoall => net.alltoall(self.nranks, e.bytes),
                    CommKind::Barrier => net.barrier(self.nranks),
                };
                once * e.repeats as f64
            })
            .sum()
    }

    /// Total communication events after unfolding repeats.
    pub fn event_count(&self) -> u64 {
        self.events.iter().map(|e| e.repeats).sum()
    }
}

/// The profiling pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct MpiProfiler {
    /// Rates used to rank tasks by computational demand.
    pub rates: NominalComputeModel,
}

impl MpiProfiler {
    /// Profiles `app` at `nranks`, returning the communication profile of
    /// the most computationally demanding task.
    pub fn profile(&self, app: &dyn SpmdApp, nranks: u32, net: &NetworkModel) -> CommProfile {
        self.profile_obs(app, nranks, net, &ObsContext::ambient())
    }

    /// [`MpiProfiler::profile`] recording the underlying nominal-rate
    /// simulation into an explicit observability context.
    ///
    /// # Panics
    ///
    /// Panics on the same SPMD violations as [`crate::simulate`].
    pub fn profile_obs(
        &self,
        app: &dyn SpmdApp,
        nranks: u32,
        net: &NetworkModel,
        obs: &ObsContext,
    ) -> CommProfile {
        let mut rates = self.rates;
        let report =
            try_simulate_with_obs(app, nranks, net, &mut rates, SimOptions::default(), obs)
                .expect("SPMD simulation failed");
        let longest = report.most_computational_rank();
        let program = app.rank_program(longest, nranks);
        let events = program
            .events
            .iter()
            .filter_map(|e| match e {
                RankEvent::Compute { .. } => None,
                RankEvent::Exchange {
                    neighbors,
                    bytes_per_neighbor,
                    repeats,
                } => Some(CommEventRecord {
                    kind: CommKind::Exchange,
                    neighbors: neighbors.len() as u32,
                    bytes: *bytes_per_neighbor,
                    repeats: *repeats,
                }),
                RankEvent::Allreduce { bytes, repeats } => Some(CommEventRecord {
                    kind: CommKind::Allreduce,
                    neighbors: 0,
                    bytes: *bytes,
                    repeats: *repeats,
                }),
                RankEvent::Broadcast { bytes, repeats } => Some(CommEventRecord {
                    kind: CommKind::Broadcast,
                    neighbors: 0,
                    bytes: *bytes,
                    repeats: *repeats,
                }),
                RankEvent::Alltoall {
                    bytes_per_pair,
                    repeats,
                } => Some(CommEventRecord {
                    kind: CommKind::Alltoall,
                    neighbors: 0,
                    bytes: *bytes_per_pair,
                    repeats: *repeats,
                }),
                RankEvent::Barrier { repeats } => Some(CommEventRecord {
                    kind: CommKind::Barrier,
                    neighbors: 0,
                    bytes: 0,
                    repeats: *repeats,
                }),
            })
            .collect();
        CommProfile {
            nranks,
            longest_rank: longest,
            events,
            compute_imbalance: report.compute_imbalance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RankProgram;
    use xtrace_ir::{AddressPattern, BasicBlock, BlockId, Instruction, MemOp, Program, SourceLoc};

    /// Rank `P-1` does double work; all ranks allreduce then exchange.
    struct LastRankHeavy;
    impl SpmdApp for LastRankHeavy {
        fn name(&self) -> &str {
            "heavy"
        }
        fn rank_program(&self, rank: u32, nranks: u32) -> RankProgram {
            let mut b = Program::builder();
            let r = b.region("a", 4096, 8);
            let iters = if rank == nranks - 1 { 2000 } else { 1000 };
            let blk = b.block(BasicBlock::new(
                BlockId(0),
                "w",
                SourceLoc::new("t.c", 1, "f"),
                iters,
                vec![Instruction::mem(MemOp::Load, r, 8, AddressPattern::unit(8))],
            ));
            let right = (rank + 1) % nranks;
            RankProgram {
                program: b.build().unwrap(),
                events: vec![
                    RankEvent::Compute {
                        block: blk,
                        invocations: 1,
                    },
                    RankEvent::Allreduce {
                        bytes: 8,
                        repeats: 10,
                    },
                    RankEvent::Exchange {
                        neighbors: vec![right],
                        bytes_per_neighbor: 2048,
                        repeats: 5,
                    },
                ],
            }
        }
    }

    fn net() -> NetworkModel {
        NetworkModel::new(1e-6, 1e9)
    }

    #[test]
    fn finds_the_heavy_rank() {
        let prof = MpiProfiler::default().profile(&LastRankHeavy, 8, &net());
        assert_eq!(prof.longest_rank, 7);
        assert_eq!(prof.nranks, 8);
    }

    #[test]
    fn records_comm_events_in_order() {
        let prof = MpiProfiler::default().profile(&LastRankHeavy, 8, &net());
        assert_eq!(prof.events.len(), 2);
        assert_eq!(prof.events[0].kind, CommKind::Allreduce);
        assert_eq!(prof.events[0].repeats, 10);
        assert_eq!(prof.events[1].kind, CommKind::Exchange);
        assert_eq!(prof.events[1].neighbors, 1);
        assert_eq!(prof.event_count(), 15);
    }

    #[test]
    fn comm_seconds_replays_costs() {
        let prof = MpiProfiler::default().profile(&LastRankHeavy, 8, &net());
        let expected = net().allreduce(8, 8) * 10.0 + net().exchange(1, 2048) * 5.0;
        assert!((prof.comm_seconds(&net()) - expected).abs() < 1e-12);
    }

    #[test]
    fn imbalance_is_captured() {
        let prof = MpiProfiler::default().profile(&LastRankHeavy, 8, &net());
        // 7 ranks at 1.0, one at 2.0: mean 9/8, max 2 -> 16/9.
        assert!((prof.compute_imbalance - 16.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn profile_serializes() {
        let prof = MpiProfiler::default().profile(&LastRankHeavy, 4, &net());
        let s = serde_json::to_string(&prof).unwrap();
        let back: CommProfile = serde_json::from_str(&s).unwrap();
        assert_eq!(back.events, prof.events);
        assert_eq!(back.nranks, prof.nranks);
        assert_eq!(back.longest_rank, prof.longest_rank);
        // Floats may shift by an ulp through JSON.
        assert!((back.compute_imbalance - prof.compute_imbalance).abs() < 1e-12);
    }
}
