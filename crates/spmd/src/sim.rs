//! Bulk-synchronous discrete-event engine.
//!
//! Advances one virtual clock per rank through the SPMD event script.
//! Compute events move only the local clock (by whatever the plugged-in
//! [`ComputeModel`] charges); communication events synchronize clocks —
//! locally for halo exchanges, globally for collectives — and then charge
//! the network cost from [`NetworkModel`]. The slowest rank's finish time
//! is the application runtime; the gap between a rank's arrival at a
//! synchronization point and its departure is attributed to communication
//! (it is wait-plus-wire time, exactly how MPI profilers attribute it).
//!
//! # Rank-class deduplication
//!
//! SPMD rank programs are identical within master/worker classes: at a
//! fixed core count the proxies produce two or three distinct programs
//! (master, remainder worker, plain worker), not `nranks` of them. The
//! engine exploits that through [`RankClasses`]: one representative
//! program is materialized per class, the compute model is charged once
//! per (class, [`ComputeModel::class_key`]) pair, and only the per-rank
//! state that genuinely differs — clocks, synchronization waits, and
//! `Exchange` neighbor lists — is kept per rank. This collapses the
//! O(nranks) program builds and model charges of the naive engine to
//! O(classes) while producing bit-identical [`SimReport`]s: every
//! per-rank floating-point update is performed in the same order with the
//! same values as the naive per-rank walk (the reference implementation is
//! kept as [`simulate_programs_naive`] and equality is enforced by
//! proptests).
//!
//! # Parallel stepping
//!
//! Between synchronization points every rank's advance depends only on the
//! pre-event clocks, so each event is applied in two phases: a pure
//! per-rank update computation (fanned out over rank chunks with rayon
//! when the pool and rank count warrant it) followed by an in-order commit.
//! Chunking only partitions index space — each rank's value is computed
//! from the same snapshot by the same expression — so reports are
//! bit-identical at any thread count.

use std::collections::HashMap;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use xtrace_obs::ObsContext;

use crate::compute::ComputeModel;
use crate::event::{RankEvent, RankProgram, SpmdApp};
use crate::net::NetworkModel;

/// One interval of a replay timeline: what a rank was doing, and when.
///
/// PSiNS is "an open source event tracer and execution simulator"; this is
/// the event-tracer half — the record stream a timeline viewer (or the
/// tests) consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Rank the interval belongs to.
    pub rank: u32,
    /// Index of the event in the rank's script.
    pub event_index: usize,
    /// Event classification (the [`RankEvent::kind_tag`] names).
    pub kind: String,
    /// Interval start, in seconds from application start.
    pub start_s: f64,
    /// Interval end.
    pub end_s: f64,
}

/// Per-rank time breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankTimes {
    /// Seconds spent in compute segments.
    pub compute_s: f64,
    /// Seconds spent communicating (wire time plus synchronization wait).
    pub comm_s: f64,
    /// Final clock value.
    pub finish_s: f64,
}

/// Result of simulating an application at one core count.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Application runtime: the slowest rank's finish time.
    pub total_seconds: f64,
    /// Per-rank breakdowns, indexed by rank.
    pub ranks: Vec<RankTimes>,
}

impl SimReport {
    /// Rank with the largest compute time — the task the paper extrapolates
    /// ("this task tends to have the most impact on overall execution
    /// time", Section IV).
    pub fn most_computational_rank(&self) -> u32 {
        let mut best = 0usize;
        for (i, r) in self.ranks.iter().enumerate().skip(1) {
            // Strictly greater: ties resolve to the lowest rank id, keeping
            // the choice deterministic and stable across core counts.
            if r.compute_s > self.ranks[best].compute_s {
                best = i;
            }
        }
        best as u32
    }

    /// Ratio of max to mean compute time across ranks (1.0 = perfectly
    /// balanced).
    pub fn compute_imbalance(&self) -> f64 {
        let max = self
            .ranks
            .iter()
            .map(|r| r.compute_s)
            .fold(f64::MIN, f64::max);
        let mean = self.ranks.iter().map(|r| r.compute_s).sum::<f64>() / self.ranks.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }
}

/// Why a simulation could not be run.
#[derive(Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The simulation was asked for zero ranks.
    NoRanks,
    /// A rank's program failed [`RankProgram::validate`].
    InvalidRank {
        /// Offending rank.
        rank: u32,
        /// The validation failure.
        detail: String,
    },
    /// A rank's event count differs from rank 0's (an SPMD violation).
    EventCountMismatch {
        /// Offending rank.
        rank: u32,
    },
    /// A rank's event kind differs from rank 0's at the same index (an
    /// SPMD violation).
    EventKindMismatch {
        /// Offending rank.
        rank: u32,
        /// Offending event index.
        event: usize,
    },
    /// An exchange partner list names a rank outside the job.
    BadNeighbor {
        /// Offending rank.
        rank: u32,
        /// The out-of-range neighbor.
        neighbor: u32,
    },
    /// An app's [`SpmdApp::rank_class`] / [`SpmdApp::exchange_partners`]
    /// overrides disagree with its materialized rank programs.
    ClassContract {
        /// Offending rank.
        rank: u32,
        /// What disagreed.
        detail: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoRanks => write!(f, "need at least one rank"),
            SimError::InvalidRank { rank, detail } => write!(f, "rank {rank}: {detail}"),
            SimError::EventCountMismatch { rank } => write!(
                f,
                "rank {rank} event count differs from rank 0 (SPMD violation)"
            ),
            SimError::EventKindMismatch { rank, event } => write!(
                f,
                "rank {rank} event {event} kind differs from rank 0 (SPMD violation)"
            ),
            SimError::BadNeighbor { rank, neighbor } => write!(
                f,
                "rank {rank} exchanges with out-of-range neighbor {neighbor}"
            ),
            SimError::ClassContract { rank, detail } => {
                write!(f, "rank {rank} violates the rank-class contract: {detail}")
            }
        }
    }
}

// Debug delegates to Display so `.expect(...)` panics in the legacy
// wrappers carry the human-readable message (and the substrings the
// long-standing `#[should_panic(expected = ...)]` tests assert on).
impl std::fmt::Debug for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for SimError {}

/// Engine tuning knobs. The defaults are correct for every caller; they
/// exist so benches and determinism tests can force specific paths.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`SimOptions::default`] and refine with the `with_*` setters so new
/// knobs can be added without breaking callers.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct SimOptions {
    /// Allow the per-rank update fan-out over the rayon pool. The engine
    /// additionally requires a multi-thread pool and at least
    /// `min_parallel_ranks` ranks, so small jobs never pay thread-spawn
    /// overhead.
    pub parallel: bool,
    /// Rank count below which updates always run serially.
    pub min_parallel_ranks: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            parallel: true,
            min_parallel_ranks: 256,
        }
    }
}

impl SimOptions {
    /// Allows or forbids the per-rank update fan-out.
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Sets the rank count below which updates always run serially.
    #[must_use]
    pub fn with_min_parallel_ranks(mut self, n: usize) -> Self {
        self.min_parallel_ranks = n;
        self
    }
}

/// Rank-class decomposition of an SPMD job: one representative
/// [`RankProgram`] per equivalence class plus the per-rank residue (class
/// assignment and `Exchange` neighbor lists).
///
/// Two ranks are in the same class when their programs are identical
/// except for `Exchange` neighbor lists. For the proxy apps that yields
/// two or three classes at any core count, so materializing and
/// compute-charging per class instead of per rank collapses the dominant
/// replay cost from O(nranks) to O(1).
#[derive(Debug, Clone)]
pub struct RankClasses {
    /// One representative program per class, in first-seen (rank) order.
    representatives: Vec<RankProgram>,
    /// Rank → class index.
    assignment: Vec<u32>,
    /// Rank → (`Exchange` slot in script order) → neighbor list.
    partners: Vec<Vec<Vec<u32>>>,
}

/// True when the two programs differ at most in `Exchange` neighbor lists.
fn same_class(a: &RankProgram, b: &RankProgram) -> bool {
    if a.program != b.program || a.events.len() != b.events.len() {
        return false;
    }
    a.events.iter().zip(&b.events).all(|(x, y)| match (x, y) {
        (
            RankEvent::Exchange {
                bytes_per_neighbor: bx,
                repeats: rx,
                ..
            },
            RankEvent::Exchange {
                bytes_per_neighbor: by,
                repeats: ry,
                ..
            },
        ) => bx == by && rx == ry,
        _ => x == y,
    })
}

/// The `Exchange` neighbor lists of a program, in script order.
fn exchange_lists(p: &RankProgram) -> Vec<Vec<u32>> {
    p.events
        .iter()
        .filter_map(|e| match e {
            RankEvent::Exchange { neighbors, .. } => Some(neighbors.clone()),
            _ => None,
        })
        .collect()
}

/// Shape/validity check shared by the naive engine and class building.
fn validate_programs(programs: &[RankProgram]) -> Result<(), SimError> {
    if programs.is_empty() {
        return Err(SimError::NoRanks);
    }
    let nranks = programs.len() as u32;
    let nevents = programs[0].events.len();
    for (r, p) in programs.iter().enumerate() {
        if let Err(detail) = p.validate(nranks) {
            return Err(SimError::InvalidRank {
                rank: r as u32,
                detail,
            });
        }
        if p.events.len() != nevents {
            return Err(SimError::EventCountMismatch { rank: r as u32 });
        }
        for (i, e) in p.events.iter().enumerate() {
            if e.kind_tag() != programs[0].events[i].kind_tag() {
                return Err(SimError::EventKindMismatch {
                    rank: r as u32,
                    event: i,
                });
            }
        }
    }
    Ok(())
}

impl RankClasses {
    /// Number of ranks in the job.
    pub fn nranks(&self) -> u32 {
        self.assignment.len() as u32
    }

    /// Number of equivalence classes.
    pub fn num_classes(&self) -> usize {
        self.representatives.len()
    }

    /// The representative programs, in first-seen (rank) order.
    pub fn representatives(&self) -> &[RankProgram] {
        &self.representatives
    }

    /// Rank → class index.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Groups already-materialized programs by structural equality (modulo
    /// `Exchange` neighbors). O(nranks × classes) comparisons — the
    /// correct-by-construction path used when no cheap class key exists.
    pub fn try_from_programs(programs: &[RankProgram]) -> Result<Self, SimError> {
        validate_programs(programs)?;
        let mut representatives: Vec<RankProgram> = Vec::new();
        let mut assignment = Vec::with_capacity(programs.len());
        let mut partners = Vec::with_capacity(programs.len());
        for p in programs {
            let c = match representatives.iter().position(|rep| same_class(rep, p)) {
                Some(c) => c,
                None => {
                    representatives.push(p.clone());
                    representatives.len() - 1
                }
            };
            assignment.push(c as u32);
            partners.push(exchange_lists(p));
        }
        Ok(Self {
            representatives,
            assignment,
            partners,
        })
    }

    /// Builds classes from an app's [`SpmdApp::rank_class`] keys without
    /// materializing every rank's program — the O(classes) fast path.
    ///
    /// Falls back to [`RankClasses::try_from_programs`] when the app does
    /// not provide keys. In debug builds the keys and partner lists are
    /// verified against fully materialized programs.
    pub fn try_from_app(app: &dyn SpmdApp, nranks: u32) -> Result<Self, SimError> {
        if nranks == 0 {
            return Err(SimError::NoRanks);
        }
        let keys: Option<Vec<u64>> = (0..nranks).map(|r| app.rank_class(r, nranks)).collect();
        let Some(keys) = keys else {
            let programs: Vec<RankProgram> =
                (0..nranks).map(|r| app.rank_program(r, nranks)).collect();
            return Self::try_from_programs(&programs);
        };

        let mut key_to_class: HashMap<u64, u32> = HashMap::new();
        let mut representatives: Vec<RankProgram> = Vec::new();
        let mut assignment = Vec::with_capacity(nranks as usize);
        let mut partners = Vec::with_capacity(nranks as usize);
        for r in 0..nranks {
            let c = match key_to_class.get(&keys[r as usize]) {
                Some(&c) => c,
                None => {
                    let c = representatives.len() as u32;
                    representatives.push(app.rank_program(r, nranks));
                    key_to_class.insert(keys[r as usize], c);
                    c
                }
            };
            assignment.push(c);
            partners.push(app.exchange_partners(r, nranks));
        }
        let classes = Self {
            representatives,
            assignment,
            partners,
        };
        classes.validate()?;
        #[cfg(debug_assertions)]
        classes.verify_app_contract(app, nranks)?;
        Ok(classes)
    }

    /// Internal consistency check used by the engine: representative
    /// programs are valid, classes agree on event shape, and every rank's
    /// partner lists line up with the script's `Exchange` slots.
    fn validate(&self) -> Result<(), SimError> {
        let nranks = self.assignment.len();
        if nranks == 0 || self.representatives.is_empty() {
            return Err(SimError::NoRanks);
        }
        let first_rank_of = |class: usize| -> u32 {
            self.assignment
                .iter()
                .position(|&c| c as usize == class)
                .map(|r| r as u32)
                .unwrap_or(0)
        };
        let base = &self.representatives[self.assignment[0] as usize];
        let nevents = base.events.len();
        for (c, rep) in self.representatives.iter().enumerate() {
            if let Err(detail) = rep.validate(nranks as u32) {
                return Err(SimError::InvalidRank {
                    rank: first_rank_of(c),
                    detail,
                });
            }
            if rep.events.len() != nevents {
                return Err(SimError::EventCountMismatch {
                    rank: first_rank_of(c),
                });
            }
            for (i, e) in rep.events.iter().enumerate() {
                if e.kind_tag() != base.events[i].kind_tag() {
                    return Err(SimError::EventKindMismatch {
                        rank: first_rank_of(c),
                        event: i,
                    });
                }
            }
        }
        let nslots = base
            .events
            .iter()
            .filter(|e| matches!(e, RankEvent::Exchange { .. }))
            .count();
        for (r, lists) in self.partners.iter().enumerate() {
            if (self.assignment[r] as usize) >= self.representatives.len() {
                return Err(SimError::ClassContract {
                    rank: r as u32,
                    detail: format!("class {} out of range", self.assignment[r]),
                });
            }
            if lists.len() != nslots {
                return Err(SimError::ClassContract {
                    rank: r as u32,
                    detail: format!(
                        "{} exchange partner lists for {nslots} Exchange events",
                        lists.len()
                    ),
                });
            }
            for list in lists {
                for &n in list {
                    if n as usize >= nranks {
                        return Err(SimError::BadNeighbor {
                            rank: r as u32,
                            neighbor: n,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Debug-build safety net for app-provided class keys: materialize
    /// every rank's program and check it really is its representative
    /// modulo `Exchange` neighbors, and that `exchange_partners` agrees
    /// with the program.
    #[cfg(debug_assertions)]
    fn verify_app_contract(&self, app: &dyn SpmdApp, nranks: u32) -> Result<(), SimError> {
        for r in 0..nranks {
            let p = app.rank_program(r, nranks);
            let rep = &self.representatives[self.assignment[r as usize] as usize];
            if !same_class(rep, &p) {
                return Err(SimError::ClassContract {
                    rank: r,
                    detail: "rank_class key equates programs that differ beyond Exchange \
                             neighbor lists"
                        .into(),
                });
            }
            if exchange_lists(&p) != self.partners[r as usize] {
                return Err(SimError::ClassContract {
                    rank: r,
                    detail: "exchange_partners disagrees with rank_program".into(),
                });
            }
        }
        Ok(())
    }
}

/// Simulates `app` on `nranks` ranks.
///
/// Uses the class-deduplicated engine; apps providing
/// [`SpmdApp::rank_class`] keys skip the per-rank program builds entirely.
///
/// # Panics
///
/// Panics if `nranks == 0`, if ranks disagree on event shape (an SPMD
/// violation), or if an exchange names an out-of-range neighbor.
pub fn simulate(
    app: &dyn SpmdApp,
    nranks: u32,
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
) -> SimReport {
    expect_sim(try_simulate(app, nranks, net, compute))
}

/// Fallible form of [`simulate`].
pub fn try_simulate(
    app: &dyn SpmdApp,
    nranks: u32,
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
) -> Result<SimReport, SimError> {
    try_simulate_with(app, nranks, net, compute, SimOptions::default())
}

/// [`try_simulate`] with explicit engine options.
pub fn try_simulate_with(
    app: &dyn SpmdApp,
    nranks: u32,
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
    opts: SimOptions,
) -> Result<SimReport, SimError> {
    try_simulate_with_obs(app, nranks, net, compute, opts, &ObsContext::ambient())
}

/// [`try_simulate_with`] recording into an explicit observability context
/// ([`SimOptions`] is `Copy`, so the context travels as its own argument).
pub fn try_simulate_with_obs(
    app: &dyn SpmdApp,
    nranks: u32,
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
    opts: SimOptions,
    obs: &ObsContext,
) -> Result<SimReport, SimError> {
    let classes = RankClasses::try_from_app(app, nranks)?;
    simulate_classes_inner(&classes, net, compute, opts, None, obs)
}

/// Like [`try_simulate`], additionally recording the full replay timeline.
pub fn try_simulate_traced(
    app: &dyn SpmdApp,
    nranks: u32,
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
) -> Result<(SimReport, Vec<TimelineEntry>), SimError> {
    let classes = RankClasses::try_from_app(app, nranks)?;
    let mut timeline = Vec::new();
    let report = simulate_classes_inner(
        &classes,
        net,
        compute,
        SimOptions::default(),
        Some(&mut |e| timeline.push(e)),
        &ObsContext::ambient(),
    )?;
    Ok((report, timeline))
}

/// Simulates pre-built rank programs (used when the caller already
/// materialized them, e.g. the tracer). Programs are grouped into rank
/// classes first, so the compute model is still charged once per class.
pub fn simulate_programs(
    programs: &[RankProgram],
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
) -> SimReport {
    expect_sim(try_simulate_programs(programs, net, compute))
}

/// Fallible form of [`simulate_programs`].
pub fn try_simulate_programs(
    programs: &[RankProgram],
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
) -> Result<SimReport, SimError> {
    let classes = RankClasses::try_from_programs(programs)?;
    simulate_classes_inner(
        &classes,
        net,
        compute,
        SimOptions::default(),
        None,
        &ObsContext::ambient(),
    )
}

/// Like [`simulate_programs`], additionally recording the full replay
/// timeline (one entry per rank per event, in event order).
pub fn simulate_programs_traced(
    programs: &[RankProgram],
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
) -> (SimReport, Vec<TimelineEntry>) {
    expect_sim_traced(try_simulate_programs_traced(programs, net, compute))
}

/// Fallible form of [`simulate_programs_traced`].
pub fn try_simulate_programs_traced(
    programs: &[RankProgram],
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
) -> Result<(SimReport, Vec<TimelineEntry>), SimError> {
    let classes = RankClasses::try_from_programs(programs)?;
    let mut timeline = Vec::new();
    let report = simulate_classes_inner(
        &classes,
        net,
        compute,
        SimOptions::default(),
        Some(&mut |e| timeline.push(e)),
        &ObsContext::ambient(),
    )?;
    Ok((report, timeline))
}

/// Runs the deduplicated engine over a prepared class decomposition.
pub fn try_simulate_classes(
    classes: &RankClasses,
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
    opts: SimOptions,
) -> Result<SimReport, SimError> {
    simulate_classes_inner(classes, net, compute, opts, None, &ObsContext::ambient())
}

/// [`try_simulate_classes`] recording into an explicit observability
/// context.
pub fn try_simulate_classes_obs(
    classes: &RankClasses,
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
    opts: SimOptions,
    obs: &ObsContext,
) -> Result<SimReport, SimError> {
    simulate_classes_inner(classes, net, compute, opts, None, obs)
}

/// The frozen reference engine: walks every rank individually, charging
/// the compute model per rank, exactly as the engine worked before class
/// deduplication. Kept public so benches can measure the dedup speedup and
/// proptests can assert bit-identical reports.
pub fn simulate_programs_naive(
    programs: &[RankProgram],
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
) -> SimReport {
    expect_sim(try_simulate_programs_naive(programs, net, compute))
}

/// Fallible form of [`simulate_programs_naive`].
pub fn try_simulate_programs_naive(
    programs: &[RankProgram],
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
) -> Result<SimReport, SimError> {
    validate_programs(programs)?;
    Ok(naive_inner(programs, net, compute))
}

fn expect_sim(res: Result<SimReport, SimError>) -> SimReport {
    res.expect("SPMD simulation failed")
}

fn expect_sim_traced(
    res: Result<(SimReport, Vec<TimelineEntry>), SimError>,
) -> (SimReport, Vec<TimelineEntry>) {
    res.expect("SPMD simulation failed")
}

fn event_kind_name(e: &RankEvent) -> &'static str {
    match e {
        RankEvent::Compute { .. } => "compute",
        RankEvent::Exchange { .. } => "exchange",
        RankEvent::Allreduce { .. } => "allreduce",
        RankEvent::Broadcast { .. } => "broadcast",
        RankEvent::Alltoall { .. } => "alltoall",
        RankEvent::Barrier { .. } => "barrier",
    }
}

/// Computes `f(rank)` for every rank, optionally fanning out over rank
/// chunks. `f` must be pure over the pre-event snapshot; chunking only
/// partitions index space and results are reassembled in rank order, so
/// the output is identical to the serial path at any thread count.
fn run_per_rank<F>(par: bool, nranks: usize, f: &F) -> Vec<(f64, f64, f64)>
where
    F: Fn(usize) -> (f64, f64, f64) + Sync,
{
    if !par {
        return (0..nranks).map(f).collect();
    }
    let threads = rayon::current_num_threads().max(1);
    let chunk = nranks.div_ceil(threads * 4).max(1);
    let ranges: Vec<(usize, usize)> = (0..nranks)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(nranks)))
        .collect();
    let chunks: Vec<Vec<(f64, f64, f64)>> = ranges
        .par_iter()
        .map(|&(lo, hi)| (lo..hi).map(f).collect())
        .collect();
    chunks.into_iter().flatten().collect()
}

/// The deduplicated bulk-synchronous engine.
///
/// Each event is applied in two phases: per-rank `(new_clock, Δcompute,
/// Δcomm)` updates computed purely from the pre-event clocks (serially or
/// chunk-parallel), then an in-order commit that also emits timeline
/// entries when tracing. The per-rank arithmetic is exactly the naive
/// engine's — same values, same order — so reports are bit-identical.
fn simulate_classes_inner(
    classes: &RankClasses,
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
    opts: SimOptions,
    mut record: Option<&mut dyn FnMut(TimelineEntry)>,
    obs: &ObsContext,
) -> Result<SimReport, SimError> {
    classes.validate()?;
    let nranks = classes.assignment.len();
    let assignment = &classes.assignment;
    let reps = &classes.representatives;
    let nevents = reps[0].events.len();

    // Refined compute-charging groups: (program class, model class key).
    // A model without keys opts out — every rank forms its own group and
    // is charged individually, exactly like the naive engine.
    let keys: Option<Vec<u64>> = (0..nranks).map(|r| compute.class_key(r as u32)).collect();
    let (group_of, group_reps): (Vec<u32>, Vec<u32>) = match keys {
        Some(keys) => {
            let mut map: HashMap<(u32, u64), u32> = HashMap::new();
            let mut group_of = Vec::with_capacity(nranks);
            let mut group_reps: Vec<u32> = Vec::new();
            for r in 0..nranks {
                let ck = (assignment[r], keys[r]);
                let g = match map.get(&ck) {
                    Some(&g) => g,
                    None => {
                        let g = group_reps.len() as u32;
                        group_reps.push(r as u32);
                        map.insert(ck, g);
                        g
                    }
                };
                group_of.push(g);
            }
            (group_of, group_reps)
        }
        None => ((0..nranks as u32).collect(), (0..nranks as u32).collect()),
    };

    let par = record.is_none()
        && opts.parallel
        && nranks >= opts.min_parallel_ranks
        && rayon::current_num_threads() > 1;

    // Observability: class/group/event counts are functions of the input
    // alone; whether the chunked path runs depends on the installed thread
    // pool, so that lands under the scheduling-dependent prefix.
    let metrics = obs.metrics();
    if metrics.enabled() {
        metrics.gauge("spmd.rank_classes").set(reps.len() as u64);
        metrics
            .gauge("spmd.compute_groups")
            .set(group_reps.len() as u64);
        metrics.counter("spmd.events_stepped").add(nevents as u64);
        metrics
            .counter(if par {
                "sched.spmd.parallel_sims"
            } else {
                "sched.spmd.serial_sims"
            })
            .incr();
    }

    // Journal: per-rank-class compute/exchange attribution on the
    // *simulated* clock. One lane per class, one event per (event, class),
    // emitted from the serial commit loop at the class's first member
    // rank — so the stream is deterministic and survives masking (the
    // wall timestamps are masked; start_s/end_s are simulation results).
    let journal = obs.journal();
    let journal_on = journal.enabled();
    let (class_first, class_lanes): (Vec<u32>, Vec<String>) = if journal_on {
        let mut first = vec![u32::MAX; reps.len()];
        for (r, &c) in assignment.iter().enumerate() {
            if first[c as usize] == u32::MAX {
                first[c as usize] = r as u32;
            }
        }
        let lanes = (0..reps.len()).map(|c| format!("class{c}")).collect();
        (first, lanes)
    } else {
        (Vec::new(), Vec::new())
    };
    if journal_on {
        journal.begin(
            "spmd.sim",
            "spmd",
            &[
                ("nranks", nranks as f64),
                ("classes", reps.len() as f64),
                ("events", nevents as f64),
            ],
        );
    }

    let mut clocks = vec![0.0f64; nranks];
    let mut times = vec![RankTimes::default(); nranks];
    let mut exchange_slot = 0usize;

    for i in 0..nevents {
        let kind_name = event_kind_name(&reps[0].events[i]);
        let updates: Vec<(f64, f64, f64)> = match &reps[0].events[i] {
            RankEvent::Compute { .. } => {
                // Charge the model once per refined group at the group's
                // lowest member rank; every member advances by that dt.
                let mut dts = vec![0.0f64; group_reps.len()];
                for (g, &rep_rank) in group_reps.iter().enumerate() {
                    let p = &reps[assignment[rep_rank as usize] as usize];
                    if let RankEvent::Compute { block, invocations } = &p.events[i] {
                        let dt = compute.seconds(rep_rank, &p.program, *block, *invocations);
                        debug_assert!(dt.is_finite() && dt >= 0.0);
                        dts[g] = dt;
                    }
                }
                let arrivals = &clocks;
                run_per_rank(par, nranks, &|r| {
                    let dt = dts[group_of[r] as usize];
                    (arrivals[r] + dt, dt, 0.0)
                })
            }
            RankEvent::Exchange { .. } => {
                let slot = exchange_slot;
                exchange_slot += 1;
                // Wire cost depends only on (class, partner count): compute
                // each distinct combination once.
                let mut costs: HashMap<(u32, usize), f64> = HashMap::new();
                for (r, &c) in assignment.iter().enumerate() {
                    let len = classes.partners[r][slot].len();
                    if let RankEvent::Exchange {
                        bytes_per_neighbor,
                        repeats,
                        ..
                    } = &reps[c as usize].events[i]
                    {
                        costs.entry((c, len)).or_insert_with(|| {
                            net.exchange(len as u32, *bytes_per_neighbor) * *repeats as f64
                        });
                    }
                }
                let arrivals = &clocks;
                let partners = &classes.partners;
                run_per_rank(par, nranks, &|r| {
                    let list = &partners[r][slot];
                    let mut sync = arrivals[r];
                    for &n in list {
                        sync = sync.max(arrivals[n as usize]);
                    }
                    let end = sync + costs[&(assignment[r], list.len())];
                    (end, 0.0, end - arrivals[r])
                })
            }
            _ => {
                // Collectives: a global rank-order max fold (preserved
                // bit-for-bit from the naive engine), then a per-class
                // cost.
                let global = clocks.iter().cloned().fold(f64::MIN, f64::max);
                let costs: Vec<f64> = reps
                    .iter()
                    .map(|p| match &p.events[i] {
                        RankEvent::Allreduce { bytes, repeats } => {
                            net.allreduce(nranks as u32, *bytes) * *repeats as f64
                        }
                        RankEvent::Broadcast { bytes, repeats } => {
                            net.broadcast(nranks as u32, *bytes) * *repeats as f64
                        }
                        RankEvent::Alltoall {
                            bytes_per_pair,
                            repeats,
                        } => net.alltoall(nranks as u32, *bytes_per_pair) * *repeats as f64,
                        RankEvent::Barrier { repeats } => {
                            net.barrier(nranks as u32) * *repeats as f64
                        }
                        _ => 0.0,
                    })
                    .collect();
                let arrivals = &clocks;
                run_per_rank(par, nranks, &|r| {
                    let end = global + costs[assignment[r] as usize];
                    (end, 0.0, end - arrivals[r])
                })
            }
        };

        // Commit phase: write clocks and breakdowns in rank order, tracing
        // if asked.
        for (r, &(end, dcompute, dcomm)) in updates.iter().enumerate() {
            if let Some(rec) = record.as_deref_mut() {
                rec(TimelineEntry {
                    rank: r as u32,
                    event_index: i,
                    kind: kind_name.to_string(),
                    start_s: clocks[r],
                    end_s: end,
                });
            }
            if journal_on && class_first[assignment[r] as usize] == r as u32 {
                journal.instant(
                    kind_name,
                    &class_lanes[assignment[r] as usize],
                    &[("start_s", clocks[r]), ("end_s", end)],
                );
            }
            clocks[r] = end;
            times[r].compute_s += dcompute;
            times[r].comm_s += dcomm;
        }
    }

    for (r, t) in times.iter_mut().enumerate() {
        t.finish_s = clocks[r];
    }
    if journal_on {
        // Per-class compute vs. communication split, sampled at the
        // class's first member rank (exchange costs may vary within a
        // class by partner count, so this is the representative's view).
        let mut members = vec![0u64; reps.len()];
        for &c in assignment {
            members[c as usize] += 1;
        }
        for (c, &r) in class_first.iter().enumerate() {
            if r == u32::MAX {
                continue;
            }
            let t = &times[r as usize];
            journal.instant(
                "spmd.class_total",
                "spmd",
                &[
                    ("class", c as f64),
                    ("ranks", members[c] as f64),
                    ("nranks", nranks as f64),
                    ("compute_s", t.compute_s),
                    ("comm_s", t.comm_s),
                    ("finish_s", t.finish_s),
                ],
            );
        }
        journal.end("spmd.sim", "spmd", &[]);
    }
    Ok(SimReport {
        total_seconds: clocks.iter().cloned().fold(0.0, f64::max),
        ranks: times,
    })
}

/// The pre-dedup per-rank walk (already shape-validated).
fn naive_inner(
    programs: &[RankProgram],
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
) -> SimReport {
    let nranks = programs.len();
    let nevents = programs[0].events.len();
    let mut clocks = vec![0.0f64; nranks];
    let mut times = vec![RankTimes::default(); nranks];

    for i in 0..nevents {
        // Collectives need the pre-event arrival times of all ranks.
        let arrivals = clocks.clone();
        let is_collective = matches!(
            programs[0].events[i],
            RankEvent::Allreduce { .. }
                | RankEvent::Broadcast { .. }
                | RankEvent::Alltoall { .. }
                | RankEvent::Barrier { .. }
        );
        let global_arrival = if is_collective {
            arrivals.iter().cloned().fold(f64::MIN, f64::max)
        } else {
            0.0
        };

        for (r, prog) in programs.iter().enumerate() {
            match &prog.events[i] {
                RankEvent::Compute { block, invocations } => {
                    let dt = compute.seconds(r as u32, &prog.program, *block, *invocations);
                    debug_assert!(dt.is_finite() && dt >= 0.0);
                    clocks[r] += dt;
                    times[r].compute_s += dt;
                }
                RankEvent::Exchange {
                    neighbors,
                    bytes_per_neighbor,
                    repeats,
                } => {
                    let mut sync = arrivals[r];
                    for &n in neighbors {
                        sync = sync.max(arrivals[n as usize]);
                    }
                    let cost =
                        net.exchange(neighbors.len() as u32, *bytes_per_neighbor) * *repeats as f64;
                    clocks[r] = sync + cost;
                    times[r].comm_s += clocks[r] - arrivals[r];
                }
                RankEvent::Allreduce { bytes, repeats } => {
                    let cost = net.allreduce(nranks as u32, *bytes) * *repeats as f64;
                    clocks[r] = global_arrival + cost;
                    times[r].comm_s += clocks[r] - arrivals[r];
                }
                RankEvent::Broadcast { bytes, repeats } => {
                    let cost = net.broadcast(nranks as u32, *bytes) * *repeats as f64;
                    clocks[r] = global_arrival + cost;
                    times[r].comm_s += clocks[r] - arrivals[r];
                }
                RankEvent::Alltoall {
                    bytes_per_pair,
                    repeats,
                } => {
                    let cost = net.alltoall(nranks as u32, *bytes_per_pair) * *repeats as f64;
                    clocks[r] = global_arrival + cost;
                    times[r].comm_s += clocks[r] - arrivals[r];
                }
                RankEvent::Barrier { repeats } => {
                    let cost = net.barrier(nranks as u32) * *repeats as f64;
                    clocks[r] = global_arrival + cost;
                    times[r].comm_s += clocks[r] - arrivals[r];
                }
            }
        }
    }

    for (r, t) in times.iter_mut().enumerate() {
        t.finish_s = clocks[r];
    }
    SimReport {
        total_seconds: clocks.iter().cloned().fold(0.0, f64::max),
        ranks: times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::NominalComputeModel;
    use xtrace_ir::{AddressPattern, BasicBlock, BlockId, Instruction, MemOp, Program, SourceLoc};

    /// Test app: rank r computes (r+1) heavy iterations, then allreduces.
    struct Skewed {
        iters_scale: u64,
    }

    impl SpmdApp for Skewed {
        fn name(&self) -> &str {
            "skewed"
        }
        fn rank_program(&self, rank: u32, _nranks: u32) -> RankProgram {
            let mut b = Program::builder();
            let r = b.region("a", 4096, 8);
            let blk = b.block(BasicBlock::new(
                BlockId(0),
                "work",
                SourceLoc::new("t.c", 1, "f"),
                self.iters_scale * u64::from(rank + 1),
                vec![Instruction::mem(MemOp::Load, r, 8, AddressPattern::unit(8))],
            ));
            RankProgram {
                program: b.build().unwrap(),
                events: vec![
                    RankEvent::Compute {
                        block: blk,
                        invocations: 1,
                    },
                    RankEvent::Allreduce {
                        bytes: 8,
                        repeats: 1,
                    },
                ],
            }
        }
    }

    fn net() -> NetworkModel {
        NetworkModel::new(1e-6, 1e9)
    }

    #[test]
    fn slowest_rank_sets_total() {
        let report = simulate(
            &Skewed { iters_scale: 1000 },
            4,
            &net(),
            &mut NominalComputeModel::default(),
        );
        let slowest = report.ranks[3].compute_s;
        let coll = net().allreduce(4, 8);
        assert!((report.total_seconds - (slowest + coll)).abs() < 1e-12);
        assert_eq!(report.most_computational_rank(), 3);
    }

    #[test]
    fn fast_ranks_accumulate_wait_time() {
        let report = simulate(
            &Skewed { iters_scale: 1000 },
            4,
            &net(),
            &mut NominalComputeModel::default(),
        );
        // Rank 0 computes 1/4 of rank 3's time and waits the rest.
        assert!(report.ranks[0].comm_s > report.ranks[3].comm_s);
        // Everyone finishes the allreduce at the same instant.
        for r in &report.ranks {
            assert!((r.finish_s - report.total_seconds).abs() < 1e-12);
        }
    }

    #[test]
    fn imbalance_reflects_skew() {
        let report = simulate(
            &Skewed { iters_scale: 100 },
            4,
            &net(),
            &mut NominalComputeModel::default(),
        );
        // compute times 1:2:3:4, mean 2.5, max 4 -> 1.6.
        assert!((report.compute_imbalance() - 1.6).abs() < 1e-9);
    }

    /// Ring app: each rank exchanges with (r±1) mod P.
    struct Ring;
    impl SpmdApp for Ring {
        fn name(&self) -> &str {
            "ring"
        }
        fn rank_program(&self, rank: u32, nranks: u32) -> RankProgram {
            let mut b = Program::builder();
            let r = b.region("a", 4096, 8);
            let blk = b.block(BasicBlock::new(
                BlockId(0),
                "w",
                SourceLoc::new("t.c", 2, "g"),
                100,
                vec![Instruction::mem(MemOp::Load, r, 8, AddressPattern::unit(8))],
            ));
            let left = (rank + nranks - 1) % nranks;
            let right = (rank + 1) % nranks;
            RankProgram {
                program: b.build().unwrap(),
                events: vec![
                    RankEvent::Compute {
                        block: blk,
                        invocations: 1,
                    },
                    RankEvent::Exchange {
                        neighbors: vec![left, right],
                        bytes_per_neighbor: 4096,
                        repeats: 3,
                    },
                ],
            }
        }
    }

    #[test]
    fn balanced_ring_has_equal_finish_times() {
        let report = simulate(&Ring, 8, &net(), &mut NominalComputeModel::default());
        let f0 = report.ranks[0].finish_s;
        for r in &report.ranks {
            assert!((r.finish_s - f0).abs() < 1e-15);
        }
        let expected_comm = net().exchange(2, 4096) * 3.0;
        assert!((report.ranks[0].comm_s - expected_comm).abs() < 1e-12);
    }

    #[test]
    fn single_rank_runs_without_comm_cost() {
        let report = simulate(
            &Skewed { iters_scale: 10 },
            1,
            &net(),
            &mut NominalComputeModel::default(),
        );
        assert!(
            report.ranks[0].comm_s.abs() < 1e-15,
            "allreduce of 1 is free"
        );
        assert!(report.total_seconds > 0.0);
    }

    /// SPMD violation: ranks disagree on the event kind at index 0.
    struct Misaligned;
    impl SpmdApp for Misaligned {
        fn name(&self) -> &str {
            "bad"
        }
        fn rank_program(&self, rank: u32, _nranks: u32) -> RankProgram {
            let mut b = Program::builder();
            b.region("a", 64, 8);
            let events = if rank == 0 {
                vec![RankEvent::Barrier { repeats: 1 }]
            } else {
                vec![RankEvent::Allreduce {
                    bytes: 8,
                    repeats: 1,
                }]
            };
            RankProgram {
                program: b.build().unwrap(),
                events,
            }
        }
    }

    #[test]
    #[should_panic(expected = "SPMD violation")]
    fn misaligned_ranks_panic() {
        simulate(&Misaligned, 2, &net(), &mut NominalComputeModel::default());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        simulate(&Ring, 0, &net(), &mut NominalComputeModel::default());
    }

    #[test]
    fn misaligned_ranks_report_typed_errors() {
        let err = try_simulate(&Misaligned, 2, &net(), &mut NominalComputeModel::default())
            .expect_err("misaligned ranks must fail");
        assert!(matches!(err, SimError::EventKindMismatch { rank: 1, .. }));
        assert!(err.to_string().contains("SPMD violation"));
        let err = try_simulate(&Ring, 0, &net(), &mut NominalComputeModel::default())
            .expect_err("zero ranks must fail");
        assert_eq!(err, SimError::NoRanks);
    }

    #[test]
    fn timeline_covers_every_rank_event_in_order() {
        let app = Skewed { iters_scale: 100 };
        let programs: Vec<_> = (0..4).map(|r| app.rank_program(r, 4)).collect();
        let (report, timeline) =
            simulate_programs_traced(&programs, &net(), &mut NominalComputeModel::default());
        // 4 ranks x 2 events.
        assert_eq!(timeline.len(), 8);
        for e in &timeline {
            assert!(e.end_s >= e.start_s, "{e:?}");
            assert!(e.end_s <= report.total_seconds + 1e-12);
        }
        // Per rank: intervals are contiguous and ordered.
        for r in 0..4u32 {
            let mine: Vec<_> = timeline.iter().filter(|e| e.rank == r).collect();
            assert_eq!(mine[0].kind, "compute");
            assert_eq!(mine[1].kind, "allreduce");
            assert!((mine[1].start_s - mine[0].end_s).abs() < 1e-12);
        }
        // The traced report matches the untraced one.
        let plain = simulate_programs(&programs, &net(), &mut NominalComputeModel::default());
        assert_eq!(plain, report);
    }

    #[test]
    fn timeline_serializes() {
        let app = Ring;
        let programs: Vec<_> = (0..2).map(|r| app.rank_program(r, 2)).collect();
        let (_, timeline) =
            simulate_programs_traced(&programs, &net(), &mut NominalComputeModel::default());
        let json = serde_json::to_string(&timeline).unwrap();
        let back: Vec<TimelineEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), timeline.len());
    }

    #[test]
    fn ring_collapses_to_one_class() {
        // Identical programs, differing only in Exchange neighbors.
        let programs: Vec<_> = (0..16).map(|r| Ring.rank_program(r, 16)).collect();
        let classes = RankClasses::try_from_programs(&programs).unwrap();
        assert_eq!(classes.num_classes(), 1);
        assert_eq!(classes.nranks(), 16);
    }

    #[test]
    fn skewed_ranks_stay_distinct_classes() {
        let app = Skewed { iters_scale: 10 };
        let programs: Vec<_> = (0..4).map(|r| app.rank_program(r, 4)).collect();
        let classes = RankClasses::try_from_programs(&programs).unwrap();
        assert_eq!(classes.num_classes(), 4, "distinct trip counts");
    }

    #[test]
    fn dedup_report_is_bit_identical_to_naive() {
        for nranks in [1u32, 2, 5, 8, 16] {
            let programs: Vec<_> = (0..nranks).map(|r| Ring.rank_program(r, nranks)).collect();
            let dedup = simulate_programs(&programs, &net(), &mut NominalComputeModel::default());
            let naive =
                simulate_programs_naive(&programs, &net(), &mut NominalComputeModel::default());
            assert_eq!(dedup, naive, "nranks={nranks}");
        }
        let app = Skewed { iters_scale: 100 };
        let programs: Vec<_> = (0..8).map(|r| app.rank_program(r, 8)).collect();
        let dedup = simulate_programs(&programs, &net(), &mut NominalComputeModel::default());
        let naive = simulate_programs_naive(&programs, &net(), &mut NominalComputeModel::default());
        assert_eq!(dedup, naive);
    }

    /// App with a rank-class override: one master, workers all alike.
    struct ClassedRing;
    impl SpmdApp for ClassedRing {
        fn name(&self) -> &str {
            "classed-ring"
        }
        fn rank_program(&self, rank: u32, nranks: u32) -> RankProgram {
            let mut p = Ring.rank_program(rank, nranks);
            if rank == 0 {
                // The master computes ten times the work.
                if let RankEvent::Compute { invocations, .. } = &mut p.events[0] {
                    *invocations = 10;
                }
            }
            p
        }
        fn rank_class(&self, rank: u32, _nranks: u32) -> Option<u64> {
            Some(u64::from(rank == 0))
        }
        fn exchange_partners(&self, rank: u32, nranks: u32) -> Vec<Vec<u32>> {
            let left = (rank + nranks - 1) % nranks;
            let right = (rank + 1) % nranks;
            vec![vec![left, right]]
        }
    }

    #[test]
    fn app_class_keys_match_materialized_grouping() {
        let fast = RankClasses::try_from_app(&ClassedRing, 12).unwrap();
        assert_eq!(fast.num_classes(), 2);
        let programs: Vec<_> = (0..12).map(|r| ClassedRing.rank_program(r, 12)).collect();
        let slow = RankClasses::try_from_programs(&programs).unwrap();
        assert_eq!(fast.assignment(), slow.assignment());
        let a = simulate(
            &ClassedRing,
            12,
            &net(),
            &mut NominalComputeModel::default(),
        );
        let b = simulate_programs_naive(&programs, &net(), &mut NominalComputeModel::default());
        assert_eq!(a, b);
    }

    /// A rank-dependent model must opt out of dedup and still match naive.
    #[test]
    fn keyless_models_are_charged_per_rank() {
        let programs: Vec<_> = (0..6).map(|r| Ring.rank_program(r, 6)).collect();
        let model = |rank: u32, _: &Program, _: BlockId, inv: u64| {
            (f64::from(rank) + 1.0) * 1e-6 * inv as f64
        };
        let dedup = simulate_programs(&programs, &net(), &mut { model });
        let naive = simulate_programs_naive(&programs, &net(), &mut { model });
        assert_eq!(dedup, naive);
        // Rank-dependent charges really did land per rank.
        assert!(dedup.ranks[5].compute_s > dedup.ranks[0].compute_s);
    }

    #[test]
    fn forced_parallel_stepping_is_bit_identical() {
        // min_parallel_ranks=1 forces the chunked path even on small jobs;
        // a 4-thread pool makes the stub actually spawn workers.
        let app = Skewed { iters_scale: 100 };
        let nranks = 16u32;
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool");
        let forced = pool.install(|| {
            try_simulate_with(
                &app,
                nranks,
                &net(),
                &mut NominalComputeModel::default(),
                SimOptions {
                    parallel: true,
                    min_parallel_ranks: 1,
                },
            )
            .expect("simulate")
        });
        let serial = try_simulate_with(
            &app,
            nranks,
            &net(),
            &mut NominalComputeModel::default(),
            SimOptions {
                parallel: false,
                min_parallel_ranks: 1,
            },
        )
        .expect("simulate");
        assert_eq!(forced, serial);
    }

    #[test]
    fn bad_partner_list_is_rejected() {
        let programs: Vec<_> = (0..4).map(|r| Ring.rank_program(r, 4)).collect();
        let mut classes = RankClasses::try_from_programs(&programs).unwrap();
        classes.partners[2][0] = vec![9];
        let err = try_simulate_classes(
            &classes,
            &net(),
            &mut NominalComputeModel::default(),
            SimOptions::default(),
        )
        .expect_err("out-of-range neighbor");
        assert!(matches!(
            err,
            SimError::BadNeighbor {
                rank: 2,
                neighbor: 9
            }
        ));
    }
}
