//! Bulk-synchronous discrete-event engine.
//!
//! Advances one virtual clock per rank through the SPMD event script.
//! Compute events move only the local clock (by whatever the plugged-in
//! [`ComputeModel`] charges); communication events synchronize clocks —
//! locally for halo exchanges, globally for collectives — and then charge
//! the network cost from [`NetworkModel`]. The slowest rank's finish time
//! is the application runtime; the gap between a rank's arrival at a
//! synchronization point and its departure is attributed to communication
//! (it is wait-plus-wire time, exactly how MPI profilers attribute it).

use serde::{Deserialize, Serialize};

use crate::compute::ComputeModel;
use crate::event::{RankEvent, RankProgram, SpmdApp};
use crate::net::NetworkModel;

/// One interval of a replay timeline: what a rank was doing, and when.
///
/// PSiNS is "an open source event tracer and execution simulator"; this is
/// the event-tracer half — the record stream a timeline viewer (or the
/// tests) consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Rank the interval belongs to.
    pub rank: u32,
    /// Index of the event in the rank's script.
    pub event_index: usize,
    /// Event classification (the [`RankEvent::kind_tag`] names).
    pub kind: String,
    /// Interval start, in seconds from application start.
    pub start_s: f64,
    /// Interval end.
    pub end_s: f64,
}

/// Per-rank time breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankTimes {
    /// Seconds spent in compute segments.
    pub compute_s: f64,
    /// Seconds spent communicating (wire time plus synchronization wait).
    pub comm_s: f64,
    /// Final clock value.
    pub finish_s: f64,
}

/// Result of simulating an application at one core count.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Application runtime: the slowest rank's finish time.
    pub total_seconds: f64,
    /// Per-rank breakdowns, indexed by rank.
    pub ranks: Vec<RankTimes>,
}

impl SimReport {
    /// Rank with the largest compute time — the task the paper extrapolates
    /// ("this task tends to have the most impact on overall execution
    /// time", Section IV).
    pub fn most_computational_rank(&self) -> u32 {
        let mut best = 0usize;
        for (i, r) in self.ranks.iter().enumerate().skip(1) {
            // Strictly greater: ties resolve to the lowest rank id, keeping
            // the choice deterministic and stable across core counts.
            if r.compute_s > self.ranks[best].compute_s {
                best = i;
            }
        }
        best as u32
    }

    /// Ratio of max to mean compute time across ranks (1.0 = perfectly
    /// balanced).
    pub fn compute_imbalance(&self) -> f64 {
        let max = self
            .ranks
            .iter()
            .map(|r| r.compute_s)
            .fold(f64::MIN, f64::max);
        let mean = self.ranks.iter().map(|r| r.compute_s).sum::<f64>() / self.ranks.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }
}

/// Simulates `app` on `nranks` ranks.
///
/// # Panics
///
/// Panics if `nranks == 0`, if ranks disagree on event shape (an SPMD
/// violation), or if an exchange names an out-of-range neighbor.
pub fn simulate(
    app: &dyn SpmdApp,
    nranks: u32,
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
) -> SimReport {
    assert!(nranks > 0, "need at least one rank");
    let programs: Vec<RankProgram> = (0..nranks).map(|r| app.rank_program(r, nranks)).collect();
    simulate_programs(&programs, net, compute)
}

/// Simulates pre-built rank programs (used when the caller already
/// materialized them, e.g. the tracer).
pub fn simulate_programs(
    programs: &[RankProgram],
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
) -> SimReport {
    simulate_programs_inner(programs, net, compute, &mut |_| {})
}

/// Like [`simulate_programs`], additionally recording the full replay
/// timeline (one entry per rank per event, in event order).
pub fn simulate_programs_traced(
    programs: &[RankProgram],
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
) -> (SimReport, Vec<TimelineEntry>) {
    let mut timeline = Vec::new();
    let report = simulate_programs_inner(programs, net, compute, &mut |e| timeline.push(e));
    (report, timeline)
}

fn event_kind_name(e: &RankEvent) -> &'static str {
    match e {
        RankEvent::Compute { .. } => "compute",
        RankEvent::Exchange { .. } => "exchange",
        RankEvent::Allreduce { .. } => "allreduce",
        RankEvent::Broadcast { .. } => "broadcast",
        RankEvent::Alltoall { .. } => "alltoall",
        RankEvent::Barrier { .. } => "barrier",
    }
}

fn simulate_programs_inner(
    programs: &[RankProgram],
    net: &NetworkModel,
    compute: &mut dyn ComputeModel,
    record: &mut dyn FnMut(TimelineEntry),
) -> SimReport {
    let nranks = programs.len();
    assert!(nranks > 0, "need at least one rank");
    let nevents = programs[0].events.len();
    for (r, p) in programs.iter().enumerate() {
        if let Err(e) = p.validate(nranks as u32) {
            panic!("rank {r}: {e}");
        }
        assert_eq!(
            p.events.len(),
            nevents,
            "rank {r} event count differs from rank 0 (SPMD violation)"
        );
        for (i, e) in p.events.iter().enumerate() {
            assert_eq!(
                e.kind_tag(),
                programs[0].events[i].kind_tag(),
                "rank {r} event {i} kind differs from rank 0 (SPMD violation)"
            );
        }
    }

    let mut clocks = vec![0.0f64; nranks];
    let mut times = vec![RankTimes::default(); nranks];

    for i in 0..nevents {
        // Collectives need the pre-event arrival times of all ranks.
        let arrivals = clocks.clone();
        let is_collective = matches!(
            programs[0].events[i],
            RankEvent::Allreduce { .. }
                | RankEvent::Broadcast { .. }
                | RankEvent::Alltoall { .. }
                | RankEvent::Barrier { .. }
        );
        let global_arrival = if is_collective {
            arrivals.iter().cloned().fold(f64::MIN, f64::max)
        } else {
            0.0
        };

        for (r, prog) in programs.iter().enumerate() {
            let start = clocks[r];
            match &prog.events[i] {
                RankEvent::Compute { block, invocations } => {
                    let dt = compute.seconds(r as u32, &prog.program, *block, *invocations);
                    debug_assert!(dt.is_finite() && dt >= 0.0);
                    clocks[r] += dt;
                    times[r].compute_s += dt;
                }
                RankEvent::Exchange {
                    neighbors,
                    bytes_per_neighbor,
                    repeats,
                } => {
                    let mut sync = arrivals[r];
                    for &n in neighbors {
                        assert!(
                            (n as usize) < nranks,
                            "rank {r} exchanges with out-of-range neighbor {n}"
                        );
                        sync = sync.max(arrivals[n as usize]);
                    }
                    let cost =
                        net.exchange(neighbors.len() as u32, *bytes_per_neighbor) * *repeats as f64;
                    clocks[r] = sync + cost;
                    times[r].comm_s += clocks[r] - arrivals[r];
                }
                RankEvent::Allreduce { bytes, repeats } => {
                    let cost = net.allreduce(nranks as u32, *bytes) * *repeats as f64;
                    clocks[r] = global_arrival + cost;
                    times[r].comm_s += clocks[r] - arrivals[r];
                }
                RankEvent::Broadcast { bytes, repeats } => {
                    let cost = net.broadcast(nranks as u32, *bytes) * *repeats as f64;
                    clocks[r] = global_arrival + cost;
                    times[r].comm_s += clocks[r] - arrivals[r];
                }
                RankEvent::Alltoall {
                    bytes_per_pair,
                    repeats,
                } => {
                    let cost = net.alltoall(nranks as u32, *bytes_per_pair) * *repeats as f64;
                    clocks[r] = global_arrival + cost;
                    times[r].comm_s += clocks[r] - arrivals[r];
                }
                RankEvent::Barrier { repeats } => {
                    let cost = net.barrier(nranks as u32) * *repeats as f64;
                    clocks[r] = global_arrival + cost;
                    times[r].comm_s += clocks[r] - arrivals[r];
                }
            }
            record(TimelineEntry {
                rank: r as u32,
                event_index: i,
                kind: event_kind_name(&prog.events[i]).to_string(),
                start_s: start,
                end_s: clocks[r],
            });
        }
    }

    for (r, t) in times.iter_mut().enumerate() {
        t.finish_s = clocks[r];
    }
    SimReport {
        total_seconds: clocks.iter().cloned().fold(0.0, f64::max),
        ranks: times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::NominalComputeModel;
    use xtrace_ir::{AddressPattern, BasicBlock, BlockId, Instruction, MemOp, Program, SourceLoc};

    /// Test app: rank r computes (r+1) heavy iterations, then allreduces.
    struct Skewed {
        iters_scale: u64,
    }

    impl SpmdApp for Skewed {
        fn name(&self) -> &str {
            "skewed"
        }
        fn rank_program(&self, rank: u32, _nranks: u32) -> RankProgram {
            let mut b = Program::builder();
            let r = b.region("a", 4096, 8);
            let blk = b.block(BasicBlock::new(
                BlockId(0),
                "work",
                SourceLoc::new("t.c", 1, "f"),
                self.iters_scale * u64::from(rank + 1),
                vec![Instruction::mem(MemOp::Load, r, 8, AddressPattern::unit(8))],
            ));
            RankProgram {
                program: b.build().unwrap(),
                events: vec![
                    RankEvent::Compute {
                        block: blk,
                        invocations: 1,
                    },
                    RankEvent::Allreduce {
                        bytes: 8,
                        repeats: 1,
                    },
                ],
            }
        }
    }

    fn net() -> NetworkModel {
        NetworkModel::new(1e-6, 1e9)
    }

    #[test]
    fn slowest_rank_sets_total() {
        let report = simulate(
            &Skewed { iters_scale: 1000 },
            4,
            &net(),
            &mut NominalComputeModel::default(),
        );
        let slowest = report.ranks[3].compute_s;
        let coll = net().allreduce(4, 8);
        assert!((report.total_seconds - (slowest + coll)).abs() < 1e-12);
        assert_eq!(report.most_computational_rank(), 3);
    }

    #[test]
    fn fast_ranks_accumulate_wait_time() {
        let report = simulate(
            &Skewed { iters_scale: 1000 },
            4,
            &net(),
            &mut NominalComputeModel::default(),
        );
        // Rank 0 computes 1/4 of rank 3's time and waits the rest.
        assert!(report.ranks[0].comm_s > report.ranks[3].comm_s);
        // Everyone finishes the allreduce at the same instant.
        for r in &report.ranks {
            assert!((r.finish_s - report.total_seconds).abs() < 1e-12);
        }
    }

    #[test]
    fn imbalance_reflects_skew() {
        let report = simulate(
            &Skewed { iters_scale: 100 },
            4,
            &net(),
            &mut NominalComputeModel::default(),
        );
        // compute times 1:2:3:4, mean 2.5, max 4 -> 1.6.
        assert!((report.compute_imbalance() - 1.6).abs() < 1e-9);
    }

    /// Ring app: each rank exchanges with (r±1) mod P.
    struct Ring;
    impl SpmdApp for Ring {
        fn name(&self) -> &str {
            "ring"
        }
        fn rank_program(&self, rank: u32, nranks: u32) -> RankProgram {
            let mut b = Program::builder();
            let r = b.region("a", 4096, 8);
            let blk = b.block(BasicBlock::new(
                BlockId(0),
                "w",
                SourceLoc::new("t.c", 2, "g"),
                100,
                vec![Instruction::mem(MemOp::Load, r, 8, AddressPattern::unit(8))],
            ));
            let left = (rank + nranks - 1) % nranks;
            let right = (rank + 1) % nranks;
            RankProgram {
                program: b.build().unwrap(),
                events: vec![
                    RankEvent::Compute {
                        block: blk,
                        invocations: 1,
                    },
                    RankEvent::Exchange {
                        neighbors: vec![left, right],
                        bytes_per_neighbor: 4096,
                        repeats: 3,
                    },
                ],
            }
        }
    }

    #[test]
    fn balanced_ring_has_equal_finish_times() {
        let report = simulate(&Ring, 8, &net(), &mut NominalComputeModel::default());
        let f0 = report.ranks[0].finish_s;
        for r in &report.ranks {
            assert!((r.finish_s - f0).abs() < 1e-15);
        }
        let expected_comm = net().exchange(2, 4096) * 3.0;
        assert!((report.ranks[0].comm_s - expected_comm).abs() < 1e-12);
    }

    #[test]
    fn single_rank_runs_without_comm_cost() {
        let report = simulate(
            &Skewed { iters_scale: 10 },
            1,
            &net(),
            &mut NominalComputeModel::default(),
        );
        assert!(
            report.ranks[0].comm_s.abs() < 1e-15,
            "allreduce of 1 is free"
        );
        assert!(report.total_seconds > 0.0);
    }

    /// SPMD violation: ranks disagree on the event kind at index 0.
    struct Misaligned;
    impl SpmdApp for Misaligned {
        fn name(&self) -> &str {
            "bad"
        }
        fn rank_program(&self, rank: u32, _nranks: u32) -> RankProgram {
            let mut b = Program::builder();
            b.region("a", 64, 8);
            let events = if rank == 0 {
                vec![RankEvent::Barrier { repeats: 1 }]
            } else {
                vec![RankEvent::Allreduce {
                    bytes: 8,
                    repeats: 1,
                }]
            };
            RankProgram {
                program: b.build().unwrap(),
                events,
            }
        }
    }

    #[test]
    #[should_panic(expected = "SPMD violation")]
    fn misaligned_ranks_panic() {
        simulate(&Misaligned, 2, &net(), &mut NominalComputeModel::default());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        simulate(&Ring, 0, &net(), &mut NominalComputeModel::default());
    }

    #[test]
    fn timeline_covers_every_rank_event_in_order() {
        let app = Skewed { iters_scale: 100 };
        let programs: Vec<_> = (0..4).map(|r| app.rank_program(r, 4)).collect();
        let (report, timeline) =
            simulate_programs_traced(&programs, &net(), &mut NominalComputeModel::default());
        // 4 ranks x 2 events.
        assert_eq!(timeline.len(), 8);
        for e in &timeline {
            assert!(e.end_s >= e.start_s, "{e:?}");
            assert!(e.end_s <= report.total_seconds + 1e-12);
        }
        // Per rank: intervals are contiguous and ordered.
        for r in 0..4u32 {
            let mine: Vec<_> = timeline.iter().filter(|e| e.rank == r).collect();
            assert_eq!(mine[0].kind, "compute");
            assert_eq!(mine[1].kind, "allreduce");
            assert!((mine[1].start_s - mine[0].end_s).abs() < 1e-12);
        }
        // The traced report matches the untraced one.
        let plain = simulate_programs(&programs, &net(), &mut NominalComputeModel::default());
        assert_eq!(plain, report);
    }

    #[test]
    fn timeline_serializes() {
        let app = Ring;
        let programs: Vec<_> = (0..2).map(|r| app.rank_program(r, 2)).collect();
        let (_, timeline) =
            simulate_programs_traced(&programs, &net(), &mut NominalComputeModel::default());
        let json = serde_json::to_string(&timeline).unwrap();
        let back: Vec<TimelineEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), timeline.len());
    }
}
