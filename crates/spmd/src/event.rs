//! Rank programs: what one MPI task does, start to finish.

use serde::{Deserialize, Serialize};
use xtrace_ir::{BlockId, Program};

/// One step of a rank's execution script.
///
/// Communication events carry a `repeats` count so a timestep loop that
/// performs the same exchange thousands of times stays a single event; the
/// simulator charges `repeats` times the per-event cost but synchronizes
/// clocks once per event (a bulk-synchronous approximation that is exact
/// when the repeated phases are load-balanced).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RankEvent {
    /// Invoke a basic block of the rank's program `invocations` times.
    Compute {
        /// Block to run (an id in this rank's [`RankProgram::program`]).
        block: BlockId,
        /// Number of invocations.
        invocations: u64,
    },
    /// Halo exchange with a fixed neighbor set (sendrecv per neighbor).
    Exchange {
        /// Ranks exchanged with.
        neighbors: Vec<u32>,
        /// Bytes sent to (and received from) each neighbor.
        bytes_per_neighbor: u64,
        /// Occurrences folded into this event.
        repeats: u64,
    },
    /// Global reduction returning the result everywhere.
    Allreduce {
        /// Payload bytes.
        bytes: u64,
        /// Occurrences folded into this event.
        repeats: u64,
    },
    /// One-to-all broadcast.
    Broadcast {
        /// Payload bytes.
        bytes: u64,
        /// Occurrences folded into this event.
        repeats: u64,
    },
    /// Personalized all-to-all.
    Alltoall {
        /// Bytes each rank sends to each other rank.
        bytes_per_pair: u64,
        /// Occurrences folded into this event.
        repeats: u64,
    },
    /// Pure synchronization.
    Barrier {
        /// Occurrences folded into this event.
        repeats: u64,
    },
}

impl RankEvent {
    /// True for communication (non-compute) events.
    pub fn is_comm(&self) -> bool {
        !matches!(self, RankEvent::Compute { .. })
    }

    /// Discriminant used to check SPMD alignment across ranks.
    pub fn kind_tag(&self) -> u8 {
        match self {
            RankEvent::Compute { .. } => 0,
            RankEvent::Exchange { .. } => 1,
            RankEvent::Allreduce { .. } => 2,
            RankEvent::Broadcast { .. } => 3,
            RankEvent::Alltoall { .. } => 4,
            RankEvent::Barrier { .. } => 5,
        }
    }
}

/// Everything one MPI task executes: its memory image and block set
/// (`program`) plus the ordered event script (`events`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankProgram {
    /// The rank's code and data (regions sized for *this* rank at *this*
    /// core count — where strong scaling lives).
    pub program: Program,
    /// Ordered execution script.
    pub events: Vec<RankEvent>,
}

impl RankProgram {
    /// Checks internal consistency: every `Compute` event must reference a
    /// block of this rank's program, and every communication event must
    /// have sane parameters. Returns a description of the first violation.
    pub fn validate(&self, nranks: u32) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            match e {
                RankEvent::Compute { block, .. }
                    if block.index() >= self.program.blocks().len() =>
                {
                    return Err(format!(
                        "event {i}: Compute references unknown block {block}"
                    ));
                }
                RankEvent::Exchange { neighbors, .. } => {
                    for &n in neighbors {
                        if n >= nranks {
                            return Err(format!(
                                "event {i}: Exchange neighbor {n} out of range for {nranks}"
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Total dynamic memory references the script generates.
    pub fn total_mem_refs(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                RankEvent::Compute { block, invocations } => {
                    self.program.block(*block).mem_refs_per_invocation() * invocations
                }
                _ => 0,
            })
            .sum()
    }

    /// Total dynamic FLOPs the script generates.
    pub fn total_flops(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                RankEvent::Compute { block, invocations } => {
                    self.program.block(*block).flops_per_invocation() * invocations
                }
                _ => 0,
            })
            .sum()
    }
}

/// A deterministic SPMD application: proxy apps implement this, and the
/// tracer/profiler/simulator drive it.
///
/// `rank_program(rank, nranks)` must return the same value every time it is
/// called with the same arguments, and every rank's event list must have the
/// same shape (length and [`RankEvent::kind_tag`] sequence).
///
/// `Sync` is a supertrait so rank programs can be materialized and replayed
/// from a rayon fan-out; implementors are plain problem descriptions, so
/// this costs nothing.
pub trait SpmdApp: Sync {
    /// Application name, used to label traces and experiment output.
    fn name(&self) -> &str;

    /// Builds the program rank `rank` of `nranks` executes.
    fn rank_program(&self, rank: u32, nranks: u32) -> RankProgram;

    /// Optional cheap rank-equivalence key enabling class deduplication in
    /// the engine (`sim::RankClasses`).
    ///
    /// Contract: two ranks returning equal `Some` keys must produce
    /// [`SpmdApp::rank_program`]s that are identical *except* for the
    /// neighbor lists of their `Exchange` events (which come from
    /// [`SpmdApp::exchange_partners`] instead). Keys are opaque — only
    /// equality matters. Return `None` (the default) to opt out; the
    /// engine then falls back to materializing every rank's program and
    /// grouping by structural equality, which is still correct but costs
    /// O(nranks) program builds.
    ///
    /// In debug builds the engine cross-checks the key against fully
    /// materialized programs, so a key that merges unequal ranks fails
    /// loudly rather than silently mispredicting.
    fn rank_class(&self, _rank: u32, _nranks: u32) -> Option<u64> {
        None
    }

    /// The per-rank `Exchange` neighbor lists, one entry per `Exchange`
    /// event in script order.
    ///
    /// This is the only part of a rank's script allowed to differ within a
    /// [`SpmdApp::rank_class`] equivalence class, so the engine asks for it
    /// separately. The default extracts the lists from a full
    /// [`SpmdApp::rank_program`] build — correct, but it defeats the point
    /// of class dedup; override it (cheaply) together with `rank_class`.
    fn exchange_partners(&self, rank: u32, nranks: u32) -> Vec<Vec<u32>> {
        self.rank_program(rank, nranks)
            .events
            .iter()
            .filter_map(|e| match e {
                RankEvent::Exchange { neighbors, .. } => Some(neighbors.clone()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_ir::{AddressPattern, BasicBlock, FpOp, Instruction, MemOp, SourceLoc};

    fn sample() -> RankProgram {
        let mut b = Program::builder();
        let r = b.region("field", 1 << 12, 8);
        let blk = b.block(BasicBlock::new(
            BlockId(0),
            "sweep",
            SourceLoc::new("app.f90", 10, "step"),
            8,
            vec![
                Instruction::mem(MemOp::Load, r, 8, AddressPattern::unit(8)),
                Instruction::fp(FpOp::Fma).with_repeat(2),
            ],
        ));
        RankProgram {
            program: b.build().unwrap(),
            events: vec![
                RankEvent::Compute {
                    block: blk,
                    invocations: 5,
                },
                RankEvent::Exchange {
                    neighbors: vec![1],
                    bytes_per_neighbor: 1024,
                    repeats: 5,
                },
                RankEvent::Allreduce {
                    bytes: 8,
                    repeats: 5,
                },
            ],
        }
    }

    #[test]
    fn totals_accumulate_over_events() {
        let rp = sample();
        // 5 invocations × 8 iterations × 1 mem instr.
        assert_eq!(rp.total_mem_refs(), 40);
        // 5 × 8 × 2 FMA × 2 flops.
        assert_eq!(rp.total_flops(), 160);
    }

    #[test]
    fn comm_classification() {
        let rp = sample();
        assert!(!rp.events[0].is_comm());
        assert!(rp.events[1].is_comm());
        assert!(rp.events[2].is_comm());
        assert_eq!(rp.events[0].kind_tag(), 0);
        assert_ne!(rp.events[1].kind_tag(), rp.events[2].kind_tag());
    }

    #[test]
    fn validate_accepts_well_formed_programs() {
        sample().validate(4).unwrap();
    }

    #[test]
    fn validate_rejects_dangling_block() {
        let mut rp = sample();
        rp.events[0] = RankEvent::Compute {
            block: BlockId(99),
            invocations: 1,
        };
        assert!(rp.validate(4).unwrap_err().contains("unknown block"));
    }

    #[test]
    fn validate_rejects_out_of_range_neighbor() {
        let rp = sample();
        // Neighbor 1 is invalid in a 1-rank world.
        assert!(rp.validate(1).unwrap_err().contains("out of range"));
    }

    #[test]
    fn serde_roundtrip() {
        let rp = sample();
        let s = serde_json::to_string(&rp).unwrap();
        let back: RankProgram = serde_json::from_str(&s).unwrap();
        assert_eq!(back, rp);
    }
}
