//! # xtrace-spmd — SPMD message-passing simulation and profiling
//!
//! The paper's applications are MPI programs on a Cray XT5; this crate is
//! the message-passing substrate of the reproduction. It provides:
//!
//! * [`event::RankProgram`] / [`event::RankEvent`] — the per-task execution
//!   script: compute segments (basic-block invocations, handled by
//!   `xtrace-ir`) interleaved with communication operations (halo
//!   exchanges, reductions, broadcasts, all-to-alls, barriers);
//! * [`event::SpmdApp`] — the interface proxy applications implement: a
//!   deterministic map from `(rank, nranks)` to a rank program;
//! * [`net::NetworkModel`] — a latency/bandwidth (α–β) network cost model
//!   with logarithmic-tree collective costs, the communication half of the
//!   PMaC machine profile;
//! * [`sim`] — a bulk-synchronous discrete-event engine that advances
//!   per-rank clocks through the event lists, synchronizing at
//!   communication points, given any [`compute::ComputeModel`];
//! * [`profile::MpiProfiler`] — the PSiNSTracer analog: a lightweight pass
//!   that finds "the MPI task that consumed the most computational time"
//!   (Section IV) and summarizes the communication events the prediction
//!   replays.
//!
//! The engine assumes SPMD alignment: every rank executes the same event
//! *shape* (kinds, in the same order), which holds for the proxy apps by
//! construction and is the same assumption trace-extrapolation work such as
//! ScalaExtrap makes.

#![warn(missing_docs)]

pub mod compute;
pub mod event;
pub mod net;
pub mod profile;
pub mod sim;

pub use compute::{ComputeModel, NominalComputeModel};
pub use event::{RankEvent, RankProgram, SpmdApp};
pub use net::NetworkModel;
pub use profile::{CommEventRecord, CommKind, CommProfile, MpiProfiler};
pub use sim::{
    simulate, simulate_programs, simulate_programs_naive, simulate_programs_traced, try_simulate,
    try_simulate_classes, try_simulate_programs, try_simulate_programs_naive,
    try_simulate_programs_traced, try_simulate_traced, try_simulate_with, RankClasses, RankTimes,
    SimError, SimOptions, SimReport, TimelineEntry,
};
