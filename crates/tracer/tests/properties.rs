//! Property tests for the tracer: arbitrary traces must survive the binary
//! codec bit-exactly, collection must keep feature invariants for
//! arbitrary (valid) programs, and the rayon fan-out must be invisible —
//! identical results at any thread count and across same-seed runs.

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use xtrace_apps::SpecfemProxy;
use xtrace_ir::SourceLoc;
use xtrace_machine::presets;
use xtrace_tracer::{
    collect_ranks, collect_task_trace, from_bytes, to_bytes, BlockRecord, FeatureVector,
    InstrRecord, TaskTrace, TracerConfig,
};

fn arb_feature_vector() -> impl Strategy<Value = FeatureVector> {
    (
        0.0f64..1e15,
        0.0f64..1e15,
        proptest::array::uniform4(0.0f64..1.0),
        0.0f64..1e12,
        1.0f64..8.0,
    )
        .prop_map(|(exec, mem, mut rates, ws, ilp)| {
            rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut f = FeatureVector {
                exec_count: exec,
                mem_ops: mem,
                loads: mem * 0.75,
                stores: mem * 0.25,
                bytes_per_ref: 8.0,
                fp_fma: exec * 0.5,
                fp_add: exec * 0.25,
                working_set: ws,
                ilp,
                ..Default::default()
            };
            f.hit_rates = rates;
            f
        })
}

fn arb_trace() -> impl Strategy<Value = TaskTrace> {
    (
        "[a-z][a-z0-9-]{0,20}",
        0u32..10_000,
        1u32..10_000,
        1usize..4,
        proptest::collection::vec(
            (
                "[a-z][a-z0-9-]{0,16}",
                1u64..1_000_000,
                1u64..1_000_000,
                proptest::collection::vec(arb_feature_vector(), 1..6),
            ),
            1..6,
        ),
    )
        .prop_map(|(app, rank, nranks, depth, blocks)| TaskTrace {
            app,
            rank,
            nranks,
            machine: "prop-machine".into(),
            depth,
            blocks: blocks
                .into_iter()
                .enumerate()
                .map(|(bi, (name, inv, iters, fvs))| BlockRecord {
                    // Ensure block-name uniqueness within the trace.
                    name: format!("{name}-{bi}"),
                    source: SourceLoc::new("prop.f90", bi as u32, "kernel"),
                    invocations: inv,
                    iterations: iters,
                    instrs: fvs
                        .into_iter()
                        .enumerate()
                        .map(|(ii, features)| InstrRecord {
                            instr: ii as u32,
                            pattern: if ii % 2 == 0 { "strided" } else { "random" }.into(),
                            features,
                        })
                        .collect(),
                })
                .collect(),
        })
}

proptest! {
    /// The binary codec is a bit-exact round trip for arbitrary traces.
    #[test]
    fn binary_codec_roundtrips(trace in arb_trace()) {
        let encoded = to_bytes(&trace);
        let decoded = from_bytes(&encoded).expect("well-formed buffer decodes");
        prop_assert_eq!(decoded, trace);
    }

    /// Truncating an encoded trace anywhere yields an error, never a panic
    /// or a silently wrong value.
    #[test]
    fn binary_codec_rejects_truncations(trace in arb_trace(), frac in 0.0f64..1.0) {
        let encoded = to_bytes(&trace);
        let cut = ((encoded.len() as f64) * frac) as usize;
        if cut < encoded.len() {
            prop_assert!(from_bytes(&encoded[..cut]).is_err());
        }
    }

    /// JSON round trip preserves structure (floats may move by an ulp).
    #[test]
    fn json_roundtrip_preserves_structure(trace in arb_trace()) {
        let s = serde_json::to_string(&trace).unwrap();
        let back: TaskTrace = serde_json::from_str(&s).unwrap();
        prop_assert_eq!(back.app, trace.app);
        prop_assert_eq!(back.blocks.len(), trace.blocks.len());
        for (a, b) in back.blocks.iter().zip(&trace.blocks) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.instrs.len(), b.instrs.len());
            for (ia, ib) in a.instrs.iter().zip(&b.instrs) {
                let rel = (ia.features.mem_ops - ib.features.mem_ops).abs()
                    / ib.features.mem_ops.abs().max(1.0);
                prop_assert!(rel < 1e-12);
            }
        }
    }

    /// Influence is a share: within [0, 1], and summing memory-instruction
    /// influences over the task gives 1 (when the task has memory ops).
    #[test]
    fn influence_is_a_partition(trace in arb_trace()) {
        let total_mem = trace.total_mem_ops();
        prop_assume!(total_mem > 0.0);
        let mut sum = 0.0;
        for b in &trace.blocks {
            for i in &b.instrs {
                let inf = trace.influence(&i.features);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&inf));
                if i.features.mem_ops > 0.0 {
                    sum += inf;
                }
            }
        }
        prop_assert!((sum - 1.0).abs() < 1e-6, "mem influences sum to {sum}");
    }
}

proptest! {
    // Each case runs several full collections; a handful of seeds is
    // plenty, and PROPTEST_CASES can raise it.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Collection is a pure function of (app, ranks, machine, config):
    /// the rayon fan-out over ranks and blocks must produce bit-identical
    /// traces at one thread, at N threads, and across repeated runs with
    /// the same seed.
    #[test]
    fn collection_is_thread_count_invariant_and_repeatable(
        seed in any::<u64>(),
        threads in 2usize..6,
    ) {
        let app = SpecfemProxy::small();
        let machine = presets::system_a();
        let cfg = TracerConfig {
            max_sampled_refs_per_block: 1 << 14,
            seed,
        };
        let ranks = [0u32, 1, 3];
        let run = |n: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("pool");
            pool.install(|| collect_ranks(&app, &ranks, 8, &machine, &cfg))
        };
        let one_thread = run(1);
        let many_threads = run(threads);
        let again = run(threads);
        prop_assert_eq!(&one_thread, &many_threads);
        prop_assert_eq!(&one_thread, &again);

        // The single-task path must be just as repeatable, and must agree
        // with the fan-out's per-rank result.
        let t1 = collect_task_trace(&app, 1, 8, &machine, &cfg);
        let t2 = collect_task_trace(&app, 1, 8, &machine, &cfg);
        prop_assert_eq!(&t1, &t2);
        prop_assert_eq!(&t1, &one_thread[1]);
    }
}
