//! Property tests for the tracer: arbitrary traces must survive the binary
//! codec bit-exactly, collection must keep feature invariants for
//! arbitrary (valid) programs, and the rayon fan-out must be invisible —
//! identical results at any thread count and across same-seed runs.

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use xtrace_apps::SpecfemProxy;
use xtrace_ir::SourceLoc;
use xtrace_machine::presets;
use xtrace_tracer::{
    codec, collect_ranks, collect_task_trace, from_bytes, to_bytes, to_bytes_v1, BlockRecord,
    FeatureVector, InstrRecord, TaskTrace, TracerConfig,
};

fn arb_feature_vector() -> impl Strategy<Value = FeatureVector> {
    (
        0.0f64..1e15,
        0.0f64..1e15,
        proptest::array::uniform4(0.0f64..1.0),
        0.0f64..1e12,
        1.0f64..8.0,
    )
        .prop_map(|(exec, mem, mut rates, ws, ilp)| {
            rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut f = FeatureVector {
                exec_count: exec,
                mem_ops: mem,
                loads: mem * 0.75,
                stores: mem * 0.25,
                bytes_per_ref: 8.0,
                fp_fma: exec * 0.5,
                fp_add: exec * 0.25,
                working_set: ws,
                ilp,
                ..Default::default()
            };
            f.hit_rates = rates;
            f
        })
}

fn arb_trace() -> impl Strategy<Value = TaskTrace> {
    (
        "[a-z][a-z0-9-]{0,20}",
        0u32..10_000,
        1u32..10_000,
        1usize..4,
        proptest::collection::vec(
            (
                "[a-z][a-z0-9-]{0,16}",
                1u64..1_000_000,
                1u64..1_000_000,
                proptest::collection::vec(arb_feature_vector(), 1..6),
            ),
            1..6,
        ),
    )
        .prop_map(|(app, rank, nranks, depth, blocks)| TaskTrace {
            app,
            rank,
            nranks,
            machine: "prop-machine".into(),
            depth,
            blocks: blocks
                .into_iter()
                .enumerate()
                .map(|(bi, (name, inv, iters, fvs))| BlockRecord {
                    // Ensure block-name uniqueness within the trace.
                    name: format!("{name}-{bi}"),
                    source: SourceLoc::new("prop.f90", bi as u32, "kernel"),
                    invocations: inv,
                    iterations: iters,
                    instrs: fvs
                        .into_iter()
                        .enumerate()
                        .map(|(ii, features)| InstrRecord {
                            instr: ii as u32,
                            pattern: if ii % 2 == 0 { "strided" } else { "random" }.into(),
                            features,
                        })
                        .collect(),
                })
                .collect(),
        })
}

proptest! {
    /// The binary codec is a bit-exact round trip for arbitrary traces.
    #[test]
    fn binary_codec_roundtrips(trace in arb_trace()) {
        let encoded = to_bytes(&trace);
        let decoded = from_bytes(&encoded).expect("well-formed buffer decodes");
        prop_assert_eq!(decoded, trace);
    }

    /// Truncating an encoded trace anywhere yields an error, never a panic
    /// or a silently wrong value.
    #[test]
    fn binary_codec_rejects_truncations(trace in arb_trace(), frac in 0.0f64..1.0) {
        let encoded = to_bytes(&trace);
        let cut = ((encoded.len() as f64) * frac) as usize;
        if cut < encoded.len() {
            prop_assert!(from_bytes(&encoded[..cut]).is_err());
        }
    }

    /// JSON round trip preserves structure (floats may move by an ulp).
    #[test]
    fn json_roundtrip_preserves_structure(trace in arb_trace()) {
        let s = serde_json::to_string(&trace).unwrap();
        let back: TaskTrace = serde_json::from_str(&s).unwrap();
        prop_assert_eq!(back.app, trace.app);
        prop_assert_eq!(back.blocks.len(), trace.blocks.len());
        for (a, b) in back.blocks.iter().zip(&trace.blocks) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.instrs.len(), b.instrs.len());
            for (ia, ib) in a.instrs.iter().zip(&b.instrs) {
                let rel = (ia.features.mem_ops - ib.features.mem_ops).abs()
                    / ib.features.mem_ops.abs().max(1.0);
                prop_assert!(rel < 1e-12);
            }
        }
    }

    /// Influence is a share: within [0, 1], and summing memory-instruction
    /// influences over the task gives 1 (when the task has memory ops).
    #[test]
    fn influence_is_a_partition(trace in arb_trace()) {
        let total_mem = trace.total_mem_ops();
        prop_assume!(total_mem > 0.0);
        let mut sum = 0.0;
        for b in &trace.blocks {
            for i in &b.instrs {
                let inf = trace.influence(&i.features);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&inf));
                if i.features.mem_ops > 0.0 {
                    sum += inf;
                }
            }
        }
        prop_assert!((sum - 1.0).abs() < 1e-6, "mem influences sum to {sum}");
    }
}

proptest! {
    // Each case runs several full collections; a handful of seeds is
    // plenty, and PROPTEST_CASES can raise it.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Collection is a pure function of (app, ranks, machine, config):
    /// the rayon fan-out over ranks and blocks must produce bit-identical
    /// traces at one thread, at N threads, and across repeated runs with
    /// the same seed.
    #[test]
    fn collection_is_thread_count_invariant_and_repeatable(
        seed in any::<u64>(),
        threads in 2usize..6,
    ) {
        let app = SpecfemProxy::small();
        let machine = presets::system_a();
        let cfg = TracerConfig {
            max_sampled_refs_per_block: 1 << 14,
            seed,
            ..TracerConfig::default()
        };
        let ranks = [0u32, 1, 3];
        let run = |n: usize, c: &TracerConfig| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("pool");
            pool.install(|| collect_ranks(&app, &ranks, 8, &machine, c))
        };
        let one_thread = run(1, &cfg);
        let many_threads = run(threads, &cfg);
        let again = run(threads, &cfg);
        prop_assert_eq!(&one_thread, &many_threads);
        prop_assert_eq!(&one_thread, &again);

        // The streaming (ring-buffered) path must be equally invariant
        // and bit-identical to the direct-sink path, at any thread count
        // and any chunk capacity.
        let direct = TracerConfig {
            stream_chunk_refs: 0,
            ..cfg
        };
        prop_assert_eq!(&run(threads, &direct), &one_thread);
        let tiny_chunks = TracerConfig {
            stream_chunk_refs: 37,
            ..cfg
        };
        prop_assert_eq!(&run(1, &tiny_chunks), &one_thread);
        prop_assert_eq!(&run(threads, &tiny_chunks), &one_thread);

        // The single-task path must be just as repeatable, and must agree
        // with the fan-out's per-rank result.
        let t1 = collect_task_trace(&app, 1, 8, &machine, &cfg);
        let t2 = collect_task_trace(&app, 1, 8, &machine, &cfg);
        prop_assert_eq!(&t1, &t2);
        prop_assert_eq!(&t1, &one_thread[1]);
    }
}

proptest! {
    /// The delta/RLE column codec is an exact inverse on arbitrary
    /// randomized u64 streams (addresses are the worst case: unordered,
    /// wrapping deltas in both directions).
    #[test]
    fn rle_delta_codec_roundtrips_random_streams(vals in proptest::collection::vec(any::<u64>(), 0..2048)) {
        let mut b = bytes::BytesMut::new();
        codec::encode_u64_column(&vals, &mut b);
        let mut buf = &b[..];
        let back = codec::decode_u64_column(&mut buf, Some(vals.len())).unwrap();
        prop_assert_eq!(back, vals);
        prop_assert!(buf.is_empty(), "decoder must consume the column exactly");
    }

    /// Same identity for f64 columns, bit-for-bit (features are floats).
    #[test]
    fn rle_delta_codec_roundtrips_f64_columns(vals in proptest::collection::vec(any::<f64>(), 0..1024)) {
        let mut b = bytes::BytesMut::new();
        codec::encode_f64_column(&vals, &mut b);
        let back = codec::decode_f64_column(&mut &b[..], Some(vals.len())).unwrap();
        prop_assert_eq!(back.len(), vals.len());
        for (a, v) in back.iter().zip(&vals) {
            prop_assert_eq!(a.to_bits(), v.to_bits());
        }
    }

    /// Truncating an encoded column anywhere yields an error, never a
    /// silently short or wrong column.
    #[test]
    fn rle_delta_codec_rejects_truncations(vals in proptest::collection::vec(any::<u64>(), 1..512), frac in 0.0f64..1.0) {
        let mut b = bytes::BytesMut::new();
        codec::encode_u64_column(&vals, &mut b);
        let cut = ((b.len() as f64) * frac) as usize;
        if cut < b.len() {
            prop_assert!(codec::decode_u64_column(&mut &b[..cut], Some(vals.len())).is_err());
        }
    }

    /// Pathological all-constant runs: arbitrary value, arbitrary length,
    /// constant size on the wire.
    #[test]
    fn all_constant_streams_compress_to_constant_size(v in any::<u64>(), n in 1usize..4096) {
        let vals = vec![v; n];
        let mut b = bytes::BytesMut::new();
        codec::encode_u64_column(&vals, &mut b);
        prop_assert!(b.len() <= 26, "constant column of {n} took {} bytes", b.len());
        let back = codec::decode_u64_column(&mut &b[..], Some(n)).unwrap();
        prop_assert_eq!(back, vals);
    }

    /// Pathological all-distinct streams (no two equal deltas): overhead
    /// stays within the documented per-value bound.
    #[test]
    fn all_distinct_streams_stay_bounded(seed in any::<u64>()) {
        let vals: Vec<u64> = (0..1024u64)
            .map(|i| (seed ^ i).wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31))
            .collect();
        let mut b = bytes::BytesMut::new();
        codec::encode_u64_column(&vals, &mut b);
        prop_assert!(
            b.len() <= codec::MAX_BYTES_PER_VALUE * vals.len() + 10,
            "distinct column took {} bytes", b.len()
        );
        let back = codec::decode_u64_column(&mut &b[..], Some(vals.len())).unwrap();
        prop_assert_eq!(back, vals);
    }

    /// v2 is never larger than v1 by more than a whisker on arbitrary
    /// traces, and both decode to the same trace.
    #[test]
    fn v2_envelope_agrees_with_v1(trace in arb_trace()) {
        let v1 = to_bytes_v1(&trace);
        let v2 = to_bytes(&trace);
        prop_assert_eq!(from_bytes(&v1).unwrap(), from_bytes(&v2).unwrap());
    }
}
