//! Trace-file persistence.
//!
//! PMaC's pipeline materializes one trace file per MPI task; the
//! extrapolator and the PSiNS simulator both consume those files. Two
//! formats are provided, both **versioned** so future readers can evolve
//! the schema while rejecting files from the future:
//!
//! * **JSON** (via serde) — human-inspectable, used by the CLI and the
//!   experiment harness. Traces are wrapped in a
//!   `{"format", "version", "trace"}` envelope; bare legacy traces
//!   (version-0 files, written before the envelope existed) still load.
//! * a **compact binary codec** (hand-rolled on `bytes`) — for bulk
//!   multi-rank collections. Version 2 transposes the trace into columnar
//!   form (`crate::columnar`) and delta/RLE-compresses every numeric
//!   column (`crate::codec`), typically an order of magnitude smaller
//!   than the v1 record-oriented layout; v1 files still load through
//!   explicit version dispatch in [`from_bytes`].
//!
//! The `xtrace-core` artifact store persists traces through these exact
//! functions, so every trace artifact on disk — CLI output, store entry,
//! experiment dump — is one of these two formats.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use xtrace_cache::MEMORY_LEVEL_CAP;
use xtrace_ir::SourceLoc;

use crate::codec;
use crate::columnar::{FeatureMatrix, TraceColumns};
use crate::sig::{BlockRecord, FeatureVector, InstrRecord, TaskTrace};

/// Magic prefix of the binary format.
const MAGIC: &[u8; 4] = b"XTRC";
/// Current binary format version: v2, the compressed columnar envelope.
/// Version-1 files (uncompressed record-oriented) still load through the
/// explicit dispatch in [`from_bytes`].
const VERSION: u16 = 2;
/// The record-oriented uncompressed format, readable forever.
const VERSION_V1: u16 = 1;
/// Identifies the JSON envelope (the `format` field).
pub const JSON_FORMAT: &str = "xtrace-task-trace";
/// Current JSON envelope version.
pub const JSON_VERSION: u32 = 1;

/// Errors from the binary codec.
#[derive(Debug)]
pub enum CodecError {
    /// The buffer does not start with the `XTRC` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A string field was not valid UTF-8.
    BadString,
    /// The buffer is structurally inconsistent (bad varint, run overflow,
    /// column-length mismatch, out-of-range dictionary index, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not an xtrace binary trace (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported trace format version {v}"),
            CodecError::Truncated => write!(f, "trace buffer truncated"),
            CodecError::BadString => write!(f, "invalid UTF-8 in trace string"),
            CodecError::Corrupt(what) => write!(f, "corrupt trace buffer: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Errors from trace-file persistence (either format, either direction).
#[derive(Debug)]
pub enum IoError {
    /// The underlying filesystem operation failed.
    Io {
        /// File being read or written.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
    /// The file is not parseable as a trace.
    Parse {
        /// File being read.
        path: PathBuf,
        /// Parser diagnostic.
        message: String,
    },
    /// The file comes from a newer writer than this reader supports.
    UnsupportedVersion {
        /// Version found in the file.
        got: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// The binary codec rejected the buffer.
    Codec(CodecError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            IoError::Parse { path, message } => {
                write!(f, "{}: not a trace file: {message}", path.display())
            }
            IoError::UnsupportedVersion { got, supported } => write!(
                f,
                "trace file version {got} is newer than the supported version {supported}"
            ),
            IoError::Codec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io { source, .. } => Some(source),
            IoError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for IoError {
    fn from(e: CodecError) -> Self {
        IoError::Codec(e)
    }
}

/// The versioned JSON on-disk form of a trace.
#[derive(Serialize, Deserialize)]
struct TraceEnvelope {
    format: String,
    version: u32,
    trace: TaskTrace,
}

/// Saves a trace as pretty-printed, versioned JSON.
pub fn save_json(trace: &TaskTrace, path: &Path) -> Result<(), IoError> {
    let s = trace_json_string(trace).map_err(|message| IoError::Parse {
        path: path.to_path_buf(),
        message,
    })?;
    fs::write(path, s).map_err(|source| IoError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// The versioned JSON envelope of `trace` as a string (the exact bytes
/// [`save_json`] writes), for callers that sink through their own storage
/// layer (the artifact store's backends).
pub fn trace_json_string(trace: &TaskTrace) -> std::result::Result<String, String> {
    let envelope = TraceEnvelope {
        format: JSON_FORMAT.to_string(),
        version: JSON_VERSION,
        trace: trace.clone(),
    };
    serde_json::to_string_pretty(&envelope).map_err(|e| e.to_string())
}

/// Loads a JSON trace — either the current envelope or a bare legacy
/// (pre-envelope) trace object. Envelopes from a newer writer are
/// rejected with [`IoError::UnsupportedVersion`].
pub fn load_json(path: &Path) -> Result<TaskTrace, IoError> {
    let s = fs::read_to_string(path).map_err(|source| IoError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    parse_json(&s, path)
}

/// [`load_json`] on an in-memory string (shared with the artifact store).
pub fn parse_json(s: &str, path: &Path) -> Result<TaskTrace, IoError> {
    let probe: serde_json::Value = serde_json::from_str(s).map_err(|e| IoError::Parse {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    if probe["format"].as_str() == Some(JSON_FORMAT) {
        let version = probe["version"].as_u64().unwrap_or(0) as u32;
        if version > JSON_VERSION {
            return Err(IoError::UnsupportedVersion {
                got: version,
                supported: JSON_VERSION,
            });
        }
        let envelope: TraceEnvelope = serde_json::from_str(s).map_err(|e| IoError::Parse {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        Ok(envelope.trace)
    } else {
        // Legacy: a bare trace object (version 0).
        serde_json::from_str(s).map_err(|e| IoError::Parse {
            path: path.to_path_buf(),
            message: e.to_string(),
        })
    }
}

/// Encodes a trace into the current (v2) compressed columnar format.
///
/// The trace is transposed into [`TraceColumns`] and every numeric column
/// goes through the delta + run-length codec (`crate::codec`); pattern
/// labels are dictionary-encoded. Real signatures shrink by an order of
/// magnitude versus v1 because most columns are constant or
/// arithmetic-ramp shaped. Codec byte counts are reported on the ambient
/// observability context; use [`to_bytes_obs`] to direct them to an
/// explicit one.
pub fn to_bytes(trace: &TaskTrace) -> Bytes {
    to_bytes_obs(trace, &xtrace_obs::ObsContext::ambient())
}

/// [`to_bytes`] reporting the compressed and raw (v1-equivalent) byte
/// counts on `obs`'s `tracer.codec.compressed_bytes` /
/// `tracer.codec.raw_bytes` counters.
pub fn to_bytes_obs(trace: &TaskTrace, obs: &xtrace_obs::ObsContext) -> Bytes {
    let cols = TraceColumns::from_trace(trace);
    let mut b = BytesMut::with_capacity(1024);
    b.put_slice(MAGIC);
    b.put_u16(VERSION);
    put_str(&mut b, &cols.app);
    b.put_u32(cols.rank);
    b.put_u32(cols.nranks);
    put_str(&mut b, &cols.machine);
    b.put_u8(cols.depth as u8);
    b.put_u32(cols.n_blocks() as u32);
    for bi in 0..cols.n_blocks() {
        put_str(&mut b, &cols.block_names[bi]);
        put_str(&mut b, &cols.block_files[bi]);
        b.put_u32(cols.block_lines[bi]);
        put_str(&mut b, &cols.block_functions[bi]);
    }
    codec::encode_u64_column(&cols.invocations, &mut b);
    codec::encode_u64_column(&cols.iterations, &mut b);
    let ninstrs: Vec<u64> = cols
        .instr_start
        .windows(2)
        .map(|w| u64::from(w[1] - w[0]))
        .collect();
    codec::encode_u64_column(&ninstrs, &mut b);
    let instr_idx: Vec<u64> = cols.instr_index.iter().map(|&v| u64::from(v)).collect();
    codec::encode_u64_column(&instr_idx, &mut b);
    // Pattern labels: first-appearance dictionary plus an index column.
    let mut dict: Vec<&str> = Vec::new();
    let mut pattern_idx: Vec<u64> = Vec::with_capacity(cols.patterns.len());
    for p in &cols.patterns {
        let k = match dict.iter().position(|d| d == p) {
            Some(k) => k,
            None => {
                dict.push(p);
                dict.len() - 1
            }
        };
        pattern_idx.push(k as u64);
    }
    b.put_u32(dict.len() as u32);
    for d in &dict {
        put_str(&mut b, d);
    }
    codec::encode_u64_column(&pattern_idx, &mut b);
    for col in &cols.features.scalars {
        codec::encode_f64_column(col, &mut b);
    }
    for col in &cols.features.hit_rates {
        codec::encode_f64_column(col, &mut b);
    }
    let out = b.freeze();

    let m = obs.metrics();
    if m.enabled() {
        m.counter("tracer.codec.compressed_bytes")
            .add(out.len() as u64);
        m.counter("tracer.codec.raw_bytes")
            .add(v1_encoded_len(trace));
    }
    out
}

/// Size in bytes of the v1 (uncompressed) encoding of `trace`, computed
/// without building the buffer — the "raw" side of the compression
/// metrics and of `bench_collect`'s bytes-stored comparison.
pub fn v1_encoded_len(trace: &TaskTrace) -> u64 {
    let str_len = |s: &str| 4 + s.len() as u64;
    let mut n = 4 + 2 + str_len(&trace.app) + 4 + 4 + str_len(&trace.machine) + 1 + 4;
    for blk in &trace.blocks {
        n += str_len(&blk.name) + str_len(&blk.source.file) + 4 + str_len(&blk.source.function);
        n += 8 + 8 + 4;
        for ins in &blk.instrs {
            n += 4 + str_len(&ins.pattern) + 8 * (12 + MEMORY_LEVEL_CAP as u64);
        }
    }
    n
}

/// Encodes a trace into the legacy v1 record-oriented format. Kept for
/// compatibility tooling (fixture generation, raw-size baselines); new
/// writers should use [`to_bytes`].
pub fn to_bytes_v1(trace: &TaskTrace) -> Bytes {
    let mut b = BytesMut::with_capacity(1024);
    b.put_slice(MAGIC);
    b.put_u16(VERSION_V1);
    put_str(&mut b, &trace.app);
    b.put_u32(trace.rank);
    b.put_u32(trace.nranks);
    put_str(&mut b, &trace.machine);
    b.put_u8(trace.depth as u8);
    b.put_u32(trace.blocks.len() as u32);
    for blk in &trace.blocks {
        put_str(&mut b, &blk.name);
        put_str(&mut b, &blk.source.file);
        b.put_u32(blk.source.line);
        put_str(&mut b, &blk.source.function);
        b.put_u64(blk.invocations);
        b.put_u64(blk.iterations);
        b.put_u32(blk.instrs.len() as u32);
        for ins in &blk.instrs {
            b.put_u32(ins.instr);
            put_str(&mut b, &ins.pattern);
            let f = &ins.features;
            for v in [
                f.exec_count,
                f.mem_ops,
                f.loads,
                f.stores,
                f.bytes_per_ref,
                f.fp_add,
                f.fp_mul,
                f.fp_div,
                f.fp_sqrt,
                f.fp_fma,
                f.working_set,
                f.ilp,
            ] {
                b.put_f64(v);
            }
            for &h in &f.hit_rates {
                b.put_f64(h);
            }
        }
    }
    b.freeze()
}

/// Decodes a trace from the compact binary format, dispatching on the
/// envelope version: v1 (record-oriented) and v2 (compressed columnar)
/// both load; anything else is rejected.
pub fn from_bytes(mut buf: &[u8]) -> Result<TaskTrace, CodecError> {
    if buf.remaining() < 6 {
        return Err(CodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = buf.get_u16();
    match version {
        VERSION_V1 => decode_v1(buf),
        VERSION => decode_v2(buf),
        v => Err(CodecError::BadVersion(v)),
    }
}

/// Decodes the v2 body (everything after magic + version).
fn decode_v2(mut buf: &[u8]) -> Result<TaskTrace, CodecError> {
    let app = get_str(&mut buf)?;
    need(buf, 8)?;
    let rank = buf.get_u32();
    let nranks = buf.get_u32();
    let machine = get_str(&mut buf)?;
    need(buf, 5)?;
    let depth = usize::from(buf.get_u8());
    let nblocks = buf.get_u32() as usize;
    if nblocks > codec::MAX_COLUMN_LEN {
        return Err(CodecError::Corrupt("block count exceeds cap"));
    }
    let mut block_names = Vec::with_capacity(nblocks.min(1 << 16));
    let mut block_files = Vec::with_capacity(nblocks.min(1 << 16));
    let mut block_lines = Vec::with_capacity(nblocks.min(1 << 16));
    let mut block_functions = Vec::with_capacity(nblocks.min(1 << 16));
    for _ in 0..nblocks {
        block_names.push(get_str(&mut buf)?);
        block_files.push(get_str(&mut buf)?);
        need(buf, 4)?;
        block_lines.push(buf.get_u32());
        block_functions.push(get_str(&mut buf)?);
    }
    let invocations = codec::decode_u64_column(&mut buf, Some(nblocks))?;
    let iterations = codec::decode_u64_column(&mut buf, Some(nblocks))?;
    let ninstrs = codec::decode_u64_column(&mut buf, Some(nblocks))?;
    let mut instr_start = Vec::with_capacity(nblocks + 1);
    instr_start.push(0u32);
    let mut total: usize = 0;
    for &n in &ninstrs {
        total = total
            .checked_add(n as usize)
            .filter(|&t| t <= codec::MAX_COLUMN_LEN)
            .ok_or(CodecError::Corrupt("instruction count exceeds cap"))?;
        instr_start.push(total as u32);
    }
    let instr_index: Vec<u32> = codec::decode_u64_column(&mut buf, Some(total))?
        .into_iter()
        .map(|v| u32::try_from(v).map_err(|_| CodecError::Corrupt("instruction index exceeds u32")))
        .collect::<Result<_, _>>()?;
    need(buf, 4)?;
    let npatterns = buf.get_u32() as usize;
    if npatterns > total {
        return Err(CodecError::Corrupt("pattern dictionary larger than trace"));
    }
    let mut dict = Vec::with_capacity(npatterns);
    for _ in 0..npatterns {
        dict.push(get_str(&mut buf)?);
    }
    let patterns: Vec<String> = codec::decode_u64_column(&mut buf, Some(total))?
        .into_iter()
        .map(|k| {
            dict.get(k as usize)
                .cloned()
                .ok_or(CodecError::Corrupt("pattern index out of dictionary"))
        })
        .collect::<Result<_, _>>()?;
    let mut features = FeatureMatrix::with_capacity(total);
    for col in features.scalars.iter_mut() {
        *col = codec::decode_f64_column(&mut buf, Some(total))?;
    }
    for col in features.hit_rates.iter_mut() {
        *col = codec::decode_f64_column(&mut buf, Some(total))?;
    }
    let cols = TraceColumns {
        app,
        rank,
        nranks,
        machine,
        depth,
        block_names,
        block_files,
        block_lines,
        block_functions,
        invocations,
        iterations,
        instr_start,
        instr_index,
        patterns,
        features,
    };
    Ok(cols.to_trace())
}

/// Decodes the v1 body (everything after magic + version).
fn decode_v1(mut buf: &[u8]) -> Result<TaskTrace, CodecError> {
    let app = get_str(&mut buf)?;
    need(buf, 8)?;
    let rank = buf.get_u32();
    let nranks = buf.get_u32();
    let machine = get_str(&mut buf)?;
    need(buf, 5)?;
    let depth = usize::from(buf.get_u8());
    let nblocks = buf.get_u32() as usize;
    let mut blocks = Vec::with_capacity(nblocks.min(1 << 16));
    for _ in 0..nblocks {
        let name = get_str(&mut buf)?;
        let file = get_str(&mut buf)?;
        need(buf, 4)?;
        let line = buf.get_u32();
        let function = get_str(&mut buf)?;
        need(buf, 20)?;
        let invocations = buf.get_u64();
        let iterations = buf.get_u64();
        let ninstr = buf.get_u32() as usize;
        let mut instrs = Vec::with_capacity(ninstr.min(1 << 16));
        for _ in 0..ninstr {
            need(buf, 4)?;
            let instr = buf.get_u32();
            let pattern = get_str(&mut buf)?;
            need(buf, 8 * (12 + MEMORY_LEVEL_CAP))?;
            let mut f = FeatureVector {
                exec_count: buf.get_f64(),
                mem_ops: buf.get_f64(),
                loads: buf.get_f64(),
                stores: buf.get_f64(),
                bytes_per_ref: buf.get_f64(),
                fp_add: buf.get_f64(),
                fp_mul: buf.get_f64(),
                fp_div: buf.get_f64(),
                fp_sqrt: buf.get_f64(),
                fp_fma: buf.get_f64(),
                working_set: buf.get_f64(),
                ilp: buf.get_f64(),
                ..Default::default()
            };
            for h in f.hit_rates.iter_mut() {
                *h = buf.get_f64();
            }
            instrs.push(InstrRecord {
                instr,
                pattern,
                features: f,
            });
        }
        blocks.push(BlockRecord {
            name,
            source: SourceLoc::new(file, line, function),
            invocations,
            iterations,
            instrs,
        });
    }
    Ok(TaskTrace {
        app,
        rank,
        nranks,
        machine,
        depth,
        blocks,
    })
}

fn put_str(b: &mut BytesMut, s: &str) {
    b.put_u32(s.len() as u32);
    b.put_slice(s.as_bytes());
}

fn need(buf: &[u8], n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

fn get_str(buf: &mut &[u8]) -> Result<String, CodecError> {
    need(buf, 4)?;
    let len = buf.get_u32() as usize;
    need(buf, len)?;
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| CodecError::BadString)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TaskTrace {
        TaskTrace {
            app: "specfem3d-proxy".into(),
            rank: 17,
            nranks: 96,
            machine: "cray-xt5".into(),
            depth: 3,
            blocks: vec![BlockRecord {
                name: "stiffness-matmul".into(),
                source: SourceLoc::new("compute_forces.f90", 312, "compute_forces_elastic"),
                invocations: 1000,
                iterations: 42,
                instrs: vec![
                    InstrRecord {
                        instr: 0,
                        pattern: "strided".into(),
                        features: FeatureVector {
                            exec_count: 42_000.0,
                            mem_ops: 42_000.0,
                            loads: 42_000.0,
                            bytes_per_ref: 8.0,
                            hit_rates: [0.874, 0.91, 0.95, 1.0],
                            working_set: 27.6e6,
                            ilp: 2.5,
                            ..Default::default()
                        },
                    },
                    InstrRecord {
                        instr: 1,
                        pattern: "fp".into(),
                        features: FeatureVector {
                            exec_count: 378_000.0,
                            fp_fma: 378_000.0,
                            ilp: 2.5,
                            ..Default::default()
                        },
                    },
                ],
            }],
        }
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let t = sample();
        let bytes = to_bytes(&t);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let t = sample();
        let bin = to_bytes(&t);
        let json = serde_json::to_string(&t).unwrap();
        assert!(
            bin.len() < json.len(),
            "binary {} vs json {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn json_file_roundtrip() {
        let t = sample();
        let dir = std::env::temp_dir().join("xtrace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        save_json(&t, &path).unwrap();
        let back = load_json(&path).unwrap();
        assert_eq!(back, t, "envelope roundtrip is exact");
        // The on-disk form is the versioned envelope.
        let raw: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(raw["format"], JSON_FORMAT);
        assert_eq!(raw["version"], u64::from(JSON_VERSION));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_bare_json_still_loads() {
        let t = sample();
        let dir = std::env::temp_dir().join("xtrace-io-test-legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        std::fs::write(&path, serde_json::to_string_pretty(&t).unwrap()).unwrap();
        let back = load_json(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_rejects_forward_version() {
        let t = sample();
        let dir = std::env::temp_dir().join("xtrace-io-test-fwd");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("future.json");
        save_json(&t, &path).unwrap();
        let bumped = std::fs::read_to_string(&path).unwrap().replace(
            &format!("\"version\": {JSON_VERSION}"),
            &format!("\"version\": {}", JSON_VERSION + 41),
        );
        std::fs::write(&path, bumped).unwrap();
        match load_json(&path) {
            Err(IoError::UnsupportedVersion { got, supported }) => {
                assert_eq!(got, JSON_VERSION + 41);
                assert_eq!(supported, JSON_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_io_error_carries_path() {
        let missing = Path::new("/nonexistent-dir-xtrace/trace.json");
        match load_json(missing) {
            Err(IoError::Io { path, .. }) => assert_eq!(path, missing),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            from_bytes(b"NOPE\0\x01"),
            Err(CodecError::BadMagic)
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut b = BytesMut::new();
        b.put_slice(MAGIC);
        b.put_u16(99);
        assert!(matches!(
            from_bytes(&b.freeze()),
            Err(CodecError::BadVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let full = to_bytes(&sample());
        // Any prefix must fail gracefully, never panic.
        for cut in 0..full.len() {
            let r = from_bytes(&full[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes unexpectedly decoded");
        }
    }

    #[test]
    fn rejects_invalid_utf8() {
        let mut b = BytesMut::new();
        b.put_slice(MAGIC);
        b.put_u16(VERSION);
        b.put_u32(2);
        b.put_slice(&[0xFF, 0xFE]);
        // Pad out so the string read has enough bytes.
        assert!(matches!(
            from_bytes(&b.freeze()),
            Err(CodecError::BadString)
        ));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = TaskTrace {
            app: String::new(),
            rank: 0,
            nranks: 1,
            machine: String::new(),
            depth: 1,
            blocks: vec![],
        };
        assert_eq!(from_bytes(&to_bytes(&t)).unwrap(), t);
    }
}
