//! # xtrace-tracer — execution-driven application-signature collection
//!
//! This crate is the reproduction's PEBIL + on-the-fly cache simulation
//! pipeline (the paper's Figure 2): for a chosen MPI task it interprets the
//! rank's program, streams every memory reference through a cache hierarchy
//! configured like the *target* machine, and aggregates the results into
//! per-basic-block, per-instruction **feature vectors** — the application
//! signature:
//!
//! 1. amount and composition of floating-point work,
//! 2. number of memory operations (loads/stores),
//! 3. size of memory operations,
//! 4. cache hit rates in all levels of the target system,
//! 5. working-set size,
//!
//! (Section III-B's enumeration) plus execution counts and the block's ILP.
//!
//! Like the real pipeline, nothing is stored per access — the address
//! stream ("over 2 TB of data per hour" per process at full fidelity) is
//! consumed as it is produced. Long-running blocks are *sampled*: dynamic
//! operation counts are exact (they come from the program structure), and
//! hit rates are measured over a bounded prefix of the block's address
//! stream, which converges because blocks are in steady state after their
//! first region sweep.
//!
//! # Parallelism model
//!
//! The unit of parallel work is the **basic block**. Every folded block of
//! a rank owns a private [`xtrace_cache::CacheHierarchy`], so block
//! simulations share no mutable state and [`collect_task_trace`] fans out
//! over them with rayon; [`collect_ranks`] adds a second fan-out across
//! ranks. Results are deterministic at any thread count: the parallel
//! collects are ordered (output position is fixed by input position, not
//! completion time), every address stream is seeded from `(rank, block,
//! instruction)` alone, and the per-block sampling windows do not depend on
//! scheduling. The cost of giving each block a cold private cache is
//! absorbed by the existing warmup window, which was already discarding the
//! start-of-sample transient; the per-block and shared-cache formulations
//! agree within sampling tolerance (asserted in `collect`'s tests).
//!
//! On top of the fan-out sits [`SigMemo`], a content-addressed memo of
//! block simulations: SPMD ranks run structurally identical blocks, and
//! only `Random`-pattern instructions consume the per-rank stream seed, so
//! deterministic blocks are simulated once per job instead of once per
//! rank. Each memo key's simulation runs exactly once even under
//! contention, and a memo answer is bit-identical to recomputing, so
//! memoization is invisible in the output.
//!
//! [`collect_signature`] traces the most computationally demanding task
//! (identified by the `xtrace-spmd` profiling pass); [`collect_ranks`]
//! traces any subset of ranks in parallel for the clustering extension.

#![warn(missing_docs)]

pub mod codec;
pub mod collect;
pub mod columnar;
pub mod io;
pub mod memo;
pub mod sig;

pub use collect::{
    collect_ranks, collect_ranks_memo, collect_ranks_memo_obs, collect_signature,
    collect_signature_memo, collect_signature_memo_obs, collect_signature_with,
    collect_signature_with_obs, collect_task_trace, collect_task_trace_memo,
    collect_task_trace_memo_obs, rank_stream_seed, rank_stream_seed_for, TracerConfig,
};
pub use columnar::{FeatureMatrix, TraceColumns, SCALAR_FEATURES};
pub use io::{
    from_bytes, load_json, parse_json, save_json, to_bytes, to_bytes_obs, to_bytes_v1,
    trace_json_string, v1_encoded_len, CodecError, IoError, JSON_FORMAT, JSON_VERSION,
};
pub use memo::SigMemo;
pub use sig::{AppSignature, BlockRecord, FeatureId, FeatureVector, InstrRecord, TaskTrace};
