//! # xtrace-tracer — execution-driven application-signature collection
//!
//! This crate is the reproduction's PEBIL + on-the-fly cache simulation
//! pipeline (the paper's Figure 2): for a chosen MPI task it interprets the
//! rank's program, streams every memory reference through a cache hierarchy
//! configured like the *target* machine, and aggregates the results into
//! per-basic-block, per-instruction **feature vectors** — the application
//! signature:
//!
//! 1. amount and composition of floating-point work,
//! 2. number of memory operations (loads/stores),
//! 3. size of memory operations,
//! 4. cache hit rates in all levels of the target system,
//! 5. working-set size,
//!
//! (Section III-B's enumeration) plus execution counts and the block's ILP.
//!
//! Like the real pipeline, nothing is stored per access — the address
//! stream ("over 2 TB of data per hour" per process at full fidelity) is
//! consumed as it is produced. Long-running blocks are *sampled*: dynamic
//! operation counts are exact (they come from the program structure), and
//! hit rates are measured over a bounded prefix of the block's address
//! stream, which converges because blocks are in steady state after their
//! first region sweep.
//!
//! [`collect_signature`] traces the most computationally demanding task
//! (identified by the `xtrace-spmd` profiling pass); [`collect_ranks`]
//! traces any subset of ranks in parallel (rayon) for the clustering
//! extension.

#![warn(missing_docs)]

pub mod collect;
pub mod io;
pub mod sig;

pub use collect::{
    collect_ranks, collect_signature, collect_signature_with, collect_task_trace,
    rank_stream_seed, TracerConfig,
};
pub use io::{from_bytes, load_json, save_json, to_bytes, CodecError};
pub use sig::{
    AppSignature, BlockRecord, FeatureId, FeatureVector, InstrRecord, TaskTrace,
};
