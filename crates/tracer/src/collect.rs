//! Trace collection: interpret a rank's program against a target cache.
//!
//! The Figure-2 pipeline, end to end: rank program → address stream →
//! on-the-fly cache simulation → per-instruction feature vectors. Dynamic
//! counts (executions, memory ops, FP ops) are exact, derived from the
//! program structure; hit rates are measured by streaming a bounded sample
//! of each block's references through the simulator (blocks reach steady
//! state within their first region sweep, so a multi-million-reference
//! sample pins the rates while keeping full-scale traces tractable).
//!
//! Each block is simulated against its **own** [`CacheHierarchy`]: blocks
//! are independent units of work, which lets [`collect_task_trace`] fan out
//! over them with rayon and lets [`SigMemo`] reuse one block's simulation
//! wherever the identical block recurs (other ranks, other core counts).
//! The warmup window that already guards sampled blocks against
//! compulsory-miss bias equally amortizes the per-block cold start, so
//! per-block hit rates agree with the shared-cache formulation within
//! sampling tolerance (asserted by this module's tests).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use rayon::prelude::*;
use xtrace_cache::{CacheHierarchy, LevelCounts};
use xtrace_ir::{AccessRing, AccessStream, BlockId, InstrKind, MemOp};
use xtrace_machine::MachineProfile;
use xtrace_obs::ObsContext;
use xtrace_spmd::{MpiProfiler, RankEvent, RankProgram, SpmdApp};

use crate::memo::{block_sim_key, SigMemo};
use crate::sig::{AppSignature, BlockRecord, FeatureVector, InstrRecord, TaskTrace};

/// Collection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracerConfig {
    /// Maximum references streamed through the cache simulator per block.
    /// Counts stay exact regardless; only hit-rate estimation is sampled.
    pub max_sampled_refs_per_block: u64,
    /// Base seed for random address patterns (mixed with the rank so
    /// different tasks gather different, reproducible, streams).
    pub seed: u64,
    /// Capacity, in references, of the bounded ring buffer between address
    /// generation and cache simulation ([`xtrace_ir::AccessRing`]). The
    /// stream is produced and consumed chunk-at-a-time, so a block's peak
    /// buffered footprint is this capacity no matter how many references
    /// it generates; results are bit-identical at any setting because
    /// chunking preserves access order exactly. `0` selects the direct
    /// unbuffered sink path (the reference formulation, kept for
    /// equivalence tests). A chunk always holds at least one whole
    /// iteration, so blocks with more references per iteration than this
    /// capacity still make progress.
    pub stream_chunk_refs: u64,
}

impl Default for TracerConfig {
    /// 8 Mi references per block: the sampled window's streamed footprint
    /// (tens of MB) comfortably exceeds any last-level cache in the machine
    /// presets, so capacity thrashing on large regions is visible in the
    /// sampled hit rates, not hidden by a window that fits in cache.
    /// The 32 Ki-reference ring keeps the generator/simulator hand-off
    /// bounded (sub-MB per in-flight block) without measurable overhead.
    fn default() -> Self {
        Self {
            max_sampled_refs_per_block: 1 << 23,
            seed: 0x5EED,
            stream_chunk_refs: 1 << 15,
        }
    }
}

impl TracerConfig {
    /// A light configuration for tests. The small ring makes even short
    /// sampled windows span several fill/drain chunks, so tests exercise
    /// the chunk boundary logic.
    pub fn fast() -> Self {
        Self {
            max_sampled_refs_per_block: 1 << 16,
            seed: 0x5EED,
            stream_chunk_refs: 1 << 12,
        }
    }
}

/// Collects the full application signature at `nranks`: runs the
/// lightweight MPI profiling pass to find the most computationally
/// demanding task, then traces that task against `machine`'s hierarchy.
pub fn collect_signature(app: &dyn SpmdApp, nranks: u32, machine: &MachineProfile) -> AppSignature {
    collect_signature_with(app, nranks, machine, &TracerConfig::default())
}

/// [`collect_signature`] with explicit tracer parameters.
pub fn collect_signature_with(
    app: &dyn SpmdApp,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
) -> AppSignature {
    collect_signature_with_obs(app, nranks, machine, cfg, &ObsContext::ambient())
}

/// [`collect_signature_with`] recording into an explicit observability
/// context.
pub fn collect_signature_with_obs(
    app: &dyn SpmdApp,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
    obs: &ObsContext,
) -> AppSignature {
    // Journal: one wall-clock duration per collected core count. Emitted
    // from this serial entry point (never from the per-block rayon
    // fan-out below it), so the event order is deterministic.
    let journal = obs.journal();
    if journal.enabled() {
        journal.begin(
            &format!("p{nranks}"),
            "collect",
            &[("nranks", f64::from(nranks))],
        );
    }
    let comm = MpiProfiler::default().profile_obs(app, nranks, &machine.net, obs);
    let trace =
        collect_task_trace_memo_obs(app, comm.longest_rank, nranks, machine, cfg, None, obs);
    if journal.enabled() {
        journal.end(
            &format!("p{nranks}"),
            "collect",
            &[
                ("longest_rank", f64::from(comm.longest_rank)),
                ("blocks", trace.blocks.len() as f64),
            ],
        );
    }
    AppSignature {
        traces: vec![trace],
        comm,
    }
}

/// [`collect_signature_with`] answering block simulations from a
/// caller-owned [`SigMemo`], so a training sweep over several core counts
/// reuses identical block simulations across calls (memoization never
/// changes the result — the key covers every simulation input).
pub fn collect_signature_memo(
    app: &dyn SpmdApp,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
    memo: &SigMemo,
) -> AppSignature {
    collect_signature_memo_obs(app, nranks, machine, cfg, memo, &ObsContext::ambient())
}

/// [`collect_signature_memo`] recording into an explicit observability
/// context.
pub fn collect_signature_memo_obs(
    app: &dyn SpmdApp,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
    memo: &SigMemo,
    obs: &ObsContext,
) -> AppSignature {
    let journal = obs.journal();
    let (hits_before, misses_before) = (memo.hits(), memo.misses());
    if journal.enabled() {
        journal.begin(
            &format!("p{nranks}"),
            "collect",
            &[("nranks", f64::from(nranks))],
        );
    }
    let comm = MpiProfiler::default().profile_obs(app, nranks, &machine.net, obs);
    let trace = collect_task_trace_memo_obs(
        app,
        comm.longest_rank,
        nranks,
        machine,
        cfg,
        Some(memo),
        obs,
    );
    if journal.enabled() {
        // The memo burst this count contributed. Totals are scheduling-
        // invariant (see DefaultCollect), so this survives masking.
        journal.instant(
            "tracer.memo.burst",
            "collect",
            &[
                ("hits", (memo.hits() - hits_before) as f64),
                ("misses", (memo.misses() - misses_before) as f64),
            ],
        );
        journal.end(
            &format!("p{nranks}"),
            "collect",
            &[
                ("longest_rank", f64::from(comm.longest_rank)),
                ("blocks", trace.blocks.len() as f64),
            ],
        );
    }
    AppSignature {
        traces: vec![trace],
        comm,
    }
}

/// Traces several ranks in parallel (used by the Section-VI clustering
/// extension, which needs more than the longest task), deduplicating
/// identical block simulations through a shared [`SigMemo`].
pub fn collect_ranks(
    app: &(dyn SpmdApp + Sync),
    ranks: &[u32],
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
) -> Vec<TaskTrace> {
    collect_ranks_memo(app, ranks, nranks, machine, cfg, &SigMemo::new())
}

/// [`collect_ranks`] with a caller-owned memo, so repeated collections
/// (e.g. the training sweep over several core counts) reuse block
/// simulations across calls and the caller can read the hit/miss counters.
pub fn collect_ranks_memo(
    app: &(dyn SpmdApp + Sync),
    ranks: &[u32],
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
    memo: &SigMemo,
) -> Vec<TaskTrace> {
    collect_ranks_memo_obs(
        app,
        ranks,
        nranks,
        machine,
        cfg,
        memo,
        &ObsContext::ambient(),
    )
}

/// [`collect_ranks_memo`] reporting into an explicit observability
/// context (shared across the rank fan-out; `ObsContext` is `Sync`).
pub fn collect_ranks_memo_obs(
    app: &(dyn SpmdApp + Sync),
    ranks: &[u32],
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
    memo: &SigMemo,
    obs: &ObsContext,
) -> Vec<TaskTrace> {
    ranks
        .par_iter()
        .map(|&r| collect_task_trace_memo_obs(app, r, nranks, machine, cfg, Some(memo), obs))
        .collect()
}

/// The seed rank `rank`'s address streams are generated from when the app
/// provides no rank-equivalence keys — shared with the ground-truth
/// simulator so both walk bit-identical streams.
pub fn rank_stream_seed(cfg: &TracerConfig, rank: u32) -> u64 {
    cfg.seed ^ xtrace_ir::rng::SplitMix64::mix(u64::from(rank) << 20)
}

/// Class-aware stream seed: the seed actually used by collection and
/// ground truth.
///
/// Ranks the engine already treats as interchangeable — equal
/// [`SpmdApp::rank_class`] keys, meaning identical programs up to exchange
/// neighbor lists — walk bit-identical synthetic address streams, seeded
/// from the lowest rank of their class. Random-pattern block simulations
/// then memoize across a whole class instead of being re-simulated per
/// rank, which is what lets wide collection (many ranks per core count)
/// scale with the number of *classes* rather than ranks. Apps that opt
/// out of class keys keep the per-rank [`rank_stream_seed`], and a rank
/// that is its class's lowest member (every singleton class, e.g. a
/// master rank) is seeded exactly as before.
pub fn rank_stream_seed_for(app: &dyn SpmdApp, cfg: &TracerConfig, rank: u32, nranks: u32) -> u64 {
    rank_stream_seed(cfg, class_seed_rank(app, rank, nranks))
}

/// The lowest rank sharing `rank`'s equivalence class (the class's seed
/// donor), or `rank` itself without class keys. Class keys are O(1)
/// arithmetic for the proxy apps, so the scan is cheap.
fn class_seed_rank(app: &dyn SpmdApp, rank: u32, nranks: u32) -> u32 {
    let Some(key) = app.rank_class(rank, nranks) else {
        return rank;
    };
    (0..rank)
        .find(|&r| app.rank_class(r, nranks) == Some(key))
        .unwrap_or(rank)
}

/// Traces a single MPI task: the core of the signature pipeline.
pub fn collect_task_trace(
    app: &dyn SpmdApp,
    rank: u32,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
) -> TaskTrace {
    collect_task_trace_memo(app, rank, nranks, machine, cfg, None)
}

/// [`collect_task_trace`] answering block simulations from `memo` when one
/// is supplied. Memoization never changes the result: the key covers every
/// input of the simulation (see [`crate::memo`]).
pub fn collect_task_trace_memo(
    app: &dyn SpmdApp,
    rank: u32,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
    memo: Option<&SigMemo>,
) -> TaskTrace {
    collect_task_trace_memo_obs(
        app,
        rank,
        nranks,
        machine,
        cfg,
        memo,
        &ObsContext::ambient(),
    )
}

/// [`collect_task_trace_memo`] recording block-simulation telemetry into
/// an explicit observability context.
pub fn collect_task_trace_memo_obs(
    app: &dyn SpmdApp,
    rank: u32,
    nranks: u32,
    machine: &MachineProfile,
    cfg: &TracerConfig,
    memo: Option<&SigMemo>,
    obs: &ObsContext,
) -> TaskTrace {
    let rp = app.rank_program(rank, nranks);
    let depth = machine.depth();

    // Fold repeated Compute events per block, preserving first-appearance
    // order.
    let mut order: Vec<(BlockId, u64)> = Vec::new();
    let mut slot: HashMap<BlockId, usize> = HashMap::new();
    for ev in &rp.events {
        if let RankEvent::Compute { block, invocations } = ev {
            match slot.entry(*block) {
                Entry::Occupied(e) => order[*e.get()].1 += invocations,
                Entry::Vacant(e) => {
                    e.insert(order.len());
                    order.push((*block, *invocations));
                }
            }
        }
    }

    let rank_seed = rank_stream_seed_for(app, cfg, rank, nranks);
    // Blocks own their simulator state, so they trace independently; the
    // rayon collect is ordered, keeping block order (and therefore the
    // trace) identical at any thread count.
    let blocks = order
        .par_iter()
        .map(|&(block_id, inv)| trace_block(&rp, block_id, inv, machine, cfg, rank_seed, memo, obs))
        .collect();

    TaskTrace {
        app: app.name().to_string(),
        rank,
        nranks,
        machine: machine.name.clone(),
        depth,
        blocks,
    }
}

/// Traces one folded block: sampled cache simulation (possibly memoized)
/// plus exact dynamic counts.
#[allow(clippy::too_many_arguments)]
fn trace_block(
    rp: &RankProgram,
    block_id: BlockId,
    inv: u64,
    machine: &MachineProfile,
    cfg: &TracerConfig,
    rank_seed: u64,
    memo: Option<&SigMemo>,
    obs: &ObsContext,
) -> BlockRecord {
    let depth = machine.depth();
    let blk = rp.program.block(block_id);
    let refs_per_iter: u64 = blk
        .instrs
        .iter()
        .filter(|i| i.is_mem())
        .map(|i| u64::from(i.repeat))
        .sum();
    let total_iters = blk.iterations.saturating_mul(inv);

    // Sample: bounded number of iterations streamed through the cache.
    // A warmup window runs first (uncounted) whenever the block's full
    // run extends beyond the sample, so compulsory misses — amortized
    // to nothing over the real run — do not bias the sampled rates.
    // Fully simulated blocks get no warmup: their cold misses are real.
    let per_instr: Arc<Vec<LevelCounts>> = if refs_per_iter > 0 && total_iters > 0 {
        let sample_iters = total_iters.min((cfg.max_sampled_refs_per_block / refs_per_iter).max(1));
        let warmup_iters = sample_iters.min(total_iters - sample_iters);
        let simulate = || {
            // Observability: one registration per block *simulation* (a
            // memo hit never reaches this closure), so the per-reference
            // loop below stays untouched. Totals are scheduling-invariant:
            // the memo computes each unique key exactly once.
            let metrics = obs.metrics();
            metrics.counter("tracer.blocks_simulated").incr();
            metrics
                .histogram("tracer.block_sample_refs")
                .record(sample_iters.saturating_mul(refs_per_iter));
            let mut cache = CacheHierarchy::try_new(machine.hierarchy.clone())
                .expect("machine profile carries a valid hierarchy");
            let mut counts = vec![LevelCounts::default(); blk.instrs.len()];
            let mut stream = AccessStream::new(&rp.program, block_id, rank_seed);
            if cfg.stream_chunk_refs == 0 {
                // Reference formulation: every access goes straight from
                // the generator into the simulator, nothing buffered.
                stream.run_iterations(warmup_iters, &mut |a| {
                    cache.access(a.addr, a.bytes);
                });
                stream.run_iterations(sample_iters, &mut |a| {
                    let lvl = cache.access(a.addr, a.bytes);
                    counts[a.instr.index()].record(lvl);
                });
            } else {
                // Streaming formulation: fill a bounded ring with whole
                // iterations, drain it through the simulator as one flat
                // contiguous slice, repeat. Order — and therefore every
                // count — is identical to the direct path; peak buffered
                // memory is the ring capacity. The floor of one iteration
                // guarantees progress for wide blocks.
                let cap = cfg.stream_chunk_refs.max(refs_per_iter) as usize;
                let mut ring = AccessRing::with_capacity(cap);
                let mut left = warmup_iters;
                while left > 0 {
                    left -= stream.fill_ring(&mut ring, left);
                    cache.warm(ring.as_slice().iter().map(|a| (a.addr, a.bytes)));
                    ring.clear();
                }
                let mut left = sample_iters;
                while left > 0 {
                    left -= stream.fill_ring(&mut ring, left);
                    for a in ring.as_slice() {
                        let lvl = cache.access(a.addr, a.bytes);
                        counts[a.instr.index()].record(lvl);
                    }
                    ring.clear();
                }
                // High-water marks for the bounded-memory CI assertion.
                // Deterministic: occupancy depends only on the block's
                // geometry and the configured capacity, never scheduling.
                metrics
                    .gauge("tracer.ring.peak_refs")
                    .set_max(ring.peak() as u64);
                metrics
                    .gauge("tracer.ring.capacity_refs")
                    .set_max(cap as u64);
            }
            counts
        };
        match memo {
            Some(m) => {
                // Same derivation as AccessStream's per-instruction seed.
                let key = block_sim_key(
                    &rp.program,
                    blk,
                    machine,
                    warmup_iters,
                    sample_iters,
                    |idx| {
                        xtrace_ir::rng::SplitMix64::mix(
                            rank_seed ^ (u64::from(block_id.0) << 32) ^ idx as u64,
                        )
                    },
                );
                m.get_or_compute(key, simulate)
            }
            None => Arc::new(simulate()),
        }
    } else {
        Arc::new(vec![LevelCounts::default(); blk.instrs.len()])
    };

    let instrs = blk
        .instrs
        .iter()
        .enumerate()
        .map(|(idx, ins)| {
            let exec = total_iters as f64 * f64::from(ins.repeat);
            let mut f = FeatureVector {
                exec_count: exec,
                ilp: blk.ilp,
                ..Default::default()
            };
            let pattern;
            match ins.kind {
                InstrKind::Mem {
                    op,
                    region,
                    bytes,
                    pattern: pat,
                } => {
                    pattern = pat.label().to_string();
                    f.mem_ops = exec;
                    match op {
                        MemOp::Load => f.loads = exec,
                        MemOp::Store => f.stores = exec,
                    }
                    f.bytes_per_ref = f64::from(bytes);
                    f.working_set = rp.program.region(region).bytes as f64;
                    let counts = &per_instr[idx];
                    if counts.accesses > 0 {
                        for (l, rate) in f.hit_rates.iter_mut().enumerate().take(depth) {
                            *rate = counts.hit_rate_cum(l);
                        }
                        for rate in f.hit_rates.iter_mut().skip(depth) {
                            *rate = 1.0;
                        }
                    }
                }
                InstrKind::Fp { op } => {
                    pattern = "fp".to_string();
                    match op {
                        xtrace_ir::FpOp::Add => f.fp_add = exec,
                        xtrace_ir::FpOp::Mul => f.fp_mul = exec,
                        xtrace_ir::FpOp::Div => f.fp_div = exec,
                        xtrace_ir::FpOp::Sqrt => f.fp_sqrt = exec,
                        xtrace_ir::FpOp::Fma => f.fp_fma = exec,
                    }
                }
            }
            InstrRecord {
                instr: idx as u32,
                pattern,
                features: f,
            }
        })
        .collect();

    BlockRecord {
        name: blk.name.clone(),
        source: blk.source.clone(),
        invocations: inv,
        iterations: blk.iterations,
        instrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace_cache::{CacheLevelConfig, HierarchyConfig};
    use xtrace_ir::{AddressPattern, BasicBlock, BlockId, FpOp, Instruction, Program, SourceLoc};
    use xtrace_machine::{FpRates, MemoryCostModel, SweepConfig};
    use xtrace_spmd::{NetworkModel, RankProgram};

    fn machine() -> MachineProfile {
        MachineProfile::new(
            "test-machine",
            HierarchyConfig::new(
                vec![
                    CacheLevelConfig::lru("L1", 4 * 1024, 64, 4, 2.0),
                    CacheLevelConfig::lru("L2", 64 * 1024, 64, 8, 12.0),
                ],
                160.0,
            )
            .unwrap(),
            2e9,
            FpRates::generic(),
            NetworkModel::new(1e-6, 1e9),
            MemoryCostModel::default(),
            SweepConfig::coarse(),
            0.8,
        )
        .expect("valid test machine")
    }

    /// One block: resident unit-stride loads into a 2 KiB region plus FMAs,
    /// non-resident random loads into a 1 MiB region.
    struct TwoRegion;
    impl SpmdApp for TwoRegion {
        fn name(&self) -> &str {
            "two-region"
        }
        fn rank_program(&self, _rank: u32, _nranks: u32) -> RankProgram {
            let mut b = Program::builder();
            let hot = b.region("hot", 2 * 1024, 8);
            let cold = b.region("cold", 1024 * 1024, 8);
            let blk = b.block(BasicBlock::new(
                BlockId(0),
                "mixed",
                SourceLoc::new("t.c", 1, "f"),
                4096,
                vec![
                    Instruction::mem(xtrace_ir::MemOp::Load, hot, 8, AddressPattern::unit(8)),
                    Instruction::mem(xtrace_ir::MemOp::Load, cold, 8, AddressPattern::Random),
                    Instruction::mem(xtrace_ir::MemOp::Store, hot, 8, AddressPattern::unit(8)),
                    Instruction::fp(FpOp::Fma).with_repeat(3),
                ],
            ));
            RankProgram {
                program: b.build().unwrap(),
                events: vec![
                    RankEvent::Compute {
                        block: blk,
                        invocations: 5,
                    },
                    RankEvent::Compute {
                        block: blk,
                        invocations: 5,
                    },
                    RankEvent::Barrier { repeats: 1 },
                ],
            }
        }
    }

    /// Two long-running strided blocks over separate regions — no random
    /// patterns, so its simulations are seed-independent.
    struct TwoBlocks;
    impl SpmdApp for TwoBlocks {
        fn name(&self) -> &str {
            "two-blocks"
        }
        fn rank_program(&self, _rank: u32, _nranks: u32) -> RankProgram {
            let mut b = Program::builder();
            let ra = b.region("a", 16 * 1024, 8);
            let rb = b.region("b", 128 * 1024, 8);
            let b0 = b.block(BasicBlock::new(
                BlockId(0),
                "sweep-a",
                SourceLoc::new("t.c", 10, "fa"),
                8192,
                vec![Instruction::mem(
                    xtrace_ir::MemOp::Load,
                    ra,
                    8,
                    AddressPattern::unit(8),
                )],
            ));
            let b1 = b.block(BasicBlock::new(
                BlockId(1),
                "sweep-b",
                SourceLoc::new("t.c", 20, "fb"),
                8192,
                vec![Instruction::mem(
                    xtrace_ir::MemOp::Store,
                    rb,
                    8,
                    AddressPattern::Strided { stride: 64 },
                )],
            ));
            RankProgram {
                program: b.build().unwrap(),
                events: vec![
                    RankEvent::Compute {
                        block: b0,
                        invocations: 8,
                    },
                    RankEvent::Compute {
                        block: b1,
                        invocations: 8,
                    },
                ],
            }
        }
    }

    #[test]
    fn counts_are_exact_and_events_fold() {
        let t = collect_task_trace(&TwoRegion, 0, 4, &machine(), &TracerConfig::fast());
        assert_eq!(t.blocks.len(), 1);
        let b = &t.blocks[0];
        assert_eq!(b.invocations, 10, "two Compute events folded");
        // exec = 10 invocations × 4096 iterations.
        let exec = 10.0 * 4096.0;
        assert_eq!(b.instrs[0].features.mem_ops, exec);
        assert_eq!(b.instrs[0].features.loads, exec);
        assert_eq!(b.instrs[2].features.stores, exec);
        assert_eq!(b.instrs[3].features.fp_fma, exec * 3.0);
        assert_eq!(b.instrs[3].features.mem_ops, 0.0);
    }

    #[test]
    fn hit_rates_reflect_residency() {
        let t = collect_task_trace(&TwoRegion, 0, 4, &machine(), &TracerConfig::fast());
        let b = &t.blocks[0];
        let hot = &b.instrs[0].features;
        let cold = &b.instrs[1].features;
        // The unit-stride walk hits at least the spatial-locality floor
        // (7/8 for 8-byte elements on 64-byte lines); the interleaved
        // random stream evicts the region between revisits, so full
        // residency is not expected.
        assert!(hot.hit_rates[0] >= 0.87, "hot L1 {}", hot.hit_rates[0]);
        assert!(
            hot.hit_rates[0] > cold.hit_rates[0] + 0.5,
            "strided must beat random: {} vs {}",
            hot.hit_rates[0],
            cold.hit_rates[0]
        );
        // 1 MiB random in a 64 KiB L2: mostly misses everywhere.
        assert!(cold.hit_rates[1] < 0.2, "cold L2 {}", cold.hit_rates[1]);
        // Cumulative monotonicity.
        assert!(cold.hit_rates[0] <= cold.hit_rates[1] + 1e-12);
    }

    #[test]
    fn working_set_is_region_footprint() {
        let t = collect_task_trace(&TwoRegion, 0, 4, &machine(), &TracerConfig::fast());
        let b = &t.blocks[0];
        assert_eq!(b.instrs[0].features.working_set, 2048.0);
        assert_eq!(b.instrs[1].features.working_set, 1048576.0);
        assert_eq!(b.instrs[3].features.working_set, 0.0);
    }

    #[test]
    fn pattern_labels_recorded() {
        let t = collect_task_trace(&TwoRegion, 0, 4, &machine(), &TracerConfig::fast());
        let b = &t.blocks[0];
        assert_eq!(b.instrs[0].pattern, "strided");
        assert_eq!(b.instrs[1].pattern, "random");
        assert_eq!(b.instrs[3].pattern, "fp");
    }

    #[test]
    fn collection_is_deterministic() {
        let a = collect_task_trace(&TwoRegion, 0, 4, &machine(), &TracerConfig::fast());
        let b = collect_task_trace(&TwoRegion, 0, 4, &machine(), &TracerConfig::fast());
        assert_eq!(a, b);
    }

    #[test]
    fn different_ranks_get_different_random_streams_but_same_counts() {
        let m = machine();
        let cfg = TracerConfig::fast();
        let a = collect_task_trace(&TwoRegion, 0, 4, &m, &cfg);
        let b = collect_task_trace(&TwoRegion, 1, 4, &m, &cfg);
        assert_eq!(
            a.blocks[0].instrs[0].features.mem_ops,
            b.blocks[0].instrs[0].features.mem_ops
        );
    }

    /// [`TwoRegion`] with rank-equivalence keys: even and odd ranks form
    /// two classes. Every rank's program is identical, so any grouping
    /// honors the [`SpmdApp::rank_class`] contract.
    struct ClassyTwoRegion;
    impl SpmdApp for ClassyTwoRegion {
        fn name(&self) -> &str {
            "classy-two-region"
        }
        fn rank_program(&self, rank: u32, nranks: u32) -> RankProgram {
            TwoRegion.rank_program(rank, nranks)
        }
        fn rank_class(&self, rank: u32, _nranks: u32) -> Option<u64> {
            Some(u64::from(rank % 2))
        }
    }

    #[test]
    fn same_class_ranks_walk_identical_streams_and_memoize() {
        let m = machine();
        let cfg = TracerConfig::fast();
        // Ranks 1 and 3 share a class: both are seeded from the class's
        // lowest rank (1), so their traces match and rank 3's block
        // simulations are answered entirely from the memo.
        let memo = SigMemo::new();
        let a = collect_task_trace_memo(&ClassyTwoRegion, 1, 4, &m, &cfg, Some(&memo));
        let misses_after_first = memo.misses();
        let b = collect_task_trace_memo(&ClassyTwoRegion, 3, 4, &m, &cfg, Some(&memo));
        assert_eq!(a.blocks, b.blocks);
        assert_eq!(memo.misses(), misses_after_first, "rank 3 should only hit");
        // A rank of the other class draws a different random stream.
        let c = collect_task_trace_memo(&ClassyTwoRegion, 2, 4, &m, &cfg, Some(&memo));
        assert_ne!(a.blocks, c.blocks);
        // The class's lowest member is seeded exactly like the keyless app,
        // so opting in to classes never changes a representative's trace.
        let plain = collect_task_trace(&TwoRegion, 1, 4, &m, &cfg);
        assert_eq!(a.blocks, plain.blocks);
    }

    #[test]
    fn signature_contains_longest_task() {
        let m = machine();
        let sig = collect_signature_with(&TwoRegion, 4, &m, &TracerConfig::fast());
        assert_eq!(sig.traces.len(), 1);
        let t = sig.longest_task();
        assert_eq!(t.rank, sig.comm.longest_rank);
        assert_eq!(t.machine, "test-machine");
        assert_eq!(t.depth, 2);
    }

    #[test]
    fn collect_ranks_traces_each_requested_rank() {
        let m = machine();
        let traces = collect_ranks(&TwoRegion, &[0, 2, 3], 4, &m, &TracerConfig::fast());
        assert_eq!(traces.len(), 3);
        assert_eq!(traces[0].rank, 0);
        assert_eq!(traces[1].rank, 2);
        assert_eq!(traces[2].rank, 3);
    }

    #[test]
    fn sampling_cap_does_not_change_counts() {
        let m = machine();
        let small = collect_task_trace(
            &TwoRegion,
            0,
            4,
            &m,
            &TracerConfig {
                max_sampled_refs_per_block: 1 << 10,
                seed: 1,
                ..TracerConfig::default()
            },
        );
        let large = collect_task_trace(
            &TwoRegion,
            0,
            4,
            &m,
            &TracerConfig {
                max_sampled_refs_per_block: 1 << 20,
                seed: 1,
                ..TracerConfig::default()
            },
        );
        assert_eq!(
            small.blocks[0].instrs[0].features.mem_ops,
            large.blocks[0].instrs[0].features.mem_ops
        );
        // Hit rates close (sampling convergence).
        let d = (small.blocks[0].instrs[0].features.hit_rates[0]
            - large.blocks[0].instrs[0].features.hit_rates[0])
            .abs();
        assert!(d < 0.05, "sampled hit rate off by {d}");
    }

    #[test]
    fn hit_rates_beyond_depth_stay_one() {
        let t = collect_task_trace(&TwoRegion, 0, 4, &machine(), &TracerConfig::fast());
        for b in &t.blocks {
            for i in &b.instrs {
                assert_eq!(i.features.hit_rates[2], 1.0);
                assert_eq!(i.features.hit_rates[3], 1.0);
            }
        }
    }

    /// The per-block-cache formulation must agree with the historical
    /// shared-cache formulation (one hierarchy threaded through all blocks
    /// in order) within sampling tolerance: warmup absorbs the per-block
    /// cold start.
    #[test]
    fn per_block_caches_match_shared_cache_within_tolerance() {
        let m = machine();
        let cfg = TracerConfig::fast();
        let t = collect_task_trace(&TwoBlocks, 0, 4, &m, &cfg);

        // Shared-cache reference: replicate the sampling windows with one
        // hierarchy carried across blocks.
        let rp = TwoBlocks.rank_program(0, 4);
        let rank_seed = rank_stream_seed(&cfg, 0);
        let mut cache = CacheHierarchy::try_new(m.hierarchy.clone()).unwrap();
        let mut shared_l1 = Vec::new();
        for (block_id, inv) in [(BlockId(0), 8u64), (BlockId(1), 8u64)] {
            let blk = rp.program.block(block_id);
            let refs_per_iter: u64 = blk
                .instrs
                .iter()
                .filter(|i| i.is_mem())
                .map(|i| u64::from(i.repeat))
                .sum();
            let total_iters = blk.iterations * inv;
            let sample_iters =
                total_iters.min((cfg.max_sampled_refs_per_block / refs_per_iter).max(1));
            let warmup_iters = sample_iters.min(total_iters - sample_iters);
            let mut counts = vec![LevelCounts::default(); blk.instrs.len()];
            let mut stream = AccessStream::new(&rp.program, block_id, rank_seed);
            stream.run_iterations(warmup_iters, &mut |a| {
                cache.access(a.addr, a.bytes);
            });
            stream.run_iterations(sample_iters, &mut |a| {
                let lvl = cache.access(a.addr, a.bytes);
                counts[a.instr.index()].record(lvl);
            });
            shared_l1.push(counts[0].hit_rate_cum(0));
        }

        for (b, shared) in t.blocks.iter().zip(&shared_l1) {
            let got = b.instrs[0].features.hit_rates[0];
            assert!(
                (got - shared).abs() < 0.02,
                "block {}: per-block {} vs shared {}",
                b.name,
                got,
                shared
            );
        }
    }

    /// Chunked ring-buffer streaming must be invisible: at any capacity —
    /// including ones far smaller than a block's sampled window — the
    /// collected trace is bit-identical to the direct unbuffered path.
    #[test]
    fn streaming_chunks_are_bit_identical_to_direct() {
        let m = machine();
        let direct = TracerConfig {
            stream_chunk_refs: 0,
            ..TracerConfig::fast()
        };
        let ref_two_region = collect_task_trace(&TwoRegion, 0, 4, &m, &direct);
        let ref_two_blocks = collect_task_trace(&TwoBlocks, 1, 4, &m, &direct);
        for chunk in [1u64, 7, 1 << 6, 1 << 12, 1 << 22] {
            let cfg = TracerConfig {
                stream_chunk_refs: chunk,
                ..TracerConfig::fast()
            };
            assert_eq!(
                collect_task_trace(&TwoRegion, 0, 4, &m, &cfg),
                ref_two_region,
                "chunk {chunk} perturbed TwoRegion"
            );
            assert_eq!(
                collect_task_trace(&TwoBlocks, 1, 4, &m, &cfg),
                ref_two_blocks,
                "chunk {chunk} perturbed TwoBlocks"
            );
        }
    }

    /// The ring's high-water occupancy never exceeds the effective
    /// capacity (configured, or one whole iteration for wide blocks).
    #[test]
    fn ring_occupancy_is_bounded_by_capacity() {
        let m = machine();
        let obs = ObsContext::with_recorder(xtrace_obs::Recorder::new());
        let metrics = obs.metrics();
        let cfg = TracerConfig {
            stream_chunk_refs: 64,
            ..TracerConfig::fast()
        };
        let _ = collect_task_trace_memo_obs(&TwoRegion, 0, 4, &m, &cfg, None, &obs);
        let peak = metrics.gauge("tracer.ring.peak_refs").get();
        let cap = metrics.gauge("tracer.ring.capacity_refs").get();
        assert!(peak > 0, "streaming path must report an occupancy");
        assert!(peak <= cap, "peak {peak} exceeds capacity {cap}");
    }

    #[test]
    fn memo_reuses_identical_simulations_without_changing_results() {
        let m = machine();
        let cfg = TracerConfig::fast();
        let memo = SigMemo::new();
        let plain = collect_task_trace(&TwoRegion, 0, 4, &m, &cfg);
        let first = collect_task_trace_memo(&TwoRegion, 0, 4, &m, &cfg, Some(&memo));
        let second = collect_task_trace_memo(&TwoRegion, 0, 4, &m, &cfg, Some(&memo));
        assert_eq!(first, plain, "memoized collection must be bit-identical");
        assert_eq!(second, plain);
        assert_eq!(memo.misses(), 1, "one unique block simulated once");
        assert_eq!(memo.hits(), 1, "second collection answered from memo");
        assert_eq!(memo.len(), 1);
        assert!((memo.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn memo_dedups_deterministic_blocks_across_ranks() {
        let m = machine();
        let cfg = TracerConfig::fast();
        let memo = SigMemo::new();
        // TwoBlocks has no Random patterns: the per-rank seed does not
        // reach any address, so other ranks replay rank 0's simulations.
        let traces = collect_ranks_memo(&TwoBlocks, &[0, 1, 2, 3], 4, &m, &cfg, &memo);
        assert_eq!(traces.len(), 4);
        assert_eq!(memo.len(), 2, "two unique blocks in the whole job");
        assert_eq!(memo.misses(), 2);
        assert_eq!(memo.hits(), 6, "3 further ranks × 2 blocks each");
        for t in &traces[1..] {
            assert_eq!(
                t.blocks[0].instrs[0].features.hit_rates,
                traces[0].blocks[0].instrs[0].features.hit_rates
            );
        }
    }

    #[test]
    fn memo_keeps_random_blocks_rank_specific() {
        let m = machine();
        let cfg = TracerConfig::fast();
        let memo = SigMemo::new();
        let _ = collect_ranks_memo(&TwoRegion, &[0, 1], 4, &m, &cfg, &memo);
        // The single block contains a Random-pattern load, whose stream
        // depends on the rank seed: no cross-rank sharing.
        assert_eq!(memo.misses(), 2);
        assert_eq!(memo.hits(), 0);
    }
}
