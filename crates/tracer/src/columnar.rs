//! Columnar (struct-of-arrays) layout of a task trace.
//!
//! [`TaskTrace`] is the interchange form — a `Vec` of blocks, each a `Vec`
//! of instruction records. That array-of-structs shape is convenient to
//! build during collection, but both heavy consumers want the transpose:
//!
//! * the **extrapolator** fits each `(block, instruction, feature)`
//!   element as an independent series across core counts, so it reads one
//!   feature of *every* instruction — a column — per fit;
//! * the **trace envelope** (format v2, `crate::io`) delta/RLE-compresses
//!   per-feature columns, which only works when equal-typed values are
//!   adjacent.
//!
//! [`TraceColumns`] is that transpose: per-block metadata columns, a CSR-style
//! `instr_start` offset array, and one flat `f64` column per
//! [`FeatureId`] scalar covering every instruction of every block in
//! order. The conversion is lossless and bit-exact in both directions
//! (`from_trace` ∘ `to_trace` is the identity; asserted in tests), so the
//! columnar view can sit behind the existing `TaskTrace` API without
//! perturbing a single prediction.

use xtrace_cache::MEMORY_LEVEL_CAP;
use xtrace_ir::SourceLoc;

use crate::sig::{BlockRecord, FeatureId, FeatureVector, InstrRecord, TaskTrace};

/// The 12 scalar (non-hit-rate) feature columns, in wire/storage order.
/// This order is frozen by trace-envelope v2 — do not reorder.
pub const SCALAR_FEATURES: [FeatureId; 12] = [
    FeatureId::ExecCount,
    FeatureId::MemOps,
    FeatureId::Loads,
    FeatureId::Stores,
    FeatureId::BytesPerRef,
    FeatureId::FpAdd,
    FeatureId::FpMul,
    FeatureId::FpDiv,
    FeatureId::FpSqrt,
    FeatureId::FpFma,
    FeatureId::WorkingSet,
    FeatureId::Ilp,
];

/// Flat per-instruction feature columns (the transpose of a vector of
/// [`FeatureVector`]s). Column `k` of instruction `i` lives at
/// `column(id)[i]` — contiguous in memory across instructions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureMatrix {
    /// One column per entry of [`SCALAR_FEATURES`], same order.
    pub scalars: [Vec<f64>; 12],
    /// `hit_rates[l][i]` = instruction `i`'s cumulative hit rate at level
    /// `l` (levels past the machine depth stay 1.0).
    pub hit_rates: [Vec<f64>; MEMORY_LEVEL_CAP],
}

impl FeatureMatrix {
    /// A matrix with all columns pre-sized for `n` instructions.
    pub fn with_capacity(n: usize) -> Self {
        let mut m = Self::default();
        for c in m.scalars.iter_mut() {
            c.reserve(n);
        }
        for c in m.hit_rates.iter_mut() {
            c.reserve(n);
        }
        m
    }

    /// Number of instructions (rows).
    pub fn len(&self) -> usize {
        self.scalars[0].len()
    }

    /// True when no instructions have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one instruction's features across all columns.
    pub fn push(&mut self, f: &FeatureVector) {
        for (col, &id) in self.scalars.iter_mut().zip(SCALAR_FEATURES.iter()) {
            col.push(f.get(id));
        }
        for (l, col) in self.hit_rates.iter_mut().enumerate() {
            col.push(f.hit_rates[l]);
        }
    }

    /// The contiguous column for one feature element.
    pub fn column(&self, id: FeatureId) -> &[f64] {
        match id {
            FeatureId::HitRate(l) => &self.hit_rates[usize::from(l)],
            _ => {
                let k = SCALAR_FEATURES
                    .iter()
                    .position(|&s| s == id)
                    .expect("every non-hit-rate FeatureId is a scalar column");
                &self.scalars[k]
            }
        }
    }

    /// Reassembles instruction `i`'s [`FeatureVector`] (bit-exact).
    pub fn vector(&self, i: usize) -> FeatureVector {
        let mut f = FeatureVector::default();
        for (col, &id) in self.scalars.iter().zip(SCALAR_FEATURES.iter()) {
            f.set(id, col[i]);
        }
        for (l, col) in self.hit_rates.iter().enumerate() {
            f.hit_rates[l] = col[i];
        }
        f
    }
}

/// A [`TaskTrace`] in columnar (struct-of-arrays) form.
///
/// Block metadata lives in parallel per-block columns; instruction data
/// lives in flat per-instruction columns spanning all blocks, delimited by
/// the CSR-style [`Self::instr_start`] offsets.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceColumns {
    /// Application name.
    pub app: String,
    /// Rank this trace belongs to.
    pub rank: u32,
    /// Core count of the run.
    pub nranks: u32,
    /// Target machine the cache simulation mimicked.
    pub machine: String,
    /// Cache depth of that machine.
    pub depth: usize,
    /// Per-block: stable block name.
    pub block_names: Vec<String>,
    /// Per-block: source file.
    pub block_files: Vec<String>,
    /// Per-block: source line.
    pub block_lines: Vec<u32>,
    /// Per-block: enclosing function.
    pub block_functions: Vec<String>,
    /// Per-block: invocations over the whole run.
    pub invocations: Vec<u64>,
    /// Per-block: loop trips per invocation.
    pub iterations: Vec<u64>,
    /// Offsets into the instruction columns: block `b`'s instructions
    /// occupy `instr_start[b]..instr_start[b + 1]`. Length `nblocks + 1`.
    pub instr_start: Vec<u32>,
    /// Per-instruction: index within its block.
    pub instr_index: Vec<u32>,
    /// Per-instruction: address-pattern label.
    pub patterns: Vec<String>,
    /// Per-instruction feature columns.
    pub features: FeatureMatrix,
}

impl TraceColumns {
    /// Transposes a record-oriented trace into columns (lossless).
    pub fn from_trace(t: &TaskTrace) -> Self {
        let nblocks = t.blocks.len();
        let total: usize = t.blocks.iter().map(|b| b.instrs.len()).sum();
        let mut c = TraceColumns {
            app: t.app.clone(),
            rank: t.rank,
            nranks: t.nranks,
            machine: t.machine.clone(),
            depth: t.depth,
            block_names: Vec::with_capacity(nblocks),
            block_files: Vec::with_capacity(nblocks),
            block_lines: Vec::with_capacity(nblocks),
            block_functions: Vec::with_capacity(nblocks),
            invocations: Vec::with_capacity(nblocks),
            iterations: Vec::with_capacity(nblocks),
            instr_start: Vec::with_capacity(nblocks + 1),
            instr_index: Vec::with_capacity(total),
            patterns: Vec::with_capacity(total),
            features: FeatureMatrix::with_capacity(total),
        };
        c.instr_start.push(0);
        for b in &t.blocks {
            c.block_names.push(b.name.clone());
            c.block_files.push(b.source.file.clone());
            c.block_lines.push(b.source.line);
            c.block_functions.push(b.source.function.clone());
            c.invocations.push(b.invocations);
            c.iterations.push(b.iterations);
            for ins in &b.instrs {
                c.instr_index.push(ins.instr);
                c.patterns.push(ins.pattern.clone());
                c.features.push(&ins.features);
            }
            c.instr_start.push(c.instr_index.len() as u32);
        }
        c
    }

    /// Transposes back into the record-oriented form (bit-exact inverse of
    /// [`Self::from_trace`]).
    pub fn to_trace(&self) -> TaskTrace {
        let mut blocks = Vec::with_capacity(self.n_blocks());
        for b in 0..self.n_blocks() {
            let lo = self.instr_start[b] as usize;
            let hi = self.instr_start[b + 1] as usize;
            let instrs = (lo..hi)
                .map(|i| InstrRecord {
                    instr: self.instr_index[i],
                    pattern: self.patterns[i].clone(),
                    features: self.features.vector(i),
                })
                .collect();
            blocks.push(BlockRecord {
                name: self.block_names[b].clone(),
                source: SourceLoc::new(
                    self.block_files[b].clone(),
                    self.block_lines[b],
                    self.block_functions[b].clone(),
                ),
                invocations: self.invocations[b],
                iterations: self.iterations[b],
                instrs,
            });
        }
        TaskTrace {
            app: self.app.clone(),
            rank: self.rank,
            nranks: self.nranks,
            machine: self.machine.clone(),
            depth: self.depth,
            blocks,
        }
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.block_names.len()
    }

    /// Total instructions across all blocks.
    pub fn n_instrs(&self) -> usize {
        self.instr_index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TaskTrace {
        TaskTrace {
            app: "columnar-test".into(),
            rank: 3,
            nranks: 64,
            machine: "m".into(),
            depth: 2,
            blocks: vec![
                BlockRecord {
                    name: "a".into(),
                    source: SourceLoc::new("a.f90", 10, "fa"),
                    invocations: 5,
                    iterations: 7,
                    instrs: vec![
                        InstrRecord {
                            instr: 0,
                            pattern: "strided".into(),
                            features: FeatureVector {
                                exec_count: 35.0,
                                mem_ops: 35.0,
                                loads: 35.0,
                                bytes_per_ref: 8.0,
                                hit_rates: [0.5, 0.75, 1.0, 1.0],
                                working_set: 4096.0,
                                ilp: 2.0,
                                ..Default::default()
                            },
                        },
                        InstrRecord {
                            instr: 1,
                            pattern: "fp".into(),
                            features: FeatureVector {
                                exec_count: 70.0,
                                fp_fma: 70.0,
                                ..Default::default()
                            },
                        },
                    ],
                },
                BlockRecord {
                    name: "b".into(),
                    source: SourceLoc::new("b.f90", 20, "fb"),
                    invocations: 1,
                    iterations: 1,
                    instrs: vec![InstrRecord {
                        instr: 0,
                        pattern: "random".into(),
                        features: FeatureVector {
                            exec_count: 1.0,
                            mem_ops: 1.0,
                            stores: 1.0,
                            bytes_per_ref: 4.0,
                            ..Default::default()
                        },
                    }],
                },
            ],
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let t = sample();
        let c = TraceColumns::from_trace(&t);
        assert_eq!(c.n_blocks(), 2);
        assert_eq!(c.n_instrs(), 3);
        assert_eq!(c.instr_start, vec![0, 2, 3]);
        assert_eq!(c.to_trace(), t);
    }

    #[test]
    fn columns_match_record_reads() {
        let t = sample();
        let c = TraceColumns::from_trace(&t);
        for id in FeatureId::all(MEMORY_LEVEL_CAP) {
            let col = c.features.column(id);
            assert_eq!(col.len(), c.n_instrs());
            let mut i = 0;
            for b in &t.blocks {
                for ins in &b.instrs {
                    assert_eq!(col[i].to_bits(), ins.features.get(id).to_bits(), "{id:?}");
                    i += 1;
                }
            }
        }
    }

    #[test]
    fn scalar_order_covers_every_non_hit_rate_id() {
        let all = FeatureId::all(MEMORY_LEVEL_CAP);
        for id in all {
            if !id.is_rate() {
                assert!(SCALAR_FEATURES.contains(&id), "{id:?} missing");
            }
        }
        assert_eq!(SCALAR_FEATURES.len(), 12);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = TaskTrace {
            app: String::new(),
            rank: 0,
            nranks: 1,
            machine: String::new(),
            depth: 1,
            blocks: vec![],
        };
        let c = TraceColumns::from_trace(&t);
        assert_eq!(c.instr_start, vec![0]);
        assert_eq!(c.to_trace(), t);
    }
}
