//! The application-signature data model.
//!
//! A [`TaskTrace`] is one MPI task's trace file; an [`AppSignature`] is the
//! collection the prediction framework consumes. The extrapolator treats
//! every element of every instruction's [`FeatureVector`] as an independent
//! scalar time series across core counts, so the vector exposes a uniform
//! [`FeatureId`]-indexed get/set interface alongside its named fields.

use serde::{Deserialize, Serialize};
use xtrace_cache::MEMORY_LEVEL_CAP;
use xtrace_ir::SourceLoc;
use xtrace_spmd::CommProfile;

/// Identifies one scalar element of a feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureId {
    /// Dynamic executions of the instruction.
    ExecCount,
    /// Dynamic memory references (0 for FP instructions).
    MemOps,
    /// Dynamic loads.
    Loads,
    /// Dynamic stores.
    Stores,
    /// Bytes per reference.
    BytesPerRef,
    /// Dynamic FP adds.
    FpAdd,
    /// Dynamic FP multiplies.
    FpMul,
    /// Dynamic FP divides.
    FpDiv,
    /// Dynamic FP square roots.
    FpSqrt,
    /// Dynamic fused multiply-adds.
    FpFma,
    /// Cumulative hit rate at cache level `0..MEMORY_LEVEL_CAP-1`.
    HitRate(u8),
    /// Working-set size in bytes (the referenced region's footprint).
    WorkingSet,
    /// Block instruction-level parallelism.
    Ilp,
}

impl FeatureId {
    /// All extrapolatable elements for a machine with `depth` cache levels.
    pub fn all(depth: usize) -> Vec<FeatureId> {
        let mut v = vec![
            FeatureId::ExecCount,
            FeatureId::MemOps,
            FeatureId::Loads,
            FeatureId::Stores,
            FeatureId::BytesPerRef,
            FeatureId::FpAdd,
            FeatureId::FpMul,
            FeatureId::FpDiv,
            FeatureId::FpSqrt,
            FeatureId::FpFma,
        ];
        for l in 0..depth.min(MEMORY_LEVEL_CAP) {
            v.push(FeatureId::HitRate(l as u8));
        }
        v.push(FeatureId::WorkingSet);
        v.push(FeatureId::Ilp);
        v
    }

    /// Short label for experiment output (`"L2 hit rate"` etc.).
    pub fn label(&self) -> String {
        match self {
            FeatureId::ExecCount => "exec count".into(),
            FeatureId::MemOps => "memory ops".into(),
            FeatureId::Loads => "loads".into(),
            FeatureId::Stores => "stores".into(),
            FeatureId::BytesPerRef => "bytes/ref".into(),
            FeatureId::FpAdd => "fp add".into(),
            FeatureId::FpMul => "fp mul".into(),
            FeatureId::FpDiv => "fp div".into(),
            FeatureId::FpSqrt => "fp sqrt".into(),
            FeatureId::FpFma => "fp fma".into(),
            FeatureId::HitRate(l) => format!("L{} hit rate", l + 1),
            FeatureId::WorkingSet => "working set".into(),
            FeatureId::Ilp => "ilp".into(),
        }
    }

    /// True for elements that are rates/ratios in `[0, 1]` (clamped after
    /// extrapolation).
    pub fn is_rate(&self) -> bool {
        matches!(self, FeatureId::HitRate(_))
    }
}

/// Per-instruction measurements — the unit of extrapolation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    /// Dynamic executions.
    pub exec_count: f64,
    /// Dynamic memory references.
    pub mem_ops: f64,
    /// Dynamic loads.
    pub loads: f64,
    /// Dynamic stores.
    pub stores: f64,
    /// Bytes per reference.
    pub bytes_per_ref: f64,
    /// Dynamic FP adds.
    pub fp_add: f64,
    /// Dynamic FP multiplies.
    pub fp_mul: f64,
    /// Dynamic FP divides.
    pub fp_div: f64,
    /// Dynamic FP square roots.
    pub fp_sqrt: f64,
    /// Dynamic FMAs.
    pub fp_fma: f64,
    /// Cumulative hit rates per cache level (entries past the machine's
    /// depth stay 1.0).
    pub hit_rates: [f64; MEMORY_LEVEL_CAP],
    /// Working-set footprint in bytes.
    pub working_set: f64,
    /// Block ILP.
    pub ilp: f64,
}

impl Default for FeatureVector {
    fn default() -> Self {
        Self {
            exec_count: 0.0,
            mem_ops: 0.0,
            loads: 0.0,
            stores: 0.0,
            bytes_per_ref: 0.0,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            fp_sqrt: 0.0,
            fp_fma: 0.0,
            hit_rates: [1.0; MEMORY_LEVEL_CAP],
            working_set: 0.0,
            ilp: 1.0,
        }
    }
}

impl FeatureVector {
    /// Reads one element.
    pub fn get(&self, id: FeatureId) -> f64 {
        match id {
            FeatureId::ExecCount => self.exec_count,
            FeatureId::MemOps => self.mem_ops,
            FeatureId::Loads => self.loads,
            FeatureId::Stores => self.stores,
            FeatureId::BytesPerRef => self.bytes_per_ref,
            FeatureId::FpAdd => self.fp_add,
            FeatureId::FpMul => self.fp_mul,
            FeatureId::FpDiv => self.fp_div,
            FeatureId::FpSqrt => self.fp_sqrt,
            FeatureId::FpFma => self.fp_fma,
            FeatureId::HitRate(l) => self.hit_rates[usize::from(l)],
            FeatureId::WorkingSet => self.working_set,
            FeatureId::Ilp => self.ilp,
        }
    }

    /// Writes one element.
    pub fn set(&mut self, id: FeatureId, v: f64) {
        match id {
            FeatureId::ExecCount => self.exec_count = v,
            FeatureId::MemOps => self.mem_ops = v,
            FeatureId::Loads => self.loads = v,
            FeatureId::Stores => self.stores = v,
            FeatureId::BytesPerRef => self.bytes_per_ref = v,
            FeatureId::FpAdd => self.fp_add = v,
            FeatureId::FpMul => self.fp_mul = v,
            FeatureId::FpDiv => self.fp_div = v,
            FeatureId::FpSqrt => self.fp_sqrt = v,
            FeatureId::FpFma => self.fp_fma = v,
            FeatureId::HitRate(l) => self.hit_rates[usize::from(l)] = v,
            FeatureId::WorkingSet => self.working_set = v,
            FeatureId::Ilp => self.ilp = v,
        }
    }

    /// Total FP operations (FMA counted once, as an operation).
    pub fn fp_ops(&self) -> f64 {
        self.fp_add + self.fp_mul + self.fp_div + self.fp_sqrt + self.fp_fma
    }
}

/// One instruction's record inside a block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstrRecord {
    /// Instruction index within the block.
    pub instr: u32,
    /// Address-pattern label for memory instructions (`"strided"`,
    /// `"random"`, `"stencil"`), `"fp"` otherwise. Informational.
    pub pattern: String,
    /// Measured/derived features.
    pub features: FeatureVector,
}

/// One basic block's record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockRecord {
    /// Stable block name (extrapolation aligns blocks across core counts by
    /// name).
    pub name: String,
    /// Source provenance.
    pub source: SourceLoc,
    /// Block invocations over the whole run.
    pub invocations: u64,
    /// Loop trips per invocation.
    pub iterations: u64,
    /// Per-instruction records, ordered by instruction index.
    pub instrs: Vec<InstrRecord>,
}

impl BlockRecord {
    /// Total dynamic memory operations of the block.
    pub fn mem_ops(&self) -> f64 {
        self.instrs.iter().map(|i| i.features.mem_ops).sum()
    }

    /// Total dynamic FP operations of the block.
    pub fn fp_ops(&self) -> f64 {
        self.instrs.iter().map(|i| i.features.fp_ops()).sum()
    }
}

/// One MPI task's trace file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskTrace {
    /// Application name.
    pub app: String,
    /// Rank this trace belongs to.
    pub rank: u32,
    /// Core count of the run.
    pub nranks: u32,
    /// Target machine the cache simulation mimicked.
    pub machine: String,
    /// Cache depth of that machine.
    pub depth: usize,
    /// Per-block records.
    pub blocks: Vec<BlockRecord>,
}

impl TaskTrace {
    /// Total dynamic memory operations across all blocks.
    pub fn total_mem_ops(&self) -> f64 {
        self.blocks.iter().map(|b| b.mem_ops()).sum()
    }

    /// Total dynamic FP operations across all blocks.
    pub fn total_fp_ops(&self) -> f64 {
        self.blocks.iter().map(|b| b.fp_ops()).sum()
    }

    /// The influence of an instruction: its share of the task's memory
    /// operations, or of FP operations for instructions without memory
    /// references (Section IV's influence criterion; threshold 0.1%).
    pub fn influence(&self, features: &FeatureVector) -> f64 {
        if features.mem_ops > 0.0 {
            let total = self.total_mem_ops();
            if total > 0.0 {
                features.mem_ops / total
            } else {
                0.0
            }
        } else {
            let total = self.total_fp_ops();
            if total > 0.0 {
                features.fp_ops() / total
            } else {
                0.0
            }
        }
    }

    /// Finds a block by name.
    pub fn block(&self, name: &str) -> Option<&BlockRecord> {
        self.blocks.iter().find(|b| b.name == name)
    }
}

/// The signature of one application run: the traced task(s) plus the
/// communication profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSignature {
    /// Traced tasks (at minimum, the most computationally demanding one).
    pub traces: Vec<TaskTrace>,
    /// Communication profile from the lightweight MPI profiling pass.
    pub comm: CommProfile,
}

impl AppSignature {
    /// The trace of the most computationally demanding task.
    ///
    /// # Panics
    ///
    /// Panics if the signature contains no trace for that task (cannot
    /// happen for signatures built by [`crate::collect_signature`]).
    pub fn longest_task(&self) -> &TaskTrace {
        self.traces
            .iter()
            .find(|t| t.rank == self.comm.longest_rank)
            .expect("signature contains the longest task's trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(mem: f64, fma: f64) -> FeatureVector {
        FeatureVector {
            exec_count: mem.max(fma),
            mem_ops: mem,
            loads: mem,
            bytes_per_ref: 8.0,
            fp_fma: fma,
            ..Default::default()
        }
    }

    #[test]
    fn feature_get_set_roundtrip_all_ids() {
        let mut v = FeatureVector::default();
        for (k, id) in FeatureId::all(3).into_iter().enumerate() {
            v.set(id, k as f64 + 0.5);
            assert_eq!(v.get(id), k as f64 + 0.5, "{id:?}");
        }
    }

    #[test]
    fn all_ids_depth_dependence() {
        assert_eq!(FeatureId::all(2).len(), FeatureId::all(3).len() - 1);
        assert!(FeatureId::all(3).contains(&FeatureId::HitRate(2)));
        assert!(!FeatureId::all(2).contains(&FeatureId::HitRate(2)));
    }

    #[test]
    fn labels_and_rate_flags() {
        assert_eq!(FeatureId::HitRate(1).label(), "L2 hit rate");
        assert!(FeatureId::HitRate(0).is_rate());
        assert!(!FeatureId::MemOps.is_rate());
    }

    #[test]
    fn influence_uses_mem_ops_when_present() {
        let trace = TaskTrace {
            app: "t".into(),
            rank: 0,
            nranks: 4,
            machine: "m".into(),
            depth: 2,
            blocks: vec![BlockRecord {
                name: "b".into(),
                source: SourceLoc::new("f", 1, "g"),
                invocations: 1,
                iterations: 1,
                instrs: vec![
                    InstrRecord {
                        instr: 0,
                        pattern: "strided".into(),
                        features: fv(900.0, 0.0),
                    },
                    InstrRecord {
                        instr: 1,
                        pattern: "random".into(),
                        features: fv(100.0, 0.0),
                    },
                    InstrRecord {
                        instr: 2,
                        pattern: "fp".into(),
                        features: fv(0.0, 50.0),
                    },
                ],
            }],
        };
        let b = &trace.blocks[0];
        assert!((trace.influence(&b.instrs[0].features) - 0.9).abs() < 1e-12);
        assert!((trace.influence(&b.instrs[1].features) - 0.1).abs() < 1e-12);
        // FP instruction: share of FP ops.
        assert!((trace.influence(&b.instrs[2].features) - 1.0).abs() < 1e-12);
        assert!((trace.total_mem_ops() - 1000.0).abs() < 1e-12);
        assert!((trace.total_fp_ops() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn fp_ops_counts_fma_once() {
        let v = FeatureVector {
            fp_add: 3.0,
            fp_fma: 2.0,
            ..Default::default()
        };
        assert_eq!(v.fp_ops(), 5.0);
    }

    #[test]
    fn default_vector_is_neutral() {
        let v = FeatureVector::default();
        assert_eq!(v.mem_ops, 0.0);
        assert_eq!(v.hit_rates, [1.0; MEMORY_LEVEL_CAP]);
        assert_eq!(v.ilp, 1.0);
    }
}
