//! Delta + run-length column codec for the v2 trace envelope.
//!
//! Trace columns are sequences of `u64` (or `f64` reinterpreted as raw
//! bits). The encoder takes consecutive wrapping differences, zig-zag maps
//! them so small negative steps stay small, run-length-groups equal
//! deltas, and writes each run as a pair of LEB128 varints. The three
//! shapes that dominate real signatures all collapse well:
//!
//! * **constant columns** (repeated hit rates, per-block invocation
//!   counts) — one run for the head value plus one zero-delta run;
//! * **arithmetic ramps** (instruction indices, strided address bases) —
//!   a single run of the common stride;
//! * **incompressible columns** (random addresses, distinct floats) —
//!   degrade to one run per value, bounded by [`MAX_BYTES_PER_VALUE`]
//!   bytes each, so the envelope never blows up past a small constant
//!   factor of the raw width.
//!
//! Decoding is strict: every varint read is bounds-checked, the declared
//! element count is validated against a caller-supplied expectation, and
//! runs must cover the count exactly — so *any* truncated or corrupted
//! prefix surfaces as a [`CodecError`], never as a silently wrong column
//! (the envelope's every-prefix-errors property depends on this).

use bytes::{BufMut, BytesMut};

use crate::io::CodecError;

/// Worst-case encoded bytes per element: a maximal run-length varint
/// (1 byte for a singleton run) plus a maximal 10-byte zig-zag delta.
pub const MAX_BYTES_PER_VALUE: usize = 11;

/// Upper bound accepted for a decoded column length; columns beyond this
/// are rejected as corrupt before any allocation happens.
pub const MAX_COLUMN_LEN: usize = 1 << 28;

/// Appends `v` as an LEB128 varint.
#[inline]
pub fn put_varint(b: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            b.put_u8(byte);
            return;
        }
        b.put_u8(byte | 0x80);
    }
}

/// Reads an LEB128 varint, rejecting truncation and non-canonical
/// overlong encodings that would overflow 64 bits.
#[inline]
pub fn get_varint(buf: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let (&byte, rest) = buf.split_first().ok_or(CodecError::Truncated)?;
        *buf = rest;
        let payload = u64::from(byte & 0x7f);
        if shift == 63 && payload > 1 {
            return Err(CodecError::Corrupt("varint overflows u64"));
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(CodecError::Corrupt("varint longer than 10 bytes"))
}

/// Zig-zag maps a signed delta into an unsigned varint-friendly value.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes a `u64` column: varint element count, then `(run_len,
/// zigzag(delta))` varint pairs whose run lengths sum to the count.
pub fn encode_u64_column(vals: &[u64], out: &mut BytesMut) {
    put_varint(out, vals.len() as u64);
    let mut prev: u64 = 0;
    let mut i = 0;
    while i < vals.len() {
        let delta = vals[i].wrapping_sub(prev) as i64;
        let mut run = 1usize;
        while i + run < vals.len() && vals[i + run].wrapping_sub(vals[i + run - 1]) as i64 == delta
        {
            run += 1;
        }
        put_varint(out, run as u64);
        put_varint(out, zigzag(delta));
        prev = vals[i + run - 1];
        i += run;
    }
}

/// Decodes a column written by [`encode_u64_column`]. When `expected` is
/// `Some(n)`, a column of any other length is rejected as corrupt.
pub fn decode_u64_column(buf: &mut &[u8], expected: Option<usize>) -> Result<Vec<u64>, CodecError> {
    let n = get_varint(buf)? as usize;
    if n > MAX_COLUMN_LEN {
        return Err(CodecError::Corrupt("column length exceeds cap"));
    }
    if let Some(want) = expected {
        if n != want {
            return Err(CodecError::Corrupt("column length mismatch"));
        }
    }
    let mut vals = Vec::with_capacity(n);
    let mut prev: u64 = 0;
    while vals.len() < n {
        let run = get_varint(buf)? as usize;
        if run == 0 || run > n - vals.len() {
            return Err(CodecError::Corrupt("run overflows column"));
        }
        let delta = unzigzag(get_varint(buf)?) as u64;
        for _ in 0..run {
            prev = prev.wrapping_add(delta);
            vals.push(prev);
        }
    }
    Ok(vals)
}

/// Encodes an `f64` column via its raw bit patterns (bit-exact, NaN- and
/// signed-zero-preserving).
pub fn encode_f64_column(vals: &[f64], out: &mut BytesMut) {
    let bits: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
    encode_u64_column(&bits, out);
}

/// Decodes a column written by [`encode_f64_column`].
pub fn decode_f64_column(buf: &mut &[u8], expected: Option<usize>) -> Result<Vec<f64>, CodecError> {
    let bits = decode_u64_column(buf, expected)?;
    Ok(bits.into_iter().map(f64::from_bits).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(vals: &[u64]) -> usize {
        let mut b = BytesMut::new();
        encode_u64_column(vals, &mut b);
        let mut buf = &b[..];
        let back = decode_u64_column(&mut buf, Some(vals.len())).unwrap();
        assert_eq!(back, vals);
        assert!(buf.is_empty(), "decoder must consume the whole column");
        b.len()
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut b = BytesMut::new();
            put_varint(&mut b, v);
            let mut buf = &b[..];
            assert_eq!(get_varint(&mut buf).unwrap(), v);
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        assert!(matches!(
            get_varint(&mut &[0x80u8, 0x80][..]),
            Err(CodecError::Truncated)
        ));
        // 10 continuation bytes with a too-large final payload.
        let overlong = [0xffu8; 9]
            .iter()
            .chain(&0x7fu8.to_le_bytes()[..1])
            .copied()
            .collect::<Vec<_>>();
        assert!(get_varint(&mut &overlong[..]).is_err());
    }

    #[test]
    fn constant_column_is_two_runs() {
        let vals = vec![42u64; 10_000];
        let n = roundtrip(&vals);
        assert!(n < 16, "constant column took {n} bytes");
    }

    #[test]
    fn ramp_column_is_one_run_per_stride() {
        let vals: Vec<u64> = (0..10_000u64).map(|i| 1000 + 8 * i).collect();
        let n = roundtrip(&vals);
        assert!(n < 16, "arithmetic ramp took {n} bytes");
    }

    #[test]
    fn distinct_column_is_bounded() {
        // SplitMix-style scramble: no two deltas equal, worst case for RLE.
        let vals: Vec<u64> = (0..4096u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(31))
            .collect();
        let n = roundtrip(&vals);
        assert!(
            n <= MAX_BYTES_PER_VALUE * vals.len() + 10,
            "distinct column took {n} bytes"
        );
    }

    #[test]
    fn empty_column_roundtrips() {
        assert!(roundtrip(&[]) >= 1);
    }

    #[test]
    fn f64_column_is_bit_exact() {
        let vals = [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, -1e300, 3.7e-12];
        let mut b = BytesMut::new();
        encode_f64_column(&vals, &mut b);
        let back = decode_f64_column(&mut &b[..], Some(vals.len())).unwrap();
        for (a, x) in back.iter().zip(&vals) {
            assert_eq!(a.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn decode_rejects_length_mismatch_and_overrun() {
        let mut b = BytesMut::new();
        encode_u64_column(&[1, 2, 3], &mut b);
        assert!(decode_u64_column(&mut &b[..], Some(4)).is_err());

        // A run that claims more elements than the declared count.
        let mut bad = BytesMut::new();
        put_varint(&mut bad, 2); // count
        put_varint(&mut bad, 3); // run of 3 > 2
        put_varint(&mut bad, 0);
        assert!(decode_u64_column(&mut &bad[..], None).is_err());

        // A zero-length run can never make progress.
        let mut zero = BytesMut::new();
        put_varint(&mut zero, 2);
        put_varint(&mut zero, 0);
        put_varint(&mut zero, 0);
        assert!(decode_u64_column(&mut &zero[..], None).is_err());
    }

    #[test]
    fn every_truncated_prefix_errors() {
        let vals: Vec<u64> = (0..257u64).map(|i| i * i).collect();
        let mut b = BytesMut::new();
        encode_u64_column(&vals, &mut b);
        for cut in 0..b.len() {
            assert!(
                decode_u64_column(&mut &b[..cut], Some(vals.len())).is_err(),
                "prefix of {cut} bytes unexpectedly decoded"
            );
        }
    }
}
