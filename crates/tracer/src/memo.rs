//! Content-addressed memoization of per-block cache simulations.
//!
//! Simulating one block's sampled address stream is the expensive part of
//! signature collection, and across an SPMD job the same simulation recurs
//! constantly: every rank of a proxy app runs structurally identical blocks
//! over identically sized regions, and only `Random`-pattern instructions
//! actually consume the per-rank stream seed. [`SigMemo`] exploits that:
//! the sampled per-instruction hit counters for a block are stored under a
//! key that hashes *everything the simulation result depends on* —
//!
//! * the target hierarchy's geometry (per-level size, line, associativity,
//!   replacement policy),
//! * the sampling window (warmup and sampled iteration counts),
//! * every instruction of the block in order (kind, repeat, reference size,
//!   address pattern, and the referenced region's base, size, and element
//!   granularity),
//! * the per-instruction stream seed — but **only** for `Random`-pattern
//!   instructions, since deterministic patterns ignore it. Blocks without
//!   random accesses therefore dedup across ranks and, when the window
//!   matches, across core counts.
//!
//! Keys are content hashes (FNV-1a over the fields above), so two
//! structurally identical blocks from different programs or ranks share one
//! entry. Each key's simulation runs exactly once — concurrent requesters
//! of the same key park on its `OnceLock` cell instead of duplicating the
//! work — and hit/miss counters are exposed for the bench harness.
//! Memoization never changes results: the key covers every simulation
//! input, so a memo answer is bit-identical to recomputing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use xtrace_cache::LevelCounts;
use xtrace_ir::{AddressPattern, BasicBlock, InstrKind, Program};
use xtrace_machine::MachineProfile;

/// 64-bit FNV-1a running hash.
#[derive(Debug, Clone, Copy)]
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xCBF2_9CE4_8422_2325)
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01B3);
        }
    }
}

/// Hashes every determinant of a block's sampled simulation. See the module
/// docs for the field inventory; `seed_for` supplies the per-instruction
/// stream seed (mixed in only for `Random` patterns).
pub(crate) fn block_sim_key(
    program: &Program,
    block: &BasicBlock,
    machine: &MachineProfile,
    warmup_iters: u64,
    sample_iters: u64,
    seed_for: impl Fn(usize) -> u64,
) -> u64 {
    let mut h = Fnv1a::new();
    for l in &machine.hierarchy.levels {
        h.write_u64(l.size_bytes);
        h.write_u64(u64::from(l.line_bytes));
        h.write_u64(u64::from(l.assoc));
        h.write_u64(l.replacement as u64);
    }
    h.write_u64(machine.hierarchy.levels.len() as u64);
    h.write_u64(warmup_iters);
    h.write_u64(sample_iters);
    h.write_u64(block.instrs.len() as u64);
    for (idx, ins) in block.instrs.iter().enumerate() {
        h.write_u64(u64::from(ins.repeat));
        match ins.kind {
            InstrKind::Fp { op } => {
                h.write_u64(0x10 + op as u64);
            }
            InstrKind::Mem {
                op,
                region,
                bytes,
                pattern,
            } => {
                let r = program.region(region);
                h.write_u64(0x20 + op as u64);
                h.write_u64(program.region_base(region));
                h.write_u64(r.bytes);
                h.write_u64(u64::from(r.elem_bytes));
                h.write_u64(u64::from(bytes));
                match pattern {
                    AddressPattern::Strided { stride } => {
                        h.write_u64(0x30);
                        h.write_u64(stride);
                    }
                    AddressPattern::Stencil { points, plane } => {
                        h.write_u64(0x31);
                        h.write_u64(u64::from(points));
                        h.write_u64(plane);
                    }
                    AddressPattern::Random => {
                        h.write_u64(0x32);
                        // The only pattern that reads the stream seed.
                        h.write_u64(seed_for(idx));
                    }
                }
            }
        }
    }
    h.0
}

/// One memo entry: initialized exactly once, shared by reference.
type MemoCell = Arc<OnceLock<Arc<Vec<LevelCounts>>>>;

/// Shared memo of sampled per-block hit counters, safe to use from the
/// rayon fan-outs in [`crate::collect_ranks`].
#[derive(Debug, Default)]
pub struct SigMemo {
    map: Mutex<HashMap<u64, MemoCell>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SigMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulations answered from the memo.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Simulations that had to run (exactly one per distinct key).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups answered from the memo (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Distinct simulations stored.
    pub fn len(&self) -> usize {
        self.map.lock().expect("memo lock").len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the counters stored under `key`, running `compute` on a
    /// miss. The map lock is held only for the cell lookup, so distinct
    /// blocks never serialize on each other; concurrent requests for the
    /// *same* key wait on its cell and share the single computation.
    pub(crate) fn get_or_compute(
        &self,
        key: u64,
        compute: impl FnOnce() -> Vec<LevelCounts>,
    ) -> Arc<Vec<LevelCounts>> {
        let cell = Arc::clone(self.map.lock().expect("memo lock").entry(key).or_default());
        let mut fresh = false;
        let value = cell.get_or_init(|| {
            fresh = true;
            Arc::new(compute())
        });
        if fresh {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(value)
    }
}
