//! The metrics registry: named counters, gauges, and log2-bucketed
//! histograms cheap enough for hot kernels.
//!
//! The cost model has two tiers. **Registration** (`Metrics::counter`,
//! `::gauge`, `::histogram`) does the `String` work — a map lookup under a
//! mutex — and returns a *handle* that shares the underlying atomic cell.
//! **Recording** through a handle is a single relaxed atomic RMW, no
//! locking, no hashing; kernels register their handles once at entry and
//! carry them into their loops. A handle obtained from
//! [`Metrics::disabled`] carries no cell, so every recording call is one
//! branch on a local `Option` — the "no recorder installed" fast path the
//! bench harness bounds at <2% overhead.
//!
//! Counters only ever increase and must be scheduling-invariant: the same
//! run must produce the same totals at any rayon thread count. Metrics
//! that genuinely depend on scheduling (parallel vs serial path taken,
//! chunk fan-out counts) use the reserved **`sched.` name prefix**, which
//! [`crate::Snapshot::masked`] strips so golden and thread-invariance
//! tests compare only the deterministic remainder.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::export::{BucketCount, HistogramSnapshot};

/// Name prefix for scheduling-dependent metrics (parallel path taken,
/// chunk counts). Stripped by [`crate::Snapshot::masked`].
pub const SCHED_PREFIX: &str = "sched.";

/// Number of log2 buckets: bucket `i` counts values whose bit length is
/// `i`, i.e. values in `[2^(i-1), 2^i)`, with bucket 0 counting zeros.
const BUCKETS: usize = 65;

/// Shared histogram cells (one atomic per log2 bucket).
pub(crate) struct HistogramCells {
    buckets: [AtomicU64; BUCKETS],
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    fn record(&self, value: u64) {
        let idx = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut count = 0;
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                count += n;
                let (lo, hi) = if i == 0 {
                    (0, 0)
                } else {
                    (1u64 << (i - 1), (1u64 << (i - 1)) - 1 + (1u64 << (i - 1)))
                };
                buckets.push(BucketCount { lo, hi, count: n });
            }
        }
        HistogramSnapshot { count, buckets }
    }
}

/// A monotonically increasing counter handle. Cloning shares the cell.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that drops every increment (the no-recorder fast path).
    pub const fn disabled() -> Self {
        Counter(None)
    }

    /// Adds `n` to the counter. One relaxed atomic add when live, one
    /// local branch when disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge handle (e.g. "rank classes found").
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A handle that drops every store.
    pub const fn disabled() -> Self {
        Gauge(None)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `value` if it exceeds the current reading — an
    /// atomic maximum, for high-water marks (e.g. peak ring-buffer
    /// occupancy) recorded from concurrently running workers.
    #[inline]
    pub fn set_max(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A log2-bucketed histogram handle (e.g. "sampled references per block").
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCells>>);

impl Histogram {
    /// A handle that drops every observation.
    pub const fn disabled() -> Self {
        Histogram(None)
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(cells) = &self.0 {
            cells.record(value);
        }
    }
}

struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCells>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Metric maps hold plain data; a panic mid-insert cannot leave them
    // logically inconsistent, so poisoning is ignorable.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The registry facade. `Metrics::disabled()` carries no registry, so
/// every handle it vends is a no-op; a live `Metrics` (from
/// [`crate::Recorder::metrics`] or the ambient [`crate::metrics`]) vends
/// handles onto shared atomic cells.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<Registry>>,
}

impl Metrics {
    /// The no-op registry: all handles are disabled.
    pub const fn disabled() -> Self {
        Metrics { inner: None }
    }

    pub(crate) fn live() -> Self {
        Metrics {
            inner: Some(Arc::new(Registry {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Whether handles from this registry record anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or re-opens) the counter `name` and returns its handle.
    /// Call once per kernel entry, not per event.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::disabled(),
            Some(reg) => {
                let mut map = lock(&reg.counters);
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Counter(Some(Arc::clone(cell)))
            }
        }
    }

    /// Registers (or re-opens) the gauge `name` and returns its handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge::disabled(),
            Some(reg) => {
                let mut map = lock(&reg.gauges);
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Gauge(Some(Arc::clone(cell)))
            }
        }
    }

    /// Registers (or re-opens) the histogram `name` and returns its handle.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            None => Histogram::disabled(),
            Some(reg) => {
                let mut map = lock(&reg.histograms);
                let cells = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCells::new()));
                Histogram(Some(Arc::clone(cells)))
            }
        }
    }

    pub(crate) fn counter_values(&self) -> BTreeMap<String, u64> {
        match &self.inner {
            None => BTreeMap::new(),
            Some(reg) => lock(&reg.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
        }
    }

    pub(crate) fn gauge_values(&self) -> BTreeMap<String, u64> {
        match &self.inner {
            None => BTreeMap::new(),
            Some(reg) => lock(&reg.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
        }
    }

    pub(crate) fn histogram_values(&self) -> BTreeMap<String, HistogramSnapshot> {
        match &self.inner {
            None => BTreeMap::new(),
            Some(reg) => lock(&reg.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_record_nothing() {
        let m = Metrics::disabled();
        let c = m.counter("x");
        c.add(7);
        assert_eq!(c.get(), 0);
        assert!(!m.enabled());
        assert!(m.counter_values().is_empty());
        let g = m.gauge("y");
        g.set_max(9);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn gauge_set_max_is_a_running_maximum() {
        let m = Metrics::live();
        let g = m.gauge("peak");
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.get(), 5, "lower value must not regress the high-water");
        g.set_max(11);
        assert_eq!(g.get(), 11);
        // `set` still overwrites unconditionally.
        g.set(2);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn counter_handles_share_the_cell() {
        let m = Metrics::live();
        let a = m.counter("hits");
        let b = m.counter("hits");
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        assert_eq!(m.counter_values()["hits"], 3);
    }

    #[test]
    fn gauge_is_last_value_wins() {
        let m = Metrics::live();
        let g = m.gauge("classes");
        g.set(5);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(m.gauge_values()["classes"], 2);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let m = Metrics::live();
        let h = m.histogram("refs");
        h.record(0); // bucket [0,0]
        h.record(1); // [1,1]
        h.record(5); // [4,7]
        h.record(7); // [4,7]
        let snap = &m.histogram_values()["refs"];
        assert_eq!(snap.count, 4);
        let lohi: Vec<(u64, u64, u64)> =
            snap.buckets.iter().map(|b| (b.lo, b.hi, b.count)).collect();
        assert_eq!(lohi, vec![(0, 0, 1), (1, 1, 1), (4, 7, 2)]);
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let m = Metrics::live();
        let c = m.counter("n");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
