//! Scoped observability contexts.
//!
//! [`ObsContext`] bundles a recorder (spans + metrics + journal) into one
//! cheap-clone handle that callers thread *explicitly* through the
//! pipeline and into every emission site. Unlike the deprecated ambient
//! installation, a context is plain data: two pipelines in one process
//! each carry their own context and never observe each other's counters,
//! which is what makes the engine multi-client.
//!
//! The disabled context costs nothing: [`ObsContext::metrics`] on a
//! disabled context returns [`Metrics::disabled`] (every handle a no-op)
//! and [`ObsContext::journal`] returns [`JournalHandle::disabled`], so
//! kernels keep the same "fetch handles once at entry" discipline they
//! used with the ambient API.

use std::sync::Arc;

use crate::journal::{JournalHandle, JournalSnapshot};
use crate::metrics::Metrics;
use crate::span::Recorder;
use crate::Snapshot;

/// A scoped observability handle: recorder + metrics + journal as one
/// cheap-clone value.
///
/// Thread it explicitly (function parameter, struct field) instead of
/// installing a process-global recorder. Cloning is one `Arc` bump; the
/// default context is disabled and every emission through it is a no-op.
///
/// ```
/// use xtrace_obs::{ObsContext, Recorder};
///
/// let obs = ObsContext::with_recorder(Recorder::new());
/// obs.metrics().counter("demo.events").add(2);
/// assert_eq!(obs.snapshot().unwrap().counters["demo.events"], 2);
///
/// let off = ObsContext::disabled();
/// off.metrics().counter("demo.events").add(2); // dropped
/// assert!(off.snapshot().is_none());
/// ```
#[derive(Clone, Default)]
pub struct ObsContext {
    recorder: Option<Arc<Recorder>>,
}

impl ObsContext {
    /// The no-op context: every metric, span, and journal emission through
    /// it is dropped. Equivalent to `ObsContext::default()`.
    #[must_use]
    pub fn disabled() -> Self {
        Self { recorder: None }
    }

    /// A context that records into `recorder`.
    #[must_use]
    pub fn with_recorder(recorder: Arc<Recorder>) -> Self {
        Self {
            recorder: Some(recorder),
        }
    }

    /// A snapshot of the process-global ambient slot maintained by the
    /// deprecated [`install`](crate::install) API.
    ///
    /// This is the bridge that lets un-migrated callers (the convenience
    /// wrappers that don't take a context yet) keep their old behavior:
    /// they pass `&ObsContext::ambient()` where migrated code passes an
    /// explicit context. New code should construct contexts with
    /// [`ObsContext::with_recorder`] instead.
    #[must_use]
    pub fn ambient() -> Self {
        Self {
            recorder: crate::ambient_recorder(),
        }
    }

    /// Whether this context records anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// The context's metrics registry, or the disabled registry. Fetch
    /// once at kernel entry and carry the handles into loops.
    #[inline]
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        match &self.recorder {
            Some(rec) => rec.metrics(),
            None => Metrics::disabled(),
        }
    }

    /// The context's journal handle, or the disabled no-op handle (also
    /// returned when the recorder was built without a journal). Check
    /// [`JournalHandle::enabled`] before formatting event names.
    #[inline]
    #[must_use]
    pub fn journal(&self) -> JournalHandle {
        match &self.recorder {
            Some(rec) => rec.journal(),
            None => JournalHandle::disabled(),
        }
    }

    /// The underlying recorder, for span emission.
    #[must_use]
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// Snapshot of everything recorded so far, if enabled.
    #[must_use]
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.recorder.as_ref().map(|rec| rec.snapshot())
    }

    /// Snapshot of the journal, if the recorder has one.
    #[must_use]
    pub fn journal_snapshot(&self) -> Option<JournalSnapshot> {
        self.recorder
            .as_ref()
            .and_then(|rec| rec.journal_snapshot())
    }
}

impl std::fmt::Debug for ObsContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsContext")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_context_drops_everything() {
        let obs = ObsContext::disabled();
        assert!(!obs.enabled());
        obs.metrics().counter("c").add(7);
        assert_eq!(obs.metrics().counter("c").get(), 0);
        assert!(!obs.journal().enabled());
        assert!(obs.snapshot().is_none());
        assert!(obs.journal_snapshot().is_none());
        assert!(!ObsContext::default().enabled());
    }

    #[test]
    fn contexts_are_isolated() {
        let a = ObsContext::with_recorder(Recorder::new());
        let b = ObsContext::with_recorder(Recorder::new());
        a.metrics().counter("c").add(1);
        b.metrics().counter("c").add(10);
        assert_eq!(a.snapshot().expect("enabled").counters["c"], 1);
        assert_eq!(b.snapshot().expect("enabled").counters["c"], 10);
    }

    #[test]
    fn clones_share_the_recorder() {
        let obs = ObsContext::with_recorder(Recorder::new());
        let other = obs.clone();
        obs.metrics().counter("c").incr();
        other.metrics().counter("c").incr();
        assert_eq!(obs.snapshot().expect("enabled").counters["c"], 2);
    }

    #[test]
    fn journal_flows_through_the_context() {
        let obs = ObsContext::with_recorder(Recorder::with_journal());
        let j = obs.journal();
        assert!(j.enabled());
        j.instant("ev", "lane", &[]);
        let snap = obs.journal_snapshot().expect("journal present");
        assert_eq!(snap.events.len(), 1);
    }
}
