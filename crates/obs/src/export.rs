//! Exporters: the in-memory [`Snapshot`] (what tests and benches consume),
//! its JSON form (what `--metrics-out` writes), and a human-readable
//! table.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::metrics::SCHED_PREFIX;
use crate::span::SpanRecord;

/// One non-empty log2 bucket of a histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Smallest value the bucket holds.
    pub lo: u64,
    /// Largest value the bucket holds.
    pub hi: u64,
    /// Observations in `[lo, hi]`.
    pub count: u64,
}

/// A histogram's exported state: total observations plus its non-empty
/// log2 buckets in ascending order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Non-empty buckets, ascending.
    pub buckets: Vec<BucketCount>,
}

/// Everything a [`crate::Recorder`] saw: spans in completion order and the
/// full metrics registry. Serializes to the `--metrics-out` JSON document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Finished spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The JSON document `--metrics-out` writes.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot is a plain serializable tree")
    }

    /// Parses a snapshot back from [`Snapshot::to_json`] output.
    pub fn from_json(s: &str) -> Result<Snapshot, String> {
        serde_json::from_str(s).map_err(|e| format!("invalid metrics snapshot: {e}"))
    }

    /// The deterministic core of the snapshot: span durations zeroed and
    /// scheduling-dependent (`sched.`-prefixed) metrics dropped. Two runs
    /// of the same pipeline — at any rayon thread count — must produce
    /// equal masked snapshots; the golden and thread-invariance tests
    /// assert exactly that.
    pub fn masked(&self) -> Snapshot {
        let drop_sched = |m: &BTreeMap<String, u64>| -> BTreeMap<String, u64> {
            m.iter()
                .filter(|(k, _)| !k.starts_with(SCHED_PREFIX))
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        };
        Snapshot {
            spans: self
                .spans
                .iter()
                .map(|s| SpanRecord {
                    name: s.name.clone(),
                    parent: s.parent.clone(),
                    seconds: 0.0,
                })
                .collect(),
            counters: drop_sched(&self.counters),
            gauges: drop_sched(&self.gauges),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| !k.starts_with(SCHED_PREFIX))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// A fixed-width human-readable rendering: the span tree (indented by
    /// parent chains, completion order otherwise preserved), then
    /// counters, gauges, and histograms.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("spans:\n");
        // Roots first, then children under them, preserving completion
        // order within each level. Orphan parents render as roots.
        let mut children: BTreeMap<&str, Vec<&SpanRecord>> = BTreeMap::new();
        let mut roots: Vec<&SpanRecord> = Vec::new();
        let known: std::collections::BTreeSet<&str> =
            self.spans.iter().map(|s| s.name.as_str()).collect();
        for s in &self.spans {
            match s.parent.as_deref().filter(|p| known.contains(p)) {
                Some(p) => children.entry(p).or_default().push(s),
                None => roots.push(s),
            }
        }
        fn emit(
            out: &mut String,
            span: &SpanRecord,
            depth: usize,
            children: &BTreeMap<&str, Vec<&SpanRecord>>,
        ) {
            out.push_str(&format!(
                "  {:indent$}{:<24} {:>12.6}s\n",
                "",
                span.name,
                span.seconds,
                indent = 2 * depth
            ));
            if depth < 16 {
                for c in children.get(span.name.as_str()).into_iter().flatten() {
                    emit(out, c, depth + 1, children);
                }
            }
        }
        for r in &roots {
            emit(&mut out, r, 0, &children);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<40} {v:>16}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<40} {v:>16}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!("  {k:<40} {:>16} obs\n", h.count));
                for b in &h.buckets {
                    out.push_str(&format!(
                        "    [{:>12}, {:>12}] {:>16}\n",
                        b.lo, b.hi, b.count
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            spans: vec![
                SpanRecord {
                    name: "collect".into(),
                    parent: Some("pipeline".into()),
                    seconds: 1.5,
                },
                SpanRecord {
                    name: "pipeline".into(),
                    parent: None,
                    seconds: 2.0,
                },
            ],
            counters: [
                ("tracer.blocks_simulated".to_string(), 42u64),
                ("sched.extrap.parallel_fit".to_string(), 1u64),
            ]
            .into_iter()
            .collect(),
            gauges: [("spmd.rank_classes".to_string(), 2u64)]
                .into_iter()
                .collect(),
            histograms: [(
                "tracer.block_refs".to_string(),
                HistogramSnapshot {
                    count: 3,
                    buckets: vec![BucketCount {
                        lo: 4,
                        hi: 7,
                        count: 3,
                    }],
                },
            )]
            .into_iter()
            .collect(),
        }
    }

    #[test]
    fn json_round_trips() {
        let snap = sample();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn masked_zeroes_timing_and_drops_sched_metrics() {
        let m = sample().masked();
        assert!(m.spans.iter().all(|s| s.seconds == 0.0));
        assert_eq!(m.spans.len(), 2, "span tree shape is preserved");
        assert!(m.counters.contains_key("tracer.blocks_simulated"));
        assert!(!m.counters.keys().any(|k| k.starts_with("sched.")));
        assert_eq!(m.gauges["spmd.rank_classes"], 2);
    }

    #[test]
    fn table_renders_tree_and_sections() {
        let t = sample().render_table();
        assert!(t.contains("pipeline"));
        assert!(t.contains("    collect"), "child is indented:\n{t}");
        assert!(t.contains("tracer.blocks_simulated"));
        assert!(t.contains("spmd.rank_classes"));
        assert!(t.contains("[           4,            7]"));
    }
}
