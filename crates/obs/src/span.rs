//! The span model and the [`Recorder`] that collects spans and metrics.
//!
//! A span is a named, monotonic-clock-timed scope with an optional parent
//! name, so stage → phase → kernel nesting renders as a tree without any
//! thread-local ambient state (the hot kernels run inside rayon pools,
//! where a thread-local "current span" would silently detach). Parents are
//! identified by name: the pipeline engine names its stage spans after
//! [`STAGE_PARENT`]-rooted labels, and kernels attach to the stage that
//! invokes them.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::export::Snapshot;
use crate::journal::{Journal, JournalHandle, JournalSnapshot};
use crate::metrics::Metrics;

/// The conventional root span name the pipeline engine records under.
pub const STAGE_PARENT: &str = "pipeline";

/// One finished span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name (e.g. `"collect"`, `"p96"`).
    pub name: String,
    /// Name of the enclosing span, if any.
    pub parent: Option<String>,
    /// Wall-clock duration, monotonic clock.
    pub seconds: f64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Collects spans and owns a live metrics registry. Install one ambiently
/// with [`crate::install`] (the CLI does this for `--metrics-out`) or
/// carry it explicitly; either way [`Recorder::snapshot`] returns
/// everything recorded so far.
#[derive(Default)]
pub struct Recorder {
    metrics: Metrics,
    spans: Mutex<Vec<SpanRecord>>,
    journal: Option<Arc<Journal>>,
}

impl Recorder {
    /// A fresh recorder with an empty span list and metrics registry.
    /// The event journal is off; use [`Recorder::with_journal`] to turn
    /// it on.
    pub fn new() -> Arc<Recorder> {
        Arc::new(Recorder {
            metrics: Metrics::live(),
            spans: Mutex::new(Vec::new()),
            journal: None,
        })
    }

    /// A fresh recorder that additionally buffers the structured event
    /// journal (default capacity).
    pub fn with_journal() -> Arc<Recorder> {
        Recorder::with_journal_capacity(crate::journal::DEFAULT_JOURNAL_CAPACITY)
    }

    /// A fresh recorder whose journal buffers at most `capacity` events.
    pub fn with_journal_capacity(capacity: usize) -> Arc<Recorder> {
        Arc::new(Recorder {
            metrics: Metrics::live(),
            spans: Mutex::new(Vec::new()),
            journal: Some(Journal::with_capacity(capacity)),
        })
    }

    /// The recorder's metrics registry (live handles).
    pub fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }

    /// An emitting handle onto the recorder's journal, or the disabled
    /// no-op handle when the recorder was built without one.
    pub fn journal(&self) -> JournalHandle {
        match &self.journal {
            Some(journal) => journal.handle(),
            None => JournalHandle::disabled(),
        }
    }

    /// A copy of the journaled events, if the journal is enabled.
    pub fn journal_snapshot(&self) -> Option<JournalSnapshot> {
        self.journal.as_ref().map(|j| j.snapshot())
    }

    /// Starts a root span; the returned guard records it when dropped or
    /// [`SpanGuard::finish`]ed.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.span_inner(None, name)
    }

    /// Starts a span nested (by name) under `parent`.
    pub fn child_span(&self, parent: &str, name: &str) -> SpanGuard<'_> {
        self.span_inner(Some(parent.to_string()), name)
    }

    fn span_inner(&self, parent: Option<String>, name: &str) -> SpanGuard<'_> {
        SpanGuard {
            recorder: self,
            name: name.to_string(),
            parent,
            start: Instant::now(),
            finished: false,
        }
    }

    /// Records an already-measured span (for callers that time stages
    /// themselves, like the pipeline engine).
    pub fn record_span(&self, parent: Option<&str>, name: &str, seconds: f64) {
        lock(&self.spans).push(SpanRecord {
            name: name.to_string(),
            parent: parent.map(str::to_string),
            seconds,
        });
    }

    /// Everything recorded so far: spans in completion order, plus all
    /// counter/gauge/histogram values.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            spans: lock(&self.spans).clone(),
            counters: self.metrics.counter_values(),
            gauges: self.metrics.gauge_values(),
            histograms: self.metrics.histogram_values(),
        }
    }
}

/// An in-flight span; records itself into the recorder on drop.
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    name: String,
    parent: Option<String>,
    start: Instant,
    finished: bool,
}

impl SpanGuard<'_> {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.recorder.record_span(
            self.parent.as_deref(),
            &self.name,
            self.start.elapsed().as_secs_f64(),
        );
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_in_completion_order_with_parents() {
        let rec = Recorder::new();
        {
            let _outer = rec.span("pipeline");
            rec.child_span("pipeline", "collect").finish();
            rec.record_span(Some("collect"), "p96", 0.25);
        }
        let snap = rec.snapshot();
        let names: Vec<(&str, Option<&str>)> = snap
            .spans
            .iter()
            .map(|s| (s.name.as_str(), s.parent.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("collect", Some("pipeline")),
                ("p96", Some("collect")),
                ("pipeline", None),
            ]
        );
        assert_eq!(snap.spans[1].seconds, 0.25);
        assert!(snap.spans[0].seconds >= 0.0);
    }

    #[test]
    fn recorder_metrics_feed_the_snapshot() {
        let rec = Recorder::new();
        rec.metrics().counter("k.hits").add(3);
        rec.metrics().gauge("k.classes").set(2);
        rec.metrics().histogram("k.sizes").record(9);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["k.hits"], 3);
        assert_eq!(snap.gauges["k.classes"], 2);
        assert_eq!(snap.histograms["k.sizes"].count, 1);
    }
}
