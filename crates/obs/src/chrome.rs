//! Chrome Trace Event Format export for [`JournalSnapshot`]s.
//!
//! [`chrome_trace`] renders a journal as a `trace.json` document loadable
//! in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`. Two
//! process groups are emitted:
//!
//! * **pid 1 — wall clock**: every journal lane becomes a thread row;
//!   matched begin/end pairs become `"X"` (complete) duration events and
//!   plain instants become `"i"` events, all on the journal's
//!   run-relative microsecond clock.
//! * **pid 2 — simulated time**: instant events that carry both a
//!   `start_s` and an `end_s` argument (the per-rank-class
//!   compute/exchange attribution emitted by the replay engine) are
//!   re-based onto the *simulated* clock, one thread row per rank-class
//!   lane per simulation, so the message-passing timeline of each
//!   training count is visible even though it never consumed wall time.
//!
//! The export is a pure function of the journal, so the Chrome trace of a
//! [`JournalSnapshot::masked`] journal is bit-stable across thread counts
//! (wall timestamps are all zero there; the simulated lanes keep their
//! real, deterministic durations).

use std::collections::BTreeMap;

use crate::journal::{EventPhase, JournalEvent, JournalSnapshot};

/// Wall-clock process id in the exported trace.
const PID_WALL: u32 = 1;
/// Simulated-time process id in the exported trace.
const PID_SIM: u32 = 2;

/// JSON-escapes a string via the serde_json serializer.
fn json_str(s: &str) -> String {
    serde_json::to_string(&s.to_string()).unwrap_or_else(|_| "\"\"".to_string())
}

/// Formats an f64 as a JSON number (non-finite values become 0).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn json_args(args: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_str(k));
        out.push(':');
        out.push_str(&json_num(*v));
    }
    out.push('}');
    out
}

fn event_line(name: &str, ph: &str, ts: f64, dur: f64, pid: u32, tid: u32, args: &str) -> String {
    format!(
        "{{\"name\":{},\"ph\":{},\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{args}}}",
        json_str(name),
        json_str(ph),
        json_num(ts),
        json_num(dur),
    )
}

fn meta_line(meta: &str, pid: u32, tid: u32, label: &str) -> String {
    format!(
        "{{\"name\":{},\"ph\":\"M\",\"ts\":0,\"dur\":0,\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":{}}}}}",
        json_str(meta),
        json_str(label),
    )
}

/// Lazily assigns consecutive thread ids to lane labels in first-seen
/// order, remembering the order for the thread_name metadata.
struct TidTable {
    ids: BTreeMap<String, u32>,
    order: Vec<String>,
}

impl TidTable {
    fn new() -> TidTable {
        TidTable {
            ids: BTreeMap::new(),
            order: Vec::new(),
        }
    }

    fn tid(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.ids.get(label) {
            return id;
        }
        let id = self.order.len() as u32 + 1;
        self.ids.insert(label.to_string(), id);
        self.order.push(label.to_string());
        id
    }
}

/// True for instants that represent a span of *simulated* time.
fn is_sim_duration(e: &JournalEvent) -> bool {
    e.phase == EventPhase::Instant && e.args.contains_key("start_s") && e.args.contains_key("end_s")
}

/// Renders `journal` as a Chrome Trace Event Format JSON document.
///
/// Every emitted event carries the `name`, `ph`, `ts`, `dur`, `pid`,
/// `tid`, and `args` keys (`ts`/`dur` in microseconds; `dur` is 0 for
/// instants and metadata). Unmatched `Begin` events are closed with zero
/// duration rather than discarded.
pub fn chrome_trace(journal: &JournalSnapshot) -> String {
    let mut wall = TidTable::new();
    let mut sim = TidTable::new();
    // Per-lane stacks of open Begin events: (name, ts_us, args).
    type OpenBegin = (String, u64, BTreeMap<String, f64>);
    let mut open: BTreeMap<String, Vec<OpenBegin>> = BTreeMap::new();
    // Most recent spmd.sim context: (ordinal, nranks) — labels sim lanes.
    let mut sim_ordinal = 0u32;
    let mut sim_nranks = 0u32;
    let mut lines: Vec<String> = Vec::new();

    for e in &journal.events {
        if e.phase == EventPhase::Begin && e.name == "spmd.sim" {
            sim_ordinal += 1;
            sim_nranks = e.args.get("nranks").copied().unwrap_or(0.0) as u32;
        }
        match e.phase {
            EventPhase::Begin => {
                open.entry(e.lane.clone()).or_default().push((
                    e.name.clone(),
                    e.ts_us,
                    e.args.clone(),
                ));
            }
            EventPhase::End => {
                let tid = wall.tid(&e.lane);
                let (name, start, mut args) = match open.get_mut(&e.lane).and_then(Vec::pop) {
                    Some(opened) => opened,
                    // Unmatched End: render as a zero-duration complete
                    // event at its own timestamp.
                    None => (e.name.clone(), e.ts_us, BTreeMap::new()),
                };
                for (k, v) in &e.args {
                    args.insert(k.clone(), *v);
                }
                let dur = e.ts_us.saturating_sub(start) as f64;
                lines.push(event_line(
                    &name,
                    "X",
                    start as f64,
                    dur,
                    PID_WALL,
                    tid,
                    &json_args(&args),
                ));
            }
            EventPhase::Instant if is_sim_duration(e) => {
                let label = format!("sim{sim_ordinal}.p{sim_nranks}.{}", e.lane);
                let tid = sim.tid(&label);
                let start_s = e.args.get("start_s").copied().unwrap_or(0.0);
                let end_s = e.args.get("end_s").copied().unwrap_or(start_s);
                lines.push(event_line(
                    &e.name,
                    "X",
                    start_s * 1e6,
                    (end_s - start_s).max(0.0) * 1e6,
                    PID_SIM,
                    tid,
                    &json_args(&e.args),
                ));
            }
            EventPhase::Instant => {
                let tid = wall.tid(&e.lane);
                lines.push(event_line(
                    &e.name,
                    "i",
                    e.ts_us as f64,
                    0.0,
                    PID_WALL,
                    tid,
                    &json_args(&e.args),
                ));
            }
        }
    }
    // Close any still-open durations with zero length.
    for (lane, stack) in &open {
        for (name, start, args) in stack.iter().rev() {
            let tid = wall.tid(lane);
            lines.push(event_line(
                name,
                "X",
                *start as f64,
                0.0,
                PID_WALL,
                tid,
                &json_args(args),
            ));
        }
    }

    let mut meta: Vec<String> = Vec::new();
    meta.push(meta_line(
        "process_name",
        PID_WALL,
        0,
        "xtrace (wall clock)",
    ));
    for (i, label) in wall.order.iter().enumerate() {
        meta.push(meta_line("thread_name", PID_WALL, i as u32 + 1, label));
    }
    if !sim.order.is_empty() {
        meta.push(meta_line(
            "process_name",
            PID_SIM,
            0,
            "spmd (simulated time)",
        ));
        for (i, label) in sim.order.iter().enumerate() {
            meta.push(meta_line("thread_name", PID_SIM, i as u32 + 1, label));
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    let total = meta.len() + lines.len();
    for (i, line) in meta.into_iter().chain(lines).enumerate() {
        out.push_str(&line);
        if i + 1 < total {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "],\"displayTimeUnit\":\"ms\",\"journalDropped\":{}}}",
        journal.dropped
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;

    #[test]
    fn begin_end_pairs_become_complete_events() {
        let journal = Journal::new();
        let h = journal.handle();
        h.begin("pipeline", "pipeline", &[]);
        h.begin("collect", "pipeline", &[]);
        h.end("collect", "pipeline", &[("traces", 3.0)]);
        h.end("pipeline", "pipeline", &[]);
        let trace = chrome_trace(&journal.snapshot());
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"name\":\"collect\",\"ph\":\"X\""));
        assert!(trace.contains("\"traces\":3"));
        // The outer span closes after the inner one (stack order).
        let collect_at = trace.find("\"name\":\"collect\",\"ph\":\"X\"").unwrap();
        let pipeline_at = trace.find("\"name\":\"pipeline\",\"ph\":\"X\"").unwrap();
        assert!(collect_at < pipeline_at);
    }

    #[test]
    fn sim_duration_instants_land_on_the_simulated_pid() {
        let journal = Journal::new();
        let h = journal.handle();
        h.begin("spmd.sim", "spmd", &[("nranks", 24.0)]);
        h.instant("compute", "class0", &[("start_s", 0.5), ("end_s", 1.5)]);
        h.end("spmd.sim", "spmd", &[]);
        let trace = chrome_trace(&journal.snapshot());
        assert!(trace
            .contains("\"name\":\"compute\",\"ph\":\"X\",\"ts\":500000,\"dur\":1000000,\"pid\":2"));
        assert!(trace.contains("sim1.p24.class0"));
    }

    #[test]
    fn unmatched_begins_close_with_zero_duration() {
        let journal = Journal::new();
        let h = journal.handle();
        h.begin("collect", "pipeline", &[]);
        let trace = chrome_trace(&journal.snapshot());
        assert!(trace.contains("\"name\":\"collect\",\"ph\":\"X\""));
        assert!(trace.contains("\"dur\":0"));
    }

    #[test]
    fn every_event_carries_the_required_keys() {
        let journal = Journal::new();
        let h = journal.handle();
        h.begin("fit", "pipeline", &[]);
        h.instant("extrap.fit.Linear", "fit", &[("index", 0.0)]);
        h.end("fit", "pipeline", &[]);
        let trace = chrome_trace(&journal.snapshot());
        for line in trace.lines() {
            if !line.starts_with('{') || !line.contains("\"ph\"") {
                continue;
            }
            for key in [
                "\"name\":",
                "\"ph\":",
                "\"ts\":",
                "\"dur\":",
                "\"pid\":",
                "\"tid\":",
            ] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
        }
    }
}
