//! Fit-quality diagnostics: the data model behind the `fit-diagnostics`
//! artifact and the `xtrace report` fit tables.
//!
//! The paper's extrapolation quality rests on per-element canonical-form
//! selection; these types record, for every fitted feature element, *why*
//! the winning form won — the SSE/R² of every candidate form, the
//! training-point residuals of the winner, and how far past the training
//! range the prediction reaches ([`FitDiagnostics::extrapolation_distance`]).
//! The structs live here (rather than in `xtrace-extrap`) so the CLI and
//! the artifact store can consume them without a dependency on the
//! fitting machinery; `xtrace-extrap` provides the builder
//! (`diagnose_fit`) that fills them in.
//!
//! Everything is plain serde data, deterministic for a given pipeline
//! configuration: the artifact must be bit-identical across thread
//! counts.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One candidate canonical form's goodness of fit on a feature element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateFit {
    /// Canonical-form label (e.g. `"Constant"`, `"Log"`).
    pub form: String,
    /// Sum of squared residuals over the training points.
    pub sse: f64,
    /// Coefficient of determination over the training points.
    pub r2: f64,
}

/// Fit diagnostics for one feature element (one instruction × feature
/// pair of one basic block).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElementDiagnostics {
    /// Basic-block name the element belongs to.
    pub block: String,
    /// Instruction index within the block.
    pub instr: u32,
    /// Human-readable feature label (e.g. `"L1 hit rate"`).
    pub feature: String,
    /// Label of the form that won model selection.
    pub winner: String,
    /// The winner's sum of squared residuals.
    pub winner_sse: f64,
    /// The winner's R² over the training points.
    pub winner_r2: f64,
    /// Goodness of fit for every applicable candidate form.
    pub candidates: Vec<CandidateFit>,
    /// Winner residuals (`observed − predicted`) per training point, in
    /// ascending-core-count order.
    pub residuals: Vec<f64>,
    /// The element's influence weight from the fit (execution share).
    pub influence: f64,
}

/// The fit-diagnostics artifact: per-element canonical-form selection
/// detail for one pipeline run, persisted through the artifact store
/// under the `fit-diagnostics` name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitDiagnostics {
    /// The extrapolation target core count.
    pub target_x: f64,
    /// Training core counts, ascending.
    pub training_xs: Vec<f64>,
    /// Wins per canonical-form label across all elements.
    pub form_wins: BTreeMap<String, u64>,
    /// Per-element diagnostics, in fit order (block-major).
    pub elements: Vec<ElementDiagnostics>,
}

impl FitDiagnostics {
    /// Target count ÷ largest training count: how far past the training
    /// range the run extrapolates (the paper's runs use up to ~4×).
    pub fn extrapolation_distance(&self) -> f64 {
        match self.training_xs.last() {
            Some(&max) if max > 0.0 => self.target_x / max,
            _ => 0.0,
        }
    }

    /// Indices of the `k` worst-fitting elements, ordered by ascending
    /// winner R² (ties broken by fit order, so the ranking is
    /// deterministic).
    pub fn worst_fit(&self, k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.elements.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = self.elements[a].winner_r2;
            let rb = self.elements[b].winner_r2;
            ra.total_cmp(&rb).then(a.cmp(&b))
        });
        order.truncate(k);
        order
    }

    /// Pretty-printed JSON for `--diagnostics-out`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Parses a document produced by [`FitDiagnostics::to_json`].
    pub fn from_json(text: &str) -> std::result::Result<FitDiagnostics, String> {
        serde_json::from_str(text).map_err(|e| format!("fit diagnostics: {e:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FitDiagnostics {
        let element = |r2: f64| ElementDiagnostics {
            block: "b".to_string(),
            instr: 0,
            feature: "exec count".to_string(),
            winner: "Linear".to_string(),
            winner_sse: 0.5,
            winner_r2: r2,
            candidates: vec![CandidateFit {
                form: "Linear".to_string(),
                sse: 0.5,
                r2,
            }],
            residuals: vec![0.1, -0.1, 0.0],
            influence: 0.25,
        };
        FitDiagnostics {
            target_x: 384.0,
            training_xs: vec![6.0, 24.0, 96.0],
            form_wins: BTreeMap::from([("Linear".to_string(), 3)]),
            elements: vec![element(0.9), element(0.2), element(0.5)],
        }
    }

    #[test]
    fn extrapolation_distance_is_target_over_max_training() {
        assert_eq!(sample().extrapolation_distance(), 4.0);
        let empty = FitDiagnostics {
            target_x: 10.0,
            training_xs: Vec::new(),
            form_wins: BTreeMap::new(),
            elements: Vec::new(),
        };
        assert_eq!(empty.extrapolation_distance(), 0.0);
    }

    #[test]
    fn worst_fit_orders_by_ascending_r2() {
        assert_eq!(sample().worst_fit(2), vec![1, 2]);
        assert_eq!(sample().worst_fit(10), vec![1, 2, 0]);
    }

    #[test]
    fn json_roundtrips() {
        let diag = sample();
        let back = FitDiagnostics::from_json(&diag.to_json()).expect("roundtrip");
        assert_eq!(back, diag);
    }
}
