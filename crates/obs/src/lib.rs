//! # xtrace-obs — structured observability for the xtrace pipeline
//!
//! The pipeline's scaling PRs (parallel collection, rank-class dedup,
//! memoized convolution) each earn their keep through counters — memo hit
//! rates, classes found, cache hits — that until now were only visible by
//! rerunning a bench binary. This crate makes that telemetry first-class:
//!
//! * **Spans** ([`Recorder`], [`SpanRecord`]): named, monotonic-timed
//!   scopes with by-name nesting (stage → phase → kernel), recorded in
//!   completion order.
//! * **Metrics** ([`Metrics`], [`Counter`], [`Gauge`], [`Histogram`]):
//!   a registry of named counters, gauges, and log2-bucketed histograms.
//!   Registration does the `String` work once; recording through a handle
//!   is a single relaxed atomic operation, cheap enough for hot kernels.
//! * **Exporters** ([`Snapshot`]): an in-memory snapshot for tests and
//!   benches, JSON for the CLI's `--metrics-out`, and a human-readable
//!   table.
//! * **Event journal** ([`Journal`], [`JournalEvent`]): an append-only,
//!   bounded, seq-numbered stream of fine-grained begin/end/instant
//!   events (per-count collects, per-element fit decisions, rank-class
//!   compute/exchange attribution), exportable as JSONL or — via
//!   [`chrome_trace`] — as a Chrome Trace Event Format `trace.json` for
//!   Perfetto. Off by default: only a [`Recorder::with_journal`]
//!   recorder buffers events, and [`journal`] is the same one-relaxed-
//!   load no-op as [`metrics`] otherwise.
//! * **Fit diagnostics** ([`FitDiagnostics`]): the per-element
//!   canonical-form selection record (candidate SSE/R², residuals,
//!   extrapolation distance) persisted through the artifact store and
//!   rendered by `xtrace report`.
//!
//! ## Scoped contexts and the zero-cost default
//!
//! Observability is carried by an explicit [`ObsContext`] — a cheap-clone
//! handle bundling recorder + metrics + journal — threaded through the
//! pipeline and down into every emission site. Kernels fetch
//! [`ObsContext::metrics`] *once at entry* and carry the handles into
//! their loops. A disabled context makes every handle a no-op — the
//! `NullRecorder` fast path; `bench_obs` bounds the end-to-end cost at
//! <2% and asserts predictions are bit-identical with and without a live
//! recorder. Because contexts are plain values, N pipelines in one
//! process each record into their own snapshot with no shared state and
//! no test serialization:
//!
//! ```
//! use xtrace_obs::{ObsContext, Recorder};
//!
//! let obs = ObsContext::with_recorder(Recorder::new());
//! obs.metrics().counter("demo.events").add(2);
//! assert_eq!(obs.snapshot().unwrap().counters["demo.events"], 2);
//! assert!(!ObsContext::disabled().metrics().enabled());
//! ```
//!
//! The historical process-global path ([`install`] / [`metrics`] /
//! [`journal`]) is **deprecated**: it survives as a thin shim over a
//! default ambient slot that un-migrated convenience wrappers read via
//! [`ObsContext::ambient`]. New code should construct an engine-scoped
//! context instead.
//!
//! ## Naming conventions
//!
//! Dotted lowercase names, `<subsystem>.<what>`: `tracer.sig_memo.hits`,
//! `store.misses`, `extrap.fit_wins.logarithmic`, `spmd.rank_classes`,
//! `psins.convolve_cache.hits`. Metrics whose values legitimately depend
//! on scheduling (parallel vs serial path, chunk counts) carry the
//! reserved [`SCHED_PREFIX`] (`sched.`) and are stripped by
//! [`Snapshot::masked`], so everything else must be bit-stable across
//! thread counts.

#![warn(missing_docs)]

mod chrome;
mod context;
mod diagnostics;
mod export;
mod journal;
mod metrics;
mod span;

pub use chrome::chrome_trace;
pub use context::ObsContext;
pub use diagnostics::{CandidateFit, ElementDiagnostics, FitDiagnostics};
pub use export::{BucketCount, HistogramSnapshot, Snapshot};
pub use journal::{
    EventPhase, Journal, JournalEvent, JournalHandle, JournalSnapshot, DEFAULT_JOURNAL_CAPACITY,
    SCHED_EVENT_PREFIX,
};
pub use metrics::{Counter, Gauge, Histogram, Metrics, SCHED_PREFIX};
pub use span::{Recorder, SpanGuard, SpanRecord, STAGE_PARENT};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

static ENABLED: AtomicBool = AtomicBool::new(false);
static CURRENT: Mutex<Option<Arc<Recorder>>> = Mutex::new(None);

fn current_slot() -> std::sync::MutexGuard<'static, Option<Arc<Recorder>>> {
    CURRENT
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The ambient default slot, read without touching the deprecated API so
/// [`ObsContext::ambient`] and the shims stay warning-free internally.
pub(crate) fn ambient_recorder() -> Option<Arc<Recorder>> {
    if !ENABLED.load(Ordering::Acquire) {
        return None;
    }
    current_slot().clone()
}

/// Installs `recorder` as the process-global ambient recorder and returns
/// a guard; dropping the guard restores whatever was installed before.
#[deprecated(note = "process-global recorders can't support concurrent sessions; \
            thread an `ObsContext` explicitly (e.g. via `XtraceEngine`)")]
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub fn install(recorder: Arc<Recorder>) -> InstallGuard {
    let mut slot = current_slot();
    let previous = slot.replace(recorder);
    ENABLED.store(true, Ordering::Release);
    InstallGuard { previous }
}

/// The ambient recorder, if one is installed.
#[deprecated(note = "use an explicit `ObsContext` and `ObsContext::recorder` instead")]
pub fn current() -> Option<Arc<Recorder>> {
    ambient_recorder()
}

/// The ambient recorder's metrics registry, or the disabled registry when
/// nothing is installed. The disabled path is one relaxed atomic load;
/// call at kernel entry, hold the handles through the loops.
#[deprecated(note = "use an explicit `ObsContext` and `ObsContext::metrics` instead")]
#[inline]
pub fn metrics() -> Metrics {
    if !ENABLED.load(Ordering::Relaxed) {
        return Metrics::disabled();
    }
    match current_slot().as_ref() {
        Some(rec) => rec.metrics(),
        None => Metrics::disabled(),
    }
}

/// The ambient recorder's journal handle, or the disabled no-op handle
/// when nothing is installed (or the installed recorder was built without
/// a journal). Same cost contract as [`metrics`]: the disabled path is
/// one relaxed atomic load, so emitters should check
/// [`JournalHandle::enabled`] before formatting event names.
#[deprecated(note = "use an explicit `ObsContext` and `ObsContext::journal` instead")]
#[inline]
pub fn journal() -> JournalHandle {
    if !ENABLED.load(Ordering::Relaxed) {
        return JournalHandle::disabled();
    }
    match current_slot().as_ref() {
        Some(rec) => rec.journal(),
        None => JournalHandle::disabled(),
    }
}

/// Restores the previously installed recorder on drop (see [`install`]).
pub struct InstallGuard {
    previous: Option<Arc<Recorder>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let mut slot = current_slot();
        *slot = self.previous.take();
        ENABLED.store(slot.is_some(), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the deprecated process-global shim end to end
    // (stacked installs, disabled default, ambient bridge). Scoped
    // contexts removed the old `SERIAL: Mutex<()>` — this is the only
    // test in the workspace that touches the global slot, so nothing
    // needs serializing anymore.
    #[test]
    #[allow(deprecated)]
    fn deprecated_ambient_shim_still_scopes_and_restores() {
        assert!(!metrics().enabled());
        let m = metrics();
        m.counter("dropped").add(5);
        assert_eq!(m.counter("dropped").get(), 0);

        let outer = Recorder::new();
        let inner = Recorder::new();
        {
            let _g1 = install(outer.clone());
            metrics().counter("c").incr();
            assert!(ObsContext::ambient().enabled());
            {
                let _g2 = install(inner.clone());
                metrics().counter("c").add(10);
            }
            metrics().counter("c").incr();
        }
        assert!(!metrics().enabled());
        assert!(!ObsContext::ambient().enabled());
        assert_eq!(outer.snapshot().counters["c"], 2);
        assert_eq!(inner.snapshot().counters["c"], 10);
    }
}
